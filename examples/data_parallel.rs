//! Data-level parallelism without barriers: Section 2.2 argues that
//! MIMD data parallelism wants cheap fine-grain synchronization rather
//! than barrier serialization, and sketches augmenting Mul-T with
//! data-parallel constructs. This example uses the repository's
//! Mul-T-level library (`pmap!`/`preduce`/`ptabulate!`) — futures with
//! divide-and-conquer grain control — on a parallel dot product.
//!
//! Run with: `cargo run --release --example data_parallel`

use april::machine::IdealMachine;
use april::mult::{compile, programs, CompileOptions};
use april::runtime::{RtConfig, Runtime};

const REGION: u32 = 16 << 20;

fn run(src: &str, opts: &CompileOptions, procs: usize) -> april::runtime::RunResult {
    let prog = compile(src, opts).expect("compiles");
    let m = IdealMachine::new(procs, procs * REGION as usize, prog);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            region_bytes: REGION,
            ..RtConfig::default()
        },
    );
    rt.run().expect("completes")
}

fn main() {
    let n = 256;
    let grain = 16;
    let src = format!(
        "{lib}
        (define (add a b) (+ a b))
        (define (main)
          (let ((a (make-vector {n} 0))
                (b (make-vector {n} 0)))
            (ptabulate! (lambda (i) (+ i 1)) a 0 {n} {grain})
            (ptabulate! (lambda (i) 2) b 0 {n} {grain})
            ;; c[i] = a[i] * b[i], then sum
            (ptabulate! (lambda (i) (* (vector-ref a i) (vector-ref b i)))
                        a 0 {n} {grain})
            (preduce add 0 a 0 {n} {grain})))",
        lib = programs::data_parallel_lib()
    );
    let expect: i32 = (1..=n).map(|i| 2 * i).sum();

    println!("parallel dot product of [1..{n}] . [2,2,...], grain {grain}\n");
    let mut base = 0u64;
    for procs in [1usize, 2, 4, 8] {
        let r = run(&src, &CompileOptions::april(), procs);
        assert_eq!(r.value.as_fixnum(), Some(expect));
        if procs == 1 {
            base = r.cycles;
        }
        println!(
            "{procs:2} procs: {:>8} cycles ({:.2}x), {} tasks, {} blocks",
            r.cycles,
            base as f64 / r.cycles as f64,
            r.sched.threads_created,
            r.sched.blocks,
        );
    }
    println!("\nresult = {expect}; no barrier anywhere — every join is a future");
    println!("touch, the word-grain synchronization Section 3.3 argues for.");
}
