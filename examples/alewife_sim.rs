//! The full ALEWIFE machine: a Mul-T program on coherent caches,
//! distributed directories and a mesh network. Remote cache misses
//! trap the processor, the run-time switch-spins to another task
//! frame, and the cache controller completes the protocol transaction
//! in the background (paper, Sections 2-3).
//!
//! Run with: `cargo run --release --example alewife_sim`
//!
//! Set `APRIL_TRACE=trace.json` to also record the full structured
//! event trace and write it out in Chrome `trace_event` format — open
//! the file in `chrome://tracing` or <https://ui.perfetto.dev> to see
//! per-node CPU, cache-controller, directory and network timelines.

use april::machine::alewife::Alewife;
use april::machine::config::MachineConfig;
use april::mult::{compile, programs, CompileOptions};
use april::net::topology::Topology;
use april::obs::TraceConfig;
use april::runtime::{RtConfig, Runtime};

const REGION: u32 = 4 << 20;

fn main() {
    let src = programs::fib(10);
    let prog = compile(&src, &CompileOptions::april()).expect("compiles");
    let cfg = MachineConfig {
        topology: Topology::new(2, 2), // 4 nodes
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    let machine = Alewife::new(cfg, prog);
    let mut rt = Runtime::new(
        machine,
        RtConfig {
            region_bytes: REGION,
            ..RtConfig::default()
        },
    );
    let trace_out = std::env::var("APRIL_TRACE").ok();
    if trace_out.is_some() {
        rt.attach_tracer(TraceConfig::default());
    }
    let r = rt.run().expect("completes");
    if let Some(path) = &trace_out {
        let trace = rt.collect_trace();
        std::fs::write(path, trace.to_chrome_trace()).expect("trace written");
        println!(
            "wrote {} events to {path} (open in chrome://tracing or ui.perfetto.dev)",
            trace.events().len()
        );
        println!();
    }

    println!("fib(10) on a 4-node ALEWIFE: result = {}", r.value);
    println!("total cycles: {}", r.cycles);
    println!();
    println!("per-node ledgers:");
    for (i, s) in r.per_cpu.iter().enumerate() {
        println!("  node {i}: {s}");
    }
    println!();
    let m = rt.machine();
    println!("coherence activity:");
    for (i, node) in m.nodes.iter().enumerate() {
        println!(
            "  node {i}: cache {} | ctl hits={} local_fills={} remote_txns={} invals={} wb={}",
            node.ctl.cache,
            node.ctl.stats.hits,
            node.ctl.stats.local_fills,
            node.ctl.stats.remote_txns,
            node.ctl.stats.invals,
            node.ctl.stats.writebacks,
        );
    }
    let ns = m.net_stats();
    println!();
    println!(
        "network: {} packets, {:.1} avg latency, {:.1} avg hops",
        ns.delivered,
        ns.avg_latency(),
        ns.avg_hops()
    );
    println!(
        "scheduler: {} threads, {} blocks, {} wakes, {} steals",
        r.sched.threads_created, r.sched.blocks, r.sched.wakes, r.sched.ready_steals
    );
    println!(
        "context switches: {} (11 cycles each on SPARC-based APRIL)",
        r.total.context_switches
    );
    assert_eq!(r.value.as_fixnum(), Some(55));
}
