//! Fine-grain synchronization with full/empty bits: an I-structure
//! style producer/consumer pipeline between two processors, the idiom
//! Section 3.3 contrasts with test&set locks ("the load of an empty
//! location or the store into a full location can trap the processor
//! causing a context switch, which helps hide synchronization delay").
//!
//! Run with: `cargo run --release --example fine_grain_sync`

use april::machine::IdealMachine;
use april::runtime::{abi, RtConfig, Runtime};

fn main() {
    // The producer task writes 20 values into a buffer with
    // store-and-set-full; the consumer (main) reads them with
    // trap-on-empty loads — every premature read traps and
    // switch-spins, interleaving "wasteful iterations in spin-wait
    // loops with useful work from other threads".
    let src = format!(
        "
        .entry main
        .static 0x400
        .word 0 empty
        .word 0 empty
        .word 0 empty
        .word 0 empty
        .word 0 empty
        .word 0 empty
        .word 0 empty
        .word 0 empty
        main:
            or g5, 0, g1
            add g5, 8, g5
            movi @producer, g2
            st g2, g1+0
            or g1, 2, r1
            rtcall {fut}            ; spawn the producer
            movi 0x400, r8          ; buffer base
            movi 0, r9              ; index
            movi 0, r10             ; sum
        consume:
            sll r9, 2, r2
            and r2, 31, r2          ; ring of 8 slots
            add r8, r2, r2
            ldett r2+0, r3          ; trap while empty, take+reset
            add r10, r3, r10
            add r9, 1, r9
            sub r9, 20, g1
            jne consume
            nop
            or r10, 0, r1
            rtcall {done}
        producer:
            movi 0x400, r8
            movi 0, r9
        produce:
            movi 12, r4             ; a slow producer: the consumer
        think:                      ; catches up and traps on empty
            sub r4, 1, r4
            jne think
            nop
            sll r9, 2, r2
            and r2, 31, r2
            add r8, r2, r2
            sll r9, 2, r3           ; value = index (fixnum)
            stftw r3, r2+0          ; trap while full, store+set
            add r9, 1, r9
            sub r9, 20, g1
            jne produce
            nop
            movi 0, r1
            jmpl r31+0, g0
            nop
        {stubs}
        ",
        fut = abi::RT_FUTURE,
        done = abi::RT_MAIN_DONE,
        stubs = abi::entry_stubs_asm(),
    );
    let prog = april::core::isa::asm::assemble(&src).expect("assembles");
    let m = IdealMachine::new(2, 8 << 20, prog);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            region_bytes: 4 << 20,
            ..RtConfig::default()
        },
    );
    let r = rt.run().expect("completes");

    let expect: i32 = (0..20).sum();
    println!("producer/consumer over an 8-slot full/empty ring:");
    println!(
        "  sum of 20 produced values = {} (expect {expect})",
        r.value
    );
    println!("  full/empty synchronization traps: {}", r.total.fe_traps);
    println!(
        "  context switches (switch-spinning): {}",
        r.total.context_switches
    );
    println!("  total cycles: {}", r.cycles);
    println!();
    println!("No test&set lock, no separate lock word: the synchronization state");
    println!("is the full/empty bit of each data word itself (paper, Section 3.3).");
    assert_eq!(r.value.as_fixnum(), Some(expect));
}
