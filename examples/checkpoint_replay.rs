//! Checkpoint, restore, and replay-bisection.
//!
//! Three demonstrations of the snapshot subsystem (DESIGN.md §11):
//!
//! 1. **Pause/resume a full run-time.** A Mul-T fib(12) run on a
//!    4-node ALEWIFE is cut mid-flight, checkpointed to bytes,
//!    restored into a brand-new runtime, and finished there — with
//!    the result, cycle count, and statistics identical to an
//!    unbroken run.
//! 2. **Cross-scheduler resume.** A machine-level checkpoint taken on
//!    the sequential event-driven scheduler is resumed on the
//!    parallel conservative-window scheduler (2 workers), and the
//!    final memory images match.
//! 3. **Replay bisection.** Given a reference trace and a snapshot, a
//!    deliberately perturbed run-time policy is bisected to the first
//!    cycle at which its semantic event stream departs, in O(log n)
//!    replays.
//!
//! Run with: `cargo run --release --example checkpoint_replay`

use april::core::cpu::StepEvent;
use april::core::frame::FrameState;
use april::core::trap::Trap;
use april::machine::alewife::Alewife;
use april::machine::config::MachineConfig;
use april::machine::driver::{drive_sequential, drive_sequential_until, EventCtx, NodeDriver};
use april::machine::parallel::ParallelAlewife;
use april::machine::{Machine, Replayer, SwitchSpin};
use april::mult::{compile, programs, CompileOptions};
use april::net::topology::Topology;
use april::obs::TraceConfig;
use april::runtime::snapshot::RuntimeSnapshot;
use april::runtime::{RtConfig, Runtime};

const REGION: u32 = 4 << 20;

fn mcfg() -> MachineConfig {
    MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: REGION,
        ..MachineConfig::default()
    }
}

fn rtcfg() -> RtConfig {
    RtConfig {
        region_bytes: REGION,
        ..RtConfig::default()
    }
}

fn fresh_rt() -> Runtime<Alewife> {
    let src = programs::fib(12);
    let prog = compile(&src, &CompileOptions::april()).expect("compiles");
    let mut rt = Runtime::new(Alewife::new(mcfg(), prog), rtcfg());
    rt.attach_tracer(TraceConfig::default());
    rt
}

/// Part 1: checkpoint a running run-time, resume it elsewhere.
fn pause_and_resume() {
    let mut reference = fresh_rt();
    let unbroken = reference.run().expect("reference completes");

    let mut rt = fresh_rt();
    let paused = rt.run_until(20_000).expect("run proceeds");
    assert!(paused.is_none(), "fib(12) is still in flight at cycle 20k");
    let snap = rt.checkpoint().expect("mid-run checkpoint");
    println!(
        "checkpointed fib(12) at cycle {} ({} bytes)",
        snap.cycle(),
        snap.as_bytes().len()
    );

    // The bytes are self-contained: round-trip through a plain buffer
    // (a file would do) and restore into a brand-new runtime.
    let bytes = snap.as_bytes().to_vec();
    let reloaded = RuntimeSnapshot::from_bytes(bytes).expect("valid snapshot");
    let mut resumed = fresh_rt();
    resumed.restore(&reloaded).expect("restore succeeds");
    let finished = resumed.run().expect("resumed run completes");

    println!(
        "unbroken: fib(12)={} in {} cycles | resumed: fib(12)={} in {} cycles",
        unbroken.value.as_fixnum().unwrap(),
        unbroken.cycles,
        finished.value.as_fixnum().unwrap(),
        finished.cycles,
    );
    assert_eq!(unbroken.value, finished.value);
    assert_eq!(unbroken.cycles, finished.cycles);
    assert_eq!(unbroken.total, finished.total);
    assert_eq!(
        reference.collect_trace().events(),
        resumed.collect_trace().events(),
        "stitched-together trace must equal the unbroken one"
    );
    println!("resumed run is bit-identical to the unbroken run\n");
}

/// The false-sharing increment stress from the equivalence suites.
fn stress_prog() -> april::core::program::Program {
    april::core::isa::asm::assemble(
        "
        .entry main
        main:
            ldio 1, r8
            movi 0x200, r9
            add r9, r8, r9
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

/// Part 2: checkpoint sequentially, resume on the parallel scheduler.
fn cross_scheduler() {
    let scfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    let mut seq = Alewife::new(scfg, stress_prog());
    seq.attach_tracer(TraceConfig::default());
    for i in 0..seq.num_procs() {
        seq.cpu_mut(i).boot(0);
    }
    drive_sequential_until(&mut seq, &SwitchSpin::default(), 500, 1_000_000);
    let snap = seq.checkpoint().expect("checkpoint");
    println!(
        "sequential checkpoint at cycle {}; resuming on 2 parallel workers",
        snap.cycle()
    );

    let mut par = ParallelAlewife::new(MachineConfig { workers: 2, ..scfg }, stress_prog());
    par.attach_tracer(TraceConfig::default());
    par.restore(&snap).expect("cross-scheduler restore");
    par.run(&SwitchSpin::default(), 1_000_000);

    // Finish the sequential run too; final memories must agree.
    drive_sequential(&mut seq, &SwitchSpin::default(), 1_000_000);
    for addr in (0..0x1000u32).step_by(4) {
        assert_eq!(seq.mem().read(addr), par.mem().read(addr));
    }
    println!("parallel resume reached the same final memory image\n");
}

/// A deliberately wasteful run-time: never parks a missing frame, so
/// the faulting instruction re-traps every handler interval.
struct HotRetry;

impl NodeDriver for HotRetry {
    fn on_event(&self, node: usize, ev: StepEvent, ctx: &mut dyn EventCtx) {
        match ev {
            StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                let cpu = ctx.cpu();
                let fp = cpu.fp();
                let fr = cpu.frame_mut(fp);
                fr.state = FrameState::Ready;
                fr.psr.in_trap = false;
                ctx.charge_handler(6);
            }
            StepEvent::Trapped(t) => panic!("node {node}: {t}"),
            StepEvent::NoReadyFrame => {
                let cpu = ctx.cpu();
                match cpu.next_ready_frame() {
                    Some(f) => cpu.set_fp(f),
                    None => ctx.charge_idle(1),
                }
            }
            _ => {}
        }
    }
}

/// Part 3: bisect the first divergent cycle of a perturbed replay.
fn bisect_divergence() {
    let scfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    let mut m = Alewife::new(scfg, stress_prog());
    m.attach_tracer(TraceConfig::default());
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    drive_sequential_until(&mut m, &SwitchSpin::default(), 10, 1_000_000);
    let snap = m.checkpoint().expect("checkpoint");
    drive_sequential(&mut m, &SwitchSpin::default(), 1_000_000);
    let reference = m.collect_trace();
    let end = m.now();

    let rep = Replayer::new(scfg, stress_prog(), TraceConfig::default());

    // A faithful replay never diverges…
    let ok = rep
        .bisect(&snap, &SwitchSpin::default(), &reference, end, 1_000_000)
        .expect("replay runs");
    assert!(ok.is_none());
    println!("faithful replay from cycle {}: no divergence", snap.cycle());

    // …while the hot-retry policy departs at its first remote miss,
    // and the bisection pins the exact cycle and lane.
    let d = rep
        .bisect(&snap, &HotRetry, &reference, end, 1_000_000)
        .expect("replay runs")
        .expect("perturbed policy must diverge");
    println!("perturbed replay: {d}");
}

fn main() {
    pause_and_resume();
    cross_scheduler();
    bisect_divergence();
}
