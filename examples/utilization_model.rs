//! The Section 8 scalability model as a library: sweep the design
//! space the paper discusses — context-switch overhead, cache size,
//! and network latency — and print utilization curves.
//!
//! Run with: `cargo run --release --example utilization_model`

use april::model::params::SystemParams;
use april::model::utilization::{figure5_sweep, open_loop_knee, open_loop_utilization, solve};

fn bar(u: f64) -> String {
    let n = (u * 40.0).round() as usize;
    format!("{:.3} {}", u, "#".repeat(n))
}

fn main() {
    let base = SystemParams::default();

    println!("U(p) for the Table 4 machine (C = 10):");
    for pt in figure5_sweep(&base, 8, base.switch_overhead) {
        println!("  p={} {}", pt.p as u32, bar(pt.useful));
    }

    println!("\nContext-switch overhead ablation, p = 4 (Section 8: \"the relatively");
    println!("large ten-cycle context switch overhead does not significantly impact");
    println!("performance ... switching frequency is expected to be small\"):");
    for c in [0.0, 4.0, 10.0, 16.0, 32.0, 64.0, 128.0] {
        let u = solve(&base, 4.0, true, true, c);
        println!("  C = {c:>5.0}  {}", bar(u));
    }

    println!("\nCache size ablation, p = 4 (Section 8: \"smaller caches suffer more");
    println!("interference and reduce the benefits of multithreading\"):");
    for kb in [16.0, 32.0, 64.0, 128.0, 256.0] {
        let params = SystemParams {
            cache_bytes: kb * 1024.0,
            ..base
        };
        let u = solve(&params, 4.0, true, true, 10.0);
        println!("  {kb:>4.0} KB  {}", bar(u));
    }

    println!("\nBase network latency ablation, p = 4 (what latency can 4 frames hide?):");
    for radix in [8.0, 12.0, 16.0, 20.0, 28.0, 40.0] {
        let params = SystemParams { radix, ..base };
        let u = solve(&params, 4.0, true, true, 10.0);
        println!(
            "  k = {radix:>3.0} (T0 = {:>3.0})  {}",
            params.base_round_trip(),
            bar(u)
        );
    }

    println!("\nLatency tolerance of p resident threads (run length R between misses):");
    for p in [2.0, 3.0, 4.0] {
        println!(
            "  p = {p}: R=50 -> {:>4.0} cycles, R=100 -> {:>4.0} cycles",
            base.tolerated_latency(p, 50.0),
            base.tolerated_latency(p, 100.0)
        );
    }
    println!("(paper: 4 frames tolerate latencies of 150-300 cycles)");

    println!("\nOpen-loop server (DESIGN.md §15): utilization vs offered load for a");
    println!("single service thread per edge node. Below the knee the processor is");
    println!("busy exactly as often as work arrives; past it, Equation 1's p = 1");
    println!("bound caps the server and queues grow without bound:");
    let (m, t, c) = (0.02, base.base_round_trip(), base.switch_overhead);
    let knee = open_loop_knee(m, t, c);
    for load in [0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0] {
        let u = open_loop_utilization(load, m, t, c);
        let mark = if load > knee { "  <- saturated" } else { "" };
        println!("  offered = {load:.2}  {}{mark}", bar(u));
    }
    println!("  knee at offered = {knee:.3} (the referee for BENCH_openloop.json)");
}
