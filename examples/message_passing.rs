//! The message-passing computational model on ALEWIFE: Section 3.4's
//! "multimodel support mechanisms" — software-enforced coherence
//! (FLUSH + fence counter), block transfers, and preemptive
//! interprocessor interrupts, "a primitive for the message-passing
//! computational model".
//!
//! Node 0 builds a message in its own region, FLUSHes it back to
//! memory (FENCE waits for the acknowledgments), block-transfers it to
//! node 1, and raises an IPI; node 1 takes the interrupt and reads the
//! payload with coherence-bypassing confidence.
//!
//! Run with: `cargo run --release --example message_passing`

use april::core::cpu::StepEvent;
use april::core::frame::FrameState;
use april::core::isa::asm::assemble;
use april::core::isa::Reg;
use april::core::trap::Trap;
use april::core::word::Word;
use april::machine::alewife::{Alewife, IO_BXFER_LEN, IO_BXFER_NODE, IO_IPI};
use april::machine::config::MachineConfig;
use april::machine::Machine;
use april::net::topology::Topology;

fn main() {
    let prog = assemble(&format!(
        "
        .entry main
        main:
            ldio 1, r8             ; node id
            sub r8, 0, r8
            jne receiver
            nop
        ; --- node 0: sender ---
            movi 0x100, r1         ; message buffer (local region)
            movi 44, r2            ; payload word 0: fixnum 11
            st r2, r1+0
            movi 88, r2            ; payload word 1: fixnum 22
            st r2, r1+4
            flush r1+0             ; write back the dirty line
            fence                  ; wait for the memory acknowledgment
            movi 1, r2             ; block-transfer destination node
            stio r2, {bx_node}
            movi 4, r2             ; length in words
            stio r2, {bx_len}
            movi 0x100, r2         ; source block; triggers the transfer
            stio r2, {bx_addr}
            movi 4, r2             ; IPI target: node 1 (fixnum 1)
            stio r2, {ipi}
            halt
        ; --- node 1: receiver ---
        receiver:
            movi 0, r9             ; interrupt-seen flag lives in r9
        idle:
            sub r9, 0, r9
            jeq idle               ; spin until the IPI handler sets r9
            nop
            movi 0x100, r1         ; read the message (remote home)
            ld r1+0, r10
            ld r1+4, r11
            add r10, r11, r12      ; 11 + 22 = 33 (fixnums add raw)
            halt
        ",
        bx_node = IO_BXFER_NODE,
        bx_len = IO_BXFER_LEN,
        bx_addr = 5, // IO_BXFER_ADDR
        ipi = IO_IPI,
    ))
    .expect("assembles");

    let cfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    let mut m = Alewife::new(cfg, prog);
    for i in 0..2 {
        m.cpu_mut(i).boot(0);
    }

    let mut ipi_seen = false;
    while !(m.cpu(0).is_halted() && m.cpu(1).is_halted()) {
        assert!(m.now() < 100_000, "timeout");
        for (i, ev) in m.advance() {
            match ev {
                StepEvent::Trapped(Trap::Interrupt { from }) => {
                    println!(
                        "cycle {:>5}: node {i} took an IPI from node {from}",
                        m.now()
                    );
                    ipi_seen = true;
                    // The "interrupt handler": note the message arrival
                    // (sets the flag register) and return.
                    let fp = m.cpu(i).fp();
                    let cpu = m.cpu_mut(i);
                    cpu.set_reg(Reg::L(9), Word(1));
                    cpu.frame_mut(fp).psr.in_trap = false;
                    m.charge_handler(i, 10);
                }
                StepEvent::Trapped(Trap::RemoteMiss { addr, .. }) => {
                    println!(
                        "cycle {:>5}: node {i} remote miss on {addr:#x} (context switch)",
                        m.now()
                    );
                    let fp = m.cpu(i).fp();
                    let fr = m.cpu_mut(i).frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::Trapped(t) => panic!("node {i}: {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = m.cpu_mut(i);
                    match cpu.next_ready_frame() {
                        Some(f) => cpu.set_fp(f),
                        None => m.charge_idle(i, 1),
                    }
                }
                _ => {}
            }
        }
    }

    assert!(ipi_seen, "the IPI must be delivered");
    let sum = m.cpu(1).get_reg(Reg::L(12)).as_fixnum().unwrap();
    println!();
    println!("node 1 received and summed the payload: {sum} (expect 33)");
    println!(
        "fence counter after flush round trip: {}",
        m.nodes[0].ctl.fence_count()
    );
    println!(
        "network carried {} packets ({} flit-cycles)",
        m.net_stats().delivered,
        m.net_stats().busy_flit_cycles
    );
    assert_eq!(sum, 33);
    assert_eq!(m.nodes[0].ctl.fence_count(), 0);
}
