//! Quickstart: assemble an APRIL program that uses the full/empty
//! bits and `Jfull`/`Jempty`, run it on one processor, and inspect the
//! cycle ledger.
//!
//! Run with: `cargo run --example quickstart`

use april::core::cpu::{Cpu, CpuConfig, StepEvent};
use april::core::isa::asm::assemble;
use april::core::isa::disasm::listing;
use april::core::isa::Reg;
use april::mem::femem::FeMemory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny producer/consumer in one thread: the producer half fills
    // a mailbox with stfnt (store + set full); the consumer half polls
    // with a non-trapping load and Jempty, then takes the value with
    // ldett (load + reset to empty), emptying the slot for reuse.
    let prog = assemble(
        "
        .entry main
        .static 0x100
        .word 0 empty          ; the mailbox
        main:
            movi 0x100, r1
            movi 0, r10        ; sum
            movi 5, r11        ; rounds
        round:
            ; produce: mailbox := rounds (as fixnum)
            sll r11, 2, r2
            stfnt r2, r1+0     ; store, set full
        poll:
            ldnt r1+0, r3      ; non-trapping load, sets f/e condition
            jempty poll        ; spin until full
            nop
            ldett r1+0, r3     ; take: load and reset to empty
            add r10, r3, r10
            sub r11, 1, r11
            jne round
            nop
            halt
        ",
    )?;

    println!("Program listing:");
    println!("{}", listing(&prog));

    let mut mem = FeMemory::new(4096);
    mem.load_image(&prog);
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(prog.entry);
    loop {
        match cpu.step(&prog, &mut mem) {
            StepEvent::Halted => break,
            StepEvent::Trapped(t) => panic!("unexpected trap: {t}"),
            _ => {}
        }
    }

    let sum = cpu.get_reg(Reg::L(10)).as_fixnum().unwrap();
    println!("sum of 1..=5 via the mailbox = {sum}");
    println!("cycle ledger: {}", cpu.stats);
    assert_eq!(sum, 15);
    Ok(())
}
