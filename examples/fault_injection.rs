//! Deterministic fault injection and the forward-progress watchdog.
//!
//! Runs fib(10) on a 4-node ALEWIFE under a seeded lossy network
//! (drops, duplicates, jitter) and shows that the run is exactly
//! reproducible from the seed and still produces the right answer.
//! Then kills both channels of a node's only link and shows the two
//! failure modes: with retries disabled the watchdog declares the
//! machine dead and prints a structured post-mortem; with retries
//! enabled the bounded retry budget gives up first with a typed
//! protocol fault.
//!
//! Run with: `cargo run --release --example fault_injection`

use april::machine::alewife::Alewife;
use april::machine::config::MachineConfig;
use april::mem::error::RetryConfig;
use april::mult::{compile, programs, CompileOptions};
use april::net::fault::{FaultPlan, FaultRule};
use april::net::topology::{Channel, Topology};
use april::runtime::{RtConfig, RunError, Runtime};

const REGION: u32 = 4 << 20;

fn machine(cfg: MachineConfig, plan: FaultPlan) -> Runtime<Alewife> {
    let src = programs::fib(10);
    let prog = compile(&src, &CompileOptions::april()).expect("compiles");
    let mut m = Alewife::new(cfg, prog);
    m.set_fault_plan(plan);
    Runtime::new(
        m,
        RtConfig {
            region_bytes: REGION,
            ..RtConfig::default()
        },
    )
}

fn faulty_run(seed: u64) -> (i32, u64, String) {
    let cfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    let plan = FaultPlan::new(seed).with_default_rule(FaultRule {
        drop: 0.02,
        dup: 0.02,
        delay: 0.05,
        max_delay: 40,
    });
    let mut rt = machine(cfg, plan);
    let r = rt.run().expect("faulty run still completes");
    let stats = rt.machine().fault_stats();
    (
        r.value.as_fixnum().expect("fixnum result"),
        r.cycles,
        format!(
            "dropped={} duplicated={} delayed={}",
            stats.dropped, stats.duplicated, stats.delayed
        ),
    )
}

fn main() {
    // 1. Lossy network, retries on: same seed twice must be bit-identical.
    let (v1, c1, s1) = faulty_run(0xfeed);
    let (v2, c2, s2) = faulty_run(0xfeed);
    println!("seed 0xfeed run A: fib(10)={v1} in {c1} cycles ({s1})");
    println!("seed 0xfeed run B: fib(10)={v2} in {c2} cycles ({s2})");
    assert_eq!((v1, c1, &s1), (v2, c2, &s2), "determinism violated");
    assert_eq!(v1, 55);
    let (v3, c3, s3) = faulty_run(0xbeef);
    println!("seed 0xbeef run:   fib(10)={v3} in {c3} cycles ({s3})");
    assert_eq!(v3, 55);

    // 2. Dead link, retries disabled, short horizon: watchdog post-mortem.
    let mut cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    cfg.ctl.retry = RetryConfig::disabled();
    cfg.watchdog.horizon = 3_000;
    let plan = FaultPlan::new(1)
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: true,
            },
            FaultRule::drop(1.0),
        )
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: false,
            },
            FaultRule::drop(1.0),
        );
    let mut rt = machine(cfg, plan.clone());
    match rt.run() {
        Err(RunError::MachineFault(fault)) => {
            println!("\ndead link tripped the watchdog as expected:\n{fault}");
        }
        other => panic!("expected a machine fault, got {other:?}"),
    }

    // 3. Probe: same dead link but retries ENABLED — the retry budget,
    // not the watchdog, should give up (Protocol fault, not NoForwardProgress).
    let cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    let mut rt = machine(cfg, plan);
    match rt.run() {
        Err(RunError::MachineFault(fault)) => {
            println!("\ndead link with retries on:\n{fault}");
        }
        other => panic!("expected a machine fault, got {other:?}"),
    }

    // 4. Probe: out-of-range probability (2.0). Not validated; should
    // behave as certainty without panicking.
    let cfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    let plan = FaultPlan::new(7).with_default_rule(FaultRule::delay(2.0, 8));
    let mut rt = machine(cfg, plan);
    let r = rt.run().expect("all-delayed run still completes");
    let stats = rt.machine().fault_stats();
    println!(
        "\ndrop-in probe p=2.0 delay: fib(10)={} in {} cycles, delayed={}",
        r.value.as_fixnum().unwrap(),
        r.cycles,
        stats.delayed
    );
}
