//! Deterministic fault injection and the forward-progress watchdog.
//!
//! Runs fib(10) on a 4-node ALEWIFE under a seeded lossy network
//! (drops, duplicates, jitter) and shows that the run is exactly
//! reproducible from the seed and still produces the right answer.
//! Then kills both channels of a node's only link and shows the two
//! failure modes: with retries disabled the watchdog declares the
//! machine dead and prints a structured post-mortem; with retries
//! enabled the bounded retry budget gives up first with a typed
//! protocol fault.
//!
//! Finally it closes the fault loop: the same kind of link kill on a
//! 2x2 mesh — fatal on its own — completes under the
//! [`RecoveryManager`](april::machine::recovery::RecoveryManager),
//! which diagnoses the wedge, quarantines the dead link so routing
//! detours around it, rolls back to the last good checkpoint, and
//! re-executes.
//!
//! Run with: `cargo run --release --example fault_injection`

use april::core::isa::asm::assemble;
use april::machine::alewife::Alewife;
use april::machine::config::MachineConfig;
use april::machine::driver::{drive_sequential, SwitchSpin};
use april::machine::recovery::{RecoveryConfig, RecoveryManager};
use april::machine::Machine;
use april::mem::error::RetryConfig;
use april::mult::{compile, programs, CompileOptions};
use april::net::fault::{FaultPlan, FaultRule};
use april::net::topology::{Channel, Topology};
use april::runtime::{RtConfig, RunError, Runtime};

const REGION: u32 = 4 << 20;

fn machine(cfg: MachineConfig, plan: FaultPlan) -> Runtime<Alewife> {
    let src = programs::fib(10);
    let prog = compile(&src, &CompileOptions::april()).expect("compiles");
    let mut m = Alewife::new(cfg, prog);
    m.set_fault_plan(plan);
    Runtime::new(
        m,
        RtConfig {
            region_bytes: REGION,
            ..RtConfig::default()
        },
    )
}

fn faulty_run(seed: u64) -> (i32, u64, String) {
    let cfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    let plan = FaultPlan::new(seed).with_default_rule(FaultRule {
        drop: 0.02,
        dup: 0.02,
        delay: 0.05,
        max_delay: 40,
    });
    let mut rt = machine(cfg, plan);
    let r = rt.run().expect("faulty run still completes");
    let stats = rt.machine().fault_stats();
    (
        r.value.as_fixnum().expect("fixnum result"),
        r.cycles,
        format!(
            "dropped={} duplicated={} delayed={}",
            stats.dropped, stats.duplicated, stats.delayed
        ),
    )
}

fn main() {
    // 1. Lossy network, retries on: same seed twice must be bit-identical.
    let (v1, c1, s1) = faulty_run(0xfeed);
    let (v2, c2, s2) = faulty_run(0xfeed);
    println!("seed 0xfeed run A: fib(10)={v1} in {c1} cycles ({s1})");
    println!("seed 0xfeed run B: fib(10)={v2} in {c2} cycles ({s2})");
    assert_eq!((v1, c1, &s1), (v2, c2, &s2), "determinism violated");
    assert_eq!(v1, 55);
    let (v3, c3, s3) = faulty_run(0xbeef);
    println!("seed 0xbeef run:   fib(10)={v3} in {c3} cycles ({s3})");
    assert_eq!(v3, 55);

    // 2. Dead link, retries disabled, short horizon: watchdog post-mortem.
    let mut cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    cfg.ctl.retry = RetryConfig::disabled();
    cfg.watchdog.horizon = 3_000;
    let plan = FaultPlan::new(1)
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: true,
            },
            FaultRule::drop(1.0),
        )
        .with_channel_rule(
            Channel {
                node: 0,
                dim: 0,
                plus: false,
            },
            FaultRule::drop(1.0),
        );
    let mut rt = machine(cfg, plan.clone());
    match rt.run() {
        Err(RunError::MachineFault(fault)) => {
            println!("\ndead link tripped the watchdog as expected:\n{fault}");
        }
        other => panic!("expected a machine fault, got {other:?}"),
    }

    // 3. Probe: same dead link but retries ENABLED — the retry budget,
    // not the watchdog, should give up (Protocol fault, not NoForwardProgress).
    let cfg = MachineConfig {
        topology: Topology::new(1, 2),
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    let mut rt = machine(cfg, plan);
    match rt.run() {
        Err(RunError::MachineFault(fault)) => {
            println!("\ndead link with retries on:\n{fault}");
        }
        other => panic!("expected a machine fault, got {other:?}"),
    }

    // 4. Probe: out-of-range probability (2.0). Not validated; should
    // behave as certainty without panicking.
    let cfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    let plan = FaultPlan::new(7).with_default_rule(FaultRule::delay(2.0, 8));
    let mut rt = machine(cfg, plan);
    let r = rt.run().expect("all-delayed run still completes");
    let stats = rt.machine().fault_stats();
    println!(
        "\ndrop-in probe p=2.0 delay: fib(10)={} in {} cycles, delayed={}",
        r.value.as_fixnum().unwrap(),
        r.cycles,
        stats.delayed
    );

    // 5. Closing the loop: a permanent link kill on a 2x2 mesh, fatal
    // by itself, completes under the recovery manager.
    recovery_demo();
}

/// Every node increments its own word of one block homed at node 0 —
/// all traffic funnels through node 0's links, so killing one wedges
/// the protocol.
fn shared_counter_program() -> april::core::program::Program {
    assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 50, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

fn recovery_machine() -> Alewife {
    let mut cfg = MachineConfig {
        topology: Topology::new(2, 2),
        ..MachineConfig::default()
    };
    // Fast retries so the wedge is diagnosed quickly; the watchdog is
    // the backstop, not the trigger.
    cfg.ctl.retry = RetryConfig {
        enabled: true,
        timeout: 50,
        backoff_cap: 200,
        max_retries: 5,
    };
    cfg.dir.retry = cfg.ctl.retry;
    cfg.watchdog.horizon = 20_000;
    let mut m = Alewife::new(cfg, shared_counter_program());
    // Kill node 0's +x link at cycle 200: every reply 0 -> 1 silently
    // vanishes from then on.
    m.set_fault_plan(FaultPlan::new(0x5eed).with_link_kill(
        Channel {
            node: 0,
            dim: 0,
            plus: true,
        },
        200,
    ));
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    m
}

fn recovery_demo() {
    // Unsupervised, the kill is fatal.
    let mut dead = recovery_machine();
    let fault = drive_sequential(&mut dead, &SwitchSpin::default(), 2_000_000)
        .expect("an unsupervised link kill must be fatal");
    println!("\nunsupervised link kill is fatal:\n{fault}");

    // Supervised, the same machine completes: the manager checkpoints
    // every 500 cycles, diagnoses the wedge, quarantines the implicated
    // channel (deterministically from seed + post-mortem), rolls back,
    // and re-executes with a doubled watchdog horizon.
    let mut m = recovery_machine();
    let mut mgr = RecoveryManager::new(RecoveryConfig {
        checkpoint_interval: 500,
        ring_capacity: 8,
        max_attempts: 6,
        max_cycles: 2_000_000,
    });
    let report = mgr.run(&mut m, &SwitchSpin::default());
    assert!(report.recovered, "recovery failed: {:?}", report.failure);
    println!(
        "supervised run recovered: {} rollback(s), {} channel(s) quarantined, \
         finished at cycle {}",
        report.rollbacks,
        report.quarantine.channels.len(),
        report.final_cycle,
    );
    for n in 0..4u32 {
        let w = m.mem().read(0x200 + 4 * n);
        assert_eq!(w.as_fixnum(), Some(50), "node {n}'s count corrupted");
    }
    println!("all four shared counters reached 50 despite the dead link");
}
