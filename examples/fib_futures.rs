//! Futures end to end: compile the paper's `fib` benchmark with eager
//! and lazy task creation and watch it scale across processors of the
//! ideal machine (the paper's Table 3 methodology).
//!
//! Run with: `cargo run --release --example fib_futures`

use april::machine::IdealMachine;
use april::mult::{compile, programs, CompileOptions};
use april::runtime::{RtConfig, Runtime};

const REGION: u32 = 16 << 20;

fn run(src: &str, opts: &CompileOptions, procs: usize) -> april::runtime::RunResult {
    let prog = compile(src, opts).expect("compiles");
    let m = IdealMachine::new(procs, procs * REGION as usize, prog);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            region_bytes: REGION,
            ..RtConfig::default()
        },
    );
    rt.run().expect("completes")
}

fn main() {
    let n = 13;
    let src = programs::fib(n);
    println!("fib({n}) with futures around both recursive calls\n");

    let seq = run(&src, &CompileOptions::t_seq(), 1);
    println!(
        "sequential (futures elided): result = {}, {} cycles",
        seq.value, seq.cycles
    );

    for (label, opts) in [
        ("eager futures", CompileOptions::april()),
        ("lazy task creation", CompileOptions::april_lazy()),
    ] {
        println!("\n{label}:");
        for procs in [1, 2, 4, 8] {
            let r = run(&src, &opts, procs);
            assert_eq!(r.value, seq.value);
            println!(
                "  {procs:2} procs: {:>9} cycles  ({:.2}x vs seq, {:.2}x self-speedup) \
                 threads={} inlined={} stolen={}",
                r.cycles,
                r.cycles as f64 / seq.cycles as f64,
                run(&src, &opts, 1).cycles as f64 / r.cycles as f64,
                r.sched.threads_created,
                r.sched.inline_evals,
                r.sched.lazy_steals,
            );
        }
    }
    println!("\nThe paper's Table 3 shape: lazy task creation eliminates most of the");
    println!("eager scheme's task-creation overhead while still exposing parallelism.");
}
