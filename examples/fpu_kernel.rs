//! The floating-point unit: a dot-product kernel using the
//! per-context FP register file (paper, Section 5: an unmodified SPARC
//! FPU whose 32-register file is split into four per-frame sets of
//! eight, with per-frame condition bits).
//!
//! Run with: `cargo run --release --example fpu_kernel`

use april::core::cpu::{Cpu, CpuConfig, StepEvent};
use april::core::isa::asm::assemble;
use april::core::isa::Reg;
use april::mem::femem::FeMemory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a = [1.5, 2.0, 0.5, 4.0], b = [2.0, 0.25, 8.0, 0.5]
    // dot(a,b) = 3.0 + 0.5 + 4.0 + 2.0 = 9.5
    let prog = assemble(
        "
        .entry main
        main:
            movi 0x100, r1     ; a
            movi 0x140, r2     ; b
            movi 4, r10        ; n
            fmovi 0.0, f7      ; acc
        loop:
            ldf r1+0, f0
            ldf r2+0, f1
            fmul f0, f1, f2
            fadd f7, f2, f7
            add r1, 4, r1
            add r2, 4, r2
            sub r10, 1, r10
            jne loop
            nop
            ; mean = dot / n
            movi 16, r3        ; fixnum 4
            fix2f r3, f3
            fdiv f7, f3, f6
            ; compare dot against 9.0: expect greater
            fmovi 9.0, f4
            fcmp f7, f4
            jfgt bigger
            nop
            movi 0, r9
            halt
        bigger:
            movi 1, r9
            f2fix f7, r11      ; truncated dot = 9
            halt
        ",
    )?;

    let mut mem = FeMemory::new(4096);
    let a = [1.5f32, 2.0, 0.5, 4.0];
    let b = [2.0f32, 0.25, 8.0, 0.5];
    for i in 0..4 {
        mem.write(
            0x100 + 4 * i as u32,
            april::core::word::Word(a[i].to_bits()),
        );
        mem.write(
            0x140 + 4 * i as u32,
            april::core::word::Word(b[i].to_bits()),
        );
    }

    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(prog.entry);
    loop {
        match cpu.step(&prog, &mut mem) {
            StepEvent::Halted => break,
            StepEvent::Trapped(t) => panic!("trap: {t}"),
            _ => {}
        }
    }

    let dot = f32::from_bits(cpu.get_freg(7));
    let mean = f32::from_bits(cpu.get_freg(6));
    println!("dot(a, b) = {dot}   mean = {mean}");
    println!("fcmp dot > 9.0 taken: {}", cpu.get_reg(Reg::L(9)).0 == 1);
    println!(
        "f2fix dot -> {}",
        cpu.get_reg(Reg::L(11)).as_fixnum().unwrap()
    );
    println!("cycles: {}", cpu.stats.useful_cycles);
    assert_eq!(dot, 9.5);
    assert_eq!(mean, 2.375);
    Ok(())
}
