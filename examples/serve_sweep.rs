//! Simulation as a service: an april-serve daemon, a client, and a
//! warm-started parameter sweep — all in one process.
//!
//! The daemon thread binds a Unix socket and waits for work. The
//! client registers **one** warm image (the contended-sharing workload
//! booted and run 500 cycles in), then submits a small fault-seed
//! sweep in which every job *forks* that checkpoint instead of
//! re-executing the warmup. One job is submitted cold on purpose, with
//! the same seed as a warm job: the two must come back byte-identical
//! — the warm-start determinism contract (DESIGN.md §16) demonstrated
//! over the wire.
//!
//! Run with: `cargo run --release --example serve_sweep`
//!
//! For the standalone binary equivalent, see README "Running
//! april-serve": `april-serve daemon` + `april-serve sweep` speak the
//! same protocol across processes.

use april::serve::{serve, Client, DaemonConfig, FaultSpec, JobSpec, SimSpec, Workload};

const WARM_CYCLES: u64 = 500;

fn spec(seed: u64, warm: Option<u32>) -> JobSpec {
    JobSpec {
        sim: SimSpec {
            radix: 2,
            dim: 2,
            workload: Workload::Contended {
                outer: 60,
                inner: 0,
            },
            ..SimSpec::default()
        },
        fault: Some(FaultSpec {
            seed,
            drop: 0.01,
            dup: 0.01,
            delay: 0.04,
            max_delay: 40,
        }),
        warm,
        warm_cycles: WARM_CYCLES,
        max_cycles: 3_000_000,
        want_trace: false,
    }
}

fn main() {
    let socket = std::env::temp_dir().join(format!("april-serve-demo-{}.sock", std::process::id()));
    let cfg = DaemonConfig {
        socket: socket.clone(),
        threads: 2,
    };
    let daemon = std::thread::spawn(move || serve(&cfg));

    let mut client = loop {
        match Client::connect(&socket, "serve_sweep-example") {
            Ok(c) => break c,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    };
    println!(
        "connected; daemon pool has {} worker thread(s)",
        client.pool_threads()
    );

    let info = client
        .register_warm(1, &spec(0, None).sim, WARM_CYCLES)
        .expect("warm image");
    println!(
        "warm image ready: cut at cycle {}, {} snapshot bytes, built in {:.2} ms",
        info.cycle,
        info.snap_bytes,
        info.build_ns as f64 / 1e6
    );

    // Jobs 0..4: warm forks across four fault seeds. Job 4: a cold
    // twin of job 0 (same seed, warmup re-executed from boot).
    for (id, seed) in [(0u32, 10u64), (1, 11), (2, 12), (3, 13)] {
        client.submit(id, &spec(seed, Some(1))).expect("submit");
    }
    client.submit(4, &spec(10, None)).expect("submit");

    let results = client.collect(5).expect("collect");
    println!("\n job  warm    cycles  delays  setup ms");
    for r in &results {
        let s = r.summary.as_ref().expect("job ran");
        println!(
            " {:>3} {:>5} {:>9} {:>7} {:>9.3}",
            r.job_id,
            s.warm_used,
            s.cycles,
            s.delays,
            s.setup_ns as f64 / 1e6
        );
    }

    // The determinism contract, over the wire: warm fork == cold boot.
    assert_eq!(
        results[0].stats_json, results[4].stats_json,
        "warm job 0 and its cold twin diverged"
    );
    println!("\nwarm fork (job 0) is byte-identical to its cold twin (job 4)");

    let report = client.shutdown(false).expect("shutdown");
    daemon.join().unwrap().expect("daemon exits cleanly");
    println!(
        "daemon exited: {} jobs completed, {} canceled",
        report.completed, report.canceled
    );
}
