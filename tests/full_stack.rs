//! Cross-crate integration: Mul-T programs running on the full
//! ALEWIFE machine (coherent caches, directories, k-ary n-cube
//! network) under the run-time system — every crate in one test.

use april::machine::alewife::Alewife;
use april::machine::config::MachineConfig;
use april::machine::IdealMachine;
use april::mult::{compile, programs, CompileOptions};
use april::net::topology::Topology;
use april::runtime::{RtConfig, Runtime};

const REGION: u32 = 4 << 20;

fn rt_cfg() -> RtConfig {
    RtConfig {
        region_bytes: REGION,
        max_cycles: 400_000_000,
        ..RtConfig::default()
    }
}

fn alewife(
    nodes_dim: usize,
    radix: usize,
    src: &str,
    opts: &CompileOptions,
) -> april::runtime::RunResult {
    let prog = compile(src, opts).expect("compiles");
    let cfg = MachineConfig {
        topology: Topology::new(nodes_dim, radix),
        region_bytes: REGION,
        ..MachineConfig::default()
    };
    let m = Alewife::new(cfg, prog);
    let mut rt = Runtime::new(m, rt_cfg());
    rt.run()
        .unwrap_or_else(|e| panic!("alewife run failed: {e}"))
}

fn ideal(procs: usize, src: &str, opts: &CompileOptions) -> april::runtime::RunResult {
    let prog = compile(src, opts).expect("compiles");
    let m = IdealMachine::new(procs, procs * REGION as usize, prog);
    let mut rt = Runtime::new(m, rt_cfg());
    rt.run().unwrap_or_else(|e| panic!("ideal run failed: {e}"))
}

#[test]
fn sequential_program_on_full_machine() {
    let src = "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))
               (define (main) (fact 8))";
    let r = alewife(2, 2, src, &CompileOptions::april_seq());
    assert_eq!(r.value.as_fixnum(), Some(40_320));
    // Everything ran on node 0 with local memory: no remote misses,
    // but real cache fills stalled the processor.
    assert!(r.total.stall_cycles > 0);
}

#[test]
fn parallel_fib_on_full_machine_matches_ideal() {
    let src = programs::fib(9);
    let a = alewife(2, 2, &src, &CompileOptions::april());
    let i = ideal(4, &src, &CompileOptions::april());
    assert_eq!(a.value.as_fixnum(), Some(34));
    assert_eq!(a.value, i.value, "coherence must preserve results");
    // The full machine pays latency the ideal machine does not.
    assert!(a.cycles > i.cycles);
    // Work spread across nodes, so coherence traffic flowed.
    let busy = a.per_cpu.iter().filter(|s| s.instructions > 100).count();
    assert!(busy >= 2, "only {busy} nodes did work");
}

#[test]
fn remote_misses_cause_context_switches_on_full_machine() {
    // Futures placed remotely force cross-node data movement: the
    // spawned tasks read closures allocated on node 0.
    let src = "
        (define (work n acc)
          (if (= n 0) acc (work (- n 1) (+ acc n))))
        (define (main)
          (+ (touch (future-on 1 (work 40 0)))
             (touch (future-on 2 (work 40 0)))))";
    let r = alewife(2, 2, src, &CompileOptions::april());
    assert_eq!(r.value.as_fixnum(), Some(820 * 2));
    assert!(r.total.remote_misses > 0, "remote data must miss");
    assert!(r.total.context_switches > 0, "misses must switch contexts");
}

#[test]
fn lazy_futures_work_on_full_machine() {
    let src = programs::fib(8);
    let r = alewife(2, 2, &src, &CompileOptions::april_lazy());
    assert_eq!(r.value.as_fixnum(), Some(21));
    assert!(r.sched.lazy_created > 0);
}

#[test]
fn queens_on_larger_mesh() {
    let src = programs::queens(5);
    let r = alewife(2, 3, &src, &CompileOptions::april());
    assert_eq!(r.value.as_fixnum(), Some(10), "5-queens has 10 solutions");
}

#[test]
fn alewife_runs_are_deterministic() {
    let src = programs::fib(8);
    let a = alewife(2, 2, &src, &CompileOptions::april());
    let b = alewife(2, 2, &src, &CompileOptions::april());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total, b.total);
}

#[test]
fn speech_pipeline_on_full_machine() {
    let src = programs::speech(3, 4);
    let a = alewife(2, 2, &src, &CompileOptions::april());
    let i = ideal(1, &src, &CompileOptions::t_seq());
    assert_eq!(a.value, i.value);
}
