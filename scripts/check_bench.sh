#!/usr/bin/env sh
# Re-runs the benchmark smoke suite and reports percent deltas against
# the committed baselines (BENCH_hotpaths.json / BENCH_parallel.json /
# BENCH_snapshot.json / BENCH_recovery.json).
#
# The perf numbers are a *report*, not a gate: CI hardware varies far
# too much to fail a build on throughput. The script fails only when a
# baseline is missing, either side's JSON is malformed, or the expected
# result arrays are absent — any of which means the harness itself (or
# the committed baseline) broke, not the machine it ran on.
set -eu

cd "$(dirname "$0")/.."

fail() {
    echo "check_bench: $*" >&2
    exit 1
}

for f in BENCH_hotpaths.json BENCH_parallel.json BENCH_snapshot.json BENCH_recovery.json BENCH_scale.json BENCH_openloop.json BENCH_serve.json; do
    [ -f "$f" ] || fail "missing committed baseline $f"
    jq empty "$f" 2>/dev/null || fail "committed baseline $f is malformed JSON"
done
jq -e '.workloads | type == "array" and length > 0' BENCH_hotpaths.json >/dev/null ||
    fail "BENCH_hotpaths.json has no workloads array"
jq -e '[.workloads[] | has("event_nodecode_cycles_per_sec") and has("decode_speedup")] | all' \
    BENCH_hotpaths.json >/dev/null ||
    fail "BENCH_hotpaths.json workloads are missing the decode-engine column"
jq -e '.points | type == "array" and length > 0' BENCH_parallel.json >/dev/null ||
    fail "BENCH_parallel.json has no points array"
jq -e '.points | type == "array" and length > 0' BENCH_snapshot.json >/dev/null ||
    fail "BENCH_snapshot.json has no points array"
jq -e '.checkpoint_overhead | type == "array" and length > 0' BENCH_recovery.json >/dev/null ||
    fail "BENCH_recovery.json has no checkpoint_overhead array"
jq -e '.recovered_run.attempts >= 1' BENCH_recovery.json >/dev/null ||
    fail "BENCH_recovery.json recovered_run shows no rollback attempt"
jq -e '.nodes >= 1000' BENCH_scale.json >/dev/null ||
    fail "BENCH_scale.json machine is smaller than 1000 nodes"
jq -e '.points | type == "array" and length > 0' BENCH_scale.json >/dev/null ||
    fail "BENCH_scale.json has no points array"
jq -e '[.points[] | has("dir_bytes_per_node") and has("mem_resident_bytes_per_node")] | all' \
    BENCH_scale.json >/dev/null ||
    fail "BENCH_scale.json points are missing the bytes-per-node columns"
jq -e '[.points[] | select(.kind != "full_map") | .dir_ratio_vs_full_map < 1] | all' \
    BENCH_scale.json >/dev/null ||
    fail "BENCH_scale.json sparse kinds show no directory footprint win over full-map"
jq -e '.points | type == "array" and length >= 4' BENCH_openloop.json >/dev/null ||
    fail "BENCH_openloop.json has fewer than 4 offered-load points"
jq -e '.calibration.knee as $k
       | ([.points[] | select(.offered_load < $k)] | length >= 1)
         and ([.points[] | select(.offered_load >= $k)] | length >= 1)' \
    BENCH_openloop.json >/dev/null ||
    fail "BENCH_openloop.json sweep does not span the saturation knee"
jq -e '.calibration.knee as $k
       | [.points[] | select(.offered_load < $k) | .within_tolerance] | all' \
    BENCH_openloop.json >/dev/null ||
    fail "BENCH_openloop.json has a below-knee point outside the Section 8 model tolerance"
jq -e '[.points[] | .p999 > 0] | all' BENCH_openloop.json >/dev/null ||
    fail "BENCH_openloop.json has a point with no finite p999 latency"
jq -e '.sweeps | type == "array" and length > 0' BENCH_serve.json >/dev/null ||
    fail "BENCH_serve.json has no sweeps array"
jq -e '[.sweeps[] | .identical_outcomes] | all' BENCH_serve.json >/dev/null ||
    fail "BENCH_serve.json has a sweep where warm forks diverged from cold boots"
jq -e '[.sweeps[] | select(.points >= 100 and .setup_speedup >= 3)] | length >= 1' \
    BENCH_serve.json >/dev/null ||
    fail "BENCH_serve.json shows no >=100-point sweep with a >=3x warm-start setup speedup"
jq -e '.daemon.all_warm == true and .daemon.points >= 1' BENCH_serve.json >/dev/null ||
    fail "BENCH_serve.json daemon section did not run warm-started jobs"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== bench smoke (fresh run) =="
BENCH_SMOKE=1 BENCH_OUT="$tmp/hotpaths.json" \
    cargo bench -q -p april-bench --bench sim_hotpaths >/dev/null
BENCH_SMOKE=1 BENCH_PAR_OUT="$tmp/parallel.json" \
    cargo bench -q -p april-bench --bench sim_parallel >/dev/null
BENCH_SMOKE=1 BENCH_SNAP_OUT="$tmp/snapshot.json" \
    cargo bench -q -p april-bench --bench snapshot >/dev/null
BENCH_SMOKE=1 BENCH_REC_OUT="$tmp/recovery.json" \
    cargo bench -q -p april-bench --bench recovery >/dev/null
BENCH_SMOKE=1 BENCH_SCALE_OUT="$tmp/scale.json" \
    cargo bench -q -p april-bench --bench scale >/dev/null
BENCH_SMOKE=1 BENCH_OPENLOOP_OUT="$tmp/openloop.json" \
    cargo bench -q -p april-bench --bench openloop >/dev/null
BENCH_SMOKE=1 BENCH_SERVE_OUT="$tmp/serve.json" \
    cargo bench -q -p april-bench --bench serve >/dev/null

for f in "$tmp/hotpaths.json" "$tmp/parallel.json" "$tmp/snapshot.json" "$tmp/recovery.json" "$tmp/scale.json" "$tmp/openloop.json" "$tmp/serve.json"; do
    [ -f "$f" ] || fail "bench run produced no $(basename "$f")"
    jq empty "$f" 2>/dev/null || fail "bench output $(basename "$f") is malformed JSON"
done

# Every committed BENCH_*.json baseline must have a fresh-run
# counterpart above: a baseline nothing regenerates silently rots and
# its gates stop meaning anything.
for f in BENCH_*.json; do
    name="${f#BENCH_}"
    [ -f "$tmp/$name" ] ||
        fail "committed baseline $f has no fresh-run counterpart in the smoke suite"
done

# Percent change of $1 relative to $2.
pct() {
    awk -v new="$1" -v old="$2" 'BEGIN {
        if (old == 0) { print "n/a"; exit }
        printf "%+.1f%%", (new - old) * 100.0 / old
    }'
}

jq -e '[.workloads[] | has("event_nodecode_cycles_per_sec") and has("decode_speedup")] | all' \
    "$tmp/hotpaths.json" >/dev/null ||
    fail "fresh hotpaths run is missing the decode-engine column"

echo
echo "hotpaths: event-driven cycles/sec, fresh smoke vs committed baseline"
jq -r '.workloads[] | "\(.name) \(.event_cycles_per_sec) \(.decode_speedup)"' "$tmp/hotpaths.json" |
    while read -r name fresh dec; do
        base=$(jq -r --arg n "$name" \
            '.workloads[] | select(.name == $n) | .event_cycles_per_sec // empty' \
            BENCH_hotpaths.json)
        if [ -z "$base" ]; then
            echo "  $name: no committed baseline (new workload?)"
        else
            echo "  $name: $fresh vs $base ($(pct "$fresh" "$base")), decode engine ${dec}x"
        fi
    done

echo
echo "parallel: cycles/sec per (nodes, workers), fresh smoke vs committed baseline"
jq -r '.points[] | "\(.nodes) \(.workers) \(.cycles_per_sec)"' "$tmp/parallel.json" |
    while read -r nodes workers fresh; do
        base=$(jq -r --argjson n "$nodes" --argjson w "$workers" \
            '.points[] | select(.nodes == $n and .workers == $w) | .cycles_per_sec // empty' \
            BENCH_parallel.json)
        if [ -z "$base" ]; then
            echo "  ${nodes}n x${workers}w: no committed baseline"
        else
            echo "  ${nodes}n x${workers}w: $fresh vs $base ($(pct "$fresh" "$base"))"
        fi
    done

echo
echo "snapshot: checkpoint cost per machine size, fresh smoke vs committed baseline"
jq -r '.points[] | "\(.nodes) \(.checkpoint_us)"' "$tmp/snapshot.json" |
    while read -r nodes fresh; do
        base=$(jq -r --argjson n "$nodes" \
            '.points[] | select(.nodes == $n) | .checkpoint_us // empty' \
            BENCH_snapshot.json)
        if [ -z "$base" ]; then
            echo "  ${nodes}n: no committed baseline"
        else
            echo "  ${nodes}n: ${fresh}us vs ${base}us ($(pct "$fresh" "$base"))"
        fi
    done

echo
echo "recovery: checkpoint overhead per interval, fresh smoke vs committed baseline"
jq -r '.checkpoint_overhead[] | "\(.interval) \(.overhead_pct)"' "$tmp/recovery.json" |
    while read -r interval fresh; do
        base=$(jq -r --argjson iv "$interval" \
            '.checkpoint_overhead[] | select(.interval == $iv) | .overhead_pct // empty' \
            BENCH_recovery.json)
        if [ -z "$base" ]; then
            echo "  interval $interval: no committed baseline"
        else
            echo "  interval $interval: +${fresh}% vs +${base}% of fault-free baseline"
        fi
    done
rec_fresh=$(jq -r '.recovered_run.wall_s' "$tmp/recovery.json")
rec_base=$(jq -r '.recovered_run.wall_s' BENCH_recovery.json)
echo "  recovered run: ${rec_fresh}s vs ${rec_base}s ($(pct "$rec_fresh" "$rec_base"))"

jq -e '[.points[] | has("dir_bytes_per_node") and has("mem_resident_bytes_per_node")] | all' \
    "$tmp/scale.json" >/dev/null ||
    fail "fresh scale run is missing the bytes-per-node columns"

echo
echo "scale: 1089-node cycles/sec per directory kind, fresh smoke vs committed baseline"
jq -r '.points[] | "\(.kind) \(.cycles_per_sec) \(.dir_bytes_per_node)"' "$tmp/scale.json" |
    while read -r kind fresh dirb; do
        base=$(jq -r --arg k "$kind" \
            '.points[] | select(.kind == $k) | .cycles_per_sec // empty' \
            BENCH_scale.json)
        if [ -z "$base" ]; then
            echo "  $kind: no committed baseline (new directory kind?)"
        else
            echo "  $kind: $fresh vs $base ($(pct "$fresh" "$base")), dir ${dirb} B/node"
        fi
    done

jq -e '.calibration.knee as $k
       | [.points[] | select(.offered_load < $k) | .within_tolerance] | all' \
    "$tmp/openloop.json" >/dev/null ||
    fail "fresh openloop run has a below-knee point outside the Section 8 model tolerance"

echo
echo "openloop: p999 latency and measured utilization per gap, fresh smoke vs committed baseline"
jq -r '.points[] | "\(.mean_gap) \(.p999) \(.measured_util)"' "$tmp/openloop.json" |
    while read -r gap p999 util; do
        base=$(jq -r --argjson g "$gap" \
            '.points[] | select(.mean_gap == $g) | .p999 // empty' \
            BENCH_openloop.json)
        if [ -z "$base" ]; then
            echo "  gap $gap: no committed baseline (different sweep grid)"
        else
            echo "  gap $gap: p999 ${p999} vs ${base} cycles ($(pct "$p999" "$base")), util ${util}"
        fi
    done
echo "  (committed knee: $(jq -r '.calibration.knee' BENCH_openloop.json);" \
    "fresh knee: $(jq -r '.calibration.knee' "$tmp/openloop.json"))"

jq -e '[.sweeps[] | .identical_outcomes] | all' "$tmp/serve.json" >/dev/null ||
    fail "fresh serve run has a sweep where warm forks diverged from cold boots"

echo
echo "serve: warm-start setup speedup per sweep size, fresh smoke vs committed baseline"
jq -r '.sweeps[] | "\(.points) \(.setup_speedup) \(.warm_setup_ms_median)"' "$tmp/serve.json" |
    while read -r points fresh warmms; do
        base=$(jq -r --argjson p "$points" \
            '.sweeps[] | select(.points == $p) | .setup_speedup // empty' \
            BENCH_serve.json)
        if [ -z "$base" ]; then
            echo "  $points points: no committed baseline (different sweep grid)"
        else
            echo "  $points points: ${fresh}x vs ${base}x ($(pct "$fresh" "$base")), warm setup ${warmms} ms"
        fi
    done

echo
echo "check_bench: report complete (deltas are informational; only JSON health gates)."
