#!/usr/bin/env sh
# Full local CI: build, test, docs, examples, formatting, and lints for
# the whole workspace. Everything runs offline — the workspace has no
# external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== three-way scheduler equivalence (3 fault seeds) =="
# The lockstep/event/parallel bit-exactness suite is part of the
# workspace tests above; run it again in release so the fault-soak
# seeds and multi-worker runs execute at full depth quickly.
cargo test -q --release -p april-machine --test lockstep_vs_skip

echo "== scheduler equivalence, decode engine off =="
# The same bit-exactness suite with APRIL_DECODE=0 (the legacy
# per-instruction interpreter on every visited cycle), so the fallback
# path the decode engine cuts over to stays honest.
APRIL_DECODE=0 cargo test -q --release -p april-machine --test lockstep_vs_skip

echo "== recovery soak (bounded) =="
# Link-kill -> quarantine -> rollback -> re-execute across several
# killed channels and seeds, plus the recovered-vs-fresh bit-identity
# checks, in release so the re-executions run at full depth quickly.
cargo test -q --release -p april-machine --test recovery

echo "== docs (markdown links + rustdoc, warnings are errors) =="
sh scripts/check_docs.sh

echo "== doc tests =="
cargo test -q --doc --workspace

echo "== examples smoke (release) =="
# Build and run every example; any non-zero exit fails CI.
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "-- example: $name"
    cargo run -q --release --example "$name"
done

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf

echo "== bench delta report =="
# Re-runs the shrunken bench smoke and prints percent deltas against
# the committed BENCH_*.json baselines. Perf deltas are informational;
# the stage gates only on missing or malformed JSON (harness breakage).
sh scripts/check_bench.sh

echo "CI green."
