#!/usr/bin/env sh
# Full local CI: build, test, formatting, and lints for the whole
# workspace. Everything runs offline — the workspace has no external
# dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
