#!/usr/bin/env sh
# Full local CI: build, test, formatting, and lints for the whole
# workspace. Everything runs offline — the workspace has no external
# dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== three-way scheduler equivalence (3 fault seeds) =="
# The lockstep/event/parallel bit-exactness suite is part of the
# workspace tests above; run it again in release so the fault-soak
# seeds and multi-worker runs execute at full depth quickly.
cargo test -q --release -p april-machine --test lockstep_vs_skip

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf

echo "== bench smoke (non-gating) =="
# Shrunken whole-machine workloads: proves the harness runs and the
# lockstep/event-driven cycle counts agree, but perf numbers from CI
# hardware are not trusted, so a failure here does not gate.
BENCH_SMOKE=1 sh scripts/bench.sh || echo "bench smoke failed (non-gating)"

echo "CI green."
