#!/usr/bin/env sh
# Runs the benchmark harnesses and leaves their JSON reports at the
# repository root:
#   BENCH_hotpaths.json — simulated cycles per wall-second per workload,
#     lockstep reference vs the event-driven scheduler, with an engine
#     column: event-driven is run with the pre-decoded bytecode engine
#     on (the default) and forced off (the legacy per-instruction
#     interpreter), and the per-workload decode_speedup is their ratio.
#   BENCH_parallel.json — parallel-scheduler scaling: cycles per
#     wall-second at 1/2/4/8 workers on 16- and 64-node machines (every
#     point asserted bit-identical to the 1-worker run). Wall-clock
#     speedup is bounded by min(workers, host cores); the report records
#     host_cpus so core-limited numbers read as what they are.
#   BENCH_snapshot.json — mid-run checkpoint/restore cost: encoded
#     snapshot size and best-of-N capture/restore wall time on 16- and
#     64-node machines, every restore verified as a re-encode fixed
#     point.
#   BENCH_recovery.json — fault-tolerance cost: periodic-checkpoint
#     overhead vs the unsupervised baseline per checkpoint interval,
#     and the wall time of a complete link-kill -> quarantine ->
#     rollback -> re-execute recovery vs its fault-free run.
#   BENCH_scale.json — the 1000+-node regime: a 1089-node (33x33 mesh)
#     read fan-in run under full-map vs limited-pointer vs
#     coarse-vector directories, recording construction wall time,
#     simulated cycles/sec, and directory/memory resident bytes per
#     node (the footprint the sparse representations exist for).
#   BENCH_openloop.json — open-loop traffic (DESIGN.md §15): offered
#     load swept across the saturation knee, with p50/p99/p999 request
#     latency, throughput, drops, and measured-vs-Section-8-model
#     utilization per point (the model calibrated once from the
#     most-saturated point's cycle ledger).
#   BENCH_serve.json — snapshot warm starts (DESIGN.md §16): median
#     job-setup time for warm-forked vs cold-booted sweeps (every
#     warm/cold pair asserted byte-identical), plus an end-to-end run
#     of the largest sweep through the april-serve daemon.
#
# BENCH_SMOKE=1 shrinks the workloads for a fast CI smoke run.
set -eu

cd "$(dirname "$0")/.."

BENCH_OUT="$(pwd)/BENCH_hotpaths.json" cargo bench -p april-bench --bench sim_hotpaths
BENCH_PAR_OUT="$(pwd)/BENCH_parallel.json" cargo bench -p april-bench --bench sim_parallel
BENCH_SNAP_OUT="$(pwd)/BENCH_snapshot.json" cargo bench -p april-bench --bench snapshot
BENCH_REC_OUT="$(pwd)/BENCH_recovery.json" cargo bench -p april-bench --bench recovery
BENCH_SCALE_OUT="$(pwd)/BENCH_scale.json" cargo bench -p april-bench --bench scale
BENCH_OPENLOOP_OUT="$(pwd)/BENCH_openloop.json" cargo bench -p april-bench --bench openloop
BENCH_SERVE_OUT="$(pwd)/BENCH_serve.json" cargo bench -p april-bench --bench serve
