#!/usr/bin/env sh
# Runs the sim_hotpaths benchmark harness and leaves BENCH_hotpaths.json
# at the repository root: simulated cycles per wall-second for each
# whole-machine workload, under both the lockstep reference path and the
# event-driven scheduler, plus the speedup between them.
#
# BENCH_SMOKE=1 shrinks the workloads for a fast CI smoke run.
set -eu

cd "$(dirname "$0")/.."

BENCH_OUT="$(pwd)/BENCH_hotpaths.json" cargo bench -p april-bench --bench sim_hotpaths
