#!/usr/bin/env sh
# Documentation health: every local link and anchor in the repo's
# markdown must resolve, and rustdoc must build clean.
#
#   1. Local markdown links [text](path) must point at files that
#      exist (relative to the file containing the link).
#   2. In-repo section anchors [text](FILE.md#anchor) must match a
#      heading in the target file (GitHub-style slugs).
#   3. `RUSTDOCFLAGS="-D warnings" cargo doc` must succeed, so broken
#      intra-doc links and missing docs fail here too.
#
# External http(s) links are intentionally not fetched — CI is offline.
set -eu

cd "$(dirname "$0")/.."

fail=0
err() {
    echo "check_docs: $*" >&2
    fail=1
}

# GitHub-style slug: lowercase, drop everything but alphanumerics,
# spaces and hyphens, then spaces -> hyphens.
slug() {
    printf '%s\n' "$1" | tr '[:upper:]' '[:lower:]' |
        sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

docs="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md PAPER.md CHANGES.md PROTOCOL.md"

echo "== markdown links =="
for doc in $docs; do
    [ -f "$doc" ] || continue
    dir="$(dirname "$doc")"
    # Pull every [text](target) out of the file, one target per line.
    grep -o '\[[^]]*\]([^)]*)' "$doc" 2>/dev/null |
        sed -e 's/^.*](//' -e 's/)$//' |
        while read -r target; do
            case "$target" in
            http://* | https://* | mailto:*) continue ;;
            esac
            path="${target%%#*}"
            anchor=""
            case "$target" in
            *#*) anchor="${target#*#}" ;;
            esac
            if [ -n "$path" ]; then
                [ -e "$dir/$path" ] || echo "MISSING $doc -> $target"
                file="$dir/$path"
            else
                file="$doc"
            fi
            if [ -n "$anchor" ] && [ -f "$file" ]; then
                found=0
                while IFS= read -r h; do
                    if [ "$(slug "$h")" = "$anchor" ]; then
                        found=1
                        break
                    fi
                done <<EOF
$(sed -n 's/^#\{1,6\} //p' "$file")
EOF
                [ "$found" = 1 ] || echo "BAD ANCHOR $doc -> $target"
            fi
        done
done >"${TMPDIR:-/tmp}/check_docs.$$" || true
if [ -s "${TMPDIR:-/tmp}/check_docs.$$" ]; then
    cat "${TMPDIR:-/tmp}/check_docs.$$" >&2
    rm -f "${TMPDIR:-/tmp}/check_docs.$$"
    err "broken markdown links"
else
    rm -f "${TMPDIR:-/tmp}/check_docs.$$"
    echo "all local links and anchors resolve"
fi

echo "== rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace ||
    err "cargo doc failed"

[ "$fail" = 0 ] || exit 1
echo "check_docs: clean."
