//! Randomized soak of the directory protocol: random request
//! streams with adversarially delayed acknowledgments must preserve
//! the coherence invariants and always quiesce. Driven by the
//! vendored deterministic PRNG (seeded loops), so failures reproduce
//! exactly.

use april_mem::directory::{DirState, Directory};
use april_mem::msg::CohMsg;
use april_util::Rng;
use std::collections::VecDeque;

const NODES: usize = 4;
const BLOCKS: [u32; 3] = [0x00, 0x40, 0x80];

/// One scripted step.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Node issues a read or write request for a block.
    Request {
        node: usize,
        block_idx: usize,
        write: bool,
    },
    /// Deliver the k-th pending protocol message (mod queue length).
    Deliver(usize),
}

fn arb_op(r: &mut Rng) -> Op {
    if r.gen_bool(0.5) {
        Op::Request {
            node: r.gen_index(NODES),
            block_idx: r.gen_index(BLOCKS.len()),
            write: r.gen_bool(0.5),
        }
    } else {
        Op::Deliver(r.gen_index(64))
    }
}

/// A tiny closed-loop harness: caches modeled as grant bookkeeping;
/// every home-initiated message is acknowledged when "delivered".
struct Harness {
    dir: Directory,
    /// In-flight messages: (destination, message).
    wire: VecDeque<(usize, CohMsg)>,
    /// Which node currently believes it holds each block exclusively.
    owner: [Option<usize>; BLOCKS.len()],
    /// Nodes holding a shared copy.
    sharers: [Vec<usize>; BLOCKS.len()],
    /// Outstanding transactions per (node, block): (read, write)
    /// request bits. Real controllers coalesce repeat requests in
    /// their transaction tables, so the harness only issues request
    /// streams a controller could produce.
    outstanding: [[(bool, bool); BLOCKS.len()]; NODES],
    /// Next transaction id to stamp on an injected request.
    next_xid: u32,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            dir: Directory::new(),
            wire: VecDeque::new(),
            owner: [None; BLOCKS.len()],
            sharers: Default::default(),
            outstanding: [[(false, false); BLOCKS.len()]; NODES],
            next_xid: 1,
        }
    }

    fn block_idx(block: u32) -> usize {
        BLOCKS
            .iter()
            .position(|&b| b == block)
            .expect("known block")
    }

    fn send_all(&mut self, msgs: Vec<(usize, CohMsg)>) {
        self.wire.extend(msgs);
    }

    fn request(&mut self, node: usize, bi: usize, write: bool) {
        let (rd, wr) = self.outstanding[node][bi];
        // Coalesce like the controller's transaction table: only a
        // write upgrade may follow an outstanding read.
        if wr || (rd && !write) {
            return;
        }
        // A node holding a sufficient copy hits in its cache and never
        // issues a request (M lines are never silently dropped, so the
        // "owner re-reads" stream is unreachable in the machine).
        if self.owner[bi] == Some(node) {
            return;
        }
        if !write && self.sharers[bi].contains(&node) {
            return;
        }
        if write {
            self.outstanding[node][bi].1 = true;
        } else {
            self.outstanding[node][bi].0 = true;
        }
        let xid = self.next_xid;
        self.next_xid += 1;
        let out = self.dir.handle_request(node, BLOCKS[bi], write, xid);
        self.send_all(out);
    }

    /// Delivers one in-flight message, generating the node's response
    /// exactly as a cache controller would. Messages to the same
    /// destination about the same block stay FIFO (the machine's
    /// network delivers same-path packets in order), so only the first
    /// message per (destination, block) pair is eligible.
    fn deliver(&mut self, k: usize) {
        if self.wire.is_empty() {
            return;
        }
        let mut seen = std::collections::HashSet::new();
        let eligible: Vec<usize> = self
            .wire
            .iter()
            .enumerate()
            .filter(|(_, (dst, msg))| seen.insert((*dst, msg.block())))
            .map(|(i, _)| i)
            .collect();
        let k = eligible[k % eligible.len()];
        let (dst, msg) = self.wire.remove(k).expect("index in range");
        match msg {
            CohMsg::RdReply { block, .. } => {
                let bi = Self::block_idx(block);
                self.outstanding[dst][bi].0 = false;
                // The owner itself may be re-granted a shared copy
                // (owner re-read after a flush race downgrades it).
                if self.owner[bi] == Some(dst) {
                    self.owner[bi] = None;
                }
                assert_eq!(
                    self.owner[bi], None,
                    "read grant while a writer holds the block"
                );
                if !self.sharers[bi].contains(&dst) {
                    self.sharers[bi].push(dst);
                }
            }
            CohMsg::WrReply { block, .. } => {
                let bi = Self::block_idx(block);
                self.outstanding[dst][bi] = (false, false);
                // A re-grant to the current owner is legal (lost-copy
                // recovery); a grant to anyone else requires the block
                // to be free.
                assert!(
                    self.owner[bi].is_none() || self.owner[bi] == Some(dst),
                    "two writers granted"
                );
                assert!(
                    self.sharers[bi].iter().all(|&s| s == dst),
                    "write granted while other sharers hold copies: {:?}",
                    self.sharers[bi]
                );
                self.sharers[bi].clear();
                self.owner[bi] = Some(dst);
            }
            CohMsg::Inval { block, xid } => {
                let bi = Self::block_idx(block);
                self.sharers[bi].retain(|&s| s != dst);
                let out = self
                    .dir
                    .handle_ack(dst, CohMsg::InvAck { block, xid })
                    .unwrap();
                self.send_all(out);
            }
            CohMsg::DownReq { block, xid } => {
                let bi = Self::block_idx(block);
                if self.owner[bi] == Some(dst) {
                    self.owner[bi] = None;
                    self.sharers[bi].push(dst);
                }
                let out = self
                    .dir
                    .handle_ack(dst, CohMsg::DownAck { block, xid })
                    .unwrap();
                self.send_all(out);
            }
            CohMsg::WbInvalReq { block, xid } => {
                let bi = Self::block_idx(block);
                if self.owner[bi] == Some(dst) {
                    self.owner[bi] = None;
                }
                let out = self
                    .dir
                    .handle_ack(dst, CohMsg::WbInvalAck { block, xid })
                    .unwrap();
                self.send_all(out);
            }
            CohMsg::InvAck { .. }
            | CohMsg::DownAck { .. }
            | CohMsg::WbInvalAck { .. }
            | CohMsg::FlushData { .. } => {
                let out = self.dir.handle_ack(dst, msg).unwrap();
                self.send_all(out);
            }
            CohMsg::Nack { .. }
            | CohMsg::FlushAck { .. }
            | CohMsg::Ipi
            | CohMsg::BlockXfer { .. } => {}
            CohMsg::RdReq { .. } | CohMsg::WrReq { .. } => {
                unreachable!("requests are injected directly, never on the wire")
            }
        }
    }

    /// Drains every in-flight message (in order).
    fn quiesce(&mut self) {
        let mut fuel = 10_000;
        while !self.wire.is_empty() {
            self.deliver(0);
            fuel -= 1;
            assert!(fuel > 0, "protocol failed to quiesce");
        }
    }

    /// Invariants that must hold at quiescence.
    fn check_quiescent(&self) {
        for (bi, &block) in BLOCKS.iter().enumerate() {
            assert!(
                !self.dir.is_busy(block),
                "block {block:#x} still busy after drain"
            );
            match self.dir.state(block) {
                DirState::Exclusive(o) => {
                    assert_eq!(self.owner[bi], Some(o), "directory/owner mismatch");
                    assert!(self.sharers[bi].is_empty());
                }
                DirState::Shared(s) => {
                    assert_eq!(self.owner[bi], None);
                    // The directory's sharer list is authoritative;
                    // every holder we tracked must appear in it.
                    for holder in &self.sharers[bi] {
                        assert!(
                            s.contains(*holder),
                            "cache holds a copy the directory forgot: node {holder}"
                        );
                    }
                }
                DirState::Uncached => {
                    assert_eq!(self.owner[bi], None);
                    assert!(
                        self.sharers[bi].is_empty(),
                        "copies outlive an Uncached block"
                    );
                }
            }
        }
    }
}

/// Random request/delivery interleavings never grant conflicting
/// copies and always quiesce into a consistent directory state.
#[test]
fn directory_soak() {
    let mut r = Rng::seed_from(0x50a4);
    for _case in 0..256 {
        let mut h = Harness::new();
        let n_ops = 1 + r.gen_index(119);
        for _ in 0..n_ops {
            match arb_op(&mut r) {
                Op::Request {
                    node,
                    block_idx,
                    write,
                } => h.request(node, block_idx, write),
                Op::Deliver(k) => h.deliver(k),
            }
        }
        h.quiesce();
        h.check_quiescent();
    }
}

/// Write storms on a single block serialize: after any storm, the
/// block has exactly the last granted writer.
#[test]
fn write_storm_serializes() {
    let mut r = Rng::seed_from(0x50a5);
    for _case in 0..256 {
        let writers: Vec<usize> = (0..1 + r.gen_index(23))
            .map(|_| r.gen_index(NODES))
            .collect();
        let mut h = Harness::new();
        for &w in &writers {
            h.request(w, 0, true);
        }
        h.quiesce();
        h.check_quiescent();
        match h.dir.state(BLOCKS[0]) {
            DirState::Exclusive(o) => assert!(writers.contains(&o)),
            other => panic!("expected an owner, got {other:?}"),
        }
    }
}
