//! Bump allocation of simulated memory regions.
//!
//! The run-time system carves the global address space into per-node
//! heaps, stacks and queue areas. A [`BumpAllocator`] hands out aligned
//! regions; Mul-T never frees (the paper's system had a garbage
//! collector out of scope here, so heaps are sized generously and the
//! benchmarks are sized to fit).

use std::fmt;

/// Allocation failure: the region is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u32,
    /// Bytes remaining in the region.
    pub remaining: u32,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated heap exhausted: requested {} bytes, {} left",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A bump allocator over a byte-address range of simulated memory.
///
/// # Examples
///
/// ```
/// use april_mem::alloc::BumpAllocator;
///
/// let mut heap = BumpAllocator::new(0x1000, 0x2000);
/// let a = heap.alloc(12, 8)?;
/// assert_eq!(a % 8, 0);
/// # Ok::<(), april_mem::alloc::OutOfMemory>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BumpAllocator {
    pub(crate) base: u32,
    pub(crate) next: u32,
    pub(crate) limit: u32,
}

impl BumpAllocator {
    /// Creates an allocator over `[base, limit)`.
    ///
    /// # Panics
    ///
    /// Panics if `base > limit` or `base` is not word-aligned.
    pub fn new(base: u32, limit: u32) -> BumpAllocator {
        assert!(base <= limit, "inverted region");
        assert_eq!(base & 3, 0, "region must be word-aligned");
        BumpAllocator {
            base,
            next: base,
            limit,
        }
    }

    /// Allocates `bytes` with the given power-of-two `align`ment,
    /// returning the byte address.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the region cannot satisfy the
    /// request.
    pub fn alloc(&mut self, bytes: u32, align: u32) -> Result<u32, OutOfMemory> {
        debug_assert!(align.is_power_of_two());
        let start = (self.next + align - 1) & !(align - 1);
        let end = start.checked_add(bytes).ok_or(OutOfMemory {
            requested: bytes,
            remaining: self.limit - self.next,
        })?;
        if end > self.limit {
            return Err(OutOfMemory {
                requested: bytes,
                remaining: self.limit - self.next,
            });
        }
        self.next = end;
        Ok(start)
    }

    /// Bytes already allocated.
    pub fn used(&self) -> u32 {
        self.next - self.base
    }

    /// Bytes still available (ignoring alignment padding).
    pub fn remaining(&self) -> u32 {
        self.limit - self.next
    }

    /// Start of the region.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Resets the allocator, releasing everything.
    pub fn reset(&mut self) {
        self.next = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut a = BumpAllocator::new(0x100, 0x200);
        let p = a.alloc(4, 4).unwrap();
        assert_eq!(p, 0x100);
        let q = a.alloc(8, 8).unwrap();
        assert_eq!(q % 8, 0);
        assert!(q >= p + 4);
    }

    #[test]
    fn alloc_exhausts() {
        let mut a = BumpAllocator::new(0, 16);
        assert!(a.alloc(16, 4).is_ok());
        let e = a.alloc(4, 4).unwrap_err();
        assert_eq!(e.remaining, 0);
    }

    #[test]
    fn used_and_remaining_track() {
        let mut a = BumpAllocator::new(0, 100);
        a.alloc(12, 4).unwrap();
        assert_eq!(a.used(), 12);
        assert_eq!(a.remaining(), 88);
        a.reset();
        assert_eq!(a.used(), 0);
    }
}
