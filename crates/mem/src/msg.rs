//! Coherence protocol messages.
//!
//! "The controller synthesizes a global shared memory space via
//! messages to other nodes, and satisfies requests from other nodes
//! directed to its local memory. It maintains strong cache coherence
//! for memory accesses" (paper, Section 2.1). The directory protocol is
//! the full-map invalidation scheme of Chaiken et al. (the paper's
//! reference \[5\]).
//!
//! Messages carry no data payload in this model; data is functionally
//! backed by the machine's global memory, so only the protocol events
//! and their sizes travel on the network. Sizes (in flits) follow the
//! Table 4 convention of an average packet size of 4: headers cost 2
//! flits and a data-bearing message adds one flit per block word.
//!
//! Every protocol message carries a transaction sequence number `xid`
//! so the endpoints stay correct on an unreliable network: requester →
//! home requests carry the requester's transaction id (echoed in the
//! reply, so duplicated or stale replies are idempotently ignored), and
//! home → cache invalidation/write-back demands carry the directory's
//! busy *epoch* (echoed in the acknowledgment, so a delayed duplicate
//! ack from an earlier epoch can never satisfy a later transaction).

// Protocol hot path: failures must surface as typed errors, not tear
// down the simulator on the first injected fault.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
// Protocol payloads cross worker-thread boundaries in the parallel
// machine; keep the bound pinned where the type lives.
const _: () = april_util::assert_send::<CohMsg>();

/// One protocol (or out-of-band) message between cache controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CohMsg {
    /// Requester → home: read (shared) copy of a block.
    RdReq {
        /// Block address.
        block: u32,
        /// Requester transaction id, echoed in the reply.
        xid: u32,
    },
    /// Requester → home: exclusive (writable) copy of a block.
    WrReq {
        /// Block address.
        block: u32,
        /// Requester transaction id, echoed in the reply.
        xid: u32,
    },
    /// Home → requester: grant of a shared copy (carries data).
    RdReply {
        /// Block address.
        block: u32,
        /// The transaction id this reply answers.
        xid: u32,
    },
    /// Home → requester: grant of an exclusive copy (carries data).
    WrReply {
        /// Block address.
        block: u32,
        /// The transaction id this reply answers.
        xid: u32,
    },
    /// Home → requester: the home's waiter queue for the block is full;
    /// retry the request later (with backoff).
    Nack {
        /// Block address.
        block: u32,
        /// The transaction id being refused.
        xid: u32,
    },
    /// Home → sharer: invalidate your shared copy.
    Inval {
        /// Block address.
        block: u32,
        /// Directory busy epoch, echoed in the ack.
        xid: u32,
    },
    /// Sharer → home: invalidation acknowledged.
    InvAck {
        /// Block address.
        block: u32,
        /// The busy epoch this ack answers.
        xid: u32,
    },
    /// Home → owner: downgrade Modified to Shared, write data back.
    DownReq {
        /// Block address.
        block: u32,
        /// Directory busy epoch, echoed in the ack.
        xid: u32,
    },
    /// Owner → home: downgrade done (carries data).
    DownAck {
        /// Block address.
        block: u32,
        /// The busy epoch this ack answers.
        xid: u32,
    },
    /// Home → owner: surrender your exclusive copy entirely.
    WbInvalReq {
        /// Block address.
        block: u32,
        /// Directory busy epoch, echoed in the ack.
        xid: u32,
    },
    /// Owner → home: exclusive copy surrendered (carries data).
    WbInvalAck {
        /// Block address.
        block: u32,
        /// The busy epoch this ack answers.
        xid: u32,
    },
    /// Node → home: voluntary write-back of a dirty line (eviction or
    /// explicit FLUSH; carries data).
    FlushData {
        /// Block address.
        block: u32,
        /// True if this flush was initiated by a FLUSH instruction and
        /// therefore participates in the fence counter.
        fenced: bool,
        /// Flush id for fenced flushes (echoed in the ack so duplicate
        /// acks cannot decrement the fence twice); 0 for evictions.
        xid: u32,
    },
    /// Home → node: write-back acknowledged; decrements the fence
    /// counter if the flush was fenced.
    FlushAck {
        /// Block address.
        block: u32,
        /// Fenced-flush acknowledgment.
        fenced: bool,
        /// The flush id this ack answers.
        xid: u32,
    },
    /// Preemptive interprocessor interrupt (Section 3.4).
    Ipi,
    /// Block transfer of `words` words into the receiver's memory
    /// (Section 3.4; timing-only in this model).
    BlockXfer {
        /// Destination block address.
        block: u32,
        /// Number of words transferred.
        words: u32,
    },
}

impl CohMsg {
    /// Message size in flits: a 2-flit header plus one flit per data
    /// word for data-bearing messages (`block_words` is the machine's
    /// block size in words).
    pub fn size_flits(self, block_words: u32) -> u32 {
        match self {
            CohMsg::RdReq { .. }
            | CohMsg::WrReq { .. }
            | CohMsg::Nack { .. }
            | CohMsg::Inval { .. }
            | CohMsg::InvAck { .. }
            | CohMsg::DownReq { .. }
            | CohMsg::WbInvalReq { .. }
            | CohMsg::FlushAck { .. }
            | CohMsg::Ipi => 2,
            CohMsg::RdReply { .. }
            | CohMsg::WrReply { .. }
            | CohMsg::DownAck { .. }
            | CohMsg::WbInvalAck { .. }
            | CohMsg::FlushData { .. } => 2 + block_words,
            CohMsg::BlockXfer { words, .. } => 2 + words,
        }
    }

    /// The block this message concerns, if any.
    pub fn block(self) -> Option<u32> {
        match self {
            CohMsg::RdReq { block, .. }
            | CohMsg::WrReq { block, .. }
            | CohMsg::RdReply { block, .. }
            | CohMsg::WrReply { block, .. }
            | CohMsg::Nack { block, .. }
            | CohMsg::Inval { block, .. }
            | CohMsg::InvAck { block, .. }
            | CohMsg::DownReq { block, .. }
            | CohMsg::DownAck { block, .. }
            | CohMsg::WbInvalReq { block, .. }
            | CohMsg::WbInvalAck { block, .. }
            | CohMsg::FlushData { block, .. }
            | CohMsg::FlushAck { block, .. }
            | CohMsg::BlockXfer { block, .. } => Some(block),
            CohMsg::Ipi => None,
        }
    }

    /// The transaction id / busy epoch the message carries, if any.
    pub fn xid(self) -> Option<u32> {
        match self {
            CohMsg::RdReq { xid, .. }
            | CohMsg::WrReq { xid, .. }
            | CohMsg::RdReply { xid, .. }
            | CohMsg::WrReply { xid, .. }
            | CohMsg::Nack { xid, .. }
            | CohMsg::Inval { xid, .. }
            | CohMsg::InvAck { xid, .. }
            | CohMsg::DownReq { xid, .. }
            | CohMsg::DownAck { xid, .. }
            | CohMsg::WbInvalReq { xid, .. }
            | CohMsg::WbInvalAck { xid, .. }
            | CohMsg::FlushData { xid, .. }
            | CohMsg::FlushAck { xid, .. } => Some(xid),
            CohMsg::Ipi | CohMsg::BlockXfer { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_are_small() {
        assert_eq!(CohMsg::RdReq { block: 0, xid: 0 }.size_flits(4), 2);
        assert_eq!(CohMsg::InvAck { block: 0, xid: 0 }.size_flits(4), 2);
        assert_eq!(CohMsg::Nack { block: 0, xid: 0 }.size_flits(4), 2);
    }

    #[test]
    fn data_messages_carry_the_block() {
        assert_eq!(CohMsg::RdReply { block: 0, xid: 0 }.size_flits(4), 6);
        assert_eq!(
            CohMsg::FlushData {
                block: 0,
                fenced: true,
                xid: 1
            }
            .size_flits(4),
            6
        );
        assert_eq!(
            CohMsg::BlockXfer {
                block: 0,
                words: 32
            }
            .size_flits(4),
            34
        );
    }

    #[test]
    fn block_extraction() {
        assert_eq!(
            CohMsg::RdReq {
                block: 0x40,
                xid: 3
            }
            .block(),
            Some(0x40)
        );
        assert_eq!(CohMsg::Ipi.block(), None);
    }

    #[test]
    fn xid_extraction() {
        assert_eq!(CohMsg::WrReply { block: 0, xid: 9 }.xid(), Some(9));
        assert_eq!(CohMsg::BlockXfer { block: 0, words: 1 }.xid(), None);
        assert_eq!(CohMsg::Ipi.xid(), None);
    }
}
