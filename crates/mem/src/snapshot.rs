//! Wire encoding of memory-substrate state for machine snapshots.
//!
//! Serializes everything between the processor and the network
//! (DESIGN.md §11): the full/empty memory image, the set-associative
//! cache (tags, MSI state, LRU clocks), the requester-side controller
//! with its *in-flight protocol transactions*, and the home-side
//! directory with busy episodes and waiter queues. Capturing the
//! in-flight state — outstanding transactions, retry deadlines, busy
//! epochs — is what lets a restored machine replay the exact same
//! protocol schedule as the original run.
//!
//! Determinism rule: hash-map-backed state (transactions, directory
//! entries, pinned blocks) is written in sorted key order, so equal
//! states encode to equal bytes.

use crate::alloc::BumpAllocator;
use crate::cache::{Cache, LineState};
use crate::controller::{CacheController, FenceFlush, Txn};
use crate::directory::{Busy, BusyKind, DirEntry, DirState, Directory, SharerRepr, SharerSet};
use crate::femem::{Chunk, FeMemory};
use crate::msg::CohMsg;
use april_core::word::Word;
use april_obs::Probe;
use april_util::wire::{ByteReader, ByteWriter, WireError};
use std::collections::{HashMap, HashSet, VecDeque};

/// Appends a coherence message to a snapshot buffer (used for deferred
/// protocol requests and for in-flight network payloads).
pub fn encode_msg(msg: &CohMsg, w: &mut ByteWriter) {
    match *msg {
        CohMsg::RdReq { block, xid } => {
            w.u8(0);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::WrReq { block, xid } => {
            w.u8(1);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::RdReply { block, xid } => {
            w.u8(2);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::WrReply { block, xid } => {
            w.u8(3);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::Nack { block, xid } => {
            w.u8(4);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::Inval { block, xid } => {
            w.u8(5);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::InvAck { block, xid } => {
            w.u8(6);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::DownReq { block, xid } => {
            w.u8(7);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::DownAck { block, xid } => {
            w.u8(8);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::WbInvalReq { block, xid } => {
            w.u8(9);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::WbInvalAck { block, xid } => {
            w.u8(10);
            w.u32(block);
            w.u32(xid);
        }
        CohMsg::FlushData { block, fenced, xid } => {
            w.u8(11);
            w.u32(block);
            w.bool(fenced);
            w.u32(xid);
        }
        CohMsg::FlushAck { block, fenced, xid } => {
            w.u8(12);
            w.u32(block);
            w.bool(fenced);
            w.u32(xid);
        }
        CohMsg::Ipi => w.u8(13),
        CohMsg::BlockXfer { block, words } => {
            w.u8(14);
            w.u32(block);
            w.u32(words);
        }
    }
}

/// Decodes a coherence message written by [`encode_msg`].
pub fn decode_msg(r: &mut ByteReader<'_>) -> Result<CohMsg, WireError> {
    let at = r.pos();
    let tag = r.u8()?;
    Ok(match tag {
        0..=10 => {
            let block = r.u32()?;
            let xid = r.u32()?;
            match tag {
                0 => CohMsg::RdReq { block, xid },
                1 => CohMsg::WrReq { block, xid },
                2 => CohMsg::RdReply { block, xid },
                3 => CohMsg::WrReply { block, xid },
                4 => CohMsg::Nack { block, xid },
                5 => CohMsg::Inval { block, xid },
                6 => CohMsg::InvAck { block, xid },
                7 => CohMsg::DownReq { block, xid },
                8 => CohMsg::DownAck { block, xid },
                9 => CohMsg::WbInvalReq { block, xid },
                _ => CohMsg::WbInvalAck { block, xid },
            }
        }
        11 | 12 => {
            let block = r.u32()?;
            let fenced = r.bool()?;
            let xid = r.u32()?;
            if tag == 11 {
                CohMsg::FlushData { block, fenced, xid }
            } else {
                CohMsg::FlushAck { block, fenced, xid }
            }
        }
        13 => CohMsg::Ipi,
        14 => CohMsg::BlockXfer {
            block: r.u32()?,
            words: r.u32()?,
        },
        tag => return Err(WireError::BadTag { at, tag }),
    })
}

/// Appends a bump allocator's cursor to a snapshot buffer.
pub fn encode_alloc(a: &BumpAllocator, w: &mut ByteWriter) {
    w.u32(a.base);
    w.u32(a.next);
    w.u32(a.limit);
}

/// Decodes a bump allocator written by [`encode_alloc`].
pub fn decode_alloc(r: &mut ByteReader<'_>) -> Result<BumpAllocator, WireError> {
    let base = r.u32()?;
    let next = r.u32()?;
    let limit = r.u32()?;
    if base > next || next > limit || base & 3 != 0 {
        return Err(WireError::Corrupt("bump allocator cursor out of range"));
    }
    Ok(BumpAllocator { base, next, limit })
}

/// Appends the full/empty memory image to a snapshot buffer as a
/// sparse sequence of non-default 4 KiB chunks; untouched (or
/// touched-but-still-pristine) regions serialize as holes. The
/// encoding is a pure function of memory *content* — which chunks a
/// scheduler happened to materialize never shows in the bytes — so
/// snapshots stay byte-identical across lockstep/event/parallel runs.
pub fn encode_femem(m: &FeMemory, w: &mut ByteWriter) {
    w.usize(m.len_words);
    let present: Vec<(usize, &Chunk)> = m
        .chunks
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.as_deref().filter(|c| !c.is_default()).map(|c| (i, c)))
        .collect();
    w.usize(present.len());
    for (i, c) in present {
        w.u32(i as u32);
        for word in &c.words {
            w.u32(word.0);
        }
        for &bits in &c.fe {
            w.u64(bits);
        }
    }
}

/// Restores a memory image written by [`encode_femem`] into an
/// existing memory of the same size. Chunks absent from the stream
/// become holes, so a restored image has the footprint of its content,
/// not of the donor machine's address space.
pub fn restore_femem(m: &mut FeMemory, r: &mut ByteReader<'_>) -> Result<(), WireError> {
    let n = r.usize()?;
    if n != m.len_words {
        return Err(WireError::Corrupt("memory size mismatch"));
    }
    for slot in m.chunks.iter_mut() {
        *slot = None;
    }
    let npresent = r.usize()?;
    let mut last: Option<usize> = None;
    for _ in 0..npresent {
        let idx = r.u32()? as usize;
        if idx >= m.chunks.len() || last.is_some_and(|l| idx <= l) {
            return Err(WireError::Corrupt("memory chunk index out of order"));
        }
        last = Some(idx);
        let mut c = Chunk::fresh();
        for word in c.words.iter_mut() {
            *word = Word(r.u32()?);
        }
        for bits in c.fe.iter_mut() {
            *bits = r.u64()?;
        }
        m.chunks[idx] = Some(c);
    }
    Ok(())
}

fn encode_cache(c: &Cache, w: &mut ByteWriter) {
    w.usize(c.lines.len());
    for line in &c.lines {
        w.u32(line.block);
        w.u8(match line.state {
            LineState::Shared => 0,
            LineState::Modified => 1,
        });
        w.u64(line.lru);
    }
    w.u64(c.clock);
    let s = &c.stats;
    for v in [
        s.reads,
        s.writes,
        s.read_misses,
        s.write_misses,
        s.evictions,
        s.invalidations,
    ] {
        w.u64(v);
    }
}

fn restore_cache(c: &mut Cache, r: &mut ByteReader<'_>) -> Result<(), WireError> {
    let n = r.usize()?;
    if n != c.lines.len() {
        return Err(WireError::Corrupt("cache geometry mismatch"));
    }
    for line in c.lines.iter_mut() {
        line.block = r.u32()?;
        let at = r.pos();
        line.state = match r.u8()? {
            0 => LineState::Shared,
            1 => LineState::Modified,
            tag => return Err(WireError::BadTag { at, tag }),
        };
        line.lru = r.u64()?;
    }
    c.clock = r.u64()?;
    let s = &mut c.stats;
    for v in [
        &mut s.reads,
        &mut s.writes,
        &mut s.read_misses,
        &mut s.write_misses,
        &mut s.evictions,
        &mut s.invalidations,
    ] {
        *v = r.u64()?;
    }
    Ok(())
}

/// Appends a cache controller's complete state — cache contents,
/// outstanding transactions, fenced flushes, pinned blocks, deferred
/// requests, counters, and trace probe — to a snapshot buffer.
pub fn encode_ctl(ctl: &CacheController, w: &mut ByteWriter) {
    w.usize(ctl.node);
    encode_cache(&ctl.cache, w);
    let mut blocks: Vec<&u32> = ctl.txns.keys().collect();
    blocks.sort();
    w.usize(blocks.len());
    for &block in blocks {
        let t = &ctl.txns[&block];
        w.u32(block);
        w.u32(t.xid);
        w.usize(t.frames.len());
        for &(frame, needs_write) in &t.frames {
            w.usize(frame);
            w.bool(needs_write);
        }
        w.bool(t.write_issued);
        w.u32(t.retries);
        w.u64(t.next_retry);
    }
    let mut fids: Vec<&u32> = ctl.flushes.keys().collect();
    fids.sort();
    w.usize(fids.len());
    for &fid in fids {
        let f = &ctl.flushes[&fid];
        w.u32(fid);
        w.u32(f.block);
        w.u32(f.retries);
        w.u64(f.next_retry);
    }
    w.u32(ctl.next_xid);
    w.u64(ctl.clock);
    w.u64(ctl.next_deadline);
    let mut pinned: Vec<&u32> = ctl.pinned.iter().collect();
    pinned.sort();
    w.usize(pinned.len());
    for &b in pinned {
        w.u32(b);
    }
    w.usize(ctl.deferred.len());
    for (src, msg) in &ctl.deferred {
        w.usize(*src);
        encode_msg(msg, w);
    }
    w.u32(ctl.fence);
    let s = &ctl.stats;
    for v in [
        s.hits,
        s.local_fills,
        s.remote_txns,
        s.invals,
        s.downgrades,
        s.writebacks,
        s.retransmits,
        s.nacks,
        s.stale_replies,
    ] {
        w.u64(v);
    }
    ctl.probe.encode(w);
}

/// Restores controller state written by [`encode_ctl`] into an
/// existing controller with the same node id and cache geometry.
pub fn restore_ctl(ctl: &mut CacheController, r: &mut ByteReader<'_>) -> Result<(), WireError> {
    if r.usize()? != ctl.node {
        return Err(WireError::Corrupt("controller node id mismatch"));
    }
    restore_cache(&mut ctl.cache, r)?;
    let ntxns = r.usize()?;
    let mut txns = HashMap::with_capacity(ntxns);
    for _ in 0..ntxns {
        let block = r.u32()?;
        let xid = r.u32()?;
        let nframes = r.usize()?;
        let mut frames = Vec::with_capacity(nframes);
        for _ in 0..nframes {
            let frame = r.usize()?;
            let needs_write = r.bool()?;
            frames.push((frame, needs_write));
        }
        let write_issued = r.bool()?;
        let retries = r.u32()?;
        let next_retry = r.u64()?;
        txns.insert(
            block,
            Txn {
                xid,
                frames,
                write_issued,
                retries,
                next_retry,
            },
        );
    }
    ctl.txns = txns;
    let nflushes = r.usize()?;
    let mut flushes = HashMap::with_capacity(nflushes);
    for _ in 0..nflushes {
        let fid = r.u32()?;
        let block = r.u32()?;
        let retries = r.u32()?;
        let next_retry = r.u64()?;
        flushes.insert(
            fid,
            FenceFlush {
                block,
                retries,
                next_retry,
            },
        );
    }
    ctl.flushes = flushes;
    ctl.next_xid = r.u32()?;
    ctl.clock = r.u64()?;
    ctl.next_deadline = r.u64()?;
    let npinned = r.usize()?;
    let mut pinned = HashSet::with_capacity(npinned);
    for _ in 0..npinned {
        pinned.insert(r.u32()?);
    }
    ctl.pinned = pinned;
    let ndeferred = r.usize()?;
    let mut deferred = Vec::with_capacity(ndeferred);
    for _ in 0..ndeferred {
        let src = r.usize()?;
        let msg = decode_msg(r)?;
        deferred.push((src, msg));
    }
    ctl.deferred = deferred;
    ctl.fence = r.u32()?;
    let s = &mut ctl.stats;
    for v in [
        &mut s.hits,
        &mut s.local_fills,
        &mut s.remote_txns,
        &mut s.invals,
        &mut s.downgrades,
        &mut s.writebacks,
        &mut s.retransmits,
        &mut s.nacks,
        &mut s.stale_replies,
    ] {
        *v = r.u64()?;
    }
    ctl.probe = Probe::decode(r)?;
    Ok(())
}

fn encode_dir_state(state: &DirState, w: &mut ByteWriter) {
    match state {
        DirState::Uncached => w.u8(0),
        DirState::Shared(set) => match &set.repr {
            // Precise sets (inline or spill) share one wire form: the
            // ordered member list. The canonical inline-iff-it-fits
            // invariant means decoding via `SharerSet::of` rebuilds the
            // exact in-memory representation, so re-encoding a restored
            // snapshot is a byte fixed point.
            SharerRepr::Inline { .. } | SharerRepr::Spill(_) => {
                let nodes = set.as_list().unwrap_or(&[]);
                w.u8(1);
                w.usize(nodes.len());
                for &n in nodes {
                    w.usize(n as usize);
                }
            }
            SharerRepr::Coarse { region, bits } => {
                w.u8(3);
                w.u32(*region as u32);
                w.usize(bits.len());
                for &word in bits.iter() {
                    w.u64(word);
                }
            }
            SharerRepr::All => w.u8(4),
        },
        DirState::Exclusive(owner) => {
            w.u8(2);
            w.usize(*owner);
        }
    }
}

fn decode_dir_state(r: &mut ByteReader<'_>) -> Result<DirState, WireError> {
    let at = r.pos();
    Ok(match r.u8()? {
        0 => DirState::Uncached,
        1 => {
            let n = r.usize()?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(r.usize()?);
            }
            DirState::Shared(SharerSet::of(&nodes))
        }
        2 => DirState::Exclusive(r.usize()?),
        3 => {
            let region = r.u32()? as u16;
            let nwords = r.usize()?;
            let mut bits = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                bits.push(r.u64()?);
            }
            DirState::Shared(SharerSet {
                repr: SharerRepr::Coarse {
                    region,
                    bits: bits.into_boxed_slice(),
                },
            })
        }
        4 => DirState::Shared(SharerSet {
            repr: SharerRepr::All,
        }),
        tag => return Err(WireError::BadTag { at, tag }),
    })
}

/// Appends a directory's complete state — per-block protocol states,
/// busy episodes with their epochs and retry deadlines, waiter queues,
/// counters, and trace probe — to a snapshot buffer.
pub fn encode_dir(dir: &Directory, w: &mut ByteWriter) {
    let mut blocks: Vec<&u32> = dir.entries.keys().collect();
    blocks.sort();
    w.usize(blocks.len());
    for &block in blocks {
        let e = &dir.entries[&block];
        w.u32(block);
        encode_dir_state(&e.state, w);
        match &e.busy {
            None => w.bool(false),
            Some(b) => {
                w.bool(true);
                w.usize(b.requester);
                w.u32(b.req_xid);
                w.bool(b.write);
                w.u8(match b.kind {
                    BusyKind::Inval => 0,
                    BusyKind::Down => 1,
                    BusyKind::WbInval => 2,
                });
                w.u32(b.epoch);
                w.usize(b.pending.len());
                for &n in &b.pending {
                    w.usize(n);
                }
                w.u32(b.retries);
                w.u64(b.next_retry);
            }
        }
        w.usize(e.waiters.len());
        for &(node, write, xid) in &e.waiters {
            w.usize(node);
            w.bool(write);
            w.u32(xid);
        }
    }
    w.u32(dir.epoch_counter);
    w.u64(dir.clock);
    w.u64(dir.next_deadline);
    w.usize(dir.busy_ct);
    let s = &dir.stats;
    for v in [
        s.read_reqs,
        s.write_reqs,
        s.invals_sent,
        s.wb_reqs_sent,
        s.deferred,
        s.nacks,
        s.retransmits,
        s.stale_acks,
        s.overflows,
    ] {
        w.u64(v);
    }
    dir.probe.encode(w);
}

/// Restores directory state written by [`encode_dir`].
pub fn restore_dir(dir: &mut Directory, r: &mut ByteReader<'_>) -> Result<(), WireError> {
    let nentries = r.usize()?;
    let mut entries = HashMap::with_capacity(nentries);
    for _ in 0..nentries {
        let block = r.u32()?;
        let state = decode_dir_state(r)?;
        let busy = if r.bool()? {
            let requester = r.usize()?;
            let req_xid = r.u32()?;
            let write = r.bool()?;
            let at = r.pos();
            let kind = match r.u8()? {
                0 => BusyKind::Inval,
                1 => BusyKind::Down,
                2 => BusyKind::WbInval,
                tag => return Err(WireError::BadTag { at, tag }),
            };
            let epoch = r.u32()?;
            let npending = r.usize()?;
            let mut pending = Vec::with_capacity(npending);
            for _ in 0..npending {
                pending.push(r.usize()?);
            }
            let retries = r.u32()?;
            let next_retry = r.u64()?;
            Some(Box::new(Busy {
                requester,
                req_xid,
                write,
                kind,
                epoch,
                pending,
                retries,
                next_retry,
            }))
        } else {
            None
        };
        let nwaiters = r.usize()?;
        let mut waiters = VecDeque::with_capacity(nwaiters);
        for _ in 0..nwaiters {
            let node = r.usize()?;
            let write = r.bool()?;
            let xid = r.u32()?;
            waiters.push_back((node, write, xid));
        }
        entries.insert(
            block,
            DirEntry {
                state,
                busy,
                waiters,
            },
        );
    }
    let busy_found = entries.values().filter(|e| e.busy.is_some()).count();
    dir.entries = entries;
    dir.epoch_counter = r.u32()?;
    dir.clock = r.u64()?;
    dir.next_deadline = r.u64()?;
    let busy_ct = r.usize()?;
    if busy_ct != busy_found {
        return Err(WireError::Corrupt("directory busy count mismatch"));
    }
    dir.busy_ct = busy_ct;
    let s = &mut dir.stats;
    for v in [
        &mut s.read_reqs,
        &mut s.write_reqs,
        &mut s.invals_sent,
        &mut s.wb_reqs_sent,
        &mut s.deferred,
        &mut s.nacks,
        &mut s.retransmits,
        &mut s.stale_acks,
        &mut s.overflows,
    ] {
        *v = r.u64()?;
    }
    dir.probe = Probe::decode(r)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::controller::CtlConfig;

    #[test]
    fn every_coherence_message_roundtrips() {
        let msgs = [
            CohMsg::RdReq { block: 1, xid: 2 },
            CohMsg::WrReq { block: 3, xid: 4 },
            CohMsg::RdReply { block: 5, xid: 6 },
            CohMsg::WrReply { block: 7, xid: 8 },
            CohMsg::Nack { block: 9, xid: 10 },
            CohMsg::Inval { block: 11, xid: 12 },
            CohMsg::InvAck { block: 13, xid: 14 },
            CohMsg::DownReq { block: 15, xid: 16 },
            CohMsg::DownAck { block: 17, xid: 18 },
            CohMsg::WbInvalReq { block: 19, xid: 20 },
            CohMsg::WbInvalAck { block: 21, xid: 22 },
            CohMsg::FlushData {
                block: 23,
                fenced: true,
                xid: 24,
            },
            CohMsg::FlushAck {
                block: 25,
                fenced: false,
                xid: 26,
            },
            CohMsg::Ipi,
            CohMsg::BlockXfer {
                block: 27,
                words: 16,
            },
        ];
        let mut w = ByteWriter::new();
        for m in &msgs {
            encode_msg(m, &mut w);
        }
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        for m in &msgs {
            assert_eq!(decode_msg(&mut r).unwrap(), *m);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn femem_roundtrips_words_and_fe_bits() {
        let mut m = FeMemory::new(100);
        m.write(0, Word(0xdead_beef));
        m.write(96, Word(7));
        m.set_fe(4, false);
        m.set_fe(92, false);
        let mut w = ByteWriter::new();
        encode_femem(&m, &mut w);
        let bytes = w.finish();
        let mut n = FeMemory::new(100);
        restore_femem(&mut n, &mut ByteReader::new(&bytes)).unwrap();
        for a in (0..100).step_by(4) {
            assert_eq!(n.read(a), m.read(a), "word at {a:#x}");
            assert_eq!(n.fe(a), m.fe(a), "fe bit at {a:#x}");
        }
        let mut small = FeMemory::new(96);
        assert!(restore_femem(&mut small, &mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn femem_snapshot_is_content_based_with_holes() {
        // 8 chunks of address space, two touched: the snapshot carries
        // two chunks regardless of how many are materialized.
        let mut m = FeMemory::new(32 * 1024);
        m.write(0x10, Word(1));
        m.write(0x7000, Word(2));
        // Materialize a chunk and return it to pristine content: it
        // must encode as a hole (content-based, not allocation-based).
        m.write(0x3000, Word(9));
        m.write(0x3000, Word::ZERO);
        let mut w = ByteWriter::new();
        encode_femem(&m, &mut w);
        let bytes = w.finish();
        let mut n = FeMemory::new(32 * 1024);
        restore_femem(&mut n, &mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(n.read(0x10), Word(1));
        assert_eq!(n.read(0x7000), Word(2));
        assert_eq!(n.read(0x3000), Word::ZERO);
        assert_eq!(
            n.resident_bytes(),
            2 * std::mem::size_of::<Chunk>(),
            "restored image holds exactly the two non-default chunks"
        );
        // Re-encode fixed point: pristine-again chunks never reappear.
        let mut w2 = ByteWriter::new();
        encode_femem(&n, &mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn allocator_cursor_roundtrips_and_validates() {
        let mut a = BumpAllocator::new(0x100, 0x400);
        a.alloc(40, 8).unwrap();
        let mut w = ByteWriter::new();
        encode_alloc(&a, &mut w);
        let bytes = w.finish();
        let b = decode_alloc(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(a, b);
        let mut w = ByteWriter::new();
        w.u32(0x200);
        w.u32(0x100); // next < base
        w.u32(0x400);
        let bad = w.finish();
        assert!(decode_alloc(&mut ByteReader::new(&bad)).is_err());
    }

    #[test]
    fn controller_with_inflight_state_roundtrips() {
        let mk = || CacheController::new(3, CacheConfig::default(), CtlConfig::default());
        let mut ctl = mk();
        ctl.set_clock(100);
        // Start two remote transactions: home 0 is not this node, so
        // each access issues a request and records an in-flight txn.
        let mut out = Vec::new();
        ctl.cpu_access(0x8000, false, 0, 0, None, |_| 0, &mut out);
        ctl.cpu_access(0x9000, true, 1, 0, None, |_| 0, &mut out);
        assert_eq!(ctl.outstanding(), 2);
        let mut w = ByteWriter::new();
        encode_ctl(&ctl, &mut w);
        let bytes = w.finish();
        let mut restored = mk();
        restore_ctl(&mut restored, &mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(restored.outstanding_txns(), ctl.outstanding_txns());
        assert_eq!(restored.stats, ctl.stats);
        assert_eq!(restored.fence_count(), ctl.fence_count());
        // A node-id mismatch is rejected.
        let mut other = CacheController::new(5, CacheConfig::default(), CtlConfig::default());
        assert!(restore_ctl(&mut other, &mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn directory_with_busy_episode_roundtrips() {
        let mut dir = Directory::new();
        dir.set_clock(50);
        // Build protocol state: node 1 reads, node 2 writes (starts a
        // busy invalidation episode with node 1 pending).
        dir.handle_request(1, 64, false, 1);
        dir.handle_request(2, 64, true, 2);
        assert_eq!(dir.busy_count(), 1);
        let mut w = ByteWriter::new();
        encode_dir(&dir, &mut w);
        let bytes = w.finish();
        let mut restored = Directory::new();
        restore_dir(&mut restored, &mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(restored.stats, dir.stats);
        assert_eq!(restored.busy_entries(), dir.busy_entries());
        assert_eq!(restored.busy_count(), dir.busy_count());
        // The restored directory finishes the episode identically.
        let epoch = dir.busy_entries()[0].3;
        let ack = CohMsg::InvAck {
            block: 64,
            xid: epoch,
        };
        let a = dir.handle_ack(1, ack).unwrap();
        let b = restored.handle_ack(1, ack).unwrap();
        assert_eq!(a, b);
        assert_eq!(restored.state(64), dir.state(64));
    }

    #[test]
    fn sparse_directory_states_roundtrip_as_a_byte_fixed_point() {
        use crate::directory::{DirConfig, DirectoryKind};
        // One directory per kind, driven into every representation the
        // kind can reach (inline, spill, coarse, broadcast).
        for kind in [
            DirectoryKind::FullMap,
            DirectoryKind::LimitedPtr { ptrs: 2 },
            DirectoryKind::CoarseVector { region: 4 },
        ] {
            let cfg = DirConfig {
                kind,
                ..DirConfig::default()
            };
            let mut dir = Directory::with_config(cfg, 24);
            for n in 0..12 {
                dir.handle_request(n, 64, false, n as u32);
            }
            dir.handle_request(0, 128, true, 99);
            let mut w = ByteWriter::new();
            encode_dir(&dir, &mut w);
            let bytes = w.finish();
            let mut restored = Directory::with_config(cfg, 24);
            restore_dir(&mut restored, &mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(restored.state(64), dir.state(64), "{kind:?}");
            assert_eq!(restored.stats, dir.stats, "{kind:?}");
            // Re-encoding the restored directory must be a byte fixed
            // point: the sharer representation is canonical.
            let mut w2 = ByteWriter::new();
            encode_dir(&restored, &mut w2);
            assert_eq!(w2.finish(), bytes, "{kind:?}");
        }
    }
}
