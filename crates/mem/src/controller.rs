//! The requester-side cache controller.
//!
//! "On exception conditions, such as cache misses and failed
//! synchronization attempts, the controller can choose to trap the
//! processor or to make the processor wait" (paper, Section 2.1). This
//! controller decides between the **local fast path** (fill from local
//! memory while the processor waits out the 10-cycle memory latency)
//! and a **remote transaction** (send a protocol request and trap the
//! processor so it can switch to another task frame).
//!
//! It also implements the "multimodel support mechanisms" of Section
//! 3.4 that the out-of-band instructions reach: FLUSH with the fence
//! counter, and acknowledgment bookkeeping for software-enforced
//! coherence.

use crate::cache::{Cache, CacheConfig, LineState};
use crate::directory::Directory;
use crate::msg::CohMsg;
use std::collections::HashMap;

/// Controller timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlConfig {
    /// Cycles to fill a line from node-local memory (Table 4: 10).
    pub local_mem_latency: u64,
}

impl Default for CtlConfig {
    fn default() -> CtlConfig {
        CtlConfig { local_mem_latency: 10 }
    }
}

/// What the controller tells the processor about an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Cache hit: the access completes this cycle.
    Hit,
    /// Filled from local memory: stall the processor for the memory
    /// latency, then reissue (it will hit).
    LocalFill {
        /// Hold duration.
        stall: u64,
    },
    /// A remote transaction is (now) outstanding: trap and context
    /// switch (trapping flavors) or hold the processor (wait flavors).
    Remote,
}

#[derive(Debug, Clone, Default)]
struct Txn {
    /// Waiting hardware contexts: `(frame, needs_write)`.
    frames: Vec<(usize, bool)>,
    /// A write-grade request has been issued.
    write_issued: bool,
}

/// Controller event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtlStats {
    /// Cache hits.
    pub hits: u64,
    /// Misses satisfied from local memory without a transaction.
    pub local_fills: u64,
    /// Remote transactions started.
    pub remote_txns: u64,
    /// Protocol invalidations applied to this cache.
    pub invals: u64,
    /// Downgrades applied to this cache.
    pub downgrades: u64,
    /// Dirty lines written back (evictions + flushes).
    pub writebacks: u64,
}

/// A node's cache controller.
#[derive(Debug, Clone)]
pub struct CacheController {
    node: usize,
    /// The processor cache (tags + MSI state).
    pub cache: Cache,
    txns: HashMap<u32, Txn>,
    /// Blocks filled for a waiting context but not yet accessed: the
    /// controller guarantees the processor one access before
    /// surrendering the line again, closing ALEWIFE's "window of
    /// vulnerability" (a context whose fill is stolen before its retry
    /// would otherwise livelock — the paper's Section 3.1 thrashing
    /// problems, "addressed with appropriate hardware interlock
    /// mechanisms").
    pinned: std::collections::HashSet<u32>,
    /// Protocol requests deferred while their block is pinned.
    deferred: Vec<(usize, CohMsg)>,
    fence: u32,
    cfg: CtlConfig,
    /// Event counters.
    pub stats: CtlStats,
}

impl CacheController {
    /// Creates the controller for `node`.
    pub fn new(node: usize, cache_cfg: CacheConfig, cfg: CtlConfig) -> CacheController {
        CacheController {
            node,
            cache: Cache::new(cache_cfg),
            txns: HashMap::new(),
            pinned: std::collections::HashSet::new(),
            deferred: Vec::new(),
            fence: 0,
            cfg,
            stats: CtlStats::default(),
        }
    }

    /// This controller's node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Outstanding fenced write-backs (the FENCE instruction stalls
    /// while this is non-zero).
    pub fn fence_count(&self) -> u32 {
        self.fence
    }

    /// Number of remote transactions currently in flight.
    pub fn outstanding(&self) -> usize {
        self.txns.len()
    }

    /// Processes a processor data access.
    ///
    /// `home` is the block's home node; `dir` must be `Some` when this
    /// node is the home (the machine splits the borrow); `home_of`
    /// maps any block address to its home (needed for evictions);
    /// outgoing messages are appended to `out`.
    pub fn cpu_access(
        &mut self,
        addr: u32,
        write: bool,
        frame: usize,
        home: usize,
        mut dir: Option<&mut Directory>,
        home_of: impl Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) -> Outcome {
        let block = self.cache.config().block_of(addr);
        if self.cache.access(addr, write) {
            self.stats.hits += 1;
            if self.pinned.remove(&block) {
                self.service_deferred(block, &home_of, out);
            }
            return Outcome::Hit;
        }
        // Already waiting on this block?
        if let Some(txn) = self.txns.get_mut(&block) {
            if !txn.frames.contains(&(frame, write)) {
                txn.frames.push((frame, write));
            }
            if write && !txn.write_issued {
                txn.write_issued = true;
                out.push((home, CohMsg::WrReq { block }));
            }
            return Outcome::Remote;
        }
        // Local fast path: home is here and the block is quiet.
        if home == self.node {
            let dir = dir.as_deref_mut().expect("home node must pass its directory");
            if dir.grantable_now(self.node, block, write) {
                dir.grant_local(self.node, block, write);
                self.fill(block, if write { LineState::Modified } else { LineState::Shared }, &home_of, out);
                self.stats.local_fills += 1;
                return Outcome::LocalFill { stall: self.cfg.local_mem_latency };
            }
        }
        // Remote (or locally-contended) transaction.
        self.txns.insert(block, Txn { frames: vec![(frame, write)], write_issued: write });
        let msg = if write { CohMsg::WrReq { block } } else { CohMsg::RdReq { block } };
        out.push((home, msg));
        self.stats.remote_txns += 1;
        Outcome::Remote
    }

    fn fill(
        &mut self,
        block: u32,
        state: LineState,
        home_of: &dyn Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) {
        if let Some(victim) = self.cache.fill(block, state) {
            if victim.dirty {
                self.stats.writebacks += 1;
                out.push((home_of(victim.block), CohMsg::FlushData { block: victim.block, fenced: false }));
            }
            if self.pinned.remove(&victim.block) {
                self.service_deferred(victim.block, home_of, out);
            }
        }
    }

    /// Replays protocol requests that were deferred while `block` was
    /// pinned for a waking context.
    fn service_deferred(
        &mut self,
        block: u32,
        home_of: &dyn Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) {
        let mut rest = Vec::new();
        for (from, msg) in std::mem::take(&mut self.deferred) {
            if msg.block() == Some(block) {
                let woken = self.handle_msg_dyn(from, msg, home_of, out);
                debug_assert!(woken.is_empty(), "deferred requests never wake frames");
            } else {
                rest.push((from, msg));
            }
        }
        self.deferred = rest;
    }

    /// Handles a protocol message addressed to this cache (replies and
    /// home-initiated requests). Returns the task frames to wake.
    pub fn handle_msg(
        &mut self,
        from: usize,
        msg: CohMsg,
        home_of: impl Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) -> Vec<usize> {
        self.handle_msg_dyn(from, msg, &home_of, out)
    }

    fn handle_msg_dyn(
        &mut self,
        from: usize,
        msg: CohMsg,
        home_of: &dyn Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) -> Vec<usize> {
        match msg {
            CohMsg::RdReply { block } => {
                self.fill(block, LineState::Shared, home_of, out);
                if let Some(txn) = self.txns.get_mut(&block) {
                    let mut woken = Vec::new();
                    txn.frames.retain(|&(f, w)| {
                        if w {
                            true
                        } else {
                            woken.push(f);
                            false
                        }
                    });
                    if txn.frames.is_empty() {
                        self.txns.remove(&block);
                    }
                    if !woken.is_empty() {
                        self.pinned.insert(block);
                    }
                    return woken;
                }
                Vec::new()
            }
            CohMsg::WrReply { block } => {
                self.fill(block, LineState::Modified, home_of, out);
                match self.txns.remove(&block) {
                    Some(txn) => {
                        let woken: Vec<usize> = txn.frames.into_iter().map(|(f, _)| f).collect();
                        if !woken.is_empty() {
                            self.pinned.insert(block);
                        }
                        woken
                    }
                    None => Vec::new(),
                }
            }
            CohMsg::Inval { block } => {
                if self.pinned.contains(&block) {
                    self.deferred.push((from, msg));
                    return Vec::new();
                }
                if self.cache.invalidate(block) == Some(true) {
                    self.stats.writebacks += 1;
                }
                self.stats.invals += 1;
                out.push((from, CohMsg::InvAck { block }));
                Vec::new()
            }
            CohMsg::DownReq { block } => {
                if self.pinned.contains(&block) {
                    self.deferred.push((from, msg));
                    return Vec::new();
                }
                self.cache.downgrade(block);
                self.stats.downgrades += 1;
                out.push((from, CohMsg::DownAck { block }));
                Vec::new()
            }
            CohMsg::WbInvalReq { block } => {
                if self.pinned.contains(&block) {
                    self.deferred.push((from, msg));
                    return Vec::new();
                }
                self.cache.invalidate(block);
                self.stats.writebacks += 1;
                out.push((from, CohMsg::WbInvalAck { block }));
                Vec::new()
            }
            CohMsg::FlushAck { fenced, .. } => {
                if fenced {
                    self.fence = self.fence.saturating_sub(1);
                }
                Vec::new()
            }
            CohMsg::BlockXfer { .. } | CohMsg::Ipi => Vec::new(),
            other => panic!("controller got home-side message {other:?}"),
        }
    }

    /// Implements the FLUSH instruction: drops the line containing
    /// `addr`; if dirty, writes it back and increments the fence
    /// counter (Section 3.4).
    pub fn flush(&mut self, addr: u32, home_of: impl Fn(u32) -> usize, out: &mut Vec<(usize, CohMsg)>) -> u32 {
        let block = self.cache.config().block_of(addr);
        match self.cache.invalidate(block) {
            Some(true) => {
                self.fence += 1;
                self.stats.writebacks += 1;
                out.push((home_of(block), CohMsg::FlushData { block, fenced: true }));
                1
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::DirState;

    fn ctl(node: usize) -> CacheController {
        CacheController::new(
            node,
            CacheConfig { size_bytes: 1024, block_bytes: 16, assoc: 2 },
            CtlConfig::default(),
        )
    }

    #[test]
    fn local_fast_path_fills_and_stalls() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        let o = c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 0, &mut out);
        assert_eq!(o, Outcome::LocalFill { stall: 10 });
        assert!(out.is_empty());
        assert_eq!(dir.state(0x40), DirState::Shared(vec![0]));
        // Reissue hits.
        let o = c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 0, &mut out);
        assert_eq!(o, Outcome::Hit);
    }

    #[test]
    fn remote_miss_sends_request_and_wakes_frame() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        let o = c.cpu_access(0x40, false, 2, 5, None, |_| 5, &mut out);
        assert_eq!(o, Outcome::Remote);
        assert_eq!(out, vec![(5, CohMsg::RdReq { block: 0x40 })]);
        out.clear();
        let woken = c.handle_msg(5, CohMsg::RdReply { block: 0x40 }, |_| 5, &mut out);
        assert_eq!(woken, vec![2]);
        assert_eq!(c.outstanding(), 0);
        // Now a hit.
        let o = c.cpu_access(0x44, false, 2, 5, None, |_| 5, &mut out);
        assert_eq!(o, Outcome::Hit);
    }

    #[test]
    fn duplicate_requests_coalesce() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 5, None, |_| 5, &mut out);
        c.cpu_access(0x40, false, 1, 5, None, |_| 5, &mut out);
        assert_eq!(out.len(), 1, "one request for two frames");
        let mut woken = c.handle_msg(5, CohMsg::RdReply { block: 0x40 }, |_| 5, &mut out);
        woken.sort();
        assert_eq!(woken, vec![0, 1]);
    }

    #[test]
    fn read_then_write_upgrades_transaction() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 5, None, |_| 5, &mut out);
        c.cpu_access(0x40, true, 1, 5, None, |_| 5, &mut out);
        assert_eq!(
            out,
            vec![(5, CohMsg::RdReq { block: 0x40 }), (5, CohMsg::WrReq { block: 0x40 })]
        );
        out.clear();
        // RdReply satisfies only the reader.
        let woken = c.handle_msg(5, CohMsg::RdReply { block: 0x40 }, |_| 5, &mut out);
        assert_eq!(woken, vec![0]);
        assert_eq!(c.outstanding(), 1);
        let woken = c.handle_msg(5, CohMsg::WrReply { block: 0x40 }, |_| 5, &mut out);
        assert_eq!(woken, vec![1]);
    }

    #[test]
    fn inval_acks_and_drops_line() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 0, &mut out);
        let woken = c.handle_msg(3, CohMsg::Inval { block: 0x40 }, |_| 0, &mut out);
        assert!(woken.is_empty());
        assert_eq!(out, vec![(3, CohMsg::InvAck { block: 0x40 })]);
        assert_eq!(c.cache.probe(0x40), None);
    }

    #[test]
    fn inval_for_absent_line_still_acks() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.handle_msg(3, CohMsg::Inval { block: 0x80 }, |_| 0, &mut out);
        assert_eq!(out, vec![(3, CohMsg::InvAck { block: 0x80 })]);
    }

    #[test]
    fn downgrade_keeps_shared_copy() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 0, 0, Some(&mut dir), |_| 0, &mut out);
        c.handle_msg(2, CohMsg::DownReq { block: 0x40 }, |_| 0, &mut out);
        assert_eq!(out, vec![(2, CohMsg::DownAck { block: 0x40 })]);
        assert_eq!(c.cache.probe(0x40), Some(LineState::Shared));
    }

    #[test]
    fn flush_raises_fence_until_acked() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 0, 0, Some(&mut dir), |_| 0, &mut out);
        assert_eq!(c.flush(0x44, |_| 0, &mut out), 1);
        assert_eq!(c.fence_count(), 1);
        assert_eq!(out.last(), Some(&(0, CohMsg::FlushData { block: 0x40, fenced: true })));
        c.handle_msg(0, CohMsg::FlushAck { block: 0x40, fenced: true }, |_| 0, &mut out);
        assert_eq!(c.fence_count(), 0);
    }

    #[test]
    fn clean_flush_is_free() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 0, &mut out);
        out.clear();
        assert_eq!(c.flush(0x40, |_| 0, &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(c.fence_count(), 0);
    }

    #[test]
    fn pinned_fill_defers_requests_until_first_use() {
        // Remote fill for a waiting frame: a DownReq arriving before
        // the frame's retry is deferred (window of vulnerability),
        // then serviced after the first access.
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 1, 5, None, |_| 5, &mut out);
        out.clear();
        let woken = c.handle_msg(5, CohMsg::WrReply { block: 0x40 }, |_| 5, &mut out);
        assert_eq!(woken, vec![1]);
        // The steal attempt arrives before the retry: no ack yet.
        let w = c.handle_msg(5, CohMsg::DownReq { block: 0x40 }, |_| 5, &mut out);
        assert!(w.is_empty());
        assert!(out.is_empty(), "DownReq must be deferred while pinned");
        assert_eq!(c.cache.probe(0x40), Some(LineState::Modified));
        // The woken frame's access consumes the pin and releases the
        // deferred downgrade.
        let o = c.cpu_access(0x44, true, 1, 5, None, |_| 5, &mut out);
        assert_eq!(o, Outcome::Hit);
        assert_eq!(out, vec![(5, CohMsg::DownAck { block: 0x40 })]);
        assert_eq!(c.cache.probe(0x40), Some(LineState::Shared));
    }

    #[test]
    fn unpinned_blocks_ack_immediately() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        // Local fill (no waiting frame, no pin).
        c.cpu_access(0x40, true, 0, 0, Some(&mut dir), |_| 0, &mut out);
        c.handle_msg(3, CohMsg::DownReq { block: 0x40 }, |_| 0, &mut out);
        assert_eq!(out, vec![(3, CohMsg::DownAck { block: 0x40 })]);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = CacheController::new(
            0,
            CacheConfig { size_bytes: 64, block_bytes: 16, assoc: 1 },
            CtlConfig::default(),
        );
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x00, true, 0, 0, Some(&mut dir), |_| 7, &mut out);
        // 0x40 conflicts with 0x00 in a 4-set direct-mapped cache.
        c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 7, &mut out);
        assert!(out.contains(&(7, CohMsg::FlushData { block: 0x00, fenced: false })));
        assert_eq!(c.stats.writebacks, 1);
    }
}
