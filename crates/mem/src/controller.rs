//! The requester-side cache controller.
//!
//! "On exception conditions, such as cache misses and failed
//! synchronization attempts, the controller can choose to trap the
//! processor or to make the processor wait" (paper, Section 2.1). This
//! controller decides between the **local fast path** (fill from local
//! memory while the processor waits out the 10-cycle memory latency)
//! and a **remote transaction** (send a protocol request and trap the
//! processor so it can switch to another task frame).
//!
//! It also implements the "multimodel support mechanisms" of Section
//! 3.4 that the out-of-band instructions reach: FLUSH with the fence
//! counter, and acknowledgment bookkeeping for software-enforced
//! coherence.
//!
//! The controller is hardened against an unreliable network: every
//! transaction carries a sequence number (`xid`) that replies must
//! echo — a reply for a retired or superseded transaction is ignored
//! rather than filled into the cache — and unanswered requests are
//! retransmitted with bounded exponential backoff from
//! [`CacheController::tick`]. A [`CohMsg::Nack`] from an overloaded
//! home reschedules the retransmission instead of spinning.

// Protocol hot path: failures must surface as typed errors, not tear
// down the simulator on the first injected fault.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
use crate::cache::{Cache, CacheConfig, LineState};
use crate::directory::Directory;
use crate::error::{ProtocolError, RetryConfig};
use crate::msg::CohMsg;
use april_obs::{EventKind, Probe};
use std::collections::HashMap;

/// Controller timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlConfig {
    /// Cycles to fill a line from node-local memory (Table 4: 10).
    pub local_mem_latency: u64,
    /// Retransmission policy for unanswered requests and fenced
    /// flushes.
    pub retry: RetryConfig,
}

impl Default for CtlConfig {
    fn default() -> CtlConfig {
        CtlConfig {
            local_mem_latency: 10,
            retry: RetryConfig::default(),
        }
    }
}

/// What the controller tells the processor about an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Cache hit: the access completes this cycle.
    Hit,
    /// Filled from local memory: stall the processor for the memory
    /// latency, then reissue (it will hit).
    LocalFill {
        /// Hold duration.
        stall: u64,
    },
    /// A remote transaction is (now) outstanding: trap and context
    /// switch (trapping flavors) or hold the processor (wait flavors).
    Remote,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct Txn {
    /// This transaction's sequence number; replies must echo it.
    pub(crate) xid: u32,
    /// Waiting hardware contexts: `(frame, needs_write)`.
    pub(crate) frames: Vec<(usize, bool)>,
    /// A write-grade request has been issued.
    pub(crate) write_issued: bool,
    /// Retransmissions so far.
    pub(crate) retries: u32,
    /// When the next retransmission fires.
    pub(crate) next_retry: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct FenceFlush {
    pub(crate) block: u32,
    pub(crate) retries: u32,
    pub(crate) next_retry: u64,
}

/// Controller event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtlStats {
    /// Cache hits.
    pub hits: u64,
    /// Misses satisfied from local memory without a transaction.
    pub local_fills: u64,
    /// Remote transactions started.
    pub remote_txns: u64,
    /// Protocol invalidations applied to this cache.
    pub invals: u64,
    /// Downgrades applied to this cache.
    pub downgrades: u64,
    /// Dirty lines written back (evictions + flushes).
    pub writebacks: u64,
    /// Requests or fenced flushes retransmitted.
    pub retransmits: u64,
    /// NACKs received from overloaded homes.
    pub nacks: u64,
    /// Stale or duplicate replies ignored.
    pub stale_replies: u64,
}

impl CtlStats {
    /// Sum of all counters — a cheap progress signature for the
    /// machine's forward-progress watchdog.
    pub fn total(&self) -> u64 {
        self.hits
            + self.local_fills
            + self.remote_txns
            + self.invals
            + self.downgrades
            + self.writebacks
            + self.retransmits
            + self.nacks
            + self.stale_replies
    }

    /// Field-wise accumulation of `other` into `self`, for
    /// machine-wide aggregates over per-node controllers.
    pub fn merge(&mut self, other: &CtlStats) {
        self.hits += other.hits;
        self.local_fills += other.local_fills;
        self.remote_txns += other.remote_txns;
        self.invals += other.invals;
        self.downgrades += other.downgrades;
        self.writebacks += other.writebacks;
        self.retransmits += other.retransmits;
        self.nacks += other.nacks;
        self.stale_replies += other.stale_replies;
    }
}

/// A node's cache controller.
#[derive(Debug, Clone)]
pub struct CacheController {
    pub(crate) node: usize,
    /// The processor cache (tags + MSI state).
    pub cache: Cache,
    pub(crate) txns: HashMap<u32, Txn>,
    /// Outstanding fenced flushes by flush id (awaiting `FlushAck`).
    pub(crate) flushes: HashMap<u32, FenceFlush>,
    pub(crate) next_xid: u32,
    pub(crate) clock: u64,
    /// The exact earliest `next_retry` over all outstanding
    /// transactions and fenced flushes (`u64::MAX` when none are
    /// pending). Min-updated when a deadline is scheduled and
    /// recomputed when a completion shrinks the pending set: keeping
    /// the bound tight means the event-driven machine never schedules
    /// a visit for a deadline that no longer exists, so in a
    /// fault-free run [`CacheController::tick`] only ever fires for
    /// true retransmissions.
    pub(crate) next_deadline: u64,
    /// Blocks filled for a waiting context but not yet accessed: the
    /// controller guarantees the processor one access before
    /// surrendering the line again, closing ALEWIFE's "window of
    /// vulnerability" (a context whose fill is stolen before its retry
    /// would otherwise livelock — the paper's Section 3.1 thrashing
    /// problems, "addressed with appropriate hardware interlock
    /// mechanisms").
    pub(crate) pinned: std::collections::HashSet<u32>,
    /// Protocol requests deferred while their block is pinned.
    pub(crate) deferred: Vec<(usize, CohMsg)>,
    pub(crate) fence: u32,
    pub(crate) cfg: CtlConfig,
    /// Event counters.
    pub stats: CtlStats,
    /// Trace recorder for this controller's lane (inert by default).
    pub(crate) probe: Probe,
}

impl CacheController {
    /// Creates the controller for `node`.
    pub fn new(node: usize, cache_cfg: CacheConfig, cfg: CtlConfig) -> CacheController {
        CacheController {
            node,
            cache: Cache::new(cache_cfg),
            txns: HashMap::default(),
            flushes: HashMap::default(),
            next_xid: 0,
            clock: 0,
            next_deadline: u64::MAX,
            pinned: std::collections::HashSet::default(),
            deferred: Vec::new(),
            fence: 0,
            cfg,
            stats: CtlStats::default(),
            probe: Probe::default(),
        }
    }

    /// This controller's node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Installs a trace recorder for this controller's lane.
    pub fn attach_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The controller's trace recorder.
    pub fn trace_probe(&self) -> &Probe {
        &self.probe
    }

    /// Outstanding fenced write-backs (the FENCE instruction stalls
    /// while this is non-zero).
    pub fn fence_count(&self) -> u32 {
        self.fence
    }

    /// Number of remote transactions currently in flight.
    pub fn outstanding(&self) -> usize {
        self.txns.len()
    }

    /// Outstanding transactions as `(block, xid, write_issued,
    /// waiting_frames)`, sorted by block — the requester slice of a
    /// deadlock post-mortem.
    pub fn outstanding_txns(&self) -> Vec<(u32, u32, bool, Vec<usize>)> {
        let mut v: Vec<_> = self
            .txns
            .iter()
            .map(|(&b, t)| {
                (
                    b,
                    t.xid,
                    t.write_issued,
                    t.frames.iter().map(|&(f, _)| f).collect(),
                )
            })
            .collect();
        v.sort_by_key(|&(b, ..)| b);
        v
    }

    fn fresh_xid(&mut self) -> u32 {
        self.next_xid = self.next_xid.wrapping_add(1);
        self.next_xid
    }

    /// The earliest cycle at which [`CacheController::tick`] may need
    /// to retransmit — a lower bound (`u64::MAX` when nothing is
    /// scheduled or retries are disabled), letting an event-driven
    /// machine skip quiet cycles without missing a deadline.
    #[inline]
    pub fn next_deadline(&self) -> u64 {
        if self.cfg.retry.enabled {
            self.next_deadline
        } else {
            u64::MAX
        }
    }

    /// Whether [`CacheController::tick`] would do any work at `now` —
    /// exactly its early-return test, on the raw deadline field. The
    /// machine uses this to skip the call entirely on quiet cycles;
    /// skipping is state-preserving precisely when this is false.
    #[inline]
    pub fn tick_pending(&self, now: u64) -> bool {
        self.cfg.retry.enabled && self.next_deadline <= now
    }

    fn note_deadline(&mut self, at: u64) {
        if at < self.next_deadline {
            self.next_deadline = at;
        }
    }

    /// Recomputes the exact earliest deadline after a completion or a
    /// reschedule changed the pending set. O(outstanding), and the
    /// outstanding sets are small (bounded by the frames that can miss
    /// concurrently plus unacknowledged fenced flushes).
    fn recompute_deadline(&mut self) {
        let mut min_next = u64::MAX;
        for t in self.txns.values() {
            min_next = min_next.min(t.next_retry);
        }
        for f in self.flushes.values() {
            min_next = min_next.min(f.next_retry);
        }
        self.next_deadline = min_next;
    }

    /// Advances the controller's notion of the current cycle without
    /// scanning for overdue work (that is [`CacheController::tick`]'s
    /// job). The machine calls this at the top of every cycle so
    /// backoff deadlines computed mid-cycle use the cycle they are
    /// scheduled in.
    pub fn set_clock(&mut self, now: u64) {
        self.clock = now;
    }

    /// Processes a processor data access.
    ///
    /// `home` is the block's home node; `dir` must be `Some` when this
    /// node is the home (the machine splits the borrow); `home_of`
    /// maps any block address to its home (needed for evictions);
    /// outgoing messages are appended to `out`.
    #[allow(clippy::too_many_arguments)]
    pub fn cpu_access(
        &mut self,
        addr: u32,
        write: bool,
        frame: usize,
        home: usize,
        dir: Option<&mut Directory>,
        home_of: impl Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) -> Outcome {
        let block = self.cache.config().block_of(addr);
        if self.cache.access(addr, write) {
            self.stats.hits += 1;
            if self.pinned.remove(&block) {
                self.service_deferred(block, &home_of, out);
            }
            return Outcome::Hit;
        }
        // Already waiting on this block?
        if let Some(txn) = self.txns.get_mut(&block) {
            if !txn.frames.contains(&(frame, write)) {
                txn.frames.push((frame, write));
            }
            if write && !txn.write_issued {
                txn.write_issued = true;
                out.push((
                    home,
                    CohMsg::WrReq {
                        block,
                        xid: txn.xid,
                    },
                ));
            }
            return Outcome::Remote;
        }
        // Local fast path: home is here, the machine passed the local
        // directory, and the block is quiet.
        if home == self.node {
            if let Some(dir) = dir {
                if dir.grant_local(self.node, block, write) {
                    self.fill(
                        block,
                        if write {
                            LineState::Modified
                        } else {
                            LineState::Shared
                        },
                        &home_of,
                        out,
                    );
                    self.stats.local_fills += 1;
                    self.probe
                        .emit(self.clock, EventKind::CacheMiss, block as u64, 0);
                    return Outcome::LocalFill {
                        stall: self.cfg.local_mem_latency,
                    };
                }
            }
        }
        // Remote (or locally-contended) transaction.
        let xid = self.fresh_xid();
        let retry_at = self.clock + self.cfg.retry.timeout;
        self.note_deadline(retry_at);
        self.txns.insert(
            block,
            Txn {
                xid,
                frames: vec![(frame, write)],
                write_issued: write,
                retries: 0,
                next_retry: retry_at,
            },
        );
        let msg = if write {
            CohMsg::WrReq { block, xid }
        } else {
            CohMsg::RdReq { block, xid }
        };
        out.push((home, msg));
        self.stats.remote_txns += 1;
        self.probe
            .emit(self.clock, EventKind::CacheMiss, block as u64, 1);
        Outcome::Remote
    }

    fn fill(
        &mut self,
        block: u32,
        state: LineState,
        home_of: &dyn Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) {
        if let Some(victim) = self.cache.fill(block, state) {
            if victim.dirty {
                self.stats.writebacks += 1;
                out.push((
                    home_of(victim.block),
                    CohMsg::FlushData {
                        block: victim.block,
                        fenced: false,
                        xid: 0,
                    },
                ));
            }
            if self.pinned.remove(&victim.block) {
                self.service_deferred(victim.block, home_of, out);
            }
        }
    }

    /// Replays protocol requests that were deferred while `block` was
    /// pinned for a waking context.
    fn service_deferred(
        &mut self,
        block: u32,
        home_of: &dyn Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) {
        let mut rest = Vec::new();
        for (from, msg) in std::mem::take(&mut self.deferred) {
            if msg.block() == Some(block) {
                // Only home-initiated demands are ever deferred, and
                // those never fail or wake frames.
                let woken = self.handle_msg_dyn(from, msg, home_of, out);
                debug_assert!(
                    matches!(woken.as_deref(), Ok([])),
                    "deferred requests never wake frames or fail"
                );
            } else {
                rest.push((from, msg));
            }
        }
        self.deferred = rest;
    }

    /// Handles a protocol message addressed to this cache (replies and
    /// home-initiated requests). Returns the task frames to wake, or a
    /// [`ProtocolError`] if the message is of a kind this endpoint
    /// never handles.
    pub fn handle_msg(
        &mut self,
        from: usize,
        msg: CohMsg,
        home_of: impl Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) -> Result<Vec<usize>, ProtocolError> {
        self.handle_msg_dyn(from, msg, &home_of, out)
    }

    fn handle_msg_dyn(
        &mut self,
        from: usize,
        msg: CohMsg,
        home_of: &dyn Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) -> Result<Vec<usize>, ProtocolError> {
        match msg {
            CohMsg::RdReply { block, xid } => {
                // Accept only if it answers the live transaction; a
                // duplicated or stale reply must not touch the cache.
                match self.txns.get_mut(&block) {
                    Some(txn) if txn.xid == xid => {}
                    _ => {
                        self.stats.stale_replies += 1;
                        return Ok(Vec::new());
                    }
                }
                self.fill(block, LineState::Shared, home_of, out);
                let retry_at = self.clock + self.cfg.retry.timeout;
                let Some(txn) = self.txns.get_mut(&block) else {
                    return Ok(Vec::new());
                };
                let mut woken = Vec::new();
                txn.frames.retain(|&(f, w)| {
                    if w {
                        true
                    } else {
                        woken.push(f);
                        false
                    }
                });
                // The request was answered; retransmission timing
                // restarts for any still-pending write upgrade.
                txn.retries = 0;
                txn.next_retry = retry_at;
                if txn.frames.is_empty() {
                    self.txns.remove(&block);
                }
                self.recompute_deadline();
                if !woken.is_empty() {
                    self.pinned.insert(block);
                }
                Ok(woken)
            }
            CohMsg::WrReply { block, xid } => {
                match self.txns.get(&block) {
                    Some(txn) if txn.xid == xid => {}
                    _ => {
                        self.stats.stale_replies += 1;
                        return Ok(Vec::new());
                    }
                }
                self.fill(block, LineState::Modified, home_of, out);
                let removed = self.txns.remove(&block);
                self.recompute_deadline();
                match removed {
                    Some(txn) => {
                        let woken: Vec<usize> = txn.frames.into_iter().map(|(f, _)| f).collect();
                        if !woken.is_empty() {
                            self.pinned.insert(block);
                        }
                        Ok(woken)
                    }
                    None => Ok(Vec::new()),
                }
            }
            CohMsg::Nack { block, xid } => {
                // The home's waiter queue was full: back off and retry.
                let mut rescheduled = None;
                if let Some(txn) = self.txns.get_mut(&block) {
                    if txn.xid == xid {
                        self.stats.nacks += 1;
                        self.probe
                            .emit(self.clock, EventKind::NackRecv, block as u64, xid as u64);
                        let at = self.clock + self.cfg.retry.backoff(txn.retries);
                        txn.next_retry = at;
                        rescheduled = Some(at);
                    }
                }
                if rescheduled.is_some() {
                    // The backoff may have *raised* this transaction's
                    // deadline past others'; recompute to stay tight.
                    self.recompute_deadline();
                }
                Ok(Vec::new())
            }
            CohMsg::Inval { block, xid } => {
                if self.pinned.contains(&block) {
                    self.deferred.push((from, msg));
                    return Ok(Vec::new());
                }
                if self.cache.invalidate(block) == Some(true) {
                    self.stats.writebacks += 1;
                }
                self.stats.invals += 1;
                out.push((from, CohMsg::InvAck { block, xid }));
                Ok(Vec::new())
            }
            CohMsg::DownReq { block, xid } => {
                if self.pinned.contains(&block) {
                    self.deferred.push((from, msg));
                    return Ok(Vec::new());
                }
                self.cache.downgrade(block);
                self.stats.downgrades += 1;
                out.push((from, CohMsg::DownAck { block, xid }));
                Ok(Vec::new())
            }
            CohMsg::WbInvalReq { block, xid } => {
                if self.pinned.contains(&block) {
                    self.deferred.push((from, msg));
                    return Ok(Vec::new());
                }
                self.cache.invalidate(block);
                self.stats.writebacks += 1;
                out.push((from, CohMsg::WbInvalAck { block, xid }));
                Ok(Vec::new())
            }
            CohMsg::FlushAck { fenced, xid, .. } => {
                // Only the first ack for a tracked fenced flush lowers
                // the fence; duplicates are ignored.
                if fenced && self.flushes.remove(&xid).is_some() {
                    self.fence = self.fence.saturating_sub(1);
                    self.recompute_deadline();
                }
                Ok(Vec::new())
            }
            CohMsg::BlockXfer { .. } | CohMsg::Ipi => Ok(Vec::new()),
            other => Err(ProtocolError::UnexpectedMessage {
                node: self.node,
                from,
                msg: other,
            }),
        }
    }

    /// Advances the controller's clock to `now` and retransmits
    /// overdue requests and fenced flushes with bounded exponential
    /// backoff, or reports [`ProtocolError::RetriesExhausted`].
    pub fn tick(
        &mut self,
        now: u64,
        home_of: impl Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) -> Result<(), ProtocolError> {
        self.clock = now;
        if !self.cfg.retry.enabled {
            return Ok(());
        }
        if self.next_deadline > now {
            return Ok(());
        }
        let retry = self.cfg.retry;
        let node = self.node;
        let mut resend = Vec::new();
        // Recompute the exact earliest deadline while scanning: not-due
        // entries contribute their existing `next_retry`, retransmitted
        // entries their freshly scheduled one.
        let mut min_next = u64::MAX;
        for (&block, txn) in &mut self.txns {
            if txn.next_retry > now {
                min_next = min_next.min(txn.next_retry);
                continue;
            }
            if txn.retries >= retry.max_retries {
                return Err(ProtocolError::RetriesExhausted {
                    node,
                    block,
                    xid: txn.xid,
                    retries: txn.retries,
                });
            }
            let msg = if txn.write_issued {
                CohMsg::WrReq {
                    block,
                    xid: txn.xid,
                }
            } else {
                CohMsg::RdReq {
                    block,
                    xid: txn.xid,
                }
            };
            txn.retries += 1;
            resend.push((home_of(block), msg, txn.retries));
            txn.next_retry = now + retry.backoff(txn.retries);
            min_next = min_next.min(txn.next_retry);
        }
        for (&xid, fl) in &mut self.flushes {
            if fl.next_retry > now {
                min_next = min_next.min(fl.next_retry);
                continue;
            }
            if fl.retries >= retry.max_retries {
                return Err(ProtocolError::RetriesExhausted {
                    node,
                    block: fl.block,
                    xid,
                    retries: fl.retries,
                });
            }
            fl.retries += 1;
            resend.push((
                home_of(fl.block),
                CohMsg::FlushData {
                    block: fl.block,
                    fenced: true,
                    xid,
                },
                fl.retries,
            ));
            fl.next_retry = now + retry.backoff(fl.retries);
            min_next = min_next.min(fl.next_retry);
        }
        self.next_deadline = min_next;
        self.stats.retransmits += resend.len() as u64;
        // Deterministic send order regardless of hash-map iteration.
        // Trace events are emitted in the same sorted order (a lane's
        // event sequence must not depend on map iteration).
        resend.sort_by_key(|&(to, msg, _)| (msg.block(), msg.xid(), to));
        for &(to, msg, retries) in &resend {
            self.probe.emit(
                self.clock,
                EventKind::Retransmit,
                msg.block().unwrap_or(0) as u64,
                retries as u64,
            );
            out.push((to, msg));
        }
        Ok(())
    }

    /// Implements the FLUSH instruction: drops the line containing
    /// `addr`; if dirty, writes it back and increments the fence
    /// counter (Section 3.4).
    pub fn flush(
        &mut self,
        addr: u32,
        home_of: impl Fn(u32) -> usize,
        out: &mut Vec<(usize, CohMsg)>,
    ) -> u32 {
        let block = self.cache.config().block_of(addr);
        match self.cache.invalidate(block) {
            Some(true) => {
                self.fence += 1;
                self.stats.writebacks += 1;
                let xid = self.fresh_xid();
                let retry_at = self.clock + self.cfg.retry.timeout;
                self.note_deadline(retry_at);
                self.flushes.insert(
                    xid,
                    FenceFlush {
                        block,
                        retries: 0,
                        next_retry: retry_at,
                    },
                );
                out.push((
                    home_of(block),
                    CohMsg::FlushData {
                        block,
                        fenced: true,
                        xid,
                    },
                ));
                1
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{DirState, SharerSet};

    fn ctl(node: usize) -> CacheController {
        CacheController::new(
            node,
            CacheConfig {
                size_bytes: 1024,
                block_bytes: 16,
                assoc: 2,
            },
            CtlConfig::default(),
        )
    }

    /// The xid of the controller's outstanding transaction on `block`.
    fn xid_of(c: &CacheController, block: u32) -> u32 {
        c.outstanding_txns()
            .into_iter()
            .find(|&(b, ..)| b == block)
            .map(|(_, x, ..)| x)
            .expect("transaction outstanding")
    }

    #[test]
    fn local_fast_path_fills_and_stalls() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        let o = c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 0, &mut out);
        assert_eq!(o, Outcome::LocalFill { stall: 10 });
        assert!(out.is_empty());
        assert_eq!(dir.state(0x40), DirState::Shared(SharerSet::one(0)));
        // Reissue hits.
        let o = c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 0, &mut out);
        assert_eq!(o, Outcome::Hit);
    }

    #[test]
    fn remote_miss_sends_request_and_wakes_frame() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        let o = c.cpu_access(0x40, false, 2, 5, None, |_| 5, &mut out);
        assert_eq!(o, Outcome::Remote);
        let xid = xid_of(&c, 0x40);
        assert_eq!(out, vec![(5, CohMsg::RdReq { block: 0x40, xid })]);
        out.clear();
        let woken = c
            .handle_msg(5, CohMsg::RdReply { block: 0x40, xid }, |_| 5, &mut out)
            .unwrap();
        assert_eq!(woken, vec![2]);
        assert_eq!(c.outstanding(), 0);
        // Now a hit.
        let o = c.cpu_access(0x44, false, 2, 5, None, |_| 5, &mut out);
        assert_eq!(o, Outcome::Hit);
    }

    #[test]
    fn duplicate_requests_coalesce() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 5, None, |_| 5, &mut out);
        c.cpu_access(0x40, false, 1, 5, None, |_| 5, &mut out);
        assert_eq!(out.len(), 1, "one request for two frames");
        let xid = xid_of(&c, 0x40);
        let mut woken = c
            .handle_msg(5, CohMsg::RdReply { block: 0x40, xid }, |_| 5, &mut out)
            .unwrap();
        woken.sort();
        assert_eq!(woken, vec![0, 1]);
    }

    #[test]
    fn read_then_write_upgrades_transaction() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 5, None, |_| 5, &mut out);
        c.cpu_access(0x40, true, 1, 5, None, |_| 5, &mut out);
        let xid = xid_of(&c, 0x40);
        assert_eq!(
            out,
            vec![
                (5, CohMsg::RdReq { block: 0x40, xid }),
                (5, CohMsg::WrReq { block: 0x40, xid })
            ]
        );
        out.clear();
        // RdReply satisfies only the reader.
        let woken = c
            .handle_msg(5, CohMsg::RdReply { block: 0x40, xid }, |_| 5, &mut out)
            .unwrap();
        assert_eq!(woken, vec![0]);
        assert_eq!(c.outstanding(), 1);
        let woken = c
            .handle_msg(5, CohMsg::WrReply { block: 0x40, xid }, |_| 5, &mut out)
            .unwrap();
        assert_eq!(woken, vec![1]);
    }

    #[test]
    fn stale_reply_is_ignored_and_does_not_fill() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 0, 5, None, |_| 5, &mut out);
        let xid = xid_of(&c, 0x40);
        // A reply with the wrong xid (stale from an earlier incarnation)
        // must neither fill the cache nor wake the frame.
        let woken = c
            .handle_msg(
                5,
                CohMsg::WrReply {
                    block: 0x40,
                    xid: xid.wrapping_add(9),
                },
                |_| 5,
                &mut out,
            )
            .unwrap();
        assert!(woken.is_empty());
        assert_eq!(c.cache.probe(0x40), None, "stale reply must not fill");
        assert_eq!(c.outstanding(), 1);
        assert_eq!(c.stats.stale_replies, 1);
        // The real reply still lands.
        let woken = c
            .handle_msg(5, CohMsg::WrReply { block: 0x40, xid }, |_| 5, &mut out)
            .unwrap();
        assert_eq!(woken, vec![0]);
    }

    #[test]
    fn duplicate_reply_after_retirement_is_ignored() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 0, 5, None, |_| 5, &mut out);
        let xid = xid_of(&c, 0x40);
        c.handle_msg(5, CohMsg::WrReply { block: 0x40, xid }, |_| 5, &mut out)
            .unwrap();
        // Consume the pin, downgrade the line away, then replay the
        // reply: it must not resurrect the Modified copy.
        c.cpu_access(0x40, true, 0, 5, None, |_| 5, &mut out);
        c.handle_msg(
            5,
            CohMsg::Inval {
                block: 0x40,
                xid: 77,
            },
            |_| 5,
            &mut out,
        )
        .unwrap();
        assert_eq!(c.cache.probe(0x40), None);
        let woken = c
            .handle_msg(5, CohMsg::WrReply { block: 0x40, xid }, |_| 5, &mut out)
            .unwrap();
        assert!(woken.is_empty());
        assert_eq!(c.cache.probe(0x40), None, "duplicate reply must not refill");
        assert_eq!(c.stats.stale_replies, 1);
    }

    #[test]
    fn overdue_request_is_retransmitted_then_exhausts() {
        let mut c = CacheController::new(
            0,
            CacheConfig {
                size_bytes: 1024,
                block_bytes: 16,
                assoc: 2,
            },
            CtlConfig {
                local_mem_latency: 10,
                retry: RetryConfig {
                    enabled: true,
                    timeout: 50,
                    backoff_cap: 50,
                    max_retries: 2,
                },
            },
        );
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 5, None, |_| 5, &mut out);
        let xid = xid_of(&c, 0x40);
        out.clear();
        c.tick(49, |_| 5, &mut out).unwrap();
        assert!(out.is_empty(), "not overdue yet");
        c.tick(50, |_| 5, &mut out).unwrap();
        assert_eq!(out, vec![(5, CohMsg::RdReq { block: 0x40, xid })]);
        out.clear();
        c.tick(100, |_| 5, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        let err = c.tick(150, |_| 5, &mut out).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::RetriesExhausted {
                node: 0,
                block: 0x40,
                ..
            }
        ));
    }

    #[test]
    fn nack_backs_off_the_retry() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 5, None, |_| 5, &mut out);
        let xid = xid_of(&c, 0x40);
        c.handle_msg(5, CohMsg::Nack { block: 0x40, xid }, |_| 5, &mut out)
            .unwrap();
        assert_eq!(c.stats.nacks, 1);
        assert_eq!(c.outstanding(), 1, "NACK keeps the transaction alive");
        out.clear();
        // The retransmission still happens, just later.
        c.tick(10_000_000, |_| 5, &mut out).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn inval_acks_and_drops_line() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 0, &mut out);
        let woken = c
            .handle_msg(
                3,
                CohMsg::Inval {
                    block: 0x40,
                    xid: 4,
                },
                |_| 0,
                &mut out,
            )
            .unwrap();
        assert!(woken.is_empty());
        assert_eq!(
            out,
            vec![(
                3,
                CohMsg::InvAck {
                    block: 0x40,
                    xid: 4
                }
            )]
        );
        assert_eq!(c.cache.probe(0x40), None);
    }

    #[test]
    fn inval_for_absent_line_still_acks_with_epoch() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.handle_msg(
            3,
            CohMsg::Inval {
                block: 0x80,
                xid: 9,
            },
            |_| 0,
            &mut out,
        )
        .unwrap();
        assert_eq!(
            out,
            vec![(
                3,
                CohMsg::InvAck {
                    block: 0x80,
                    xid: 9
                }
            )]
        );
    }

    #[test]
    fn downgrade_keeps_shared_copy() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 0, 0, Some(&mut dir), |_| 0, &mut out);
        c.handle_msg(
            2,
            CohMsg::DownReq {
                block: 0x40,
                xid: 6,
            },
            |_| 0,
            &mut out,
        )
        .unwrap();
        assert_eq!(
            out,
            vec![(
                2,
                CohMsg::DownAck {
                    block: 0x40,
                    xid: 6
                }
            )]
        );
        assert_eq!(c.cache.probe(0x40), Some(LineState::Shared));
    }

    #[test]
    fn flush_raises_fence_until_acked() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 0, 0, Some(&mut dir), |_| 0, &mut out);
        assert_eq!(c.flush(0x44, |_| 0, &mut out), 1);
        assert_eq!(c.fence_count(), 1);
        let Some(&(
            0,
            CohMsg::FlushData {
                block: 0x40,
                fenced: true,
                xid,
            },
        )) = out.last()
        else {
            panic!("expected a fenced FlushData, got {:?}", out.last());
        };
        c.handle_msg(
            0,
            CohMsg::FlushAck {
                block: 0x40,
                fenced: true,
                xid,
            },
            |_| 0,
            &mut out,
        )
        .unwrap();
        assert_eq!(c.fence_count(), 0);
    }

    #[test]
    fn duplicate_flush_ack_does_not_double_decrement() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 0, 0, Some(&mut dir), |_| 0, &mut out);
        c.cpu_access(0x80, true, 0, 0, Some(&mut dir), |_| 0, &mut out);
        c.flush(0x40, |_| 0, &mut out);
        c.flush(0x80, |_| 0, &mut out);
        assert_eq!(c.fence_count(), 2);
        let acks: Vec<CohMsg> = out
            .iter()
            .filter_map(|&(_, m)| match m {
                CohMsg::FlushData {
                    block,
                    fenced: true,
                    xid,
                } => Some(CohMsg::FlushAck {
                    block,
                    fenced: true,
                    xid,
                }),
                _ => None,
            })
            .collect();
        // The first flush's ack arrives twice (network duplicate).
        c.handle_msg(0, acks[0], |_| 0, &mut out).unwrap();
        c.handle_msg(0, acks[0], |_| 0, &mut out).unwrap();
        assert_eq!(
            c.fence_count(),
            1,
            "duplicate ack must not unblock the fence early"
        );
        c.handle_msg(0, acks[1], |_| 0, &mut out).unwrap();
        assert_eq!(c.fence_count(), 0);
    }

    #[test]
    fn lost_fenced_flush_is_retransmitted() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 0, 0, Some(&mut dir), |_| 0, &mut out);
        c.flush(0x40, |_| 0, &mut out);
        out.clear();
        let t = CtlConfig::default().retry.timeout;
        c.tick(t, |_| 0, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert!(
            matches!(
                out[0],
                (
                    0,
                    CohMsg::FlushData {
                        block: 0x40,
                        fenced: true,
                        ..
                    }
                )
            ),
            "got {:?}",
            out[0]
        );
        assert_eq!(c.stats.retransmits, 1);
    }

    #[test]
    fn clean_flush_is_free() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 0, &mut out);
        out.clear();
        assert_eq!(c.flush(0x40, |_| 0, &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(c.fence_count(), 0);
    }

    #[test]
    fn pinned_fill_defers_requests_until_first_use() {
        // Remote fill for a waiting frame: a DownReq arriving before
        // the frame's retry is deferred (window of vulnerability),
        // then serviced after the first access.
        let mut c = ctl(0);
        let mut out = Vec::new();
        c.cpu_access(0x40, true, 1, 5, None, |_| 5, &mut out);
        let xid = xid_of(&c, 0x40);
        out.clear();
        let woken = c
            .handle_msg(5, CohMsg::WrReply { block: 0x40, xid }, |_| 5, &mut out)
            .unwrap();
        assert_eq!(woken, vec![1]);
        // The steal attempt arrives before the retry: no ack yet.
        let w = c
            .handle_msg(
                5,
                CohMsg::DownReq {
                    block: 0x40,
                    xid: 3,
                },
                |_| 5,
                &mut out,
            )
            .unwrap();
        assert!(w.is_empty());
        assert!(out.is_empty(), "DownReq must be deferred while pinned");
        assert_eq!(c.cache.probe(0x40), Some(LineState::Modified));
        // The woken frame's access consumes the pin and releases the
        // deferred downgrade.
        let o = c.cpu_access(0x44, true, 1, 5, None, |_| 5, &mut out);
        assert_eq!(o, Outcome::Hit);
        assert_eq!(
            out,
            vec![(
                5,
                CohMsg::DownAck {
                    block: 0x40,
                    xid: 3
                }
            )]
        );
        assert_eq!(c.cache.probe(0x40), Some(LineState::Shared));
    }

    #[test]
    fn unpinned_blocks_ack_immediately() {
        let mut c = ctl(0);
        let mut dir = Directory::new();
        let mut out = Vec::new();
        // Local fill (no waiting frame, no pin).
        c.cpu_access(0x40, true, 0, 0, Some(&mut dir), |_| 0, &mut out);
        c.handle_msg(
            3,
            CohMsg::DownReq {
                block: 0x40,
                xid: 2,
            },
            |_| 0,
            &mut out,
        )
        .unwrap();
        assert_eq!(
            out,
            vec![(
                3,
                CohMsg::DownAck {
                    block: 0x40,
                    xid: 2
                }
            )]
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = CacheController::new(
            0,
            CacheConfig {
                size_bytes: 64,
                block_bytes: 16,
                assoc: 1,
            },
            CtlConfig::default(),
        );
        let mut dir = Directory::new();
        let mut out = Vec::new();
        c.cpu_access(0x00, true, 0, 0, Some(&mut dir), |_| 7, &mut out);
        // 0x40 conflicts with 0x00 in a 4-set direct-mapped cache.
        c.cpu_access(0x40, false, 0, 0, Some(&mut dir), |_| 7, &mut out);
        assert!(out.contains(&(
            7,
            CohMsg::FlushData {
                block: 0x00,
                fenced: false,
                xid: 0
            }
        )));
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn request_kind_message_to_controller_errors() {
        let mut c = ctl(0);
        let mut out = Vec::new();
        let err = c
            .handle_msg(3, CohMsg::RdReq { block: 0, xid: 1 }, |_| 0, &mut out)
            .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::UnexpectedMessage {
                node: 0,
                from: 3,
                ..
            }
        ));
    }
}
