//! Word-addressed memory with full/empty bits.
//!
//! "Words in memory have a 32 bit data field, and have an additional
//! synchronization bit called the full/empty bit" (paper, Section 3).
//! [`FeMemory`] is the backing store used both as the ideal shared
//! memory of the Table 3 experiments (it implements
//! [`MemoryPort`] directly, with zero latency) and as the
//! globally-addressed DRAM of the full ALEWIFE machine.
//!
//! The image is *lazy*: words live in 4 KiB chunks allocated on first
//! touch, so a 1000+-node machine whose program touches a few blocks
//! per node costs resident memory proportional to what it touched, not
//! to the address space (DESIGN.md §14). An unallocated chunk reads as
//! the freshly initialized state — zero words, all bits full — and
//! every read-only operation preserves holes (it never allocates).

use april_core::isa::{LoadFlavor, StoreFlavor};
use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
use april_core::program::Program;
use april_core::word::Word;

/// Words per lazily allocated chunk (4 KiB of data).
pub const CHUNK_WORDS: usize = 1024;

/// One resident 4 KiB piece of the memory image. Full/empty bits are
/// packed (set bit = full); a fresh chunk is all-zero words, all-full
/// bits — exactly what an untouched hole reads as.
#[derive(Clone, PartialEq, Eq)]
pub(crate) struct Chunk {
    pub(crate) words: [Word; CHUNK_WORDS],
    pub(crate) fe: [u64; CHUNK_WORDS / 64],
}

impl Chunk {
    pub(crate) fn fresh() -> Box<Chunk> {
        Box::new(Chunk {
            words: [Word::ZERO; CHUNK_WORDS],
            fe: [u64::MAX; CHUNK_WORDS / 64],
        })
    }

    /// Whether the chunk still holds exactly the untouched-hole state.
    /// Snapshot encoding skips such chunks, so the byte stream is a
    /// pure function of memory *content*, independent of which chunks
    /// some scheduler happened to materialize.
    pub(crate) fn is_default(&self) -> bool {
        self.words.iter().all(|w| *w == Word::ZERO) && self.fe.iter().all(|&b| b == u64::MAX)
    }

    #[inline]
    fn fe_bit(&self, w: usize) -> bool {
        self.fe[w / 64] >> (w % 64) & 1 == 1
    }

    #[inline]
    fn set_fe_bit(&mut self, w: usize, full: bool) {
        if full {
            self.fe[w / 64] |= 1 << (w % 64);
        } else {
            self.fe[w / 64] &= !(1 << (w % 64));
        }
    }
}

/// Memory of tagged words, each with a full/empty bit, backed by
/// lazily allocated 4 KiB chunks.
///
/// Addresses are byte addresses; all accesses are word-aligned (the
/// processor traps on misalignment before reaching memory).
///
/// # Examples
///
/// ```
/// use april_mem::femem::FeMemory;
/// use april_core::word::Word;
///
/// let mut m = FeMemory::new(1024);
/// m.write(0x10, Word::fixnum(5));
/// m.set_fe(0x10, false); // mark empty
/// assert_eq!(m.read(0x10), Word::fixnum(5));
/// assert!(!m.fe(0x10));
/// ```
#[derive(Clone)]
pub struct FeMemory {
    pub(crate) len_words: usize,
    pub(crate) chunks: Vec<Option<Box<Chunk>>>,
}

impl std::fmt::Debug for FeMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeMemory")
            .field("len_bytes", &(self.len_words * 4))
            .field("resident_chunks", &self.chunks.iter().flatten().count())
            .finish()
    }
}

impl FeMemory {
    /// Creates a zeroed memory of `bytes` bytes (rounded up to a whole
    /// word). All words start *full*, matching a freshly initialized
    /// machine; synchronization structures are explicitly emptied. No
    /// chunk is resident until written.
    pub fn new(bytes: usize) -> FeMemory {
        let n = bytes.div_ceil(4);
        FeMemory {
            len_words: n,
            chunks: vec![None; n.div_ceil(CHUNK_WORDS)],
        }
    }

    /// Memory size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.len_words * 4
    }

    /// Bytes resident in materialized chunks — the scale bench's
    /// memory-footprint metric. Untouched holes cost nothing.
    pub fn resident_bytes(&self) -> usize {
        self.chunks.iter().flatten().count() * std::mem::size_of::<Chunk>()
    }

    #[inline]
    fn index(&self, addr: u32) -> usize {
        debug_assert_eq!(addr & 3, 0, "unaligned access reached memory: {addr:#x}");
        let i = (addr >> 2) as usize;
        assert!(i < self.len_words, "address {addr:#x} out of memory bounds");
        i
    }

    /// The chunk containing word `i`, materializing it on first touch.
    #[inline]
    fn chunk_mut(&mut self, i: usize) -> (&mut Chunk, usize) {
        let slot = &mut self.chunks[i / CHUNK_WORDS];
        (slot.get_or_insert_with(Chunk::fresh), i % CHUNK_WORDS)
    }

    /// Reads the word at `addr`. Never allocates: holes read as zero.
    pub fn read(&self, addr: u32) -> Word {
        let i = self.index(addr);
        match &self.chunks[i / CHUNK_WORDS] {
            Some(c) => c.words[i % CHUNK_WORDS],
            None => Word::ZERO,
        }
    }

    /// Writes the word at `addr` (does not touch the full/empty bit).
    pub fn write(&mut self, addr: u32, w: Word) {
        let i = self.index(addr);
        let (c, k) = self.chunk_mut(i);
        c.words[k] = w;
    }

    /// Reads the full/empty bit at `addr`. Never allocates: holes read
    /// as full.
    pub fn fe(&self, addr: u32) -> bool {
        let i = self.index(addr);
        match &self.chunks[i / CHUNK_WORDS] {
            Some(c) => c.fe_bit(i % CHUNK_WORDS),
            None => true,
        }
    }

    /// Sets the full/empty bit at `addr`.
    pub fn set_fe(&mut self, addr: u32, full: bool) {
        let i = self.index(addr);
        let (c, k) = self.chunk_mut(i);
        c.set_fe_bit(k, full);
    }

    /// The word and full/empty bit at `addr` as one snapshot; the unit
    /// of the write logs that keep parallel shard replicas coherent.
    pub fn word_state(&self, addr: u32) -> (Word, bool) {
        let i = self.index(addr);
        match &self.chunks[i / CHUNK_WORDS] {
            Some(c) => (c.words[i % CHUNK_WORDS], c.fe_bit(i % CHUNK_WORDS)),
            None => (Word::ZERO, true),
        }
    }

    /// Overwrites both the word and the full/empty bit at `addr`.
    /// Replay primitive for cross-shard write logs: the coherence
    /// protocol guarantees one writer per word per window, so applying
    /// logged `(addr, word, fe)` snapshots in any order between windows
    /// reproduces the sequential memory image.
    pub fn set_word_state(&mut self, addr: u32, w: Word, full: bool) {
        let i = self.index(addr);
        let (c, k) = self.chunk_mut(i);
        c.words[k] = w;
        c.set_fe_bit(k, full);
    }

    /// Loads a program's static data image.
    pub fn load_image(&mut self, prog: &Program) {
        for (k, &(w, full)) in prog.static_data.iter().enumerate() {
            let addr = prog.static_base + 4 * k as u32;
            self.write(addr, w);
            self.set_fe(addr, full);
        }
    }

    /// Applies a load with full/empty-bit semantics at zero latency,
    /// returning `None` if the flavor demands an empty-location trap.
    /// Only a flavor that consumes the bit materializes a chunk.
    pub fn apply_load(&mut self, addr: u32, flavor: LoadFlavor) -> Option<(Word, bool)> {
        let i = self.index(addr);
        let (word, fe) = match &self.chunks[i / CHUNK_WORDS] {
            Some(c) => (c.words[i % CHUNK_WORDS], c.fe_bit(i % CHUNK_WORDS)),
            None => (Word::ZERO, true),
        };
        if flavor.fe_trap && !fe {
            return None;
        }
        if flavor.reset_fe {
            let (c, k) = self.chunk_mut(i);
            c.set_fe_bit(k, false);
        }
        Some((word, fe))
    }

    /// Applies a store with full/empty-bit semantics, returning `None`
    /// if the flavor demands a full-location trap. A trapped store
    /// does not materialize a chunk.
    pub fn apply_store(&mut self, addr: u32, value: Word, flavor: StoreFlavor) -> Option<bool> {
        let i = self.index(addr);
        let fe = match &self.chunks[i / CHUNK_WORDS] {
            Some(c) => c.fe_bit(i % CHUNK_WORDS),
            None => true,
        };
        if flavor.fe_trap && fe {
            return None;
        }
        let (c, k) = self.chunk_mut(i);
        c.words[k] = value;
        if flavor.set_fe {
            c.set_fe_bit(k, true);
        }
        Some(fe)
    }
}

/// The ideal memory port: every access hits with zero latency. This is
/// the configuration the paper used for Table 3 ("the processor
/// simulator without the cache and network simulators, in effect
/// simulating a shared-memory machine with no memory latency").
impl MemoryPort for FeMemory {
    fn load(&mut self, addr: u32, flavor: LoadFlavor, _ctx: AccessCtx) -> LoadReply {
        match self.apply_load(addr, flavor) {
            Some((word, fe)) => LoadReply::Data { word, fe },
            None => LoadReply::FeViolation,
        }
    }

    fn store(
        &mut self,
        addr: u32,
        value: Word,
        flavor: StoreFlavor,
        _ctx: AccessCtx,
    ) -> StoreReply {
        match self.apply_store(addr, value, flavor) {
            Some(fe) => StoreReply::Done { fe },
            None => StoreReply::FeViolation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = FeMemory::new(256);
        m.write(0, Word::fixnum(1));
        m.write(252, Word::cons_ptr(8));
        assert_eq!(m.read(0), Word::fixnum(1));
        assert_eq!(m.read(252), Word::cons_ptr(8));
    }

    #[test]
    fn words_start_full() {
        let m = FeMemory::new(64);
        assert!(m.fe(0));
        assert!(m.fe(60));
    }

    #[test]
    #[should_panic(expected = "out of memory bounds")]
    fn out_of_bounds_panics() {
        let m = FeMemory::new(64);
        let _ = m.read(64);
    }

    #[test]
    fn trapping_load_on_empty_returns_none() {
        let mut m = FeMemory::new(64);
        m.set_fe(8, false);
        let f = LoadFlavor::from_mnemonic("ldtw").unwrap();
        assert_eq!(m.apply_load(8, f), None);
        // Non-trapping load reports the bit instead.
        let n = LoadFlavor::from_mnemonic("ldnw").unwrap();
        assert_eq!(m.apply_load(8, n), Some((Word::ZERO, false)));
    }

    #[test]
    fn reset_load_takes_the_word() {
        let mut m = FeMemory::new(64);
        m.write(8, Word::fixnum(7));
        let f = LoadFlavor::from_mnemonic("ldett").unwrap();
        // First take succeeds and empties.
        assert_eq!(m.apply_load(8, f), Some((Word::fixnum(7), true)));
        assert!(!m.fe(8));
        // Second take traps: mutual exclusion via full/empty bit.
        assert_eq!(m.apply_load(8, f), None);
    }

    #[test]
    fn setting_store_fills_and_traps_when_full() {
        let mut m = FeMemory::new(64);
        m.set_fe(8, false);
        let f = StoreFlavor::from_mnemonic("stftt").unwrap();
        assert_eq!(m.apply_store(8, Word::fixnum(3), f), Some(false));
        assert!(m.fe(8));
        // Producing into a full slot traps.
        assert_eq!(m.apply_store(8, Word::fixnum(4), f), None);
        assert_eq!(m.read(8), Word::fixnum(3), "trapped store must not write");
    }

    #[test]
    fn plain_store_ignores_fe() {
        let mut m = FeMemory::new(64);
        assert_eq!(
            m.apply_store(8, Word::fixnum(3), StoreFlavor::NORMAL),
            Some(true)
        );
        assert!(m.fe(8), "plain store leaves the bit alone");
    }

    #[test]
    fn load_image_places_static_data() {
        let prog = Program {
            static_base: 0x20,
            static_data: vec![(Word::fixnum(1), true), (Word::fixnum(2), false)],
            ..Program::default()
        };
        let mut m = FeMemory::new(256);
        m.load_image(&prog);
        assert_eq!(m.read(0x20), Word::fixnum(1));
        assert!(!m.fe(0x24));
    }

    #[test]
    fn untouched_chunks_stay_holes() {
        let mut m = FeMemory::new(64 * 1024);
        assert_eq!(m.resident_bytes(), 0);
        // Reads, bit probes, trapped stores, and plain loads never
        // materialize a chunk.
        assert_eq!(m.read(0x8000), Word::ZERO);
        assert!(m.fe(0x8000));
        assert_eq!(m.word_state(0x8000), (Word::ZERO, true));
        let f = StoreFlavor::from_mnemonic("stftt").unwrap();
        assert_eq!(m.apply_store(0x8000, Word::fixnum(1), f), None);
        let ld = LoadFlavor::from_mnemonic("ldnw").unwrap();
        assert_eq!(m.apply_load(0x8000, ld), Some((Word::ZERO, true)));
        assert_eq!(m.resident_bytes(), 0);
        // One write materializes exactly one chunk.
        m.write(0x8000, Word::fixnum(9));
        assert_eq!(m.resident_bytes(), std::mem::size_of::<Chunk>());
        assert_eq!(m.read(0x8000), Word::fixnum(9));
        // A consuming load on a hole materializes (it flips the bit).
        let take = LoadFlavor::from_mnemonic("ldett").unwrap();
        assert_eq!(m.apply_load(0x1000, take), Some((Word::ZERO, true)));
        assert!(!m.fe(0x1000));
    }

    #[test]
    fn last_partial_chunk_is_addressable() {
        let mut m = FeMemory::new(4100); // 1025 words: one full + 1-word chunk
        m.write(4096, Word::fixnum(5));
        assert_eq!(m.read(4096), Word::fixnum(5));
        assert_eq!(m.len_bytes(), 4100);
    }
}
