//! Word-addressed memory with full/empty bits.
//!
//! "Words in memory have a 32 bit data field, and have an additional
//! synchronization bit called the full/empty bit" (paper, Section 3).
//! [`FeMemory`] is the backing store used both as the ideal shared
//! memory of the Table 3 experiments (it implements
//! [`MemoryPort`] directly, with zero latency) and as the
//! globally-addressed DRAM of the full ALEWIFE machine.

use april_core::isa::{LoadFlavor, StoreFlavor};
use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
use april_core::program::Program;
use april_core::word::Word;

/// Flat memory of tagged words, each with a full/empty bit.
///
/// Addresses are byte addresses; all accesses are word-aligned (the
/// processor traps on misalignment before reaching memory).
///
/// # Examples
///
/// ```
/// use april_mem::femem::FeMemory;
/// use april_core::word::Word;
///
/// let mut m = FeMemory::new(1024);
/// m.write(0x10, Word::fixnum(5));
/// m.set_fe(0x10, false); // mark empty
/// assert_eq!(m.read(0x10), Word::fixnum(5));
/// assert!(!m.fe(0x10));
/// ```
#[derive(Debug, Clone)]
pub struct FeMemory {
    pub(crate) words: Vec<Word>,
    pub(crate) fe: Vec<bool>,
}

impl FeMemory {
    /// Creates a zeroed memory of `bytes` bytes (rounded up to a whole
    /// word). All words start *full*, matching a freshly initialized
    /// machine; synchronization structures are explicitly emptied.
    pub fn new(bytes: usize) -> FeMemory {
        let n = bytes.div_ceil(4);
        FeMemory {
            words: vec![Word::ZERO; n],
            fe: vec![true; n],
        }
    }

    /// Memory size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 4
    }

    fn index(&self, addr: u32) -> usize {
        debug_assert_eq!(addr & 3, 0, "unaligned access reached memory: {addr:#x}");
        let i = (addr >> 2) as usize;
        assert!(
            i < self.words.len(),
            "address {addr:#x} out of memory bounds"
        );
        i
    }

    /// Reads the word at `addr`.
    pub fn read(&self, addr: u32) -> Word {
        self.words[self.index(addr)]
    }

    /// Writes the word at `addr` (does not touch the full/empty bit).
    pub fn write(&mut self, addr: u32, w: Word) {
        let i = self.index(addr);
        self.words[i] = w;
    }

    /// Reads the full/empty bit at `addr`.
    pub fn fe(&self, addr: u32) -> bool {
        self.fe[self.index(addr)]
    }

    /// Sets the full/empty bit at `addr`.
    pub fn set_fe(&mut self, addr: u32, full: bool) {
        let i = self.index(addr);
        self.fe[i] = full;
    }

    /// The word and full/empty bit at `addr` as one snapshot; the unit
    /// of the write logs that keep parallel shard replicas coherent.
    pub fn word_state(&self, addr: u32) -> (Word, bool) {
        let i = self.index(addr);
        (self.words[i], self.fe[i])
    }

    /// Overwrites both the word and the full/empty bit at `addr`.
    /// Replay primitive for cross-shard write logs: the coherence
    /// protocol guarantees one writer per word per window, so applying
    /// logged `(addr, word, fe)` snapshots in any order between windows
    /// reproduces the sequential memory image.
    pub fn set_word_state(&mut self, addr: u32, w: Word, full: bool) {
        let i = self.index(addr);
        self.words[i] = w;
        self.fe[i] = full;
    }

    /// Loads a program's static data image.
    pub fn load_image(&mut self, prog: &Program) {
        for (k, &(w, full)) in prog.static_data.iter().enumerate() {
            let addr = prog.static_base + 4 * k as u32;
            self.write(addr, w);
            self.set_fe(addr, full);
        }
    }

    /// Applies a load with full/empty-bit semantics at zero latency,
    /// returning `None` if the flavor demands an empty-location trap.
    pub fn apply_load(&mut self, addr: u32, flavor: LoadFlavor) -> Option<(Word, bool)> {
        let i = self.index(addr);
        let fe = self.fe[i];
        if flavor.fe_trap && !fe {
            return None;
        }
        if flavor.reset_fe {
            self.fe[i] = false;
        }
        Some((self.words[i], fe))
    }

    /// Applies a store with full/empty-bit semantics, returning `None`
    /// if the flavor demands a full-location trap.
    pub fn apply_store(&mut self, addr: u32, value: Word, flavor: StoreFlavor) -> Option<bool> {
        let i = self.index(addr);
        let fe = self.fe[i];
        if flavor.fe_trap && fe {
            return None;
        }
        self.words[i] = value;
        if flavor.set_fe {
            self.fe[i] = true;
        }
        Some(fe)
    }
}

/// The ideal memory port: every access hits with zero latency. This is
/// the configuration the paper used for Table 3 ("the processor
/// simulator without the cache and network simulators, in effect
/// simulating a shared-memory machine with no memory latency").
impl MemoryPort for FeMemory {
    fn load(&mut self, addr: u32, flavor: LoadFlavor, _ctx: AccessCtx) -> LoadReply {
        match self.apply_load(addr, flavor) {
            Some((word, fe)) => LoadReply::Data { word, fe },
            None => LoadReply::FeViolation,
        }
    }

    fn store(
        &mut self,
        addr: u32,
        value: Word,
        flavor: StoreFlavor,
        _ctx: AccessCtx,
    ) -> StoreReply {
        match self.apply_store(addr, value, flavor) {
            Some(fe) => StoreReply::Done { fe },
            None => StoreReply::FeViolation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = FeMemory::new(256);
        m.write(0, Word::fixnum(1));
        m.write(252, Word::cons_ptr(8));
        assert_eq!(m.read(0), Word::fixnum(1));
        assert_eq!(m.read(252), Word::cons_ptr(8));
    }

    #[test]
    fn words_start_full() {
        let m = FeMemory::new(64);
        assert!(m.fe(0));
        assert!(m.fe(60));
    }

    #[test]
    #[should_panic(expected = "out of memory bounds")]
    fn out_of_bounds_panics() {
        let m = FeMemory::new(64);
        let _ = m.read(64);
    }

    #[test]
    fn trapping_load_on_empty_returns_none() {
        let mut m = FeMemory::new(64);
        m.set_fe(8, false);
        let f = LoadFlavor::from_mnemonic("ldtw").unwrap();
        assert_eq!(m.apply_load(8, f), None);
        // Non-trapping load reports the bit instead.
        let n = LoadFlavor::from_mnemonic("ldnw").unwrap();
        assert_eq!(m.apply_load(8, n), Some((Word::ZERO, false)));
    }

    #[test]
    fn reset_load_takes_the_word() {
        let mut m = FeMemory::new(64);
        m.write(8, Word::fixnum(7));
        let f = LoadFlavor::from_mnemonic("ldett").unwrap();
        // First take succeeds and empties.
        assert_eq!(m.apply_load(8, f), Some((Word::fixnum(7), true)));
        assert!(!m.fe(8));
        // Second take traps: mutual exclusion via full/empty bit.
        assert_eq!(m.apply_load(8, f), None);
    }

    #[test]
    fn setting_store_fills_and_traps_when_full() {
        let mut m = FeMemory::new(64);
        m.set_fe(8, false);
        let f = StoreFlavor::from_mnemonic("stftt").unwrap();
        assert_eq!(m.apply_store(8, Word::fixnum(3), f), Some(false));
        assert!(m.fe(8));
        // Producing into a full slot traps.
        assert_eq!(m.apply_store(8, Word::fixnum(4), f), None);
        assert_eq!(m.read(8), Word::fixnum(3), "trapped store must not write");
    }

    #[test]
    fn plain_store_ignores_fe() {
        let mut m = FeMemory::new(64);
        assert_eq!(
            m.apply_store(8, Word::fixnum(3), StoreFlavor::NORMAL),
            Some(true)
        );
        assert!(m.fe(8), "plain store leaves the bit alone");
    }

    #[test]
    fn load_image_places_static_data() {
        let prog = Program {
            static_base: 0x20,
            static_data: vec![(Word::fixnum(1), true), (Word::fixnum(2), false)],
            ..Program::default()
        };
        let mut m = FeMemory::new(256);
        m.load_image(&prog);
        assert_eq!(m.read(0x20), Word::fixnum(1));
        assert!(!m.fe(0x24));
    }
}
