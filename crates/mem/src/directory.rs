//! The home-side directory protocol engine.
//!
//! Each node's directory tracks, for every memory block whose home is
//! that node, the set of caches holding it — the full-map,
//! invalidation-based scheme of Chaiken, Fields, Kurihara and Agarwal
//! (the paper's reference \[5\]), which ALEWIFE distributes with the
//! processing nodes (Section 2).
//!
//! The directory is a message transducer: [`Directory::handle_request`]
//! and [`Directory::handle_ack`] consume protocol messages and return
//! the messages to send in response. While a block is *busy* (waiting
//! for invalidation or write-back acknowledgments), further requests
//! queue in arrival order, guaranteeing freedom from protocol livelock;
//! the queue is bounded, and overflowing requests are refused with a
//! [`CohMsg::Nack`] so the requester retries with backoff.
//!
//! The engine is hardened against an unreliable network:
//!
//! * each busy episode gets a fresh *epoch*, carried by the
//!   invalidation/write-back demands it sends and echoed by their acks,
//!   so delayed duplicate acks from an earlier episode are ignored;
//! * outstanding acks are tracked per target node (not as a bare
//!   count), so a duplicated ack cannot be counted twice;
//! * unanswered demands are retransmitted with bounded exponential
//!   backoff from [`Directory::tick`] (controllers acknowledge demands
//!   for lines they no longer hold, so retransmission is idempotent).

// Protocol hot path: failures must surface as typed errors, not tear
// down the simulator on the first injected fault.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
use crate::error::{ProtocolError, RetryConfig};
use crate::msg::CohMsg;
use april_obs::{EventKind, Probe};
use std::collections::{HashMap, VecDeque};

/// How a directory represents the sharer set of a block, in the
/// taxonomy of Chaiken et al.: Dir_n (full-map), Dir_i B (limited
/// pointers, broadcast on overflow), and Dir_i CV (limited pointers,
/// coarse vector on overflow). The sparse kinds bound per-block state
/// to O(i) or O(N/region) instead of O(N), which is what makes the
/// paper's 1000+-node configurations memory-feasible (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectoryKind {
    /// Precise unbounded sharer list — the reference scheme of the
    /// paper's \[5\] and the exact seed behavior.
    FullMap,
    /// Up to `min(ptrs, INLINE_PTRS)` precise inline pointers; on
    /// overflow the set degrades to *broadcast*: a write invalidates
    /// every node (controllers ack demands for lines they do not hold,
    /// so the broadcast is idempotent and protocol-correct).
    LimitedPtr {
        /// Inline pointer budget (clamped to [`INLINE_PTRS`]).
        ptrs: u8,
    },
    /// Up to [`INLINE_PTRS`] precise inline pointers; on overflow the
    /// set degrades to a coarse bit vector with `region` consecutive
    /// nodes per bit — invalidations go to whole regions.
    CoarseVector {
        /// Nodes per coarse-vector bit (must be nonzero).
        region: u16,
    },
}

/// Inline pointer capacity of a [`SharerSet`]: precise sharer sets up
/// to this size live in the directory entry itself, with no heap
/// allocation, under every [`DirectoryKind`].
pub const INLINE_PTRS: usize = 8;

/// The representation behind a [`SharerSet`]. Precise sets keep
/// insertion order (the seed's `Vec<usize>` semantics, which fixes the
/// invalidation send order); the canonical form of a precise set is
/// `Inline` whenever it fits, so equal memberships compare and encode
/// equal regardless of history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SharerRepr {
    /// Precise, inline, insertion-ordered: `ids[..n]`.
    Inline { n: u8, ids: [u32; INLINE_PTRS] },
    /// Precise spill for [`DirectoryKind::FullMap`] sets that outgrow
    /// the inline array; still insertion-ordered.
    Spill(Vec<u32>),
    /// Coarse vector: bit `g` covers nodes `g*region .. (g+1)*region`.
    /// Over-approximates membership; single-node removal is a no-op.
    Coarse { region: u16, bits: Box<[u64]> },
    /// Broadcast: every node is presumed a sharer.
    All,
}

/// A block's sharer set under some [`DirectoryKind`] (DESIGN.md §14).
///
/// Precise while it fits inline; what happens on overflow is the
/// directory kind's policy, supplied per operation so the set itself
/// stays one word-aligned value with no back-pointer to configuration.
/// The coarse and broadcast forms over-approximate: they may name
/// nodes that hold nothing, which is safe because invalidations are
/// acknowledged regardless, and they ignore single-node removals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharerSet {
    pub(crate) repr: SharerRepr,
}

impl SharerSet {
    /// The set containing exactly `node`.
    pub fn one(node: usize) -> SharerSet {
        SharerSet::of(&[node])
    }

    /// A precise set with the given members in the given order.
    /// Intended for tests and snapshot decoding; does not deduplicate.
    pub fn of(nodes: &[usize]) -> SharerSet {
        if nodes.len() <= INLINE_PTRS {
            let mut ids = [0u32; INLINE_PTRS];
            for (slot, &n) in ids.iter_mut().zip(nodes) {
                *slot = n as u32;
            }
            SharerSet {
                repr: SharerRepr::Inline {
                    n: nodes.len() as u8,
                    ids,
                },
            }
        } else {
            SharerSet {
                repr: SharerRepr::Spill(nodes.iter().map(|&n| n as u32).collect()),
            }
        }
    }

    /// The members as a precise ordered list, or `None` once the set
    /// has degraded to a coarse or broadcast over-approximation.
    pub fn as_list(&self) -> Option<&[u32]> {
        match &self.repr {
            SharerRepr::Inline { n, ids } => Some(&ids[..*n as usize]),
            SharerRepr::Spill(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the set has overflowed into an imprecise representation.
    pub fn is_imprecise(&self) -> bool {
        matches!(self.repr, SharerRepr::Coarse { .. } | SharerRepr::All)
    }

    /// Membership test (conservative: imprecise forms may say yes for
    /// nodes that hold nothing).
    pub fn contains(&self, node: usize) -> bool {
        match &self.repr {
            SharerRepr::Inline { n, ids } => ids[..*n as usize].contains(&(node as u32)),
            SharerRepr::Spill(v) => v.contains(&(node as u32)),
            SharerRepr::Coarse { region, bits } => {
                let g = node / *region as usize;
                bits.get(g / 64).is_some_and(|w| w >> (g % 64) & 1 == 1)
            }
            SharerRepr::All => true,
        }
    }

    /// True when the set is certainly empty. Imprecise forms never
    /// report empty (they cannot prove it).
    pub fn is_known_empty(&self) -> bool {
        match &self.repr {
            SharerRepr::Inline { n, .. } => *n == 0,
            SharerRepr::Spill(v) => v.is_empty(),
            _ => false,
        }
    }

    /// True when `node` is provably the only sharer — the write
    /// fast-path test. Imprecise forms answer false (conservative).
    pub fn sole_sharer_is(&self, node: usize) -> bool {
        self.as_list()
            .is_some_and(|l| l.iter().all(|&n| n == node as u32))
    }

    /// Adds `node` under `kind`'s overflow policy (`num_nodes` sizes a
    /// coarse vector at the moment of overflow). Returns true when this
    /// insertion overflowed a precise set into an imprecise one.
    pub fn insert(&mut self, node: usize, kind: DirectoryKind, num_nodes: usize) -> bool {
        if self.contains(node) {
            return false;
        }
        match &mut self.repr {
            SharerRepr::Inline { n, ids } => {
                let cap = match kind {
                    DirectoryKind::FullMap | DirectoryKind::CoarseVector { .. } => INLINE_PTRS,
                    DirectoryKind::LimitedPtr { ptrs } => (ptrs as usize).clamp(1, INLINE_PTRS),
                };
                if (*n as usize) < cap {
                    ids[*n as usize] = node as u32;
                    *n += 1;
                    return false;
                }
                // Overflow: the kind decides what the set becomes.
                match kind {
                    DirectoryKind::FullMap => {
                        let mut v: Vec<u32> = ids[..*n as usize].to_vec();
                        v.push(node as u32);
                        self.repr = SharerRepr::Spill(v);
                        false
                    }
                    DirectoryKind::LimitedPtr { .. } => {
                        self.repr = SharerRepr::All;
                        true
                    }
                    DirectoryKind::CoarseVector { region } => {
                        let region = region.max(1);
                        let groups = num_nodes.div_ceil(region as usize).max(1);
                        let mut bits = vec![0u64; groups.div_ceil(64)].into_boxed_slice();
                        for &id in ids[..*n as usize].iter().chain([node as u32].iter()) {
                            let g = id as usize / region as usize;
                            bits[g / 64] |= 1 << (g % 64);
                        }
                        self.repr = SharerRepr::Coarse { region, bits };
                        true
                    }
                }
            }
            SharerRepr::Spill(v) => {
                v.push(node as u32);
                false
            }
            SharerRepr::Coarse { region, bits } => {
                let g = node / *region as usize;
                if let Some(w) = bits.get_mut(g / 64) {
                    *w |= 1 << (g % 64);
                }
                false
            }
            SharerRepr::All => false,
        }
    }

    /// Removes `node` from a precise set (order-preserving); a no-op on
    /// imprecise forms, which cannot un-name a node.
    pub fn remove(&mut self, node: usize) {
        match &mut self.repr {
            SharerRepr::Inline { n, ids } => {
                let len = *n as usize;
                if let Some(i) = ids[..len].iter().position(|&x| x == node as u32) {
                    ids.copy_within(i + 1..len, i);
                    *n -= 1;
                }
            }
            SharerRepr::Spill(v) => {
                v.retain(|&x| x != node as u32);
                if v.len() <= INLINE_PTRS {
                    // Canonical form: precise sets live inline whenever
                    // they fit, so equal memberships encode equal.
                    *self = SharerSet::of(&v.iter().map(|&x| x as usize).collect::<Vec<_>>());
                }
            }
            SharerRepr::Coarse { .. } | SharerRepr::All => {}
        }
    }

    /// Appends the invalidation targets — every (presumed) sharer
    /// except `exclude` — onto `out`. Precise sets keep insertion
    /// order (the seed behavior); imprecise sets enumerate ascending.
    pub fn targets_into(&self, exclude: usize, num_nodes: usize, out: &mut Vec<usize>) {
        match &self.repr {
            SharerRepr::Inline { .. } | SharerRepr::Spill(_) => {
                if let Some(l) = self.as_list() {
                    out.extend(l.iter().map(|&n| n as usize).filter(|&n| n != exclude));
                }
            }
            SharerRepr::Coarse { region, bits } => {
                let region = *region as usize;
                for g in 0..bits.len() * 64 {
                    if bits[g / 64] >> (g % 64) & 1 == 0 {
                        continue;
                    }
                    let lo = g * region;
                    let hi = ((g + 1) * region).min(num_nodes);
                    out.extend((lo..hi).filter(|&n| n != exclude));
                }
            }
            SharerRepr::All => out.extend((0..num_nodes).filter(|&n| n != exclude)),
        }
    }

    /// Heap bytes resident behind this set (zero for inline, coarse
    /// bit-vector words for coarse, the spill vector for full-map) —
    /// the per-block term of [`Directory::state_bytes`].
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            SharerRepr::Inline { .. } | SharerRepr::All => 0,
            SharerRepr::Spill(v) => v.len() * std::mem::size_of::<u32>(),
            SharerRepr::Coarse { bits, .. } => bits.len() * std::mem::size_of::<u64>(),
        }
    }
}

/// Sharing state of one block at its home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the block.
    Uncached,
    /// Read-only copies at the nodes in the sharer set.
    Shared(SharerSet),
    /// One cache holds the block read-write.
    Exclusive(usize),
}

/// Which demand message a busy episode is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BusyKind {
    Inval,
    Down,
    WbInval,
}

impl BusyKind {
    fn message(self, block: u32, epoch: u32) -> CohMsg {
        match self {
            BusyKind::Inval => CohMsg::Inval { block, xid: epoch },
            BusyKind::Down => CohMsg::DownReq { block, xid: epoch },
            BusyKind::WbInval => CohMsg::WbInvalReq { block, xid: epoch },
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Busy {
    pub(crate) requester: usize,
    /// The requester's transaction id, echoed in the eventual reply.
    pub(crate) req_xid: u32,
    pub(crate) write: bool,
    pub(crate) kind: BusyKind,
    /// This episode's epoch: demands carry it, acks must echo it.
    pub(crate) epoch: u32,
    /// Nodes whose acknowledgment is still outstanding.
    pub(crate) pending: Vec<usize>,
    pub(crate) retries: u32,
    pub(crate) next_retry: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct DirEntry {
    pub(crate) state: DirState,
    /// Boxed because busy episodes are rare (at most a handful in
    /// flight machine-wide) while entries are plentiful at 1000+
    /// nodes: the common idle entry pays one pointer, not the whole
    /// episode record.
    pub(crate) busy: Option<Box<Busy>>,
    pub(crate) waiters: VecDeque<(usize, bool, u32)>,
}

impl Default for DirEntry {
    fn default() -> DirEntry {
        DirEntry {
            state: DirState::Uncached,
            busy: None,
            waiters: VecDeque::new(),
        }
    }
}

/// Payload codes for `DirTransition` trace events (register `b`).
pub mod transition {
    /// A read was served; the block is (or stays) Shared.
    pub const READ_GRANT: u64 = 0;
    /// A write was served immediately; the block is Exclusive.
    pub const WRITE_GRANT: u64 = 1;
    /// A busy episode began: downgrading an exclusive owner.
    pub const BUSY_DOWN: u64 = 2;
    /// A busy episode began: invalidating sharers for a writer.
    pub const BUSY_INVAL: u64 = 3;
    /// A busy episode began: write-back-invalidating an owner.
    pub const BUSY_WBINVAL: u64 = 4;
    /// A busy episode completed; the block is Exclusive.
    pub const RESOLVED_WRITE: u64 = 5;
    /// A busy episode completed; the block is Shared.
    pub const RESOLVED_READ: u64 = 6;
}

/// Directory policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirConfig {
    /// Requests queued behind a busy block before newcomers are NACKed.
    pub max_waiters: usize,
    /// Retransmission policy for unanswered demands.
    pub retry: RetryConfig,
    /// Sharer-set representation (full-map is the exact seed behavior;
    /// the sparse kinds bound per-block state, DESIGN.md §14).
    pub kind: DirectoryKind,
}

impl Default for DirConfig {
    fn default() -> DirConfig {
        DirConfig {
            max_waiters: 64,
            retry: RetryConfig::default(),
            kind: DirectoryKind::FullMap,
        }
    }
}

/// Directory event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Read requests served.
    pub read_reqs: u64,
    /// Write requests served.
    pub write_reqs: u64,
    /// Invalidation messages sent.
    pub invals_sent: u64,
    /// Write-back / downgrade requests sent to owners.
    pub wb_reqs_sent: u64,
    /// Requests deferred behind a busy block.
    pub deferred: u64,
    /// Requests refused because the waiter queue was full.
    pub nacks: u64,
    /// Demand messages retransmitted.
    pub retransmits: u64,
    /// Duplicate or stale acknowledgments ignored.
    pub stale_acks: u64,
    /// Precise sharer sets degraded to broadcast or coarse form
    /// (always zero under [`DirectoryKind::FullMap`]).
    pub overflows: u64,
}

impl DirStats {
    /// Sum of all counters — a cheap progress signature for the
    /// machine's forward-progress watchdog.
    pub fn total(&self) -> u64 {
        self.read_reqs
            + self.write_reqs
            + self.invals_sent
            + self.wb_reqs_sent
            + self.deferred
            + self.nacks
            + self.retransmits
            + self.stale_acks
            + self.overflows
    }

    /// Field-wise accumulation of `other` into `self`, for
    /// machine-wide aggregates over per-node directories.
    pub fn merge(&mut self, other: &DirStats) {
        self.read_reqs += other.read_reqs;
        self.write_reqs += other.write_reqs;
        self.invals_sent += other.invals_sent;
        self.wb_reqs_sent += other.wb_reqs_sent;
        self.deferred += other.deferred;
        self.nacks += other.nacks;
        self.retransmits += other.retransmits;
        self.stale_acks += other.stale_acks;
        self.overflows += other.overflows;
    }
}

/// A node's directory: protocol state for the blocks it is home to.
#[derive(Debug, Clone)]
pub struct Directory {
    pub(crate) entries: HashMap<u32, DirEntry>,
    pub(crate) cfg: DirConfig,
    /// Machine size: sizes coarse vectors at overflow time and bounds
    /// broadcast invalidations. Zero only under [`Directory::default`],
    /// which is full-map and never broadcasts.
    pub(crate) nodes: usize,
    pub(crate) epoch_counter: u32,
    pub(crate) clock: u64,
    /// Lower bound on the earliest `next_retry` over all busy episodes.
    /// Maintained incrementally when an episode begins and never raised
    /// on completion (a stale bound costs at most one wasted scan);
    /// [`Directory::tick`] recomputes the exact minimum whenever it
    /// scans, so between deadlines it is O(1).
    pub(crate) next_deadline: u64,
    /// Number of blocks with a busy episode in flight, kept in sync so
    /// the machine's per-cycle pending-work probe is O(1).
    pub(crate) busy_ct: usize,
    /// Event counters.
    pub stats: DirStats,
    /// Trace recorder for this directory's lane (inert by default).
    pub(crate) probe: Probe,
}

impl Default for Directory {
    fn default() -> Directory {
        Directory {
            entries: HashMap::default(),
            cfg: DirConfig::default(),
            nodes: 0,
            epoch_counter: 0,
            clock: 0,
            next_deadline: u64::MAX,
            busy_ct: 0,
            stats: DirStats::default(),
            probe: Probe::default(),
        }
    }
}

impl Directory {
    /// Creates an empty directory with default policy.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Creates an empty directory with the given policy for a machine
    /// of `num_nodes` nodes. The node count sizes coarse vectors and
    /// bounds broadcast invalidations, so the sparse
    /// [`DirectoryKind`]s require it to be accurate; full-map ignores
    /// it.
    pub fn with_config(cfg: DirConfig, num_nodes: usize) -> Directory {
        Directory {
            cfg,
            nodes: num_nodes,
            ..Directory::default()
        }
    }

    /// Installs a trace recorder for this directory's lane.
    pub fn attach_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The directory's trace recorder.
    pub fn trace_probe(&self) -> &Probe {
        &self.probe
    }

    /// Current sharing state of `block`. Clones the sharer vector, so
    /// this is for tests, probes and post-mortems — not the hot path.
    pub fn state(&self, block: u32) -> DirState {
        self.entries
            .get(&block)
            .map(|e| e.state.clone())
            .unwrap_or(DirState::Uncached)
    }

    /// True if `block` has a transaction in flight.
    pub fn is_busy(&self, block: u32) -> bool {
        self.entries.get(&block).is_some_and(|e| e.busy.is_some())
    }

    /// Number of blocks with a transaction in flight. O(1): maintained
    /// as a counter, not scanned, because the machine asks every cycle.
    pub fn busy_count(&self) -> usize {
        self.busy_ct
    }

    /// Earliest cycle at which [`Directory::tick`] could need to
    /// retransmit a demand, or `u64::MAX` if nothing is (or can become)
    /// overdue. A conservative lower bound: the event-driven scheduler
    /// may stop here and find nothing due, but it will never skip past
    /// a real retransmission deadline.
    #[inline]
    pub fn next_deadline(&self) -> u64 {
        if !self.cfg.retry.enabled || self.busy_ct == 0 {
            u64::MAX
        } else {
            self.next_deadline
        }
    }

    /// Whether [`Directory::tick`] would do any work at `now` — exactly
    /// its early-return test, on the raw deadline field (which, unlike
    /// [`Directory::next_deadline`], is *not* masked while no episode
    /// is busy: a stale due deadline makes tick rescan and rewrite the
    /// field, and that cleanup is checkpointed state). Skipping the
    /// call is state-preserving precisely when this is false.
    #[inline]
    pub fn tick_pending(&self, now: u64) -> bool {
        self.cfg.retry.enabled && self.next_deadline <= now
    }

    /// Advances the directory's notion of time without retransmitting.
    /// The machine calls this before delivering messages so that busy
    /// episodes started mid-skip schedule their first retransmission
    /// relative to the current cycle, not a stale one.
    pub fn set_clock(&mut self, now: u64) {
        self.clock = now;
    }

    /// Busy entries as `(block, requester, write, epoch, pending)`,
    /// sorted by block — the directory slice of a deadlock post-mortem.
    /// The pending-ack lists are borrowed views, not clones: this runs
    /// on the snapshot/stats path, where copying every sharer list per
    /// call showed up in profiles.
    pub fn busy_entries(&self) -> Vec<(u32, usize, bool, u32, &[usize])> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .filter_map(|(&b, e)| {
                e.busy
                    .as_ref()
                    .map(|bu| (b, bu.requester, bu.write, bu.epoch, bu.pending.as_slice()))
            })
            .collect();
        v.sort_by_key(|&(b, ..)| b);
        v
    }

    /// Resident bytes of directory protocol state: hash-map entries
    /// plus per-block heap (sharer spill or coarse vector, pending-ack
    /// lists, waiter queues). A deterministic content-based estimate —
    /// the scale bench's full-map-vs-sparse bytes/node metric — not an
    /// allocator measurement.
    pub fn state_bytes(&self) -> usize {
        let mut bytes =
            self.entries.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<DirEntry>());
        for e in self.entries.values() {
            if let DirState::Shared(s) = &e.state {
                bytes += s.heap_bytes();
            }
            if let Some(busy) = &e.busy {
                bytes += std::mem::size_of::<Busy>();
                bytes += busy.pending.len() * std::mem::size_of::<usize>();
            }
            bytes += e.waiters.len() * std::mem::size_of::<(usize, bool, u32)>();
        }
        bytes
    }

    /// True if a request could be granted immediately, with no
    /// invalidations — the controller's local fast path, where the
    /// processor merely waits out the memory latency instead of
    /// context switching.
    pub fn grantable_now(&self, from: usize, block: u32, write: bool) -> bool {
        let Some(e) = self.entries.get(&block) else {
            return true;
        };
        if e.busy.is_some() {
            return false;
        }
        match (&e.state, write) {
            (DirState::Uncached, _) => true,
            (DirState::Shared(_), false) => true,
            (DirState::Shared(s), true) => s.sole_sharer_is(from),
            (DirState::Exclusive(o), _) => *o == from,
        }
    }

    /// Immediately grants `block` to `from` without messages, if the
    /// block is quiet (see [`Directory::grantable_now`]); returns
    /// whether the grant happened.
    pub fn grant_local(&mut self, from: usize, block: u32, write: bool) -> bool {
        if !self.grantable_now(from, block, write) {
            return false;
        }
        if write {
            self.stats.write_reqs += 1;
        } else {
            self.stats.read_reqs += 1;
        }
        self.probe.emit(
            self.clock,
            EventKind::DirTransition,
            block as u64,
            if write {
                transition::WRITE_GRANT
            } else {
                transition::READ_GRANT
            },
        );
        let kind = self.cfg.kind;
        let nodes = self.nodes;
        let mut overflowed = false;
        let e = self.entries.entry(block).or_default();
        if write {
            e.state = DirState::Exclusive(from);
        } else {
            match &mut e.state {
                DirState::Shared(s) => {
                    overflowed = s.insert(from, kind, nodes);
                }
                st @ (DirState::Uncached | DirState::Exclusive(_)) => {
                    // Exclusive(from) re-reading after a silent flush race.
                    *st = DirState::Shared(SharerSet::one(from));
                }
            }
        }
        if overflowed {
            self.stats.overflows += 1;
        }
        true
    }

    /// Handles a `RdReq`/`WrReq` from `from` carrying transaction id
    /// `xid`, returning messages to send (each as `(destination,
    /// message)`).
    pub fn handle_request(
        &mut self,
        from: usize,
        block: u32,
        write: bool,
        xid: u32,
    ) -> Vec<(usize, CohMsg)> {
        let mut out = Vec::new();
        self.handle_request_into(from, block, write, xid, &mut out);
        out
    }

    /// [`Directory::handle_request`], appending into a caller-supplied
    /// buffer so the machine's dispatch loop can reuse scratch storage.
    pub fn handle_request_into(
        &mut self,
        from: usize,
        block: u32,
        write: bool,
        xid: u32,
        out: &mut Vec<(usize, CohMsg)>,
    ) {
        if write {
            self.stats.write_reqs += 1;
        } else {
            self.stats.read_reqs += 1;
        }
        self.request_inner(from, block, write, xid, out);
    }

    fn request_inner(
        &mut self,
        from: usize,
        block: u32,
        write: bool,
        xid: u32,
        out: &mut Vec<(usize, CohMsg)>,
    ) {
        let next_epoch = self.epoch_counter.wrapping_add(1);
        let retry_at = self.clock + self.cfg.retry.timeout;
        let max_waiters = self.cfg.max_waiters;
        let kind = self.cfg.kind;
        let nodes = self.nodes;
        let mut overflowed = false;
        let e = self.entries.entry(block).or_default();
        if let Some(busy) = &e.busy {
            // A retransmission of the request currently being serviced,
            // or one already queued, must not queue again.
            if (busy.requester, busy.req_xid) == (from, xid)
                || e.waiters.contains(&(from, write, xid))
            {
                return;
            }
            if e.waiters.len() >= max_waiters {
                self.stats.nacks += 1;
                self.probe
                    .emit(self.clock, EventKind::DirNack, block as u64, from as u64);
                out.push((from, CohMsg::Nack { block, xid }));
                return;
            }
            e.waiters.push_back((from, write, xid));
            self.stats.deferred += 1;
            return;
        }
        let begin_busy = |kind: BusyKind, targets: Vec<usize>| -> Box<Busy> {
            Box::new(Busy {
                requester: from,
                req_xid: xid,
                write,
                kind,
                epoch: next_epoch,
                pending: targets,
                retries: 0,
                next_retry: retry_at,
            })
        };
        let code = match (&mut e.state, write) {
            (DirState::Uncached, false) => {
                e.state = DirState::Shared(SharerSet::one(from));
                out.push((from, CohMsg::RdReply { block, xid }));
                transition::READ_GRANT
            }
            (DirState::Shared(s), false) => {
                overflowed = s.insert(from, kind, nodes);
                out.push((from, CohMsg::RdReply { block, xid }));
                transition::READ_GRANT
            }
            (DirState::Exclusive(o), false) if *o == from => {
                // Owner re-reads (flush race); regrant as shared.
                e.state = DirState::Shared(SharerSet::one(from));
                out.push((from, CohMsg::RdReply { block, xid }));
                transition::READ_GRANT
            }
            (DirState::Exclusive(o), false) => {
                let owner = *o;
                e.busy = Some(begin_busy(BusyKind::Down, vec![owner]));
                self.epoch_counter = next_epoch;
                self.busy_ct += 1;
                if retry_at < self.next_deadline {
                    self.next_deadline = retry_at;
                }
                out.push((
                    owner,
                    CohMsg::DownReq {
                        block,
                        xid: next_epoch,
                    },
                ));
                self.stats.wb_reqs_sent += 1;
                transition::BUSY_DOWN
            }
            (DirState::Uncached, true) => {
                e.state = DirState::Exclusive(from);
                out.push((from, CohMsg::WrReply { block, xid }));
                transition::WRITE_GRANT
            }
            (DirState::Shared(s), true) => {
                let mut targets = Vec::new();
                s.targets_into(from, nodes, &mut targets);
                if targets.is_empty() {
                    e.state = DirState::Exclusive(from);
                    out.push((from, CohMsg::WrReply { block, xid }));
                    transition::WRITE_GRANT
                } else {
                    let n = targets.len();
                    e.busy = Some(begin_busy(BusyKind::Inval, targets.clone()));
                    self.epoch_counter = next_epoch;
                    self.busy_ct += 1;
                    if retry_at < self.next_deadline {
                        self.next_deadline = retry_at;
                    }
                    for t in targets {
                        out.push((
                            t,
                            CohMsg::Inval {
                                block,
                                xid: next_epoch,
                            },
                        ));
                    }
                    self.stats.invals_sent += n as u64;
                    transition::BUSY_INVAL
                }
            }
            (DirState::Exclusive(o), true) if *o == from => {
                out.push((from, CohMsg::WrReply { block, xid }));
                transition::WRITE_GRANT
            }
            (DirState::Exclusive(o), true) => {
                let owner = *o;
                e.busy = Some(begin_busy(BusyKind::WbInval, vec![owner]));
                self.epoch_counter = next_epoch;
                self.busy_ct += 1;
                if retry_at < self.next_deadline {
                    self.next_deadline = retry_at;
                }
                out.push((
                    owner,
                    CohMsg::WbInvalReq {
                        block,
                        xid: next_epoch,
                    },
                ));
                self.stats.wb_reqs_sent += 1;
                transition::BUSY_WBINVAL
            }
        };
        if overflowed {
            self.stats.overflows += 1;
        }
        self.probe
            .emit(self.clock, EventKind::DirTransition, block as u64, code);
    }

    /// Handles an acknowledgment (`InvAck`, `DownAck`, `WbInvalAck`) or
    /// a voluntary `FlushData`, returning messages to send.
    ///
    /// Stale acknowledgments — wrong epoch, unknown block, or a
    /// duplicate from a node already accounted for — are ignored.
    pub fn handle_ack(
        &mut self,
        from: usize,
        msg: CohMsg,
    ) -> Result<Vec<(usize, CohMsg)>, ProtocolError> {
        let mut out = Vec::new();
        self.handle_ack_into(from, msg, &mut out)?;
        Ok(out)
    }

    /// [`Directory::handle_ack`], appending into a caller-supplied
    /// buffer so the machine's dispatch loop can reuse scratch storage.
    pub fn handle_ack_into(
        &mut self,
        from: usize,
        msg: CohMsg,
        out: &mut Vec<(usize, CohMsg)>,
    ) -> Result<(), ProtocolError> {
        match msg {
            CohMsg::FlushData { block, fenced, xid } => {
                out.push((from, CohMsg::FlushAck { block, fenced, xid }));
                let e = self.entries.entry(block).or_default();
                if e.busy.is_none() {
                    match &mut e.state {
                        DirState::Exclusive(o) if *o == from => e.state = DirState::Uncached,
                        DirState::Shared(s) => {
                            // Imprecise sets cannot un-name a node, so
                            // the remove is a no-op there: the stale
                            // presumed sharer is invalidated (and acks)
                            // on the next write, which is safe.
                            s.remove(from);
                            if s.is_known_empty() {
                                e.state = DirState::Uncached;
                            }
                        }
                        _ => {}
                    }
                }
                // If busy, the outstanding DownReq/WbInvalReq/Inval will
                // be acknowledged by `from` regardless (controllers ack
                // requests for absent lines), so resolution happens on
                // that path.
            }
            CohMsg::InvAck { block, xid }
            | CohMsg::DownAck { block, xid }
            | CohMsg::WbInvalAck { block, xid } => {
                let Some(e) = self.entries.get_mut(&block) else {
                    self.stats.stale_acks += 1;
                    return Ok(());
                };
                let Some(busy) = &mut e.busy else {
                    self.stats.stale_acks += 1;
                    return Ok(());
                };
                if busy.epoch != xid {
                    // An ack from an earlier busy episode, delivered
                    // late (or duplicated across episodes).
                    self.stats.stale_acks += 1;
                    return Ok(());
                }
                let Some(i) = busy.pending.iter().position(|&n| n == from) else {
                    // Duplicate ack within the episode.
                    self.stats.stale_acks += 1;
                    return Ok(());
                };
                busy.pending.swap_remove(i);
                if busy.pending.is_empty() {
                    let Busy {
                        requester,
                        req_xid,
                        write,
                        ..
                    } = **busy;
                    e.busy = None;
                    self.busy_ct -= 1;
                    if self.busy_ct == 0 {
                        // No episode pending anywhere: reset the
                        // deadline eagerly (O(1)) so the event-driven
                        // machine never visits a dead deadline and
                        // [`Directory::tick`] stays a no-op until a new
                        // episode arms. With episodes still pending the
                        // bound may go stale-low; the tick at the stale
                        // cycle rescans and tightens it, identically
                        // under every scheduler.
                        self.next_deadline = u64::MAX;
                    }
                    self.probe.emit(
                        self.clock,
                        EventKind::DirTransition,
                        block as u64,
                        if write {
                            transition::RESOLVED_WRITE
                        } else {
                            transition::RESOLVED_READ
                        },
                    );
                    if write {
                        e.state = DirState::Exclusive(requester);
                        out.push((
                            requester,
                            CohMsg::WrReply {
                                block,
                                xid: req_xid,
                            },
                        ));
                    } else {
                        // Downgrade: the old owner (the acker) stays a
                        // sharer alongside the requester.
                        e.state = DirState::Shared(SharerSet::of(&[from, requester]));
                        out.push((
                            requester,
                            CohMsg::RdReply {
                                block,
                                xid: req_xid,
                            },
                        ));
                    }
                    // Serve deferred requests now that the block is quiet.
                    while let Some((f, w, x)) = {
                        let e = self.entries.get_mut(&block);
                        match e {
                            Some(e) if e.busy.is_none() => e.waiters.pop_front(),
                            _ => None,
                        }
                    } {
                        self.request_inner(f, block, w, x, out);
                    }
                }
            }
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    node: usize::MAX,
                    from,
                    msg: other,
                })
            }
        }
        Ok(())
    }

    /// Advances the directory's clock to `now` and retransmits demands
    /// whose acknowledgments are overdue, with bounded exponential
    /// backoff, appending the messages to send onto `out`. Reports
    /// [`ProtocolError::RetriesExhausted`] once an episode exceeds the
    /// retry limit. O(1) while `now` is short of the earliest deadline.
    pub fn tick(&mut self, now: u64, out: &mut Vec<(usize, CohMsg)>) -> Result<(), ProtocolError> {
        self.clock = now;
        if !self.cfg.retry.enabled {
            return Ok(());
        }
        if self.next_deadline > now {
            return Ok(());
        }
        let mut resend = Vec::new();
        let retry = self.cfg.retry;
        let mut retransmits = 0;
        // Recompute the exact earliest deadline while scanning: not-due
        // episodes contribute their existing `next_retry`, retransmitted
        // ones their freshly scheduled one.
        let mut min_next = u64::MAX;
        for (&block, e) in &mut self.entries {
            let Some(busy) = &mut e.busy else { continue };
            if busy.pending.is_empty() {
                continue;
            }
            if busy.next_retry > now {
                min_next = min_next.min(busy.next_retry);
                continue;
            }
            if busy.retries >= retry.max_retries {
                return Err(ProtocolError::RetriesExhausted {
                    node: usize::MAX,
                    block,
                    xid: busy.epoch,
                    retries: busy.retries,
                });
            }
            busy.retries += 1;
            for &t in &busy.pending {
                resend.push((t, busy.kind.message(block, busy.epoch), busy.retries));
                retransmits += 1;
            }
            busy.next_retry = now + retry.backoff(busy.retries);
            min_next = min_next.min(busy.next_retry);
        }
        self.next_deadline = min_next;
        self.stats.retransmits += retransmits;
        // Deterministic send order regardless of hash-map iteration.
        // Trace events are emitted in the same sorted order (a lane's
        // event sequence must not depend on map iteration).
        resend.sort_by_key(|&(to, msg, _)| (msg.block(), to));
        for &(to, msg, retries) in &resend {
            self.probe.emit(
                self.clock,
                EventKind::Retransmit,
                msg.block().unwrap_or(0) as u64,
                retries as u64,
            );
            out.push((to, msg));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_from_uncached_grants_shared() {
        let mut d = Directory::new();
        let out = d.handle_request(1, 0x40, false, 1);
        assert_eq!(
            out,
            vec![(
                1,
                CohMsg::RdReply {
                    block: 0x40,
                    xid: 1
                }
            )]
        );
        assert_eq!(d.state(0x40), DirState::Shared(SharerSet::one(1)));
    }

    #[test]
    fn multiple_readers_accumulate() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false, 1);
        d.handle_request(2, 0, false, 2);
        let out = d.handle_request(3, 0, false, 3);
        assert_eq!(out, vec![(3, CohMsg::RdReply { block: 0, xid: 3 })]);
        assert_eq!(d.state(0), DirState::Shared(SharerSet::of(&[1, 2, 3])));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false, 1);
        d.handle_request(2, 0, false, 2);
        let out = d.handle_request(3, 0, true, 3);
        let epoch = out[0].1.xid().unwrap();
        assert_eq!(
            out,
            vec![
                (
                    1,
                    CohMsg::Inval {
                        block: 0,
                        xid: epoch
                    }
                ),
                (
                    2,
                    CohMsg::Inval {
                        block: 0,
                        xid: epoch
                    }
                )
            ]
        );
        assert!(d.is_busy(0));
        assert!(d
            .handle_ack(
                1,
                CohMsg::InvAck {
                    block: 0,
                    xid: epoch
                }
            )
            .unwrap()
            .is_empty());
        let out = d
            .handle_ack(
                2,
                CohMsg::InvAck {
                    block: 0,
                    xid: epoch,
                },
            )
            .unwrap();
        assert_eq!(out, vec![(3, CohMsg::WrReply { block: 0, xid: 3 })]);
        assert_eq!(d.state(0), DirState::Exclusive(3));
    }

    #[test]
    fn read_of_exclusive_downgrades_owner() {
        let mut d = Directory::new();
        d.handle_request(1, 0, true, 1);
        assert_eq!(d.state(0), DirState::Exclusive(1));
        let out = d.handle_request(2, 0, false, 2);
        let epoch = out[0].1.xid().unwrap();
        assert_eq!(
            out,
            vec![(
                1,
                CohMsg::DownReq {
                    block: 0,
                    xid: epoch
                }
            )]
        );
        let out = d
            .handle_ack(
                1,
                CohMsg::DownAck {
                    block: 0,
                    xid: epoch,
                },
            )
            .unwrap();
        assert_eq!(out, vec![(2, CohMsg::RdReply { block: 0, xid: 2 })]);
        assert_eq!(d.state(0), DirState::Shared(SharerSet::of(&[1, 2])));
    }

    #[test]
    fn write_of_exclusive_transfers_ownership() {
        let mut d = Directory::new();
        d.handle_request(1, 0, true, 1);
        let out = d.handle_request(2, 0, true, 2);
        let epoch = out[0].1.xid().unwrap();
        assert_eq!(
            out,
            vec![(
                1,
                CohMsg::WbInvalReq {
                    block: 0,
                    xid: epoch
                }
            )]
        );
        let out = d
            .handle_ack(
                1,
                CohMsg::WbInvalAck {
                    block: 0,
                    xid: epoch,
                },
            )
            .unwrap();
        assert_eq!(out, vec![(2, CohMsg::WrReply { block: 0, xid: 2 })]);
        assert_eq!(d.state(0), DirState::Exclusive(2));
    }

    #[test]
    fn requests_queue_behind_busy_block() {
        let mut d = Directory::new();
        d.handle_request(1, 0, true, 1);
        let out = d.handle_request(2, 0, true, 2); // busy: waiting on node 1
        let epoch = out[0].1.xid().unwrap();
        let deferred = d.handle_request(3, 0, false, 3);
        assert!(deferred.is_empty(), "request must queue");
        assert_eq!(d.stats.deferred, 1);
        // Node 1 gives up its copy; node 2 gets it; node 3's read then
        // triggers a downgrade of node 2.
        let out = d
            .handle_ack(
                1,
                CohMsg::WbInvalAck {
                    block: 0,
                    xid: epoch,
                },
            )
            .unwrap();
        let epoch2 = out[1].1.xid().unwrap();
        assert_eq!(
            out,
            vec![
                (2, CohMsg::WrReply { block: 0, xid: 2 }),
                (
                    2,
                    CohMsg::DownReq {
                        block: 0,
                        xid: epoch2
                    }
                )
            ]
        );
        let out = d
            .handle_ack(
                2,
                CohMsg::DownAck {
                    block: 0,
                    xid: epoch2,
                },
            )
            .unwrap();
        assert_eq!(out, vec![(3, CohMsg::RdReply { block: 0, xid: 3 })]);
        assert_eq!(d.state(0), DirState::Shared(SharerSet::of(&[2, 3])));
    }

    #[test]
    fn flush_clears_ownership_and_acks() {
        let mut d = Directory::new();
        d.handle_request(1, 0, true, 1);
        let out = d
            .handle_ack(
                1,
                CohMsg::FlushData {
                    block: 0,
                    fenced: true,
                    xid: 5,
                },
            )
            .unwrap();
        assert_eq!(
            out,
            vec![(
                1,
                CohMsg::FlushAck {
                    block: 0,
                    fenced: true,
                    xid: 5
                }
            )]
        );
        assert_eq!(d.state(0), DirState::Uncached);
    }

    #[test]
    fn stale_ack_is_ignored() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false, 1);
        let out = d
            .handle_ack(1, CohMsg::InvAck { block: 0, xid: 0 })
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(d.state(0), DirState::Shared(SharerSet::one(1)));
        assert_eq!(d.stats.stale_acks, 1);
    }

    #[test]
    fn duplicate_ack_cannot_complete_an_episode_twice() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false, 1);
        d.handle_request(2, 0, false, 2);
        let out = d.handle_request(3, 0, true, 3);
        let epoch = out[0].1.xid().unwrap();
        // Node 1's ack, duplicated by the network: the second copy must
        // not count for node 2.
        assert!(d
            .handle_ack(
                1,
                CohMsg::InvAck {
                    block: 0,
                    xid: epoch
                }
            )
            .unwrap()
            .is_empty());
        assert!(d
            .handle_ack(
                1,
                CohMsg::InvAck {
                    block: 0,
                    xid: epoch
                }
            )
            .unwrap()
            .is_empty());
        assert!(d.is_busy(0), "duplicate ack must not complete the episode");
        let out = d
            .handle_ack(
                2,
                CohMsg::InvAck {
                    block: 0,
                    xid: epoch,
                },
            )
            .unwrap();
        assert_eq!(out, vec![(3, CohMsg::WrReply { block: 0, xid: 3 })]);
    }

    #[test]
    fn cross_epoch_ack_is_ignored() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false, 1);
        let out = d.handle_request(2, 0, true, 2);
        let epoch1 = out[0].1.xid().unwrap();
        d.handle_ack(
            1,
            CohMsg::InvAck {
                block: 0,
                xid: epoch1,
            },
        )
        .unwrap();
        // Episode 2: node 2 owns; node 3 wants it.
        let out = d.handle_request(3, 0, true, 3);
        let epoch2 = out[0].1.xid().unwrap();
        assert_ne!(epoch1, epoch2);
        // A late duplicate of node 1's old ack arrives: wrong epoch.
        assert!(d
            .handle_ack(
                1,
                CohMsg::InvAck {
                    block: 0,
                    xid: epoch1
                }
            )
            .unwrap()
            .is_empty());
        assert!(
            d.is_busy(0),
            "old-epoch ack must not complete the new episode"
        );
        let out = d
            .handle_ack(
                2,
                CohMsg::WbInvalAck {
                    block: 0,
                    xid: epoch2,
                },
            )
            .unwrap();
        assert_eq!(out, vec![(3, CohMsg::WrReply { block: 0, xid: 3 })]);
    }

    #[test]
    fn retransmitted_request_does_not_queue_twice() {
        let mut d = Directory::new();
        d.handle_request(1, 0, true, 1);
        let out = d.handle_request(2, 0, true, 2);
        let epoch = out[0].1.xid().unwrap();
        // Requester 2 retransmits while its own request is in service;
        // requester 3 queues, then retransmits.
        assert!(d.handle_request(2, 0, true, 2).is_empty());
        assert!(d.handle_request(3, 0, false, 3).is_empty());
        assert!(d.handle_request(3, 0, false, 3).is_empty());
        let out = d
            .handle_ack(
                1,
                CohMsg::WbInvalAck {
                    block: 0,
                    xid: epoch,
                },
            )
            .unwrap();
        // Exactly one WrReply for 2, then one DownReq for 3's read.
        assert_eq!(
            out.iter()
                .filter(|(_, m)| matches!(m, CohMsg::WrReply { .. }))
                .count(),
            1
        );
        assert_eq!(
            out.iter()
                .filter(|(_, m)| matches!(m, CohMsg::DownReq { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn waiter_overflow_is_nacked() {
        let mut d = Directory::with_config(
            DirConfig {
                max_waiters: 1,
                ..DirConfig::default()
            },
            8,
        );
        d.handle_request(1, 0, true, 1); // granted instantly (uncached)
        d.handle_request(2, 0, true, 2); // goes busy: WbInvalReq to 1
        let out = d.handle_request(3, 0, true, 3); // fills the 1-deep waiter queue
        assert!(out.is_empty());
        let out = d.handle_request(4, 0, true, 4);
        assert_eq!(out, vec![(4, CohMsg::Nack { block: 0, xid: 4 })]);
        assert_eq!(d.stats.nacks, 1);
    }

    #[test]
    fn overdue_demands_are_retransmitted_with_backoff() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false, 1);
        let out = d.handle_request(2, 0, true, 2);
        let epoch = out[0].1.xid().unwrap();
        let t0 = d.cfg.retry.timeout;
        let mut out = Vec::new();
        d.tick(t0 - 1, &mut out).unwrap();
        assert!(out.is_empty(), "not overdue yet");
        d.tick(t0, &mut out).unwrap();
        assert_eq!(
            out,
            vec![(
                1,
                CohMsg::Inval {
                    block: 0,
                    xid: epoch
                }
            )]
        );
        assert_eq!(d.stats.retransmits, 1);
        // Backed off: the next retransmission is 2*timeout later.
        out.clear();
        d.tick(t0 + d.cfg.retry.timeout, &mut out).unwrap();
        assert!(out.is_empty());
        d.tick(t0 + 2 * d.cfg.retry.timeout, &mut out).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn retries_exhaust_into_an_error() {
        let cfg = DirConfig {
            max_waiters: 4,
            retry: RetryConfig {
                enabled: true,
                timeout: 10,
                backoff_cap: 10,
                max_retries: 3,
            },
            ..DirConfig::default()
        };
        let mut d = Directory::with_config(cfg, 8);
        d.handle_request(1, 0, false, 1);
        d.handle_request(2, 0, true, 2);
        let mut now = 0;
        let mut out = Vec::new();
        let err = loop {
            now += 10;
            match d.tick(now, &mut out) {
                Ok(()) => assert!(now < 1000, "must exhaust retries"),
                Err(e) => break e,
            }
        };
        assert!(matches!(
            err,
            ProtocolError::RetriesExhausted { block: 0, .. }
        ));
    }

    #[test]
    fn disabled_retries_never_retransmit() {
        let mut d = Directory::with_config(
            DirConfig {
                max_waiters: 4,
                retry: RetryConfig::disabled(),
                ..DirConfig::default()
            },
            8,
        );
        d.handle_request(1, 0, false, 1);
        d.handle_request(2, 0, true, 2);
        let mut out = Vec::new();
        for now in [1_000, 1_000_000] {
            d.tick(now, &mut out).unwrap();
            assert!(out.is_empty());
        }
    }

    #[test]
    fn local_fast_path_grants() {
        let mut d = Directory::new();
        assert!(d.grantable_now(0, 0, true));
        assert!(d.grant_local(0, 0, true));
        assert_eq!(d.state(0), DirState::Exclusive(0));
        // Another node cannot fast-path a write now.
        assert!(!d.grantable_now(1, 0, true));
        assert!(!d.grantable_now(1, 0, false));
        // The owner itself can.
        assert!(d.grantable_now(0, 0, false));
    }

    #[test]
    fn bad_local_grant_is_refused() {
        let mut d = Directory::new();
        assert!(d.grant_local(0, 0, true));
        assert!(
            !d.grant_local(1, 0, true),
            "contended local grant must be refused"
        );
        assert_eq!(d.state(0), DirState::Exclusive(0));
    }

    #[test]
    fn shared_self_upgrade_needs_no_invals() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false, 1);
        let out = d.handle_request(1, 0, true, 2);
        assert_eq!(out, vec![(1, CohMsg::WrReply { block: 0, xid: 2 })]);
        assert_eq!(d.state(0), DirState::Exclusive(1));
    }

    #[test]
    fn sharer_set_is_canonical() {
        // A spill that shrinks back to inline size compares equal to a
        // directly built inline set: repr is a pure function of content.
        let members: Vec<usize> = (0..10).collect();
        let mut s = SharerSet::of(&[]);
        for &m in &members {
            s.insert(m, DirectoryKind::FullMap, 16);
        }
        assert_eq!(s, SharerSet::of(&members));
        s.remove(9);
        s.remove(0);
        assert_eq!(s, SharerSet::of(&[1, 2, 3, 4, 5, 6, 7, 8]));
        assert!(s.as_list().is_some(), "back inline after shrink");
    }

    #[test]
    fn limited_ptr_overflow_broadcasts_invalidations() {
        let cfg = DirConfig {
            kind: DirectoryKind::LimitedPtr { ptrs: 2 },
            ..DirConfig::default()
        };
        let mut d = Directory::with_config(cfg, 6);
        d.handle_request(1, 0, false, 1);
        d.handle_request(2, 0, false, 2);
        assert_eq!(d.stats.overflows, 0);
        d.handle_request(3, 0, false, 3); // third sharer: overflow to All
        assert_eq!(d.stats.overflows, 1);
        let out = d.handle_request(4, 0, true, 4);
        let epoch = out[0].1.xid().unwrap();
        // Broadcast: every node except the writer gets an Inval, even
        // nodes 0 and 5 which never held the block (they ack anyway).
        let targets: Vec<usize> = out.iter().map(|&(t, _)| t).collect();
        assert_eq!(targets, vec![0, 1, 2, 3, 5]);
        assert_eq!(d.stats.invals_sent, 5);
        for t in [0, 1, 2, 3] {
            assert!(d
                .handle_ack(
                    t,
                    CohMsg::InvAck {
                        block: 0,
                        xid: epoch
                    }
                )
                .unwrap()
                .is_empty());
        }
        let out = d
            .handle_ack(
                5,
                CohMsg::InvAck {
                    block: 0,
                    xid: epoch,
                },
            )
            .unwrap();
        assert_eq!(out, vec![(4, CohMsg::WrReply { block: 0, xid: 4 })]);
        assert_eq!(d.state(0), DirState::Exclusive(4));
    }

    #[test]
    fn coarse_vector_overflow_invalidates_regions() {
        let mut s = SharerSet::of(&[]);
        let kind = DirectoryKind::CoarseVector { region: 4 };
        for n in 0..INLINE_PTRS {
            assert!(!s.insert(n, kind, 12));
        }
        // Ninth sharer overflows into a coarse vector; node 9 sets the
        // bit for region 8..12.
        assert!(s.insert(9, kind, 12));
        assert!(s.is_imprecise());
        assert!(s.contains(9) && s.contains(10), "region granularity");
        let mut targets = Vec::new();
        s.targets_into(9, 12, &mut targets);
        assert_eq!(targets, (0..12).filter(|&n| n != 9).collect::<Vec<_>>());
        // Removal from an imprecise set is a no-op.
        s.remove(3);
        assert!(s.contains(3));
    }

    #[test]
    fn flush_from_imprecise_set_leaves_it_shared() {
        let cfg = DirConfig {
            kind: DirectoryKind::LimitedPtr { ptrs: 1 },
            ..DirConfig::default()
        };
        let mut d = Directory::with_config(cfg, 4);
        d.handle_request(1, 0, false, 1);
        d.handle_request(2, 0, false, 2); // overflow to All
        d.handle_ack(
            1,
            CohMsg::FlushData {
                block: 0,
                fenced: false,
                xid: 7,
            },
        )
        .unwrap();
        // The set cannot prove emptiness, so the block stays Shared;
        // correctness is preserved because the next write broadcasts.
        assert!(matches!(d.state(0), DirState::Shared(s) if s.is_imprecise()));
    }

    #[test]
    fn state_bytes_tracks_sharers() {
        let mut full = Directory::with_config(DirConfig::default(), 32);
        let cfg = DirConfig {
            kind: DirectoryKind::LimitedPtr { ptrs: 4 },
            ..DirConfig::default()
        };
        let mut sparse = Directory::with_config(cfg, 32);
        for n in 0..32 {
            full.handle_request(n, 0, false, n as u32);
            sparse.handle_request(n, 0, false, n as u32);
        }
        assert!(
            sparse.state_bytes() < full.state_bytes(),
            "broadcast set must be smaller than a 32-entry spill"
        );
    }

    #[test]
    fn request_to_directory_of_wrong_kind_errors() {
        let mut d = Directory::new();
        let err = d
            .handle_ack(1, CohMsg::RdReq { block: 0, xid: 1 })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::UnexpectedMessage { .. }));
    }
}
