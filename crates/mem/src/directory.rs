//! The home-side directory protocol engine.
//!
//! Each node's directory tracks, for every memory block whose home is
//! that node, the set of caches holding it — the full-map,
//! invalidation-based scheme of Chaiken, Fields, Kurihara and Agarwal
//! (the paper's reference [5]), which ALEWIFE distributes with the
//! processing nodes (Section 2).
//!
//! The directory is a message transducer: [`Directory::handle_request`]
//! and [`Directory::handle_ack`] consume protocol messages and return
//! the messages to send in response. While a block is *busy* (waiting
//! for invalidation or write-back acknowledgments), further requests
//! queue in arrival order, guaranteeing freedom from protocol livelock.

use crate::msg::CohMsg;
use std::collections::{HashMap, VecDeque};

/// Sharing state of one block at its home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the block.
    Uncached,
    /// Read-only copies at the listed nodes (full-map vector).
    Shared(Vec<usize>),
    /// One cache holds the block read-write.
    Exclusive(usize),
}

#[derive(Debug, Clone)]
struct Busy {
    requester: usize,
    write: bool,
    pending_acks: usize,
}

#[derive(Debug, Clone)]
struct DirEntry {
    state: DirState,
    busy: Option<Busy>,
    waiters: VecDeque<(usize, bool)>,
}

impl Default for DirEntry {
    fn default() -> DirEntry {
        DirEntry { state: DirState::Uncached, busy: None, waiters: VecDeque::new() }
    }
}

/// Directory event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Read requests served.
    pub read_reqs: u64,
    /// Write requests served.
    pub write_reqs: u64,
    /// Invalidation messages sent.
    pub invals_sent: u64,
    /// Write-back / downgrade requests sent to owners.
    pub wb_reqs_sent: u64,
    /// Requests deferred behind a busy block.
    pub deferred: u64,
}

/// A node's directory: protocol state for the blocks it is home to.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<u32, DirEntry>,
    /// Event counters.
    pub stats: DirStats,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Current sharing state of `block` (for tests and probes).
    pub fn state(&self, block: u32) -> DirState {
        self.entries.get(&block).map(|e| e.state.clone()).unwrap_or(DirState::Uncached)
    }

    /// True if `block` has a transaction in flight.
    pub fn is_busy(&self, block: u32) -> bool {
        self.entries.get(&block).is_some_and(|e| e.busy.is_some())
    }

    /// True if a request could be granted immediately, with no
    /// invalidations — the controller's local fast path, where the
    /// processor merely waits out the memory latency instead of
    /// context switching.
    pub fn grantable_now(&self, from: usize, block: u32, write: bool) -> bool {
        let Some(e) = self.entries.get(&block) else { return true };
        if e.busy.is_some() {
            return false;
        }
        match (&e.state, write) {
            (DirState::Uncached, _) => true,
            (DirState::Shared(_), false) => true,
            (DirState::Shared(s), true) => s.iter().all(|&n| n == from),
            (DirState::Exclusive(o), _) => *o == from,
        }
    }

    /// Immediately grants `block` to `from` without messages.
    ///
    /// # Panics
    ///
    /// Panics if the grant is not allowed (callers must check
    /// [`Directory::grantable_now`] first).
    pub fn grant_local(&mut self, from: usize, block: u32, write: bool) {
        assert!(self.grantable_now(from, block, write), "local grant requires a quiet block");
        if write {
            self.stats.write_reqs += 1;
        } else {
            self.stats.read_reqs += 1;
        }
        let e = self.entries.entry(block).or_default();
        if write {
            e.state = DirState::Exclusive(from);
        } else {
            match &mut e.state {
                DirState::Shared(s) => {
                    if !s.contains(&from) {
                        s.push(from);
                    }
                }
                st @ (DirState::Uncached | DirState::Exclusive(_)) => {
                    // Exclusive(from) re-reading after a silent flush race.
                    *st = DirState::Shared(vec![from]);
                }
            }
        }
    }

    /// Handles a `RdReq`/`WrReq` from `from`, returning messages to
    /// send (each as `(destination, message)`).
    pub fn handle_request(&mut self, from: usize, block: u32, write: bool) -> Vec<(usize, CohMsg)> {
        if write {
            self.stats.write_reqs += 1;
        } else {
            self.stats.read_reqs += 1;
        }
        let mut out = Vec::new();
        self.request_inner(from, block, write, &mut out);
        out
    }

    fn request_inner(&mut self, from: usize, block: u32, write: bool, out: &mut Vec<(usize, CohMsg)>) {
        let e = self.entries.entry(block).or_default();
        if e.busy.is_some() {
            e.waiters.push_back((from, write));
            self.stats.deferred += 1;
            return;
        }
        match (&mut e.state, write) {
            (DirState::Uncached, false) => {
                e.state = DirState::Shared(vec![from]);
                out.push((from, CohMsg::RdReply { block }));
            }
            (DirState::Shared(s), false) => {
                if !s.contains(&from) {
                    s.push(from);
                }
                out.push((from, CohMsg::RdReply { block }));
            }
            (DirState::Exclusive(o), false) if *o == from => {
                // Owner re-reads (flush race); regrant as shared.
                e.state = DirState::Shared(vec![from]);
                out.push((from, CohMsg::RdReply { block }));
            }
            (DirState::Exclusive(o), false) => {
                let owner = *o;
                e.busy = Some(Busy { requester: from, write: false, pending_acks: 1 });
                out.push((owner, CohMsg::DownReq { block }));
                self.stats.wb_reqs_sent += 1;
            }
            (DirState::Uncached, true) => {
                e.state = DirState::Exclusive(from);
                out.push((from, CohMsg::WrReply { block }));
            }
            (DirState::Shared(s), true) => {
                let targets: Vec<usize> = s.iter().copied().filter(|&n| n != from).collect();
                if targets.is_empty() {
                    e.state = DirState::Exclusive(from);
                    out.push((from, CohMsg::WrReply { block }));
                } else {
                    e.busy = Some(Busy { requester: from, write: true, pending_acks: targets.len() });
                    for t in targets {
                        out.push((t, CohMsg::Inval { block }));
                        self.stats.invals_sent += 1;
                    }
                }
            }
            (DirState::Exclusive(o), true) if *o == from => {
                out.push((from, CohMsg::WrReply { block }));
            }
            (DirState::Exclusive(o), true) => {
                let owner = *o;
                e.busy = Some(Busy { requester: from, write: true, pending_acks: 1 });
                out.push((owner, CohMsg::WbInvalReq { block }));
                self.stats.wb_reqs_sent += 1;
            }
        }
    }

    /// Handles an acknowledgment (`InvAck`, `DownAck`, `WbInvalAck`) or
    /// a voluntary `FlushData`, returning messages to send.
    pub fn handle_ack(&mut self, from: usize, msg: CohMsg) -> Vec<(usize, CohMsg)> {
        let mut out = Vec::new();
        match msg {
            CohMsg::FlushData { block, fenced } => {
                out.push((from, CohMsg::FlushAck { block, fenced }));
                let e = self.entries.entry(block).or_default();
                if e.busy.is_none() {
                    match &mut e.state {
                        DirState::Exclusive(o) if *o == from => e.state = DirState::Uncached,
                        DirState::Shared(s) => {
                            s.retain(|&n| n != from);
                            if s.is_empty() {
                                e.state = DirState::Uncached;
                            }
                        }
                        _ => {}
                    }
                }
                // If busy, the outstanding DownReq/WbInvalReq/Inval will
                // be acknowledged by `from` regardless (controllers ack
                // requests for absent lines), so resolution happens on
                // that path.
            }
            CohMsg::InvAck { block } | CohMsg::DownAck { block } | CohMsg::WbInvalAck { block } => {
                let Some(e) = self.entries.get_mut(&block) else { return out };
                let Some(busy) = &mut e.busy else { return out }; // stale ack
                busy.pending_acks -= 1;
                if busy.pending_acks == 0 {
                    let Busy { requester, write, .. } = *busy;
                    e.busy = None;
                    if write {
                        e.state = DirState::Exclusive(requester);
                        out.push((requester, CohMsg::WrReply { block }));
                    } else {
                        // Downgrade: the old owner (the acker) stays a
                        // sharer alongside the requester.
                        e.state = DirState::Shared(vec![from, requester]);
                        out.push((requester, CohMsg::RdReply { block }));
                    }
                    // Serve deferred requests now that the block is quiet.
                    while let Some((f, w)) = {
                        let e = self.entries.get_mut(&block).expect("entry exists");
                        if e.busy.is_none() {
                            e.waiters.pop_front()
                        } else {
                            None
                        }
                    } {
                        self.request_inner(f, block, w, &mut out);
                    }
                }
            }
            other => panic!("directory got non-ack message {other:?}"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_from_uncached_grants_shared() {
        let mut d = Directory::new();
        let out = d.handle_request(1, 0x40, false);
        assert_eq!(out, vec![(1, CohMsg::RdReply { block: 0x40 })]);
        assert_eq!(d.state(0x40), DirState::Shared(vec![1]));
    }

    #[test]
    fn multiple_readers_accumulate() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false);
        d.handle_request(2, 0, false);
        let out = d.handle_request(3, 0, false);
        assert_eq!(out, vec![(3, CohMsg::RdReply { block: 0 })]);
        assert_eq!(d.state(0), DirState::Shared(vec![1, 2, 3]));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false);
        d.handle_request(2, 0, false);
        let out = d.handle_request(3, 0, true);
        assert_eq!(out, vec![(1, CohMsg::Inval { block: 0 }), (2, CohMsg::Inval { block: 0 })]);
        assert!(d.is_busy(0));
        assert!(d.handle_ack(1, CohMsg::InvAck { block: 0 }).is_empty());
        let out = d.handle_ack(2, CohMsg::InvAck { block: 0 });
        assert_eq!(out, vec![(3, CohMsg::WrReply { block: 0 })]);
        assert_eq!(d.state(0), DirState::Exclusive(3));
    }

    #[test]
    fn read_of_exclusive_downgrades_owner() {
        let mut d = Directory::new();
        d.handle_request(1, 0, true);
        assert_eq!(d.state(0), DirState::Exclusive(1));
        let out = d.handle_request(2, 0, false);
        assert_eq!(out, vec![(1, CohMsg::DownReq { block: 0 })]);
        let out = d.handle_ack(1, CohMsg::DownAck { block: 0 });
        assert_eq!(out, vec![(2, CohMsg::RdReply { block: 0 })]);
        assert_eq!(d.state(0), DirState::Shared(vec![1, 2]));
    }

    #[test]
    fn write_of_exclusive_transfers_ownership() {
        let mut d = Directory::new();
        d.handle_request(1, 0, true);
        let out = d.handle_request(2, 0, true);
        assert_eq!(out, vec![(1, CohMsg::WbInvalReq { block: 0 })]);
        let out = d.handle_ack(1, CohMsg::WbInvalAck { block: 0 });
        assert_eq!(out, vec![(2, CohMsg::WrReply { block: 0 })]);
        assert_eq!(d.state(0), DirState::Exclusive(2));
    }

    #[test]
    fn requests_queue_behind_busy_block() {
        let mut d = Directory::new();
        d.handle_request(1, 0, true);
        d.handle_request(2, 0, true); // busy: waiting on node 1
        let deferred = d.handle_request(3, 0, false);
        assert!(deferred.is_empty(), "request must queue");
        assert_eq!(d.stats.deferred, 1);
        // Node 1 gives up its copy; node 2 gets it; node 3's read then
        // triggers a downgrade of node 2.
        let out = d.handle_ack(1, CohMsg::WbInvalAck { block: 0 });
        assert_eq!(
            out,
            vec![(2, CohMsg::WrReply { block: 0 }), (2, CohMsg::DownReq { block: 0 })]
        );
        let out = d.handle_ack(2, CohMsg::DownAck { block: 0 });
        assert_eq!(out, vec![(3, CohMsg::RdReply { block: 0 })]);
        assert_eq!(d.state(0), DirState::Shared(vec![2, 3]));
    }

    #[test]
    fn flush_clears_ownership_and_acks() {
        let mut d = Directory::new();
        d.handle_request(1, 0, true);
        let out = d.handle_ack(1, CohMsg::FlushData { block: 0, fenced: true });
        assert_eq!(out, vec![(1, CohMsg::FlushAck { block: 0, fenced: true })]);
        assert_eq!(d.state(0), DirState::Uncached);
    }

    #[test]
    fn stale_ack_is_ignored() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false);
        let out = d.handle_ack(1, CohMsg::InvAck { block: 0 });
        assert!(out.is_empty());
        assert_eq!(d.state(0), DirState::Shared(vec![1]));
    }

    #[test]
    fn local_fast_path_grants() {
        let mut d = Directory::new();
        assert!(d.grantable_now(0, 0, true));
        d.grant_local(0, 0, true);
        assert_eq!(d.state(0), DirState::Exclusive(0));
        // Another node cannot fast-path a write now.
        assert!(!d.grantable_now(1, 0, true));
        assert!(!d.grantable_now(1, 0, false));
        // The owner itself can.
        assert!(d.grantable_now(0, 0, false));
    }

    #[test]
    #[should_panic(expected = "quiet block")]
    fn bad_local_grant_panics() {
        let mut d = Directory::new();
        d.grant_local(0, 0, true);
        d.grant_local(1, 0, true);
    }

    #[test]
    fn shared_self_upgrade_needs_no_invals() {
        let mut d = Directory::new();
        d.handle_request(1, 0, false);
        let out = d.handle_request(1, 0, true);
        assert_eq!(out, vec![(1, CohMsg::WrReply { block: 0 })]);
        assert_eq!(d.state(0), DirState::Exclusive(1));
    }
}
