//! Typed protocol errors.
//!
//! The protocol engines never panic on malformed or hostile traffic:
//! every hot-path failure is reported as a [`ProtocolError`] so the
//! machine above can abort the run with a structured fault instead of
//! tearing down the process.

// Protocol hot path: failures must surface as typed errors, not tear
// down the simulator on the first injected fault.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
use crate::msg::CohMsg;
use std::fmt;

/// A fatal condition detected by a protocol engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A message of a kind this endpoint never handles was delivered to
    /// it (e.g. a request arriving at a requester-side controller).
    UnexpectedMessage {
        /// The node that received the message.
        node: usize,
        /// The node the message came from.
        from: usize,
        /// The offending message.
        msg: CohMsg,
    },
    /// A transaction was retransmitted up to the retry limit without an
    /// answer; the network or the peer is presumed dead.
    RetriesExhausted {
        /// The node that gave up.
        node: usize,
        /// The block the transaction concerns.
        block: u32,
        /// The transaction id (or busy epoch) that went unanswered.
        xid: u32,
        /// How many retransmissions were attempted.
        retries: u32,
    },
}

impl ProtocolError {
    /// The `(node, block)` pair a recovery layer should suspect: for
    /// [`ProtocolError::RetriesExhausted`] the giving-up node and the
    /// block whose home it could not reach. [`None`] for errors that do
    /// not implicate a network path (an unexpected message is a logic
    /// bug, not a dead link — no quarantine can fix it).
    pub fn implicates(&self) -> Option<(usize, u32)> {
        match *self {
            ProtocolError::RetriesExhausted { node, block, .. } => Some((node, block)),
            ProtocolError::UnexpectedMessage { .. } => None,
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnexpectedMessage { node, from, msg } => {
                write!(
                    f,
                    "node {node}: unexpected protocol message {msg:?} from node {from}"
                )
            }
            ProtocolError::RetriesExhausted {
                node,
                block,
                xid,
                retries,
            } => {
                write!(
                    f,
                    "node {node}: gave up on block {block:#x} xid {xid} after {retries} retries"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Retransmission policy for unanswered protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Master switch: with retries disabled a lost message simply
    /// stalls its transaction forever (the machine watchdog then
    /// reports the deadlock).
    pub enabled: bool,
    /// Cycles to wait for an answer before the first retransmission.
    pub timeout: u64,
    /// Upper bound on the backed-off timeout.
    pub backoff_cap: u64,
    /// Retransmissions before the endpoint reports
    /// [`ProtocolError::RetriesExhausted`].
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            enabled: true,
            timeout: 400,
            backoff_cap: 8192,
            max_retries: 16,
        }
    }
}

impl RetryConfig {
    /// A policy that never retransmits.
    pub fn disabled() -> RetryConfig {
        RetryConfig {
            enabled: false,
            ..RetryConfig::default()
        }
    }

    /// The bounded-exponential backoff after `retries` retransmissions:
    /// `timeout * 2^retries`, capped at `backoff_cap`.
    pub fn backoff(&self, retries: u32) -> u64 {
        self.timeout
            .saturating_mul(1 << retries.min(16))
            .min(self.backoff_cap.max(self.timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let r = RetryConfig {
            enabled: true,
            timeout: 100,
            backoff_cap: 350,
            max_retries: 8,
        };
        assert_eq!(r.backoff(0), 100);
        assert_eq!(r.backoff(1), 200);
        assert_eq!(r.backoff(2), 350);
        assert_eq!(r.backoff(30), 350);
    }

    #[test]
    fn implicates_names_the_suspect_path() {
        let e = ProtocolError::RetriesExhausted {
            node: 3,
            block: 0x40,
            xid: 7,
            retries: 5,
        };
        assert_eq!(e.implicates(), Some((3, 0x40)));
        let e = ProtocolError::UnexpectedMessage {
            node: 1,
            from: 2,
            msg: CohMsg::RdReq { block: 0, xid: 0 },
        };
        assert_eq!(e.implicates(), None);
    }

    #[test]
    fn errors_display() {
        let e = ProtocolError::RetriesExhausted {
            node: 3,
            block: 0x40,
            xid: 7,
            retries: 5,
        };
        let s = e.to_string();
        assert!(s.contains("node 3") && s.contains("0x40") && s.contains("5 retries"));
    }
}
