//! Set-associative processor cache (tags and coherence state).
//!
//! ALEWIFE caches are kept **strongly coherent** by the directory
//! protocol (paper, Section 2.1). This model tracks tags and MSI state
//! per line; data is functionally backed by the machine's global
//! memory, a standard shortcut in timing simulators that preserves both
//! the timing behavior (hit/miss/invalidate) and program results.
//!
//! The default geometry matches Table 4: 64-Kbyte cache, 16-byte
//! blocks, direct-mapped (the paper's controller design); the
//! associativity is parameterizable for the cache-interference studies
//! of Section 8.

use std::fmt;

/// Coherence state of a cache line (MSI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Read-only copy, possibly shared with other caches.
    Shared,
    /// Exclusive read-write copy (dirty with respect to home memory).
    Modified,
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (Table 4 default: 64 Kbytes).
    pub size_bytes: u32,
    /// Block (line) size in bytes (Table 4 default: 16).
    pub block_bytes: u32,
    /// Associativity (1 = direct mapped).
    pub assoc: u32,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 * 1024,
            block_bytes: 16,
            assoc: 1,
        }
    }
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> u32 {
        self.size_bytes / (self.block_bytes * self.assoc)
    }

    /// The block-aligned address containing `addr`.
    pub fn block_of(&self, addr: u32) -> u32 {
        addr & !(self.block_bytes - 1)
    }
}

/// Sentinel block address marking an empty way. Real blocks are
/// block-aligned (block size ≥ 4), so they can never equal `u32::MAX`.
const INVALID_BLOCK: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Line {
    pub(crate) block: u32,
    pub(crate) state: LineState,
    pub(crate) lru: u64,
}

impl Line {
    const EMPTY: Line = Line {
        block: INVALID_BLOCK,
        state: LineState::Shared,
        lru: 0,
    };

    fn valid(&self) -> bool {
        self.block != INVALID_BLOCK
    }
}

/// A replaced line: the evicted block and whether it was dirty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Block address of the evicted line.
    pub block: u32,
    /// True if the line was `Modified` (must be written back).
    pub dirty: bool,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read misses (including upgrades? no — reads absent from cache).
    pub read_misses: u64,
    /// Write misses (absent or present in `Shared` needing upgrade).
    pub write_misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Invalidations received from the protocol.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Overall miss rate.
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            (self.read_misses + self.write_misses) as f64 / a as f64
        }
    }
}

/// A set-associative, LRU-replacement cache directory (tags + state).
///
/// # Examples
///
/// ```
/// use april_mem::cache::{Cache, CacheConfig, LineState};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 256, block_bytes: 16, assoc: 2 });
/// assert!(!c.access(0x40, false)); // cold miss
/// c.fill(0x40, LineState::Shared);
/// assert!(c.access(0x40, false)); // hit
/// assert!(!c.access(0x40, true)); // write to Shared: upgrade miss
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// All ways of all sets in one flat allocation: set `s` occupies
    /// `lines[s * assoc .. (s + 1) * assoc]`. Empty ways carry
    /// [`INVALID_BLOCK`], which no real (block-aligned) address can
    /// match, so lookups need no separate validity check.
    pub(crate) lines: Vec<Line>,
    pub(crate) set_mask: u32,
    pub(crate) assoc: usize,
    pub(crate) clock: u64,
    /// Access counters.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two and consistent.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.block_bytes.is_power_of_two() && cfg.block_bytes >= 4);
        assert!(cfg.assoc >= 1);
        let sets = cfg.num_sets();
        assert!(
            sets.is_power_of_two() && sets >= 1,
            "set count must be a power of two"
        );
        Cache {
            cfg,
            lines: vec![Line::EMPTY; (sets * cfg.assoc) as usize],
            set_mask: sets - 1,
            assoc: cfg.assoc as usize,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The flat-array range holding the ways of `block`'s set.
    fn set_range(&self, block: u32) -> std::ops::Range<usize> {
        let si = ((block / self.cfg.block_bytes) & self.set_mask) as usize;
        si * self.assoc..(si + 1) * self.assoc
    }

    /// Records an access and reports whether it hits: a read hits in
    /// `Shared` or `Modified`; a write hits only in `Modified`.
    pub fn access(&mut self, addr: u32, write: bool) -> bool {
        let block = self.cfg.block_of(addr);
        self.clock += 1;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let clock = self.clock;
        let range = self.set_range(block);
        let hit = self.lines[range]
            .iter_mut()
            .find(|l| l.block == block)
            .map(|l| {
                l.lru = clock;
                l.state
            });
        match (hit, write) {
            (Some(_), false) | (Some(LineState::Modified), true) => true,
            (Some(LineState::Shared), true) => {
                self.stats.write_misses += 1;
                false
            }
            (None, w) => {
                if w {
                    self.stats.write_misses += 1;
                } else {
                    self.stats.read_misses += 1;
                }
                false
            }
        }
    }

    /// Probes without updating statistics or LRU.
    pub fn probe(&self, addr: u32) -> Option<LineState> {
        let block = self.cfg.block_of(addr);
        self.lines[self.set_range(block)]
            .iter()
            .find(|l| l.block == block)
            .map(|l| l.state)
    }

    /// Inserts (or upgrades) the line for `addr` in `state`, returning
    /// the victim if a line had to be evicted.
    pub fn fill(&mut self, addr: u32, state: LineState) -> Option<Victim> {
        let block = self.cfg.block_of(addr);
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(block);
        let set = &mut self.lines[range];
        if let Some(l) = set.iter_mut().find(|l| l.block == block) {
            l.state = state;
            l.lru = clock;
            return None;
        }
        // Prefer an empty way; otherwise evict the least recently used
        // (lru stamps are unique, so the victim is deterministic).
        let (slot, victim) = match set.iter().position(|l| !l.valid()) {
            Some(i) => (i, None),
            None => {
                let (vi, v) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, l)| l.lru)
                    .expect("nonempty set");
                let victim = Victim {
                    block: v.block,
                    dirty: v.state == LineState::Modified,
                };
                self.stats.evictions += 1;
                (vi, Some(victim))
            }
        };
        set[slot] = Line {
            block,
            state,
            lru: clock,
        };
        victim
    }

    /// Removes the line containing `addr` (protocol invalidation or
    /// FLUSH), returning whether it existed and was dirty.
    pub fn invalidate(&mut self, addr: u32) -> Option<bool> {
        let block = self.cfg.block_of(addr);
        let range = self.set_range(block);
        let set = &mut self.lines[range];
        let l = set.iter_mut().find(|l| l.block == block)?;
        let dirty = l.state == LineState::Modified;
        *l = Line::EMPTY;
        self.stats.invalidations += 1;
        Some(dirty)
    }

    /// Downgrades the line containing `addr` to `Shared` (directory
    /// read request against a Modified owner). Returns true if the
    /// line was present and dirty.
    pub fn downgrade(&mut self, addr: u32) -> bool {
        let block = self.cfg.block_of(addr);
        let range = self.set_range(block);
        if let Some(l) = self.lines[range].iter_mut().find(|l| l.block == block) {
            let was = l.state == LineState::Modified;
            l.state = LineState::Shared;
            was
        } else {
            false
        }
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.lines.iter().filter(|l| l.valid()).count()
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB/{}B/{}-way: {} lines, miss rate {:.4}",
            self.cfg.size_bytes / 1024,
            self.cfg.block_bytes,
            self.cfg.assoc,
            self.resident(),
            self.stats.miss_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 128,
            block_bytes: 16,
            assoc: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, false));
        c.fill(0, LineState::Shared);
        assert!(c.access(0, false));
        assert!(c.access(12, false), "same block");
        assert!(!c.access(16, false), "next block");
        assert_eq!(c.stats.read_misses, 2);
    }

    #[test]
    fn write_needs_modified() {
        let mut c = small();
        c.fill(0, LineState::Shared);
        assert!(!c.access(0, true), "upgrade miss");
        c.fill(0, LineState::Modified);
        assert!(c.access(0, true));
        assert!(c.access(0, false), "reads hit in M");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small(); // 4 sets × 2 ways, 16B blocks
        let set_stride = 16 * 4; // blocks mapping to the same set
        c.fill(0, LineState::Shared);
        c.fill(set_stride, LineState::Modified);
        // Touch block 0 so set_stride becomes LRU.
        assert!(c.access(0, false));
        let v = c.fill(2 * set_stride, LineState::Shared).expect("eviction");
        assert_eq!(v.block, set_stride);
        assert!(v.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(32, LineState::Modified);
        assert_eq!(c.invalidate(40), Some(true), "same block, dirty");
        assert_eq!(c.invalidate(32), None, "already gone");
        assert!(!c.access(32, false));
    }

    #[test]
    fn downgrade_keeps_line_shared() {
        let mut c = small();
        c.fill(0, LineState::Modified);
        assert!(c.downgrade(0));
        assert_eq!(c.probe(0), Some(LineState::Shared));
        assert!(!c.downgrade(0), "no longer dirty");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            block_bytes: 16,
            assoc: 1,
        });
        // 4 sets; blocks 0 and 64 conflict.
        c.fill(0, LineState::Shared);
        let v = c.fill(64, LineState::Shared).expect("conflict eviction");
        assert_eq!(v.block, 0);
        assert!(!v.dirty);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = small();
        for i in 0..10 {
            let addr = (i % 2) * 16;
            if !c.access(addr, false) {
                c.fill(addr, LineState::Shared);
            }
        }
        // 2 cold misses out of 10.
        assert!((c.stats.miss_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn default_geometry_matches_table_4() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.size_bytes, 64 * 1024);
        assert_eq!(cfg.block_bytes, 16);
        assert_eq!(cfg.num_sets(), 4096);
    }
}
