//! # april-mem — the ALEWIFE memory substrate
//!
//! Everything between the APRIL processor and the network: word-
//! addressed memory with full/empty synchronization bits, the
//! processor cache, the full-map directory coherence protocol, and the
//! requester-side cache controller.
//!
//! * [`femem`] — memory with full/empty bits; doubles as the
//!   zero-latency ideal shared memory used for the paper's Table 3.
//! * [`alloc`] — bump allocation of simulated memory regions.
//! * [`cache`] — set-associative MSI cache (tags + state).
//! * [`msg`] — coherence protocol messages and their network sizes.
//! * [`directory`] — the home-side protocol engine (full-map
//!   invalidation directory, the paper's reference \[5\]).
//! * [`controller`] — the requester-side controller: local fast path
//!   vs. remote transaction, FLUSH and the fence counter.
//! * [`error`] — typed protocol errors and the retransmission policy.
//! * [`snapshot`] — wire encoding of every protocol engine's state,
//!   including in-flight transactions, for machine checkpoints
//!   (DESIGN.md §11).
//!
//! The protocol engines tolerate an unreliable network: requests and
//! replies carry transaction sequence numbers, demands and their acks
//! carry busy epochs, lost messages are retransmitted with bounded
//! exponential backoff, and hot-path failures surface as
//! [`error::ProtocolError`] values instead of panics.
//!
//! The multi-node machine that wires these together with the network
//! lives in `april-machine`.

#![warn(missing_docs)]

pub mod alloc;
pub mod cache;
pub mod controller;
pub mod directory;
pub mod error;
pub mod femem;
pub mod msg;
pub mod snapshot;

pub use cache::{Cache, CacheConfig, LineState};
pub use controller::{CacheController, CtlConfig, Outcome};
pub use directory::{DirConfig, DirState, Directory, DirectoryKind, SharerSet, INLINE_PTRS};
pub use error::{ProtocolError, RetryConfig};
pub use femem::FeMemory;
pub use msg::CohMsg;
