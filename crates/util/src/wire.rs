//! Hand-rolled little-endian wire format helpers.
//!
//! The snapshot subsystem (DESIGN.md §11) serializes full machine
//! state into a versioned binary image with **no external
//! dependencies**. Every crate encodes its own private state through
//! these two types; all integers are fixed-width little-endian, all
//! variable-length data is length-prefixed, and floating-point values
//! travel as their IEEE-754 bit patterns so encode → decode is exact.
//!
//! Determinism rule: a type's `encode` must emit identical bytes for
//! semantically identical state. Hash-map-backed state therefore must
//! be written in sorted key order, never in iteration order.

use std::fmt;

/// An error while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the requested field.
    Eof {
        /// Byte offset at which the read was attempted.
        at: usize,
    },
    /// A tag or discriminant byte had no defined meaning.
    BadTag {
        /// Byte offset of the offending tag.
        at: usize,
        /// The tag value found.
        tag: u8,
    },
    /// A length prefix or count was implausible for the platform.
    BadLen {
        /// Byte offset of the offending length.
        at: usize,
        /// The length value found.
        len: u64,
    },
    /// A decoded value violated an invariant of the target type.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof { at } => write!(f, "unexpected end of buffer at byte {at}"),
            WireError::BadTag { at, tag } => write!(f, "unknown tag {tag:#x} at byte {at}"),
            WireError::BadLen { at, len } => write!(f, "implausible length {len} at byte {at}"),
            WireError::Corrupt(what) => write!(f, "corrupt field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only binary encoder.
///
/// # Examples
///
/// ```
/// use april_util::wire::{ByteReader, ByteWriter};
///
/// let mut w = ByteWriter::new();
/// w.u32(7);
/// w.str("april");
/// let bytes = w.finish();
/// let mut r = ByteReader::new(&bytes);
/// assert_eq!(r.u32().unwrap(), 7);
/// assert_eq!(r.str().unwrap(), "april");
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the format is platform-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, so the round trip
    /// is exact (including NaN payloads and signed zero).
    ///
    /// # Examples
    ///
    /// ```
    /// use april_util::wire::{ByteReader, ByteWriter};
    ///
    /// let mut w = ByteWriter::new();
    /// w.f64(-0.0);
    /// w.f64(f64::NAN);
    /// let bytes = w.finish();
    /// let mut r = ByteReader::new(&bytes);
    /// assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
    /// assert!(r.f64().unwrap().is_nan());
    /// ```
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Sequential binary decoder over a borrowed buffer.
///
/// Every read is bounds-checked and returns a typed [`WireError`]
/// rather than panicking, so corrupt or truncated snapshots surface as
/// ordinary errors.
///
/// # Examples
///
/// ```
/// use april_util::wire::{ByteReader, ByteWriter, WireError};
///
/// let mut w = ByteWriter::new();
/// w.u32(0xA9811990);
/// let bytes = w.finish();
///
/// // Truncating the buffer turns the read into a typed error, with
/// // the offset at which decoding failed.
/// let mut r = ByteReader::new(&bytes[..3]);
/// assert_eq!(r.u32(), Err(WireError::Eof { at: 0 }));
/// ```
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current read offset in bytes.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Eof { at: self.pos })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that
    /// do not fit the platform or exceed the remaining buffer-derived
    /// plausibility bound.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::BadLen { at, len: v })
    }

    /// Reads a `bool` byte, rejecting values other than 0 and 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { at, tag }),
        }
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte slice, borrowed from the buffer
    /// (no copy). The length prefix is validated against the bytes
    /// actually remaining, so a corrupt prefix cannot over-read.
    ///
    /// # Examples
    ///
    /// ```
    /// use april_util::wire::{ByteReader, ByteWriter};
    ///
    /// let mut w = ByteWriter::new();
    /// w.bytes(&[0xAA, 0xBB]);
    /// let bytes = w.finish();
    /// let mut r = ByteReader::new(&bytes);
    /// assert_eq!(r.bytes().unwrap(), &[0xAA, 0xBB]);
    /// assert!(r.is_empty());
    /// ```
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let at = self.pos;
        let n = self.usize()?;
        if n > self.buf.len() - self.pos {
            return Err(WireError::BadLen { at, len: n as u64 });
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::Corrupt("invalid UTF-8"))
    }
}

/// A 64-bit content digest: FNV-1a over the bytes, finalized with
/// [`splitmix64`](crate::splitmix64) for avalanche. Used by snapshots
/// to fingerprint the loaded program without storing it.
///
/// # Examples
///
/// ```
/// let a = april_util::wire::digest64(b"april");
/// let b = april_util::wire::digest64(b"april");
/// assert_eq!(a, b);
/// assert_ne!(a, april_util::wire::digest64(b"alewife"));
/// ```
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    crate::splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(0xab);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.usize(12345);
        w.bool(true);
        w.bool(false);
        w.f64(-0.125);
        w.bytes(&[1, 2, 3]);
        w.str("snapshot");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12345);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "snapshot");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.u64(7);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.u64(), Err(WireError::Eof { at: 0 }));
    }

    #[test]
    fn bad_bool_and_bad_len_are_rejected() {
        let mut r = ByteReader::new(&[7]);
        assert_eq!(r.bool(), Err(WireError::BadTag { at: 0, tag: 7 }));
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // absurd length prefix
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(WireError::BadLen { .. })));
    }

    #[test]
    fn f64_bits_are_exact() {
        for v in [0.0, -0.0, f64::NAN, f64::INFINITY, 1.0 / 3.0] {
            let mut w = ByteWriter::new();
            w.f64(v);
            let bytes = w.finish();
            let got = ByteReader::new(&bytes).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        assert_eq!(digest64(b""), digest64(b""));
        assert_ne!(digest64(b"a"), digest64(b"b"));
    }
}
