//! Vendored deterministic PRNGs.
//!
//! Two classic public-domain generators, implemented from their
//! reference descriptions (Steele et al. for splitmix64, Blackman &
//! Vigna for xoshiro256\*\*):
//!
//! * [`splitmix64`] — a stateless 64-bit mixing function. Besides
//!   seeding [`Rng`], it is the workhorse of the fault-injection
//!   layer: hashing `(seed, packet, hop)` through it yields a fault
//!   decision that is independent of event-processing order, so a
//!   fault schedule is exactly reproducible from its seed alone.
//! * [`Rng`] — xoshiro256\*\*, a small, fast, high-quality stream
//!   generator for everything that wants a sequence (benchmarks,
//!   randomized tests, traffic generators).

/// The splitmix64 mixing function: maps any 64-bit value to a
/// well-scrambled 64-bit value. Stateless, so `splitmix64(x)` is a
/// pure hash usable for order-independent deterministic decisions.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A xoshiro256\*\* pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use april_util::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let p = a.gen_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (state expanded through
    /// splitmix64, the standard seeding procedure for xoshiro).
    pub fn seed_from(seed: u64) -> Rng {
        let mut s = [0u64; 4];
        let mut x = seed;
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(x);
        }
        // An all-zero state is the one forbidden state.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Rng { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value in `[0, bound)` (Lemire-style; unbiased enough
    /// for simulation workloads). Returns 0 if `bound` is 0.
    #[inline]
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection-free multiply-shift with one widening multiply.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_below(bound as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.gen_below(hi.abs_diff(lo)) as i64)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.gen_index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.gen_index(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of the splitmix64 stream seeded with 0
        // (published reference values); splitmix64(counter) folds the
        // γ increment inside, so successive counters give the stream.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(0x9e37_79b9_7f4a_7c15), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = Rng::seed_from(1);
        for _ in 0..1000 {
            let v = r.gen_range(-9, 100);
            assert!((-9..100).contains(&v));
            assert!(r.gen_index(7) < 7);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
