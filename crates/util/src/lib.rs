//! # april-util — workspace utilities
//!
//! Small, dependency-free helpers shared across the workspace. Today
//! that is [`rng`]: vendored deterministic pseudo-random number
//! generators (splitmix64 and xoshiro256\*\*) used by the network
//! fault-injection layer, the experiment binaries, and the randomized
//! test suites, so the workspace builds and tests with no network
//! access and every "random" run is exactly reproducible from a seed.

#![warn(missing_docs)]

pub mod rng;

pub use rng::{splitmix64, Rng};
