//! # april-util — workspace utilities
//!
//! Small, dependency-free helpers shared across the workspace:
//!
//! * [`rng`]: vendored deterministic pseudo-random number generators
//!   (splitmix64 and xoshiro256\*\*) used by the network
//!   fault-injection layer, the experiment binaries, and the
//!   randomized test suites, so the workspace builds and tests with no
//!   network access and every "random" run is exactly reproducible
//!   from a seed.
//! * [`wire`]: the hand-rolled little-endian binary encoder/decoder
//!   behind the machine snapshot format (DESIGN.md §11).
//! * [`hash`]: a deterministic multiply–xor hasher for hot-path hash
//!   maps keyed by simulator-generated integers, where SipHash's
//!   collision hardening is pure overhead.

#![deny(missing_docs)]

pub mod hash;
pub mod rng;
pub mod wire;

pub use hash::DetState;
pub use rng::{splitmix64, Rng};

/// Compile-time assertion that `T` is [`Send`].
///
/// The parallel machine moves node state, protocol payloads, and fault
/// plans across worker threads; a future field of a non-`Send` type
/// (an `Rc`, a raw pointer) would silently push the failure to the one
/// crate that spawns threads. Instead, each crate pins the contract
/// down where the type is defined:
///
/// ```
/// struct Payload {
///     words: Vec<u32>,
/// }
/// const _: () = april_util::assert_send::<Payload>();
/// ```
///
/// Breaking the bound becomes a compile error in the owning crate, with
/// the offending type named in the diagnostic.
pub const fn assert_send<T: Send>() {}
