//! A fast deterministic hasher for hot-path hash maps.
//!
//! `std`'s default hasher is SipHash-1-3 behind a per-process random
//! key: robust against crafted collisions, but it dominates the
//! profile of simulator loops that hit a `HashMap` several times per
//! cycle with small integer keys (packet ids, channel ids). Those maps
//! key on values the simulator itself generates — sequential counters
//! and small coordinates — so the DoS hardening buys nothing, and a
//! multiply–xor finalizer (the splitmix64 mixer already vendored in
//! [`crate::rng`]) spreads them perfectly well.
//!
//! Determinism note: swapping the random state for a fixed one makes
//! iteration order stable *within one build*, but nothing in the
//! workspace may depend on map iteration order anyway — with the
//! random default hasher, order already differed between any two maps
//! — and every serialized surface (snapshots, reports) sorts keys
//! first. The hasher is a pure speed substitution.

use std::hash::{BuildHasher, Hasher};

/// A [`BuildHasher`] producing [`DetHasher`]s. Zero-sized and `Default`,
/// so `HashMap<K, V, DetState>` works with `HashMap::default()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetState;

impl BuildHasher for DetState {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher { state: 0 }
    }
}

/// The hasher built by [`DetState`]: folds every written word into the
/// state with the splitmix64 finalizer. Not collision-resistant against
/// an adversary — use only for keys the program generates itself.
#[derive(Debug, Clone, Copy)]
pub struct DetHasher {
    state: u64,
}

impl DetHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        // splitmix64's output mixer: full avalanche on 64 bits, two
        // multiplies and three shifts.
        let mut z = self.state.wrapping_add(v).wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        self.state = z ^ (z >> 31);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Derived `Hash` impls for structs of integers arrive as a few
        // fixed-width `write_*` calls, not here; this path only matters
        // for byte strings, which the hot maps never use.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_across_instances() {
        let a = DetState.hash_one(0xdead_beefu64);
        let b = DetState.hash_one(0xdead_beefu64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential packet ids must spread: check low bits differ
        // (HashMap uses the low bits for bucket selection via the high
        // bits in hashbrown, but full avalanche covers both).
        let hashes: Vec<u64> = (0u64..64).map(|i| DetState.hash_one(i)).collect();
        let mut uniq = hashes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), hashes.len());
    }

    #[test]
    fn works_as_map_state() {
        let mut m: HashMap<u64, u32, DetState> = HashMap::default();
        for i in 0..100 {
            m.insert(i, (i * 3) as u32);
        }
        for i in 0..100 {
            assert_eq!(m[&i], (i * 3) as u32);
        }
    }

    #[test]
    fn byte_strings_hash_consistently() {
        let h = |b: &[u8]| {
            let mut h = DetState.build_hasher();
            h.write(b);
            h.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hello\0"), "length must matter");
        assert_ne!(h(b"12345678x"), h(b"12345678y"));
    }
}
