//! Property test for the decode-cache execution engine (DESIGN.md
//! §13): random straight-line and branchy programs, executed once
//! instruction by instruction through `Cpu::step` and once through
//! `bookable_run`/`run_decoded` with step fallback, must produce the
//! same machine-visible `StepEvent` stream, the same statistics
//! ledger, and the same final register, frame, and memory state.
//!
//! The generator is seeded with the workspace's vendored deterministic
//! RNG, so every failure reproduces from its printed seed.

use april_core::cpu::{Cpu, CpuConfig, StepEvent};
use april_core::decoded::DecodedProgram;
use april_core::isa::asm::assemble;
use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
use april_core::program::Program;
use april_core::word::Word;
use april_util::rng::Rng;

struct FlatMem {
    words: Vec<Word>,
}

impl MemoryPort for FlatMem {
    fn load(&mut self, addr: u32, _: april_core::isa::LoadFlavor, _: AccessCtx) -> LoadReply {
        LoadReply::Data {
            word: self.words[(addr / 4) as usize],
            fe: true,
        }
    }
    fn store(
        &mut self,
        addr: u32,
        v: Word,
        _: april_core::isa::StoreFlavor,
        _: AccessCtx,
    ) -> StoreReply {
        self.words[(addr / 4) as usize] = v;
        StoreReply::Done { fe: true }
    }
}

fn flat_mem() -> FlatMem {
    FlatMem {
        words: vec![Word::ZERO; 1024],
    }
}

/// One random instruction. Mixes the decode whitelist (ALU, movi, nop)
/// with deliberate run-breakers (loads and stores, which lower to
/// `DecOp::Other`) so runs of every length abut fallback steps.
fn push_random_op(rng: &mut Rng, src: &mut String, mem_ops: bool) {
    let d = 1 + rng.next_u64() % 12;
    let s1 = 1 + rng.next_u64() % 12;
    let s2 = 1 + rng.next_u64() % 12;
    match rng.next_u64() % 10 {
        0 => src.push_str(&format!("    movi {}, r{d}\n", rng.next_u64() % 1000)),
        1 => src.push_str("    nop\n"),
        2 => {
            let op = ["add", "sub", "and", "or", "xor"][(rng.next_u64() % 5) as usize];
            src.push_str(&format!("    {op} r{s1}, r{s2}, r{d}\n"));
        }
        3 => {
            let op = ["sll", "srl", "sra"][(rng.next_u64() % 3) as usize];
            src.push_str(&format!("    {op} r{s1}, {}, r{d}\n", rng.next_u64() % 31));
        }
        4 if mem_ops => {
            src.push_str(&format!("    movi {}, r13\n", 4 * (rng.next_u64() % 128)));
            src.push_str(&format!("    ld r13+{}, r{d}\n", 4 * (rng.next_u64() % 8)));
        }
        5 if mem_ops => {
            src.push_str(&format!("    movi {}, r13\n", 4 * (rng.next_u64() % 128)));
            src.push_str(&format!("    st r{s1}, r13+{}\n", 4 * (rng.next_u64() % 8)));
        }
        _ => {
            let op = ["add", "sub", "xor", "or"][(rng.next_u64() % 4) as usize];
            src.push_str(&format!("    {op} r{s1}, {}, r{d}\n", rng.next_u64() % 256));
        }
    }
}

/// A terminating random program: an outer counted loop around a chain
/// of blocks with forward conditional branches (never backward, so the
/// only loop is the counted one), every block a random mix of safe and
/// run-breaking instructions.
fn random_program(seed: u64, branchy: bool, mem_ops: bool) -> Program {
    let mut rng = Rng::seed_from(seed);
    let mut src = String::from(".entry main\nmain:\n");
    let (nblocks, outer) = if branchy {
        (3 + (rng.next_u64() % 4) as usize, 1 + rng.next_u64() % 4)
    } else {
        (1, 1)
    };
    src.push_str(&format!("    movi {outer}, r15\nouter:\n"));
    for b in 0..nblocks {
        src.push_str(&format!("b{b}:\n"));
        let len = if branchy {
            2 + rng.next_u64() % 10
        } else {
            // Straight-line shape: long enough to exercise the MAX_RUN
            // cap (64) within a single run.
            80 + rng.next_u64() % 80
        };
        for _ in 0..len {
            push_random_op(&mut rng, &mut src, mem_ops);
        }
        if branchy && b + 1 < nblocks && rng.next_u64().is_multiple_of(2) {
            let t = b + 1 + (rng.next_u64() as usize % (nblocks - b - 1));
            let j = ["jeq", "jne", "jlt", "jge", "jmp"][(rng.next_u64() % 5) as usize];
            src.push_str(&format!("    {j} b{t}\n    nop\n"));
        }
    }
    src.push_str("    sub r15, 1, r15\n    jne outer\n    nop\n    halt\n");
    assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}"))
}

/// Steps to completion, recording the machine-visible events (the
/// schedulers swallow `Executed` and `Stalled`; everything else
/// reaches the driver).
fn drive_step(prog: &Program, max: u64) -> (Cpu, FlatMem, Vec<StepEvent>) {
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(prog.entry);
    let mut mem = flat_mem();
    let mut evs = Vec::new();
    for _ in 0..max {
        if cpu.is_halted() {
            break;
        }
        match cpu.step(prog, &mut mem) {
            StepEvent::Executed | StepEvent::Stalled { .. } => {}
            e => evs.push(e),
        }
    }
    (cpu, mem, evs)
}

/// Same drive through the decode engine: execute every bookable run as
/// flat bytecode, fall back to `step` on anything else — the same
/// cut-over the machines perform per visited cycle.
fn drive_decoded(prog: &Program, max: u64) -> (Cpu, FlatMem, Vec<StepEvent>) {
    let dec = DecodedProgram::lower(prog);
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(prog.entry);
    let mut mem = flat_mem();
    let mut evs = Vec::new();
    let mut budget = max;
    while budget > 0 {
        if cpu.is_halted() {
            break;
        }
        let k = cpu
            .bookable_run(&dec)
            .min(budget.min(u64::from(u32::MAX)) as u32);
        if k > 0 {
            cpu.run_decoded(&dec, k);
            budget -= u64::from(k);
        } else {
            match cpu.step(prog, &mut mem) {
                StepEvent::Executed | StepEvent::Stalled { .. } => {}
                e => evs.push(e),
            }
            budget -= 1;
        }
    }
    (cpu, mem, evs)
}

fn assert_equivalent(seed: u64, prog: &Program) {
    const MAX: u64 = 200_000;
    let (a, am, aev) = drive_step(prog, MAX);
    let (b, bm, bev) = drive_decoded(prog, MAX);
    assert!(a.is_halted(), "seed {seed}: step drive did not halt");
    assert!(b.is_halted(), "seed {seed}: decoded drive did not halt");
    assert_eq!(aev, bev, "seed {seed}: StepEvent streams diverged");
    assert_eq!(a.stats, b.stats, "seed {seed}: stats ledgers diverged");
    assert_eq!(a.fp(), b.fp(), "seed {seed}: frame pointers diverged");
    for f in 0..a.nframes() {
        assert_eq!(a.frame(f), b.frame(f), "seed {seed}: frame {f} diverged");
    }
    assert_eq!(am.words, bm.words, "seed {seed}: memory diverged");
}

#[test]
fn straight_line_programs_match_step() {
    for seed in 0..40 {
        let prog = random_program(0x5eed_0000 + seed, false, false);
        assert_equivalent(seed, &prog);
    }
}

#[test]
fn straight_line_with_memory_ops_match_step() {
    for seed in 0..40 {
        let prog = random_program(0x5eed_1000 + seed, false, true);
        assert_equivalent(seed, &prog);
    }
}

#[test]
fn branchy_programs_match_step() {
    for seed in 0..60 {
        let prog = random_program(0x5eed_2000 + seed, true, true);
        assert_equivalent(seed, &prog);
    }
}
