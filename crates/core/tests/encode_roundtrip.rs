//! Randomized tests: the reference binary encoding and the assembler
//! syntax are exact inverses of decoding/disassembly. Driven by the
//! vendored deterministic PRNG, so every run checks the same cases.

use april_core::isa::encode::{decode_all, encode_all};
use april_core::isa::{AluOp, Cond, FpOp, Instr, LoadFlavor, Operand, Reg, StoreFlavor};
use april_util::Rng;

fn arb_reg(r: &mut Rng) -> Reg {
    if r.gen_bool(0.5) {
        Reg::G(r.gen_index(8) as u8)
    } else {
        Reg::L(r.gen_index(32) as u8)
    }
}

fn arb_operand(r: &mut Rng) -> Operand {
    if r.gen_bool(0.5) {
        Operand::Reg(arb_reg(r))
    } else {
        Operand::Imm(r.gen_range(Operand::IMM_MIN as i64, Operand::IMM_MAX as i64 + 1) as i32)
    }
}

fn arb_instr(r: &mut Rng) -> Instr {
    match r.gen_index(25) {
        0 => Instr::Nop,
        1 => Instr::Halt,
        2 => Instr::IncFp,
        3 => Instr::DecFp,
        4 => Instr::Fence,
        5 => Instr::Alu {
            op: *r.choose(&AluOp::ALL),
            s1: arb_reg(r),
            s2: arb_operand(r),
            d: arb_reg(r),
            tagged: r.gen_bool(0.5),
        },
        6 => Instr::MovI {
            imm: r.next_u32(),
            d: arb_reg(r),
        },
        7 => Instr::Branch {
            cond: *r.choose(&Cond::ALL),
            offset: r.gen_range(-(1 << 21), 1 << 21) as i32,
        },
        8 => Instr::Jmpl {
            s1: arb_reg(r),
            s2: arb_operand(r),
            d: arb_reg(r),
        },
        9 => Instr::Load {
            flavor: *r.choose(&LoadFlavor::ALL),
            a: arb_reg(r),
            offset: r.gen_range(-1024, 1024) as i32,
            d: arb_reg(r),
        },
        10 => Instr::Store {
            flavor: *r.choose(&StoreFlavor::ALL),
            a: arb_reg(r),
            offset: r.gen_range(-1024, 1024) as i32,
            s: arb_reg(r),
        },
        11 => Instr::RdFp { d: arb_reg(r) },
        12 => Instr::StFp { s: arb_reg(r) },
        13 => Instr::RdPsr { d: arb_reg(r) },
        14 => Instr::WrPsr { s: arb_reg(r) },
        15 => Instr::RtCall {
            n: r.next_u32() as u16,
        },
        16 => Instr::Flush {
            a: arb_reg(r),
            offset: r.gen_range(-1024, 1024) as i32,
        },
        17 => Instr::Ldio {
            reg: r.next_u32() as u16,
            d: arb_reg(r),
        },
        18 => Instr::Stio {
            reg: r.next_u32() as u16,
            s: arb_reg(r),
        },
        19 => Instr::Falu {
            op: *r.choose(&FpOp::ALL),
            fs1: r.gen_index(8) as u8,
            fs2: r.gen_index(8) as u8,
            fd: r.gen_index(8) as u8,
        },
        20 => Instr::Fcmp {
            fs1: r.gen_index(8) as u8,
            fs2: r.gen_index(8) as u8,
        },
        21 => Instr::LdF {
            a: arb_reg(r),
            offset: r.gen_range(-1024, 1024) as i32,
            fd: r.gen_index(8) as u8,
        },
        22 => Instr::StF {
            fs: r.gen_index(8) as u8,
            a: arb_reg(r),
            offset: r.gen_range(-1024, 1024) as i32,
        },
        23 => Instr::FMovI {
            bits: r.next_u32(),
            fd: r.gen_index(8) as u8,
        },
        24 => {
            if r.gen_bool(0.5) {
                Instr::FixToF {
                    s: arb_reg(r),
                    fd: r.gen_index(8) as u8,
                }
            } else {
                Instr::FToFix {
                    fs: r.gen_index(8) as u8,
                    d: arb_reg(r),
                }
            }
        }
        _ => unreachable!(),
    }
}

fn arb_program(r: &mut Rng, max_len: usize) -> Vec<Instr> {
    (0..r.gen_index(max_len)).map(|_| arb_instr(r)).collect()
}

/// encode → decode is the identity on every representable program.
#[test]
fn binary_roundtrip() {
    let mut r = Rng::seed_from(0x0401);
    for _ in 0..512 {
        let instrs = arb_program(&mut r, 64);
        let words = encode_all(&instrs).expect("all generated fields are in range");
        let back = decode_all(&words).expect("own encoding must decode");
        assert_eq!(back, instrs);
    }
}

/// Jmpl immediates outside 13 bits are rejected, never mangled.
#[test]
fn jmpl_imm_range_enforced() {
    let mut r = Rng::seed_from(0x0402);
    for _ in 0..256 {
        let imm = r.gen_range(4096, 100_000) as i32;
        let mut out = Vec::new();
        let res = april_core::isa::encode::encode(
            Instr::Jmpl {
                s1: Reg::ZERO,
                s2: Operand::Imm(imm),
                d: Reg::ZERO,
            },
            &mut out,
        );
        assert!(res.is_err(), "imm {imm} must be rejected");
    }
}

/// Every decoded instruction re-encodes to the same words (canonical
/// encoding).
#[test]
fn canonical_encoding() {
    let mut r = Rng::seed_from(0x0403);
    for _ in 0..512 {
        let instrs = arb_program(&mut r, 32);
        let words = encode_all(&instrs).unwrap();
        let back = decode_all(&words).unwrap();
        let words2 = encode_all(&back).unwrap();
        assert_eq!(words, words2);
    }
}

/// Disassembly text re-assembles to the identical instruction, for the
/// instruction forms the assembler supports (everything except
/// register-indexed jmpl).
#[test]
fn asm_roundtrip() {
    use std::fmt::Write as _;
    let mut r = Rng::seed_from(0x0404);
    for _ in 0..256 {
        // The text assembler expresses jmpl offsets as immediates only,
        // and branches by numeric offset (labels are a convenience).
        let printable: Vec<Instr> = arb_program(&mut r, 32)
            .into_iter()
            .filter(|i| {
                !matches!(
                    i,
                    Instr::Jmpl {
                        s2: Operand::Reg(_),
                        ..
                    }
                )
            })
            .collect();
        if printable.is_empty() {
            continue;
        }
        let mut text = String::new();
        for i in &printable {
            writeln!(text, "{i}").unwrap();
        }
        let prog = april_core::isa::asm::assemble(&text)
            .unwrap_or_else(|e| panic!("disassembly must reassemble: {e}\n{text}"));
        assert_eq!(prog.instrs, printable);
    }
}
