//! Property tests: the reference binary encoding and the assembler
//! syntax are exact inverses of decoding/disassembly.

use april_core::isa::encode::{decode_all, encode_all};
use april_core::isa::{AluOp, Cond, FpOp, Instr, LoadFlavor, Operand, Reg, StoreFlavor};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![(0u8..8).prop_map(Reg::G), (0u8..32).prop_map(Reg::L)]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        (Operand::IMM_MIN..=Operand::IMM_MAX).prop_map(Operand::Imm),
    ]
}

fn arb_aluop() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_load_flavor() -> impl Strategy<Value = LoadFlavor> {
    prop::sample::select(LoadFlavor::ALL.to_vec())
}

fn arb_store_flavor() -> impl Strategy<Value = StoreFlavor> {
    prop::sample::select(StoreFlavor::ALL.to_vec())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::IncFp),
        Just(Instr::DecFp),
        Just(Instr::Fence),
        (arb_aluop(), arb_reg(), arb_operand(), arb_reg(), any::<bool>()).prop_map(
            |(op, s1, s2, d, tagged)| Instr::Alu { op, s1, s2, d, tagged }
        ),
        (any::<u32>(), arb_reg()).prop_map(|(imm, d)| Instr::MovI { imm, d }),
        (arb_cond(), -(1 << 21)..(1 << 21)).prop_map(|(cond, offset)| Instr::Branch {
            cond,
            offset
        }),
        (arb_reg(), arb_operand(), arb_reg())
            .prop_map(|(s1, s2, d)| Instr::Jmpl { s1, s2, d }),
        (arb_load_flavor(), arb_reg(), -1024i32..1024, arb_reg())
            .prop_map(|(flavor, a, offset, d)| Instr::Load { flavor, a, offset, d }),
        (arb_store_flavor(), arb_reg(), -1024i32..1024, arb_reg())
            .prop_map(|(flavor, a, offset, s)| Instr::Store { flavor, a, offset, s }),
        arb_reg().prop_map(|d| Instr::RdFp { d }),
        arb_reg().prop_map(|s| Instr::StFp { s }),
        arb_reg().prop_map(|d| Instr::RdPsr { d }),
        arb_reg().prop_map(|s| Instr::WrPsr { s }),
        any::<u16>().prop_map(|n| Instr::RtCall { n }),
        (arb_reg(), -1024i32..1024).prop_map(|(a, offset)| Instr::Flush { a, offset }),
        (any::<u16>(), arb_reg()).prop_map(|(reg, d)| Instr::Ldio { reg, d }),
        (any::<u16>(), arb_reg()).prop_map(|(reg, s)| Instr::Stio { reg, s }),
        (prop::sample::select(FpOp::ALL.to_vec()), 0u8..8, 0u8..8, 0u8..8)
            .prop_map(|(op, fs1, fs2, fd)| Instr::Falu { op, fs1, fs2, fd }),
        (0u8..8, 0u8..8).prop_map(|(fs1, fs2)| Instr::Fcmp { fs1, fs2 }),
        (arb_reg(), -1024i32..1024, 0u8..8)
            .prop_map(|(a, offset, fd)| Instr::LdF { a, offset, fd }),
        (0u8..8, arb_reg(), -1024i32..1024)
            .prop_map(|(fs, a, offset)| Instr::StF { fs, a, offset }),
        (any::<u32>(), 0u8..8).prop_map(|(bits, fd)| Instr::FMovI { bits, fd }),
        (arb_reg(), 0u8..8).prop_map(|(s, fd)| Instr::FixToF { s, fd }),
        (0u8..8, arb_reg()).prop_map(|(fs, d)| Instr::FToFix { fs, d }),
    ]
}

proptest! {
    /// encode → decode is the identity on every representable program.
    #[test]
    fn binary_roundtrip(instrs in prop::collection::vec(arb_instr(), 0..64)) {
        let words = encode_all(&instrs).expect("all generated fields are in range");
        let back = decode_all(&words).expect("own encoding must decode");
        prop_assert_eq!(back, instrs);
    }

    /// Jmpl immediates outside 13 bits are rejected, never mangled.
    #[test]
    fn jmpl_imm_range_enforced(imm in 4096i32..100_000) {
        let mut out = Vec::new();
        let r = april_core::isa::encode::encode(
            Instr::Jmpl { s1: Reg::ZERO, s2: Operand::Imm(imm), d: Reg::ZERO },
            &mut out,
        );
        prop_assert!(r.is_err());
    }

    /// Every decoded instruction re-encodes to the same words
    /// (canonical encoding).
    #[test]
    fn canonical_encoding(instrs in prop::collection::vec(arb_instr(), 0..32)) {
        let words = encode_all(&instrs).unwrap();
        let back = decode_all(&words).unwrap();
        let words2 = encode_all(&back).unwrap();
        prop_assert_eq!(words, words2);
    }
}

proptest! {
    /// Disassembly text re-assembles to the identical instruction, for
    /// the instruction forms the assembler supports (everything except
    /// register-indexed jmpl).
    #[test]
    fn asm_roundtrip(instrs in prop::collection::vec(arb_instr(), 1..32)) {
        use std::fmt::Write as _;
        // The text assembler expresses jmpl offsets as immediates only,
        // and branches by numeric offset (labels are a convenience).
        let printable: Vec<Instr> = instrs
            .into_iter()
            .filter(|i| !matches!(i, Instr::Jmpl { s2: Operand::Reg(_), .. }))
            .collect();
        prop_assume!(!printable.is_empty());
        let mut text = String::new();
        for i in &printable {
            writeln!(text, "{i}").unwrap();
        }
        let prog = april_core::isa::asm::assemble(&text)
            .unwrap_or_else(|e| panic!("disassembly must reassemble: {e}\n{text}"));
        prop_assert_eq!(prog.instrs, printable);
    }
}
