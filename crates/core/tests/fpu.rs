//! FPU tests: per-context floating-point register sets and condition
//! bits (paper, Section 5: the SPARC FPU's register file is divided
//! into four sets of eight registers, with four sets of condition
//! bits, so FP state context-switches with the frame pointer).

use april_core::cpu::{Cpu, CpuConfig, StepEvent};
use april_core::isa::asm::assemble;
use april_core::isa::Reg;
use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
use april_core::psr::FpCond;
use april_core::word::Word;

struct FlatMem {
    words: Vec<Word>,
}

impl MemoryPort for FlatMem {
    fn load(&mut self, addr: u32, _: april_core::isa::LoadFlavor, _: AccessCtx) -> LoadReply {
        LoadReply::Data {
            word: self.words[(addr / 4) as usize],
            fe: true,
        }
    }
    fn store(
        &mut self,
        addr: u32,
        v: Word,
        _: april_core::isa::StoreFlavor,
        _: AccessCtx,
    ) -> StoreReply {
        self.words[(addr / 4) as usize] = v;
        StoreReply::Done { fe: true }
    }
}

fn run(src: &str) -> (Cpu, FlatMem) {
    let prog = assemble(src).unwrap_or_else(|e| panic!("{e}"));
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(prog.entry);
    let mut mem = FlatMem {
        words: vec![Word::ZERO; 256],
    };
    for _ in 0..10_000 {
        match cpu.step(&prog, &mut mem) {
            StepEvent::Halted => return (cpu, mem),
            StepEvent::Trapped(t) => panic!("trap: {t}"),
            _ => {}
        }
    }
    panic!("did not halt");
}

#[test]
fn fp_arithmetic() {
    let (cpu, _) = run("
        fmovi 1.5, f0
        fmovi 2.25, f1
        fadd f0, f1, f2
        fsub f1, f0, f3
        fmul f0, f1, f4
        fdiv f1, f0, f5
        halt
    ");
    assert_eq!(f32::from_bits(cpu.get_freg(2)), 3.75);
    assert_eq!(f32::from_bits(cpu.get_freg(3)), 0.75);
    assert_eq!(f32::from_bits(cpu.get_freg(4)), 3.375);
    assert_eq!(f32::from_bits(cpu.get_freg(5)), 1.5);
}

#[test]
fn fp_compare_and_branches() {
    let (cpu, _) = run("
        fmovi 1.0, f0
        fmovi 2.0, f1
        fcmp f0, f1
        jflt less
        nop
        movi 0, r1
        halt
    less:
        movi 1, r1
        fcmp f1, f1
        jfeq eq
        nop
        movi 0, r2
        halt
    eq:
        movi 1, r2
        fcmp f1, f0
        jfgt gt
        nop
        movi 0, r3
        halt
    gt:
        movi 1, r3
        halt
    ");
    assert_eq!(cpu.get_reg(Reg::L(1)), Word(1));
    assert_eq!(cpu.get_reg(Reg::L(2)), Word(1));
    assert_eq!(cpu.get_reg(Reg::L(3)), Word(1));
}

#[test]
fn nan_compares_unordered() {
    let (cpu, _) = run("
        fmovi 0x7fc00000, f0   ; NaN
        fmovi 1.0, f1
        fcmp f0, f1
        jfeq bad
        nop
        jflt bad
        nop
        jfgt bad
        nop
        movi 1, r1
        halt
    bad:
        movi 0, r1
        halt
    ");
    assert_eq!(cpu.get_reg(Reg::L(1)), Word(1));
    assert_eq!(cpu.active_frame().psr.fcc, FpCond::Unordered);
}

#[test]
fn fp_memory_roundtrip() {
    let (cpu, mem) = run("
        movi 0x80, r1
        fmovi 6.5, f0
        stf f0, r1+0
        ldf r1+0, f3
        halt
    ");
    assert_eq!(f32::from_bits(cpu.get_freg(3)), 6.5);
    assert_eq!(f32::from_bits(mem.words[0x20].0), 6.5);
}

#[test]
fn conversions() {
    let (cpu, _) = run("
        movi 28, r1        ; fixnum 7
        fix2f r1, f0
        fmovi 2.0, f1
        fdiv f0, f1, f2    ; 3.5
        f2fix f2, r2       ; truncates to 3
        halt
    ");
    assert_eq!(f32::from_bits(cpu.get_freg(0)), 7.0);
    assert_eq!(cpu.get_reg(Reg::L(2)).as_fixnum(), Some(3));
}

#[test]
fn fp_registers_are_per_context() {
    // Frame 0 and frame 1 own disjoint f-registers and condition bits:
    // the Section 5 partitioning of the FPU register file.
    let prog = assemble(
        "
        fmovi 1.0, f0      ; 0  frame 0
        fmovi 9.0, f1      ; 1
        fcmp f0, f1        ; 2  frame 0 context: Lt
        incfp              ; 3  switch to frame 1 (frame 0 resumes at 4)
        halt               ; 4  frame 0 halts after the round trip
        nop                ; 5
        fmovi 5.0, f0      ; 6  frame 1
        fcmp f0, f0        ; 7  frame 1 context: Eq
        decfp              ; 8  back to frame 0
    ",
    )
    .unwrap();
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(0);
    cpu.frame_mut(1).reset_at(6);
    let mut mem = FlatMem {
        words: vec![Word::ZERO; 64],
    };
    for _ in 0..20 {
        if let StepEvent::Halted = cpu.step(&prog, &mut mem) {
            break;
        }
    }
    assert_eq!(f32::from_bits(cpu.frame(0).fregs[0]), 1.0);
    assert_eq!(
        f32::from_bits(cpu.frame(1).fregs[0]),
        5.0,
        "f0 is per-frame"
    );
    assert_eq!(cpu.frame(0).psr.fcc, FpCond::Lt);
    assert_eq!(cpu.frame(1).psr.fcc, FpCond::Eq, "fcc is per-frame");
}

#[test]
fn fix2f_traps_on_future_operand() {
    let prog = assemble(
        "
        movi 0x101, r1     ; a future pointer (LSB set)
        fix2f r1, f0
        halt
    ",
    )
    .unwrap();
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(0);
    let mut mem = FlatMem {
        words: vec![Word::ZERO; 64],
    };
    cpu.step(&prog, &mut mem);
    match cpu.step(&prog, &mut mem) {
        StepEvent::Trapped(april_core::trap::Trap::FutureTouch { .. }) => {}
        other => panic!("expected future trap, got {other:?}"),
    }
}
