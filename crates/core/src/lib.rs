//! # april-core — the APRIL processor
//!
//! A from-scratch reproduction of the processor described in *APRIL: A
//! Processor Architecture for Multiprocessing* (Agarwal, Lim, Kranz,
//! Kubiatowicz; ISCA 1990).
//!
//! APRIL is a **coarse-grain multithreaded** RISC processor for
//! large-scale shared-memory multiprocessors. Unlike the cycle-by-cycle
//! interleaving of the HEP, APRIL executes one thread at full speed
//! until it suffers a remote cache miss or a failed synchronization
//! attempt, then switches to another of its (up to four) hardware-
//! resident threads in 4–11 cycles. Fine-grain synchronization uses a
//! full/empty bit on every memory word, and Mul-T futures are supported
//! by pointer tags that let strict operations trap in hardware.
//!
//! This crate contains everything that would be on the chip:
//!
//! * [`word`] — tagged 32-bit words (fixnum/other/cons/future).
//! * [`isa`] — the instruction set, with the 8+8 load/store flavors of
//!   Table 2, `Jfull`/`Jempty`, frame-pointer and out-of-band
//!   instructions; an assembler, disassembler, and binary encoding.
//! * [`frame`], [`psr`] — task frames (register set + PC chain + PSR).
//! * [`cpu`] — the cycle-accounted execution engine.
//! * [`trap`] — trap conditions (remote miss, full/empty, future touch).
//! * [`memport`] — the processor↔memory-system interface.
//! * [`program`] — program images and a label-resolving builder.
//! * [`stats`] — the cycle ledger used for utilization measurements.
//!
//! The memory system, network, machine assembly, run-time system and
//! compiler live in the sibling `april-*` crates.
//!
//! # Examples
//!
//! Assemble and run a program that sums 1..=10:
//!
//! ```
//! use april_core::isa::asm::assemble;
//! use april_core::cpu::{Cpu, CpuConfig, StepEvent};
//! use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
//! use april_core::word::Word;
//! use april_core::isa::Reg;
//!
//! struct NullMem;
//! impl MemoryPort for NullMem {
//!     fn load(&mut self, _: u32, _: april_core::isa::LoadFlavor, _: AccessCtx) -> LoadReply {
//!         LoadReply::Data { word: Word::ZERO, fe: true }
//!     }
//!     fn store(&mut self, _: u32, _: Word, _: april_core::isa::StoreFlavor, _: AccessCtx)
//!         -> StoreReply {
//!         StoreReply::Done { fe: false }
//!     }
//! }
//!
//! let prog = assemble("
//!     movi 10, r1
//!     movi 0, r2
//! loop:
//!     add r2, r1, r2
//!     sub r1, 1, r1
//!     jne loop
//!     nop
//!     halt
//! ")?;
//! let mut cpu = Cpu::new(CpuConfig::default());
//! cpu.boot(prog.entry);
//! while cpu.step(&prog, &mut NullMem) != StepEvent::Halted {}
//! assert_eq!(cpu.get_reg(Reg::L(2)), Word(55));
//! # Ok::<(), april_core::isa::asm::AsmError>(())
//! ```

#![warn(missing_docs)]

pub mod cpu;
pub mod decoded;
pub mod frame;
pub mod isa;
pub mod memport;
pub mod program;
pub mod psr;
pub mod snapshot;
pub mod stats;
pub mod trap;
pub mod word;

pub use cpu::{Cpu, CpuConfig, StepEvent};
pub use decoded::DecodedProgram;
pub use frame::{FrameState, TaskFrame};
pub use isa::Instr;
pub use program::{Program, ProgramBuilder};
pub use trap::Trap;
pub use word::{Tag, Word};
