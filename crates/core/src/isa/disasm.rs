//! Disassembly: `Display` for instructions in the assembler's syntax.
//!
//! The output of the disassembler re-assembles to the same instruction
//! (round-trip property, tested in `tests/asm_roundtrip.rs`).

use super::{Cond, Instr};
use std::fmt;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Falu { op, fs1, fs2, fd } => write!(f, "{op} f{fs1}, f{fs2}, f{fd}"),
            Instr::Fcmp { fs1, fs2 } => write!(f, "fcmp f{fs1}, f{fs2}"),
            Instr::LdF { a, offset, fd } => write!(f, "ldf {a}{offset:+}, f{fd}"),
            Instr::StF { fs, a, offset } => write!(f, "stf f{fs}, {a}{offset:+}"),
            Instr::FMovI { bits, fd } => write!(f, "fmovi {:#x}, f{fd}", bits),
            Instr::FixToF { s, fd } => write!(f, "fix2f {s}, f{fd}"),
            Instr::FToFix { fs, d } => write!(f, "f2fix f{fs}, {d}"),
            Instr::Halt => write!(f, "halt"),
            Instr::Alu {
                op,
                s1,
                s2,
                d,
                tagged,
            } => {
                write!(
                    f,
                    "{}{} {}, {}, {}",
                    if tagged { "t" } else { "" },
                    op,
                    s1,
                    s2,
                    d
                )
            }
            Instr::MovI { imm, d } => write!(f, "movi {:#x}, {}", imm, d),
            Instr::Branch { cond, offset } => match cond {
                Cond::Always => write!(f, "jmp {offset:+}"),
                c => write!(f, "{c} {offset:+}"),
            },
            Instr::Jmpl { s1, s2, d } => write!(f, "jmpl {s1}+{s2}, {d}"),
            Instr::Load {
                flavor,
                a,
                offset,
                d,
            } => {
                write!(f, "{} {}{:+}, {}", flavor.mnemonic(), a, offset, d)
            }
            Instr::Store {
                flavor,
                a,
                offset,
                s,
            } => {
                write!(f, "{} {}, {}{:+}", flavor.mnemonic(), s, a, offset)
            }
            Instr::IncFp => write!(f, "incfp"),
            Instr::DecFp => write!(f, "decfp"),
            Instr::RdFp { d } => write!(f, "rdfp {d}"),
            Instr::StFp { s } => write!(f, "stfp {s}"),
            Instr::RdPsr { d } => write!(f, "rdpsr {d}"),
            Instr::WrPsr { s } => write!(f, "wrpsr {s}"),
            Instr::RtCall { n } => write!(f, "rtcall {n}"),
            Instr::Flush { a, offset } => write!(f, "flush {a}{offset:+}"),
            Instr::Fence => write!(f, "fence"),
            Instr::Ldio { reg, d } => write!(f, "ldio {reg}, {d}"),
            Instr::Stio { reg, s } => write!(f, "stio {s}, {reg}"),
        }
    }
}

/// Formats a whole program listing with addresses and label comments.
pub fn listing(prog: &crate::program::Program) -> String {
    use std::fmt::Write as _;
    let mut by_addr: std::collections::BTreeMap<u32, Vec<&str>> = Default::default();
    for (name, &addr) in &prog.labels {
        by_addr.entry(addr).or_default().push(name);
    }
    let mut out = String::new();
    for (i, instr) in prog.instrs.iter().enumerate() {
        if let Some(names) = by_addr.get(&(i as u32)) {
            for n in names {
                let _ = writeln!(out, "{n}:");
            }
        }
        let _ = writeln!(out, "  {i:5}  {instr}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, LoadFlavor, Operand, Reg, StoreFlavor};

    #[test]
    fn display_samples() {
        let i = Instr::Alu {
            op: AluOp::Add,
            s1: Reg::L(1),
            s2: Operand::Imm(-3),
            d: Reg::G(2),
            tagged: true,
        };
        assert_eq!(i.to_string(), "tadd r1, -3, g2");
        let l = Instr::Load {
            flavor: LoadFlavor::NORMAL,
            a: Reg::L(4),
            offset: 8,
            d: Reg::L(5),
        };
        assert_eq!(l.to_string(), "ldnt r4+8, r5");
        let s = Instr::Store {
            flavor: StoreFlavor::from_mnemonic("stftt").unwrap(),
            a: Reg::L(4),
            offset: -6,
            s: Reg::L(5),
        };
        assert_eq!(s.to_string(), "stftt r5, r4-6");
        assert_eq!(
            Instr::Branch {
                cond: Cond::Empty,
                offset: -2
            }
            .to_string(),
            "jempty -2"
        );
    }

    #[test]
    fn listing_includes_labels() {
        use crate::program::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        b.label("main");
        b.emit(Instr::Nop);
        let p = b.finish().unwrap();
        let l = listing(&p);
        assert!(l.contains("main:"));
        assert!(l.contains("nop"));
    }
}
