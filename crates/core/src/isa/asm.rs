//! A small text assembler for APRIL.
//!
//! One instruction per line; `;` starts a comment; `label:` defines a
//! label. The syntax mirrors the disassembler's output so listings
//! round-trip. Example:
//!
//! ```text
//! .entry main
//! main:
//!     movi 10, r1
//! loop:
//!     sub r1, 1, r1
//!     jne loop
//!     nop              ; branch delay slot
//!     halt
//! ```
//!
//! Pseudo-instructions:
//! * `call @label, rD` — expands to `movi @label, g7; jmpl g7+0, rD; nop`
//! * `movi @label, rD` — loads a code address.
//!
//! Directives:
//! * `.entry label` — sets the entry point.
//! * `.static ADDR` — begins a static data segment at byte address ADDR.
//! * `.word VALUE [empty]` — appends a data word, full unless marked
//!   `empty` (exercises the full/empty bits).

use super::{AluOp, Cond, FpOp, Instr, LoadFlavor, Operand, Reg, StoreFlavor};
use crate::program::{BuildError, Program, ProgramBuilder};
use crate::word::Word;
use std::fmt;

/// Assembly failure with source line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> AsmError {
        AsmError {
            line: 0,
            msg: e.to_string(),
        }
    }
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax error or
/// unresolved label.
///
/// # Examples
///
/// ```
/// use april_core::isa::asm::assemble;
///
/// let p = assemble("
///     movi 3, r1
///     add r1, 4, r2
///     halt
/// ")?;
/// assert_eq!(p.len(), 3);
/// # Ok::<(), april_core::isa::asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut static_base: Option<u32> = None;
    let mut static_words: Vec<(Word, bool)> = Vec::new();
    let mut static_refs: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let err = |msg: String| AsmError { line, msg };
        let mut text = raw;
        if let Some(i) = text.find(';') {
            text = &text[..i];
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        // Labels (possibly several on one line before an instruction).
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (name, after) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                break;
            }
            if b.has_label(name) {
                return Err(err(format!("duplicate label `{name}`")));
            }
            b.label(name);
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        let (mnemonic, args) = match rest.split_once(char::is_whitespace) {
            Some((m, a)) => (m, a.trim()),
            None => (rest, ""),
        };
        let argv: Vec<&str> = if args.is_empty() {
            Vec::new()
        } else {
            args.split(',').map(str::trim).collect()
        };

        match mnemonic {
            ".entry" => {
                if argv.len() != 1 {
                    return Err(err(".entry takes one label".into()));
                }
                b.entry(argv[0]);
            }
            ".static" => {
                let base = parse_num(argv.first().copied().unwrap_or(""))
                    .ok_or_else(|| err(".static needs a base address".into()))?;
                static_base = Some(base as u32);
            }
            ".word" => {
                if static_base.is_none() {
                    return Err(err(".word before .static".into()));
                }
                // `.word VALUE [empty]` is whitespace-separated.
                let argv: Vec<&str> = args.split_whitespace().collect();
                let full = match argv.get(1).copied() {
                    None | Some("full") => true,
                    Some("empty") => false,
                    Some(other) => return Err(err(format!("expected full/empty, got `{other}`"))),
                };
                let v = argv.first().copied().unwrap_or("");
                if let Some(label) = v.strip_prefix('@') {
                    static_refs.push((static_words.len(), label.to_string()));
                    static_words.push((Word::ZERO, full));
                } else {
                    let n = parse_num(v).ok_or_else(|| err(format!("bad word value `{v}`")))?;
                    static_words.push((Word(n as u32), full));
                }
            }
            "nop" => {
                b.emit(Instr::Nop);
            }
            "halt" => {
                b.emit(Instr::Halt);
            }
            "incfp" => {
                b.emit(Instr::IncFp);
            }
            "decfp" => {
                b.emit(Instr::DecFp);
            }
            "fence" => {
                b.emit(Instr::Fence);
            }
            "rdfp" => {
                b.emit(Instr::RdFp {
                    d: parse_reg(one(&argv).map_err(err)?).map_err(err)?,
                });
            }
            "stfp" => {
                b.emit(Instr::StFp {
                    s: parse_reg(one(&argv).map_err(err)?).map_err(err)?,
                });
            }
            "rdpsr" => {
                b.emit(Instr::RdPsr {
                    d: parse_reg(one(&argv).map_err(err)?).map_err(err)?,
                });
            }
            "wrpsr" => {
                b.emit(Instr::WrPsr {
                    s: parse_reg(one(&argv).map_err(err)?).map_err(err)?,
                });
            }
            "rtcall" => {
                let n = parse_num(one(&argv).map_err(err)?)
                    .ok_or_else(|| err("rtcall needs a number".into()))?;
                b.emit(Instr::RtCall { n: n as u16 });
            }
            "fmovi" => {
                if argv.len() != 2 {
                    return Err(err("fmovi takes `value, freg`".into()));
                }
                let fd = parse_freg(argv[1]).map_err(err)?;
                let bits = if let Some(hex) = argv[0].strip_prefix("0x") {
                    u32::from_str_radix(hex, 16)
                        .map_err(|_| err(format!("bad bits `{}`", argv[0])))?
                } else {
                    argv[0]
                        .parse::<f32>()
                        .map_err(|_| err(format!("bad float `{}`", argv[0])))?
                        .to_bits()
                };
                b.emit(Instr::FMovI { bits, fd });
            }
            "fcmp" => {
                if argv.len() != 2 {
                    return Err(err("fcmp takes `f1, f2`".into()));
                }
                let fs1 = parse_freg(argv[0]).map_err(err)?;
                let fs2 = parse_freg(argv[1]).map_err(err)?;
                b.emit(Instr::Fcmp { fs1, fs2 });
            }
            "ldf" => {
                if argv.len() != 2 {
                    return Err(err("ldf takes `reg+off, freg`".into()));
                }
                let (a, offset) = parse_addr(argv[0]).map_err(err)?;
                let fd = parse_freg(argv[1]).map_err(err)?;
                b.emit(Instr::LdF { a, offset, fd });
            }
            "stf" => {
                if argv.len() != 2 {
                    return Err(err("stf takes `freg, reg+off`".into()));
                }
                let fs = parse_freg(argv[0]).map_err(err)?;
                let (a, offset) = parse_addr(argv[1]).map_err(err)?;
                b.emit(Instr::StF { fs, a, offset });
            }
            "fix2f" => {
                if argv.len() != 2 {
                    return Err(err("fix2f takes `reg, freg`".into()));
                }
                let s = parse_reg(argv[0]).map_err(err)?;
                let fd = parse_freg(argv[1]).map_err(err)?;
                b.emit(Instr::FixToF { s, fd });
            }
            "f2fix" => {
                if argv.len() != 2 {
                    return Err(err("f2fix takes `freg, reg`".into()));
                }
                let fs = parse_freg(argv[0]).map_err(err)?;
                let d = parse_reg(argv[1]).map_err(err)?;
                b.emit(Instr::FToFix { fs, d });
            }
            m if parse_fpop(m).is_some() => {
                let op = parse_fpop(m).expect("checked");
                if argv.len() != 3 {
                    return Err(err(format!("{m} takes `f1, f2, fd`")));
                }
                let fs1 = parse_freg(argv[0]).map_err(err)?;
                let fs2 = parse_freg(argv[1]).map_err(err)?;
                let fd = parse_freg(argv[2]).map_err(err)?;
                b.emit(Instr::Falu { op, fs1, fs2, fd });
            }
            "movi" => {
                if argv.len() != 2 {
                    return Err(err("movi takes `value, reg`".into()));
                }
                let d = parse_reg(argv[1]).map_err(err)?;
                if let Some(label) = argv[0].strip_prefix('@') {
                    b.movi_label(label, d);
                } else {
                    let imm = parse_num(argv[0])
                        .ok_or_else(|| err(format!("bad immediate `{}`", argv[0])))?;
                    b.emit(Instr::MovI { imm: imm as u32, d });
                }
            }
            "call" => {
                if argv.len() != 2 {
                    return Err(err("call takes `@label, link-reg`".into()));
                }
                let label = argv[0]
                    .strip_prefix('@')
                    .ok_or_else(|| err("call target must be @label".into()))?;
                let link = parse_reg(argv[1]).map_err(err)?;
                b.call(label, link, Reg::G(7));
            }
            "jmpl" => {
                if argv.len() != 2 {
                    return Err(err("jmpl takes `reg+off, link-reg`".into()));
                }
                let (s1, off) = parse_addr(argv[0]).map_err(err)?;
                let d = parse_reg(argv[1]).map_err(err)?;
                b.emit(Instr::Jmpl {
                    s1,
                    s2: Operand::Imm(off),
                    d,
                });
            }
            "flush" => {
                let (a, offset) = parse_addr(one(&argv).map_err(err)?).map_err(err)?;
                b.emit(Instr::Flush { a, offset });
            }
            "ldio" => {
                if argv.len() != 2 {
                    return Err(err("ldio takes `ioreg, reg`".into()));
                }
                let reg = parse_num(argv[0]).ok_or_else(|| err("bad io register".into()))? as u16;
                b.emit(Instr::Ldio {
                    reg,
                    d: parse_reg(argv[1]).map_err(err)?,
                });
            }
            "stio" => {
                if argv.len() != 2 {
                    return Err(err("stio takes `reg, ioreg`".into()));
                }
                let reg = parse_num(argv[1]).ok_or_else(|| err("bad io register".into()))? as u16;
                b.emit(Instr::Stio {
                    reg,
                    s: parse_reg(argv[0]).map_err(err)?,
                });
            }
            m if parse_branch(m).is_some() => {
                let cond = parse_branch(m).expect("checked");
                let target = one(&argv).map_err(err)?;
                if let Some(n) = parse_signed(target) {
                    b.emit(Instr::Branch { cond, offset: n });
                } else {
                    b.branch_to(cond, target);
                }
            }
            m if LoadFlavor::from_mnemonic(m).is_some() || m == "ld" => {
                let flavor = LoadFlavor::from_mnemonic(m).unwrap_or(LoadFlavor::NORMAL);
                if argv.len() != 2 {
                    return Err(err("load takes `reg+off, reg`".into()));
                }
                let (a, offset) = parse_addr(argv[0]).map_err(err)?;
                let d = parse_reg(argv[1]).map_err(err)?;
                b.emit(Instr::Load {
                    flavor,
                    a,
                    offset,
                    d,
                });
            }
            m if StoreFlavor::from_mnemonic(m).is_some() || m == "st" => {
                let flavor = StoreFlavor::from_mnemonic(m).unwrap_or(StoreFlavor::NORMAL);
                if argv.len() != 2 {
                    return Err(err("store takes `reg, reg+off`".into()));
                }
                let s = parse_reg(argv[0]).map_err(err)?;
                let (a, offset) = parse_addr(argv[1]).map_err(err)?;
                b.emit(Instr::Store {
                    flavor,
                    a,
                    offset,
                    s,
                });
            }
            m if parse_alu(m).is_some() => {
                let (op, tagged) = parse_alu(m).expect("checked");
                if argv.len() != 3 {
                    return Err(err(format!("{m} takes `s1, s2, d`")));
                }
                let s1 = parse_reg(argv[0]).map_err(err)?;
                let s2 = parse_operand(argv[1]).map_err(err)?;
                let d = parse_reg(argv[2]).map_err(err)?;
                b.emit(Instr::Alu {
                    op,
                    s1,
                    s2,
                    d,
                    tagged,
                });
            }
            other => return Err(err(format!("unknown mnemonic `{other}`"))),
        }
    }

    if let Some(base) = static_base {
        b.static_segment(base, static_words);
        for (idx, label) in static_refs {
            b.static_code_ref(idx, &label);
        }
    }
    b.finish().map_err(AsmError::from)
}

fn one<'a>(argv: &[&'a str]) -> Result<&'a str, String> {
    if argv.len() == 1 {
        Ok(argv[0])
    } else {
        Err("expected one operand".into())
    }
}

fn parse_alu(m: &str) -> Option<(AluOp, bool)> {
    let (m, tagged) = match m.strip_prefix('t') {
        // `t`-prefixed strict variants; beware of plain ops that also
        // start with t (none do in this ISA).
        Some(rest) => (rest, true),
        None => (m, false),
    };
    let op = AluOp::ALL.into_iter().find(|o| o.to_string() == m)?;
    Some((op, tagged))
}

fn parse_fpop(m: &str) -> Option<FpOp> {
    FpOp::ALL.into_iter().find(|o| o.to_string() == m)
}

fn parse_freg(s: &str) -> Result<u8, String> {
    let i: u8 = s
        .strip_prefix('f')
        .ok_or_else(|| format!("bad FP register `{s}`"))?
        .parse()
        .map_err(|_| format!("bad FP register `{s}`"))?;
    if i < 8 {
        Ok(i)
    } else {
        Err(format!("FP register index out of range `{s}`"))
    }
}

fn parse_branch(m: &str) -> Option<Cond> {
    Cond::ALL.into_iter().find(|c| c.to_string() == m)
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let (kind, num) = s.split_at(1.min(s.len()));
    let idx: u8 = num.parse().map_err(|_| format!("bad register `{s}`"))?;
    let r = match kind {
        "r" => Reg::L(idx),
        "g" => Reg::G(idx),
        _ => return Err(format!("bad register `{s}`")),
    };
    if r.is_valid() {
        Ok(r)
    } else {
        Err(format!("register index out of range `{s}`"))
    }
}

fn parse_operand(s: &str) -> Result<Operand, String> {
    if let Some(n) = parse_signed(s) {
        Ok(Operand::Imm(n))
    } else {
        parse_reg(s).map(Operand::Reg)
    }
}

/// Parses `reg`, `reg+off` or `reg-off`.
fn parse_addr(s: &str) -> Result<(Reg, i32), String> {
    if let Some(i) = s[1..].find(['+', '-']).map(|i| i + 1) {
        let r = parse_reg(&s[..i])?;
        let off = parse_signed(&s[i..]).ok_or_else(|| format!("bad offset in `{s}`"))?;
        Ok((r, off))
    } else {
        Ok((parse_reg(s)?, 0))
    }
}

fn parse_num(s: &str) -> Option<i64> {
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let v = if let Some(hex) = s.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        s.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_signed(s: &str) -> Option<i32> {
    parse_num(s).and_then(|v| i32::try_from(v).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loop_program() {
        let p = assemble(
            "
            .entry main
            main:
                movi 10, r1
                movi 0, r2
            loop:
                add r2, r1, r2
                sub r1, 1, r1
                jne loop
                nop
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.entry, 0);
        assert_eq!(p.label("loop"), Some(2));
        assert_eq!(
            p.instrs[4],
            Instr::Branch {
                cond: Cond::Ne,
                offset: -2
            }
        );
    }

    #[test]
    fn assembles_all_load_store_flavors() {
        for f in LoadFlavor::ALL {
            let src = format!("{} r1+4, r2", f.mnemonic());
            let p = assemble(&src).unwrap();
            assert_eq!(
                p.instrs[0],
                Instr::Load {
                    flavor: f,
                    a: Reg::L(1),
                    offset: 4,
                    d: Reg::L(2)
                }
            );
        }
        for f in StoreFlavor::ALL {
            let src = format!("{} r2, r1-6", f.mnemonic());
            let p = assemble(&src).unwrap();
            assert_eq!(
                p.instrs[0],
                Instr::Store {
                    flavor: f,
                    a: Reg::L(1),
                    offset: -6,
                    s: Reg::L(2)
                }
            );
        }
    }

    #[test]
    fn tagged_alu_mnemonics() {
        let p = assemble("tadd r1, r2, r3").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Alu {
                op: AluOp::Add,
                s1: Reg::L(1),
                s2: Operand::Reg(Reg::L(2)),
                d: Reg::L(3),
                tagged: true
            }
        );
    }

    #[test]
    fn call_pseudo_expands() {
        let p = assemble(
            "
            call @f, r15
            halt
            f:  nop
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 5); // movi + jmpl + nop + halt + nop
        assert_eq!(
            p.instrs[0],
            Instr::MovI {
                imm: 4,
                d: Reg::G(7)
            }
        );
    }

    #[test]
    fn static_data_with_full_empty() {
        let p = assemble(
            "
            .static 0x100
            .word 42
            .word 0 empty
            .word @f
            f:  halt
            ",
        )
        .unwrap();
        assert_eq!(p.static_base, 0x100);
        assert_eq!(p.static_data[0], (Word(42), true));
        assert_eq!(p.static_data[1], (Word(0), false));
        assert_eq!(p.static_data[2], (Word(0), true)); // f == instr 0
    }

    #[test]
    fn error_reports_line() {
        let e = assemble("nop\nbogus r1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn error_on_bad_register() {
        let e = assemble("add r1, r2, r99").unwrap_err();
        assert!(e.msg.contains("out of range"));
    }

    #[test]
    fn jfull_jempty_parse() {
        let p = assemble(
            "
            top: ldnt r1+0, r2
            jempty top
            nop
            jfull top
            nop
            ",
        )
        .unwrap();
        assert_eq!(
            p.instrs[1],
            Instr::Branch {
                cond: Cond::Empty,
                offset: -1
            }
        );
        assert_eq!(
            p.instrs[3],
            Instr::Branch {
                cond: Cond::Full,
                offset: -3
            }
        );
    }

    #[test]
    fn disassembly_reassembles() {
        let src = "
            movi 0x40, r1
            ldett r1+0, r2
            tadd r2, 4, r2
            stftt r2, r1+0
            jfull -3
            nop
            rdpsr g1
            incfp
            wrpsr g1
            rtcall 3
            fence
            flush r1+0
            halt
        ";
        let p1 = assemble(src).unwrap();
        let text: String = p1.instrs.iter().map(|i| format!("{i}\n")).collect();
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
    }
}
