//! Reference binary encoding of the APRIL instruction set.
//!
//! The paper's SPARC-based implementation reuses SPARC's encodings and
//! distinguishes the load/store flavors through Alternate Space
//! Indicator values (Section 5). This module defines a clean 32-bit
//! reference encoding for a custom APRIL so programs can be stored and
//! exchanged as machine words; [`decode`] inverts [`encode`] exactly.
//!
//! `MOVI` occupies two words (opcode word + 32-bit immediate word),
//! standing for the SPARC `sethi`/`or` pair.

use super::{AluOp, Cond, FpOp, Instr, LoadFlavor, Operand, Reg, StoreFlavor};
use std::fmt;

/// Encoding failure: an instruction field does not fit its format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Immediate out of the 13-bit signed range.
    ImmOutOfRange(i32),
    /// Load/store offset out of the 11-bit signed range.
    OffsetOutOfRange(i32),
    /// Branch offset out of the 22-bit signed range.
    BranchOutOfRange(i32),
    /// Register index out of range.
    BadRegister,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange(i) => write!(f, "immediate {i} out of 13-bit range"),
            EncodeError::OffsetOutOfRange(i) => write!(f, "offset {i} out of 11-bit range"),
            EncodeError::BranchOutOfRange(i) => write!(f, "branch offset {i} out of 22-bit range"),
            EncodeError::BadRegister => write!(f, "register index out of range"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Decoding failure: the word stream is not a valid encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode.
    BadOpcode(u32),
    /// Unknown sub-field (ALU op, condition, register).
    BadField,
    /// `MOVI` missing its immediate word.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadField => write!(f, "invalid instruction field"),
            DecodeError::Truncated => write!(f, "truncated instruction stream"),
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_NOP: u32 = 0x00;
const OP_HALT: u32 = 0x01;
// ALU operations occupy two opcode banks: 0x20+i untagged, 0x30+i
// tagged (strict), leaving 13 bits for a signed immediate.
const OP_ALU_BASE: u32 = 0x20;
const OP_TALU_BASE: u32 = 0x30;
const OP_MOVI: u32 = 0x04;
const OP_BRANCH: u32 = 0x05;
const OP_JMPL: u32 = 0x06;
const OP_LOAD: u32 = 0x07;
const OP_STORE: u32 = 0x08;
const OP_INCFP: u32 = 0x09;
const OP_DECFP: u32 = 0x0a;
const OP_RDFP: u32 = 0x0b;
const OP_STFP: u32 = 0x0c;
const OP_RDPSR: u32 = 0x0d;
const OP_WRPSR: u32 = 0x0e;
const OP_RTCALL: u32 = 0x0f;
const OP_FLUSH: u32 = 0x10;
const OP_FENCE: u32 = 0x11;
const OP_LDIO: u32 = 0x12;
const OP_STIO: u32 = 0x13;
const OP_FALU: u32 = 0x14;
const OP_FCMP: u32 = 0x15;
const OP_LDF: u32 = 0x16;
const OP_STF: u32 = 0x17;
const OP_FMOVI: u32 = 0x18;
const OP_FIX2F: u32 = 0x19;
const OP_F2FIX: u32 = 0x1a;

fn enc_reg(r: Reg) -> Result<u32, EncodeError> {
    if !r.is_valid() {
        return Err(EncodeError::BadRegister);
    }
    Ok(match r {
        Reg::L(i) => i as u32,
        Reg::G(i) => 0x20 | i as u32,
    })
}

fn dec_reg(v: u32) -> Result<Reg, DecodeError> {
    let v = v & 0x3f;
    if v & 0x20 != 0 {
        let i = (v & 0x1f) as u8;
        if i < 8 {
            Ok(Reg::G(i))
        } else {
            Err(DecodeError::BadField)
        }
    } else {
        Ok(Reg::L(v as u8))
    }
}

fn alu_index(op: AluOp) -> u32 {
    AluOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u32
}

fn cond_index(c: Cond) -> u32 {
    Cond::ALL.iter().position(|&o| o == c).expect("cond in ALL") as u32
}

fn load_flavor_index(f: LoadFlavor) -> u32 {
    LoadFlavor::ALL
        .iter()
        .position(|&o| o == f)
        .expect("flavor in ALL") as u32
}

fn store_flavor_index(f: StoreFlavor) -> u32 {
    StoreFlavor::ALL
        .iter()
        .position(|&o| o == f)
        .expect("flavor in ALL") as u32
}

fn field(v: u32, lo: u32, bits: u32) -> u32 {
    (v >> lo) & ((1 << bits) - 1)
}

fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Encodes one instruction, appending one or two words to `out`.
///
/// # Errors
///
/// Returns an [`EncodeError`] if a field exceeds its format width.
pub fn encode(i: Instr, out: &mut Vec<u32>) -> Result<(), EncodeError> {
    match i {
        Instr::Nop => out.push(OP_NOP << 26),
        Instr::Halt => out.push(OP_HALT << 26),
        Instr::Alu {
            op,
            s1,
            s2,
            d,
            tagged,
        } => {
            let opc = if tagged { OP_TALU_BASE } else { OP_ALU_BASE } + alu_index(op);
            let mut w = opc << 26 | enc_reg(d)? << 20 | enc_reg(s1)? << 14;
            match s2 {
                Operand::Reg(r) => w |= 1 << 13 | enc_reg(r)?,
                Operand::Imm(imm) => {
                    if !(Operand::IMM_MIN..=Operand::IMM_MAX).contains(&imm) {
                        return Err(EncodeError::ImmOutOfRange(imm));
                    }
                    w |= imm as u32 & 0x1fff;
                }
            }
            out.push(w);
        }
        Instr::MovI { imm, d } => {
            out.push(OP_MOVI << 26 | enc_reg(d)? << 20);
            out.push(imm);
        }
        Instr::Branch { cond, offset } => {
            if !(-(1 << 21)..(1 << 21)).contains(&offset) {
                return Err(EncodeError::BranchOutOfRange(offset));
            }
            out.push(OP_BRANCH << 26 | cond_index(cond) << 22 | (offset as u32 & 0x3f_ffff));
        }
        Instr::Jmpl { s1, s2, d } => {
            let mut w = OP_JMPL << 26 | enc_reg(d)? << 20 | enc_reg(s1)? << 14;
            match s2 {
                Operand::Reg(r) => w |= 1 << 13 | enc_reg(r)?,
                Operand::Imm(imm) => {
                    if !(-(1 << 12)..(1 << 12)).contains(&imm) {
                        return Err(EncodeError::ImmOutOfRange(imm));
                    }
                    w |= imm as u32 & 0x1fff;
                }
            }
            out.push(w);
        }
        Instr::Load {
            flavor,
            a,
            offset,
            d,
        } => {
            if !(-(1 << 10)..(1 << 10)).contains(&offset) {
                return Err(EncodeError::OffsetOutOfRange(offset));
            }
            out.push(
                OP_LOAD << 26
                    | enc_reg(d)? << 20
                    | enc_reg(a)? << 14
                    | load_flavor_index(flavor) << 11
                    | (offset as u32 & 0x7ff),
            );
        }
        Instr::Store {
            flavor,
            a,
            offset,
            s,
        } => {
            if !(-(1 << 10)..(1 << 10)).contains(&offset) {
                return Err(EncodeError::OffsetOutOfRange(offset));
            }
            out.push(
                OP_STORE << 26
                    | enc_reg(s)? << 20
                    | enc_reg(a)? << 14
                    | store_flavor_index(flavor) << 11
                    | (offset as u32 & 0x7ff),
            );
        }
        Instr::Falu { op, fs1, fs2, fd } => {
            let opi = FpOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u32;
            out.push(
                OP_FALU << 26
                    | (fd as u32 & 7) << 20
                    | (fs1 as u32 & 7) << 14
                    | opi << 9
                    | (fs2 as u32 & 7),
            );
        }
        Instr::Fcmp { fs1, fs2 } => {
            out.push(OP_FCMP << 26 | (fs1 as u32 & 7) << 14 | (fs2 as u32 & 7));
        }
        Instr::LdF { a, offset, fd } => {
            if !(-(1 << 10)..(1 << 10)).contains(&offset) {
                return Err(EncodeError::OffsetOutOfRange(offset));
            }
            out.push(
                OP_LDF << 26 | (fd as u32 & 7) << 20 | enc_reg(a)? << 14 | (offset as u32 & 0x7ff),
            );
        }
        Instr::StF { fs, a, offset } => {
            if !(-(1 << 10)..(1 << 10)).contains(&offset) {
                return Err(EncodeError::OffsetOutOfRange(offset));
            }
            out.push(
                OP_STF << 26 | (fs as u32 & 7) << 20 | enc_reg(a)? << 14 | (offset as u32 & 0x7ff),
            );
        }
        Instr::FMovI { bits, fd } => {
            out.push(OP_FMOVI << 26 | (fd as u32 & 7) << 20);
            out.push(bits);
        }
        Instr::FixToF { s, fd } => {
            out.push(OP_FIX2F << 26 | (fd as u32 & 7) << 20 | enc_reg(s)? << 14);
        }
        Instr::FToFix { fs, d } => {
            out.push(OP_F2FIX << 26 | enc_reg(d)? << 20 | (fs as u32 & 7) << 14);
        }
        Instr::IncFp => out.push(OP_INCFP << 26),
        Instr::DecFp => out.push(OP_DECFP << 26),
        Instr::RdFp { d } => out.push(OP_RDFP << 26 | enc_reg(d)? << 20),
        Instr::StFp { s } => out.push(OP_STFP << 26 | enc_reg(s)? << 20),
        Instr::RdPsr { d } => out.push(OP_RDPSR << 26 | enc_reg(d)? << 20),
        Instr::WrPsr { s } => out.push(OP_WRPSR << 26 | enc_reg(s)? << 20),
        Instr::RtCall { n } => out.push(OP_RTCALL << 26 | n as u32),
        Instr::Flush { a, offset } => {
            if !(-(1 << 10)..(1 << 10)).contains(&offset) {
                return Err(EncodeError::OffsetOutOfRange(offset));
            }
            out.push(OP_FLUSH << 26 | enc_reg(a)? << 14 | (offset as u32 & 0x7ff));
        }
        Instr::Fence => out.push(OP_FENCE << 26),
        Instr::Ldio { reg, d } => out.push(OP_LDIO << 26 | enc_reg(d)? << 20 | reg as u32),
        Instr::Stio { reg, s } => out.push(OP_STIO << 26 | enc_reg(s)? << 20 | reg as u32),
    }
    Ok(())
}

/// Decodes one instruction starting at `words[at]`, returning it and
/// the number of words consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] on invalid opcodes, fields, or truncation.
pub fn decode(words: &[u32], at: usize) -> Result<(Instr, usize), DecodeError> {
    let w = *words.get(at).ok_or(DecodeError::Truncated)?;
    let op = w >> 26;
    let i = match op {
        OP_NOP => Instr::Nop,
        OP_HALT => Instr::Halt,
        op if (OP_ALU_BASE..OP_ALU_BASE + AluOp::ALL.len() as u32).contains(&op)
            || (OP_TALU_BASE..OP_TALU_BASE + AluOp::ALL.len() as u32).contains(&op) =>
        {
            let tagged = op >= OP_TALU_BASE;
            let base = if tagged { OP_TALU_BASE } else { OP_ALU_BASE };
            let alu = AluOp::ALL[(op - base) as usize];
            let d = dec_reg(field(w, 20, 6))?;
            let s1 = dec_reg(field(w, 14, 6))?;
            let s2 = if field(w, 13, 1) != 0 {
                Operand::Reg(dec_reg(field(w, 0, 6))?)
            } else {
                Operand::Imm(sext(field(w, 0, 13), 13))
            };
            Instr::Alu {
                op: alu,
                s1,
                s2,
                d,
                tagged,
            }
        }
        OP_MOVI => {
            let d = dec_reg(field(w, 20, 6))?;
            let imm = *words.get(at + 1).ok_or(DecodeError::Truncated)?;
            return Ok((Instr::MovI { imm, d }, 2));
        }
        OP_BRANCH => {
            let cond = *Cond::ALL
                .get(field(w, 22, 4) as usize)
                .ok_or(DecodeError::BadField)?;
            Instr::Branch {
                cond,
                offset: sext(field(w, 0, 22), 22),
            }
        }
        OP_JMPL => {
            let d = dec_reg(field(w, 20, 6))?;
            let s1 = dec_reg(field(w, 14, 6))?;
            let s2 = if field(w, 13, 1) != 0 {
                Operand::Reg(dec_reg(field(w, 0, 6))?)
            } else {
                Operand::Imm(sext(field(w, 0, 13), 13))
            };
            Instr::Jmpl { s1, s2, d }
        }
        OP_LOAD => Instr::Load {
            flavor: LoadFlavor::ALL[field(w, 11, 3) as usize],
            a: dec_reg(field(w, 14, 6))?,
            offset: sext(field(w, 0, 11), 11),
            d: dec_reg(field(w, 20, 6))?,
        },
        OP_STORE => Instr::Store {
            flavor: StoreFlavor::ALL[field(w, 11, 3) as usize],
            a: dec_reg(field(w, 14, 6))?,
            offset: sext(field(w, 0, 11), 11),
            s: dec_reg(field(w, 20, 6))?,
        },
        OP_FALU => Instr::Falu {
            op: *FpOp::ALL
                .get(field(w, 9, 5) as usize)
                .ok_or(DecodeError::BadField)?,
            fs1: field(w, 14, 3) as u8,
            fs2: field(w, 0, 3) as u8,
            fd: field(w, 20, 3) as u8,
        },
        OP_FCMP => Instr::Fcmp {
            fs1: field(w, 14, 3) as u8,
            fs2: field(w, 0, 3) as u8,
        },
        OP_LDF => Instr::LdF {
            a: dec_reg(field(w, 14, 6))?,
            offset: sext(field(w, 0, 11), 11),
            fd: field(w, 20, 3) as u8,
        },
        OP_STF => Instr::StF {
            fs: field(w, 20, 3) as u8,
            a: dec_reg(field(w, 14, 6))?,
            offset: sext(field(w, 0, 11), 11),
        },
        OP_FMOVI => {
            let fd = field(w, 20, 3) as u8;
            let bits = *words.get(at + 1).ok_or(DecodeError::Truncated)?;
            return Ok((Instr::FMovI { bits, fd }, 2));
        }
        OP_FIX2F => Instr::FixToF {
            s: dec_reg(field(w, 14, 6))?,
            fd: field(w, 20, 3) as u8,
        },
        OP_F2FIX => Instr::FToFix {
            fs: field(w, 14, 3) as u8,
            d: dec_reg(field(w, 20, 6))?,
        },
        OP_INCFP => Instr::IncFp,
        OP_DECFP => Instr::DecFp,
        OP_RDFP => Instr::RdFp {
            d: dec_reg(field(w, 20, 6))?,
        },
        OP_STFP => Instr::StFp {
            s: dec_reg(field(w, 20, 6))?,
        },
        OP_RDPSR => Instr::RdPsr {
            d: dec_reg(field(w, 20, 6))?,
        },
        OP_WRPSR => Instr::WrPsr {
            s: dec_reg(field(w, 20, 6))?,
        },
        OP_RTCALL => Instr::RtCall {
            n: (w & 0xffff) as u16,
        },
        OP_FLUSH => Instr::Flush {
            a: dec_reg(field(w, 14, 6))?,
            offset: sext(field(w, 0, 11), 11),
        },
        OP_FENCE => Instr::Fence,
        OP_LDIO => Instr::Ldio {
            reg: (w & 0xffff) as u16,
            d: dec_reg(field(w, 20, 6))?,
        },
        OP_STIO => Instr::Stio {
            reg: (w & 0xffff) as u16,
            s: dec_reg(field(w, 20, 6))?,
        },
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((i, 1))
}

/// Encodes a whole instruction sequence.
///
/// # Errors
///
/// Returns the first [`EncodeError`] encountered.
pub fn encode_all(instrs: &[Instr]) -> Result<Vec<u32>, EncodeError> {
    let mut out = Vec::with_capacity(instrs.len());
    for &i in instrs {
        encode(i, &mut out)?;
    }
    Ok(out)
}

/// Decodes a whole word stream.
///
/// # Errors
///
/// Returns the first [`DecodeError`] encountered.
pub fn decode_all(words: &[u32]) -> Result<Vec<Instr>, DecodeError> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < words.len() {
        let (i, n) = decode(words, at)?;
        out.push(i);
        at += n;
    }
    Ok(out)
}
