//! The APRIL instruction set (paper, Section 4 and Tables 1–2).
//!
//! APRIL is "a basic RISC instruction set augmented with special memory
//! instructions for full/empty bit operations, multithreading, and
//! cache support". This module defines the instruction forms; sibling
//! modules provide a binary encoding ([`encode`]),
//! a text assembler ([`asm`]) and a disassembler
//! ([`disasm`]).
//!
//! All register operands are addressed **relative to the current frame
//! pointer** except the eight global registers, which are always
//! accessible.

pub mod asm;
pub mod disasm;
pub mod encode;

use std::fmt;

/// A register operand: either one of the 8 globals or one of the 32
/// registers of the active task frame.
///
/// Global register `g0` is hardwired to zero (writes are discarded),
/// following the SPARC convention the implementation builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// Global register `g0`–`g7`, visible from every task frame.
    G(u8),
    /// Frame-local register `r0`–`r31` of the active task frame.
    L(u8),
}

impl Reg {
    /// The zero register (`g0`).
    pub const ZERO: Reg = Reg::G(0);

    /// Validates the register index range.
    pub fn is_valid(self) -> bool {
        match self {
            Reg::G(i) => i < 8,
            Reg::L(i) => i < 32,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::G(i) => write!(f, "g{i}"),
            Reg::L(i) => write!(f, "r{i}"),
        }
    }
}

/// The second source of a compute instruction: a register or a 13-bit
/// signed immediate (the SPARC-style `reg-or-imm` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register source.
    Reg(Reg),
    /// Signed immediate, range −4096…4095.
    Imm(i32),
}

impl Operand {
    /// Immediate range limit (13-bit signed).
    pub const IMM_MIN: i32 = -4096;
    /// Immediate range limit (13-bit signed).
    pub const IMM_MAX: i32 = 4095;

    /// True if the operand is representable in the encoding.
    pub fn is_valid(self) -> bool {
        match self {
            Operand::Reg(r) => r.is_valid(),
            Operand::Imm(i) => (Self::IMM_MIN..=Self::IMM_MAX).contains(&i),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(i: i32) -> Operand {
        Operand::Imm(i)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Arithmetic/logic operations for 3-address compute instructions.
///
/// `Mul`, `Div` and `Rem` in *tagged* instructions operate on fixnum
/// semantics (operands are interpreted as 30-bit tagged integers and
/// the result is retagged); all other operations work on raw bits,
/// which the `..00` fixnum tag makes equivalent to fixnum arithmetic
/// for add/sub/compare/logical ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (by `s2 & 31`).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Integer multiply (multi-cycle).
    Mul,
    /// Integer divide (multi-cycle); divide by zero traps.
    Div,
    /// Integer remainder (multi-cycle); divide by zero traps.
    Rem,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 11] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
    ];
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
        };
        f.write_str(s)
    }
}

/// Floating-point operations (single precision; the paper's node has
/// an unmodified SPARC FPU whose instructions are modified in a
/// context-dependent fashion as they are loaded — Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Floating add.
    FAdd,
    /// Floating subtract.
    FSub,
    /// Floating multiply.
    FMul,
    /// Floating divide.
    FDiv,
}

impl FpOp {
    /// All FP operations, in encoding order.
    pub const ALL: [FpOp; 4] = [FpOp::FAdd, FpOp::FSub, FpOp::FMul, FpOp::FDiv];
}

impl fmt::Display for FpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpOp::FAdd => "fadd",
            FpOp::FSub => "fsub",
            FpOp::FMul => "fmul",
            FpOp::FDiv => "fdiv",
        };
        f.write_str(s)
    }
}

/// Branch conditions. `Full`/`Empty` dispatch on the full/empty
/// condition bit set by non-trapping memory instructions — these are
/// the paper's `Jfull` and `Jempty` instructions, implemented on SPARC
/// as coprocessor branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Unconditional.
    Always,
    /// Never (a nop with a branch encoding; useful for assemblers).
    Never,
    /// Result was zero (`Z`).
    Eq,
    /// Result was non-zero.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than (carry set).
    Ltu,
    /// Unsigned greater-or-equal (carry clear).
    Geu,
    /// Full/empty condition bit is *full* (`Jfull`).
    Full,
    /// Full/empty condition bit is *empty* (`Jempty`).
    Empty,
    /// Floating compare was equal (per-context `fcc`).
    FpEq,
    /// Floating compare was less-than.
    FpLt,
    /// Floating compare was greater-than.
    FpGt,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 15] = [
        Cond::Always,
        Cond::Never,
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::Ltu,
        Cond::Geu,
        Cond::Full,
        Cond::Empty,
        Cond::FpEq,
        Cond::FpLt,
        Cond::FpGt,
    ];
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Always => "jmp",
            Cond::Never => "jn",
            Cond::Eq => "jeq",
            Cond::Ne => "jne",
            Cond::Lt => "jlt",
            Cond::Le => "jle",
            Cond::Gt => "jgt",
            Cond::Ge => "jge",
            Cond::Ltu => "jltu",
            Cond::Geu => "jgeu",
            Cond::Full => "jfull",
            Cond::Empty => "jempty",
            Cond::FpEq => "jfeq",
            Cond::FpLt => "jflt",
            Cond::FpGt => "jfgt",
        };
        f.write_str(s)
    }
}

/// The behavior options of a load instruction (paper, Table 2).
///
/// Three independent choices give the 8 load flavors:
/// * trap if the location is **empty** (`fe_trap`),
/// * atomically **reset** the full/empty bit to empty (`reset_fe`),
/// * on a cache miss, **trap** (context switch) or make the processor
///   **wait** (`miss_wait`).
///
/// Non-trapping flavors record the word's full/empty state in the PSR
/// condition bit for `Jfull`/`Jempty`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoadFlavor {
    /// Reset the full/empty bit to *empty* after the load.
    pub reset_fe: bool,
    /// Trap if the location is empty (otherwise set the condition bit).
    pub fe_trap: bool,
    /// On a cache miss, wait for the controller instead of trapping.
    pub miss_wait: bool,
}

impl LoadFlavor {
    /// `ldnt`: plain load — no f/e trap, no reset, trap on (remote)
    /// cache miss so the processor can switch contexts. This is the
    /// flavor ordinary compiled code uses; the controller still makes
    /// the processor wait for purely local fills.
    pub const NORMAL: LoadFlavor = LoadFlavor {
        reset_fe: false,
        fe_trap: false,
        miss_wait: false,
    };

    /// All 8 flavors in Table 2 order (ldtt, ldett, ldnt, ldent, ldnw,
    /// ldenw, ldtw, ldetw).
    pub const ALL: [LoadFlavor; 8] = [
        LoadFlavor {
            reset_fe: false,
            fe_trap: true,
            miss_wait: false,
        }, // ldtt
        LoadFlavor {
            reset_fe: true,
            fe_trap: true,
            miss_wait: false,
        }, // ldett
        LoadFlavor {
            reset_fe: false,
            fe_trap: false,
            miss_wait: false,
        }, // ldnt
        LoadFlavor {
            reset_fe: true,
            fe_trap: false,
            miss_wait: false,
        }, // ldent
        LoadFlavor {
            reset_fe: false,
            fe_trap: false,
            miss_wait: true,
        }, // ldnw
        LoadFlavor {
            reset_fe: true,
            fe_trap: false,
            miss_wait: true,
        }, // ldenw
        LoadFlavor {
            reset_fe: false,
            fe_trap: true,
            miss_wait: true,
        }, // ldtw
        LoadFlavor {
            reset_fe: true,
            fe_trap: true,
            miss_wait: true,
        }, // ldetw
    ];

    /// The paper's mnemonic for this flavor (`ld[e]{t|n}{t|w}`).
    pub fn mnemonic(self) -> &'static str {
        match (self.reset_fe, self.fe_trap, self.miss_wait) {
            (false, true, false) => "ldtt",
            (true, true, false) => "ldett",
            (false, false, false) => "ldnt",
            (true, false, false) => "ldent",
            (false, false, true) => "ldnw",
            (true, false, true) => "ldenw",
            (false, true, true) => "ldtw",
            (true, true, true) => "ldetw",
        }
    }

    /// Parses a Table 2 mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<LoadFlavor> {
        LoadFlavor::ALL.into_iter().find(|f| f.mnemonic() == s)
    }
}

/// The behavior options of a store instruction.
///
/// "Store instructions are similar except that they trap on full
/// locations instead of empty locations" (paper, Section 4), and their
/// f/e option *sets* the bit to full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreFlavor {
    /// Set the full/empty bit to *full* after the store.
    pub set_fe: bool,
    /// Trap if the location is already full.
    pub fe_trap: bool,
    /// On a cache miss, wait instead of trapping.
    pub miss_wait: bool,
}

impl StoreFlavor {
    /// `stnt`: plain store — no f/e trap, no set, trap on remote miss.
    pub const NORMAL: StoreFlavor = StoreFlavor {
        set_fe: false,
        fe_trap: false,
        miss_wait: false,
    };

    /// All 8 store flavors, mirroring Table 2.
    pub const ALL: [StoreFlavor; 8] = [
        StoreFlavor {
            set_fe: false,
            fe_trap: true,
            miss_wait: false,
        }, // sttt
        StoreFlavor {
            set_fe: true,
            fe_trap: true,
            miss_wait: false,
        }, // stftt
        StoreFlavor {
            set_fe: false,
            fe_trap: false,
            miss_wait: false,
        }, // stnt
        StoreFlavor {
            set_fe: true,
            fe_trap: false,
            miss_wait: false,
        }, // stfnt
        StoreFlavor {
            set_fe: false,
            fe_trap: false,
            miss_wait: true,
        }, // stnw
        StoreFlavor {
            set_fe: true,
            fe_trap: false,
            miss_wait: true,
        }, // stfnw
        StoreFlavor {
            set_fe: false,
            fe_trap: true,
            miss_wait: true,
        }, // sttw
        StoreFlavor {
            set_fe: true,
            fe_trap: true,
            miss_wait: true,
        }, // stftw
    ];

    /// Mnemonic: `st[f]{t|n}{t|w}` where `f` marks "set full".
    pub fn mnemonic(self) -> &'static str {
        match (self.set_fe, self.fe_trap, self.miss_wait) {
            (false, true, false) => "sttt",
            (true, true, false) => "stftt",
            (false, false, false) => "stnt",
            (true, false, false) => "stfnt",
            (false, false, true) => "stnw",
            (true, false, true) => "stfnw",
            (false, true, true) => "sttw",
            (true, true, true) => "stftw",
        }
    }

    /// Parses a store mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<StoreFlavor> {
        StoreFlavor::ALL.into_iter().find(|f| f.mnemonic() == s)
    }
}

/// One APRIL instruction.
///
/// Instruction addresses are word indices into the program's text
/// segment; the PC chain (`PC`, `nPC`) gives every control transfer a
/// single-cycle branch delay slot (paper, Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// 3-address compute instruction: `d = s1 op s2`. Sets the
    /// condition codes. When `tagged`, the instruction is *strict*: it
    /// traps with a future-touch trap if either operand has its least
    /// significant bit set.
    Alu {
        /// Operation.
        op: AluOp,
        /// First source register.
        s1: Reg,
        /// Second source (register or immediate).
        s2: Operand,
        /// Destination register.
        d: Reg,
        /// Strict (future-detecting) variant.
        tagged: bool,
    },
    /// Load a 32-bit immediate into a register. (Stands for the
    /// `sethi`+`or` pair of the SPARC implementation; costs 1 cycle in
    /// the custom-APRIL timing model.)
    MovI {
        /// The immediate value.
        imm: u32,
        /// Destination register.
        d: Reg,
    },
    /// Conditional branch, PC-relative, with one delay slot.
    Branch {
        /// Branch condition.
        cond: Cond,
        /// Signed word offset from the branch instruction.
        offset: i32,
    },
    /// Jump-and-link: `d = return address; PC = s1 + s2`. Used for
    /// calls (`d = link`) and returns (`d = g0`).
    Jmpl {
        /// Base register of the target.
        s1: Reg,
        /// Target offset (register or immediate).
        s2: Operand,
        /// Link destination; receives the address of the instruction
        /// after the delay slot.
        d: Reg,
    },
    /// Memory load: `d = mem[s1 + offset]`, with full/empty and
    /// cache-miss behavior selected by the flavor. Traps if the base
    /// register holds a future pointer (implicit touch on dereference).
    Load {
        /// Behavior flavor (Table 2).
        flavor: LoadFlavor,
        /// Base address register.
        a: Reg,
        /// Signed byte offset.
        offset: i32,
        /// Destination register.
        d: Reg,
    },
    /// Memory store: `mem[s1 + offset] = s`.
    Store {
        /// Behavior flavor.
        flavor: StoreFlavor,
        /// Base address register.
        a: Reg,
        /// Signed byte offset.
        offset: i32,
        /// Source register.
        s: Reg,
    },
    /// Increment the frame pointer to the next task frame (modulo the
    /// number of frames).
    IncFp,
    /// Decrement the frame pointer (modulo the number of frames).
    DecFp,
    /// Read the frame pointer into a register (as a fixnum).
    RdFp {
        /// Destination register.
        d: Reg,
    },
    /// Write the frame pointer from a register.
    StFp {
        /// Source register (fixnum, taken modulo the frame count).
        s: Reg,
    },
    /// Read the active frame's PSR into a register.
    RdPsr {
        /// Destination register.
        d: Reg,
    },
    /// Write the active frame's PSR from a register.
    WrPsr {
        /// Source register.
        s: Reg,
    },
    /// Software trap into the run-time system (scheduler entry, future
    /// creation, allocation, I/O). The immediate selects the service.
    RtCall {
        /// Run-time service number.
        n: u16,
    },
    /// Flush the cache line containing `mem[a + offset]`, writing back
    /// dirty data and incrementing the fence counter (an "out-of-band"
    /// instruction of Section 3.4).
    Flush {
        /// Base address register.
        a: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Stall until the fence counter drops to zero: all flushed
    /// write-backs have been acknowledged by memory.
    Fence,
    /// Memory-mapped I/O load (`LDIO`): reaches controller registers
    /// and the interprocessor-interrupt mechanism.
    Ldio {
        /// I/O register number.
        reg: u16,
        /// Destination register.
        d: Reg,
    },
    /// Memory-mapped I/O store (`STIO`).
    Stio {
        /// I/O register number.
        reg: u16,
        /// Source register.
        s: Reg,
    },
    /// Floating-point compute: `fd = fs1 op fs2` on the active frame's
    /// FP register set.
    Falu {
        /// Operation.
        op: FpOp,
        /// First source FP register (0–7).
        fs1: u8,
        /// Second source FP register.
        fs2: u8,
        /// Destination FP register.
        fd: u8,
    },
    /// Floating compare: sets the active frame's `fcc`.
    Fcmp {
        /// First source FP register.
        fs1: u8,
        /// Second source FP register.
        fs2: u8,
    },
    /// Load a word into an FP register (raw bits, plain cache
    /// semantics).
    LdF {
        /// Base address register.
        a: Reg,
        /// Signed byte offset.
        offset: i32,
        /// Destination FP register.
        fd: u8,
    },
    /// Store an FP register to memory.
    StF {
        /// Source FP register.
        fs: u8,
        /// Base address register.
        a: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Load an IEEE-754 bit pattern immediate into an FP register
    /// (two words, like `MovI`).
    FMovI {
        /// Raw single-precision bits.
        bits: u32,
        /// Destination FP register.
        fd: u8,
    },
    /// Convert a fixnum register to float.
    FixToF {
        /// Source integer register (fixnum).
        s: Reg,
        /// Destination FP register.
        fd: u8,
    },
    /// Convert an FP register to a fixnum (truncating).
    FToFix {
        /// Source FP register.
        fs: u8,
        /// Destination integer register.
        d: Reg,
    },
    /// No operation (fills branch delay slots).
    Nop,
    /// Stop the processor (simulation end for bare-metal programs).
    Halt,
}

impl Instr {
    /// True if this instruction is a control transfer (and therefore
    /// followed by a delay slot).
    pub fn is_control_transfer(self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jmpl { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_load_flavors_match_table_2() {
        // Table 2 names and properties, verbatim.
        let expect = [
            ("ldtt", false, true, false),
            ("ldett", true, true, false),
            ("ldnt", false, false, false),
            ("ldent", true, false, false),
            ("ldnw", false, false, true),
            ("ldenw", true, false, true),
            ("ldtw", false, true, true),
            ("ldetw", true, true, true),
        ];
        for (i, (name, reset, trap, wait)) in expect.into_iter().enumerate() {
            let f = LoadFlavor::ALL[i];
            assert_eq!(f.mnemonic(), name);
            assert_eq!(f.reset_fe, reset, "{name} reset");
            assert_eq!(f.fe_trap, trap, "{name} trap");
            assert_eq!(f.miss_wait, wait, "{name} wait");
            assert_eq!(LoadFlavor::from_mnemonic(name), Some(f));
        }
    }

    #[test]
    fn flavors_are_distinct() {
        for (i, a) in LoadFlavor::ALL.iter().enumerate() {
            for b in &LoadFlavor::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
        for (i, a) in StoreFlavor::ALL.iter().enumerate() {
            for b in &StoreFlavor::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn store_mnemonics_roundtrip() {
        for f in StoreFlavor::ALL {
            assert_eq!(StoreFlavor::from_mnemonic(f.mnemonic()), Some(f));
        }
    }

    #[test]
    fn reg_validity() {
        assert!(Reg::G(7).is_valid());
        assert!(!Reg::G(8).is_valid());
        assert!(Reg::L(31).is_valid());
        assert!(!Reg::L(32).is_valid());
    }

    #[test]
    fn operand_validity() {
        assert!(Operand::Imm(4095).is_valid());
        assert!(!Operand::Imm(4096).is_valid());
        assert!(Operand::Imm(-4096).is_valid());
        assert!(!Operand::Imm(-4097).is_valid());
    }

    #[test]
    fn control_transfer_classification() {
        assert!(Instr::Branch {
            cond: Cond::Always,
            offset: 0
        }
        .is_control_transfer());
        assert!(Instr::Jmpl {
            s1: Reg::ZERO,
            s2: Operand::Imm(0),
            d: Reg::ZERO
        }
        .is_control_transfer());
        assert!(!Instr::Nop.is_control_transfer());
    }
}
