//! Wire encoding of processor state for machine snapshots.
//!
//! The checkpoint subsystem (DESIGN.md §11) serializes each APRIL
//! processor — task frames, PC chains, PSRs, globals, pending
//! interrupts, the cycle ledger, and the trace probe — so a restored
//! machine resumes *bit-exactly*: same register contents, same trap
//! behavior, same trace event stream.
//!
//! Restore targets an existing [`Cpu`] built from the same
//! [`CpuConfig`](crate::cpu::CpuConfig); the configuration itself is
//! validated at the machine layer (it is part of the snapshot header),
//! so this module only checks structural invariants such as the frame
//! count.

use crate::cpu::Cpu;
use crate::frame::{FrameState, TaskFrame, FREGS_PER_FRAME, REGS_PER_FRAME};
use crate::psr::Psr;
use crate::word::Word;
use april_obs::Probe;
use april_util::wire::{ByteReader, ByteWriter, WireError};
use std::collections::VecDeque;

fn encode_frame(f: &TaskFrame, w: &mut ByteWriter) {
    for r in &f.regs {
        w.u32(r.0);
    }
    for &fr in &f.fregs {
        w.u32(fr);
    }
    w.u32(f.pc);
    w.u32(f.npc);
    w.u32(f.psr.to_word().0);
    w.u8(match f.state {
        FrameState::Empty => 0,
        FrameState::Ready => 1,
        FrameState::WaitingRemote => 2,
    });
}

fn decode_frame(r: &mut ByteReader<'_>) -> Result<TaskFrame, WireError> {
    let mut f = TaskFrame::default();
    for i in 0..REGS_PER_FRAME {
        f.regs[i] = Word(r.u32()?);
    }
    for i in 0..FREGS_PER_FRAME {
        f.fregs[i] = r.u32()?;
    }
    f.pc = r.u32()?;
    f.npc = r.u32()?;
    f.psr = Psr::from_word(Word(r.u32()?));
    let at = r.pos();
    f.state = match r.u8()? {
        0 => FrameState::Empty,
        1 => FrameState::Ready,
        2 => FrameState::WaitingRemote,
        tag => return Err(WireError::BadTag { at, tag }),
    };
    Ok(f)
}

/// Appends `cpu`'s complete architectural and accounting state to a
/// snapshot buffer.
pub fn encode_cpu(cpu: &Cpu, w: &mut ByteWriter) {
    w.usize(cpu.frames.len());
    for f in &cpu.frames {
        encode_frame(f, w);
    }
    for g in &cpu.globals {
        w.u32(g.0);
    }
    w.usize(cpu.fp);
    w.bool(cpu.halted);
    w.usize(cpu.irqs.len());
    for &src in &cpu.irqs {
        w.usize(src);
    }
    let s = &cpu.stats;
    for v in [
        s.useful_cycles,
        s.trap_cycles,
        s.handler_cycles,
        s.stall_cycles,
        s.idle_cycles,
        s.instructions,
        s.context_switches,
        s.traps,
        s.mem_ops,
        s.remote_misses,
        s.fe_traps,
        s.future_traps,
    ] {
        w.u64(v);
    }
    w.u64(cpu.clock);
    cpu.probe.encode(w);
}

/// Restores state written by [`encode_cpu`] into an existing processor
/// constructed with the same configuration.
///
/// The processor's [`CpuConfig`](crate::cpu::CpuConfig) is untouched;
/// a frame-count mismatch (snapshot from a differently sized machine)
/// is rejected as [`WireError::Corrupt`].
pub fn restore_cpu(cpu: &mut Cpu, r: &mut ByteReader<'_>) -> Result<(), WireError> {
    let nframes = r.usize()?;
    if nframes != cpu.frames.len() {
        return Err(WireError::Corrupt("task frame count mismatch"));
    }
    for i in 0..nframes {
        cpu.frames[i] = decode_frame(r)?;
    }
    for g in cpu.globals.iter_mut() {
        *g = Word(r.u32()?);
    }
    let fp = r.usize()?;
    if fp >= nframes {
        return Err(WireError::Corrupt("frame pointer out of range"));
    }
    cpu.fp = fp;
    cpu.halted = r.bool()?;
    let nirqs = r.usize()?;
    let mut irqs = VecDeque::with_capacity(nirqs);
    for _ in 0..nirqs {
        irqs.push_back(r.usize()?);
    }
    cpu.irqs = irqs;
    let s = &mut cpu.stats;
    for v in [
        &mut s.useful_cycles,
        &mut s.trap_cycles,
        &mut s.handler_cycles,
        &mut s.stall_cycles,
        &mut s.idle_cycles,
        &mut s.instructions,
        &mut s.context_switches,
        &mut s.traps,
        &mut s.mem_ops,
        &mut s.remote_misses,
        &mut s.fe_traps,
        &mut s.future_traps,
    ] {
        *v = r.u64()?;
    }
    cpu.clock = r.u64()?;
    cpu.probe = Probe::decode(r)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::frame::FrameState;
    use april_obs::{lane, Component, EventKind, TraceConfig};

    fn busy_cpu() -> Cpu {
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.attach_probe(Probe::new(lane(Component::Cpu, 2), TraceConfig::default()));
        cpu.boot(10);
        cpu.set_reg(crate::isa::Reg::L(3), Word::fixnum(77));
        cpu.set_reg(crate::isa::Reg::G(4), Word(0xdead_0000));
        cpu.frame_mut(1).reset_at(44);
        cpu.frame_mut(1).state = FrameState::WaitingRemote;
        cpu.set_fp(1);
        cpu.post_interrupt(9);
        cpu.charge_handler(12);
        cpu.charge_idle(3);
        cpu.set_clock(500);
        cpu.count_context_switch();
        cpu
    }

    #[test]
    fn cpu_roundtrips_exactly() {
        let cpu = busy_cpu();
        let mut w = ByteWriter::new();
        encode_cpu(&cpu, &mut w);
        let bytes = w.finish();

        let mut restored = Cpu::new(CpuConfig::default());
        restore_cpu(&mut restored, &mut ByteReader::new(&bytes)).unwrap();

        assert_eq!(restored.fp(), cpu.fp());
        assert_eq!(restored.is_halted(), cpu.is_halted());
        assert_eq!(restored.stats, cpu.stats);
        for i in 0..cpu.nframes() {
            assert_eq!(restored.frame(i), cpu.frame(i), "frame {i}");
        }
        assert_eq!(
            restored.trace_probe().emitted(),
            cpu.trace_probe().emitted()
        );
        // Both continue identically.
        let mut a = cpu;
        let mut b = restored;
        a.count_context_switch();
        b.count_context_switch();
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn frame_count_mismatch_is_rejected() {
        let cpu = busy_cpu();
        let mut w = ByteWriter::new();
        encode_cpu(&cpu, &mut w);
        let bytes = w.finish();
        let mut other = Cpu::new(CpuConfig {
            nframes: 2,
            ..CpuConfig::default()
        });
        assert!(restore_cpu(&mut other, &mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn restored_probe_resumes_event_stream() {
        let mut cpu = busy_cpu();
        let mut w = ByteWriter::new();
        encode_cpu(&cpu, &mut w);
        let bytes = w.finish();
        let mut restored = Cpu::new(CpuConfig::default());
        restore_cpu(&mut restored, &mut ByteReader::new(&bytes)).unwrap();
        cpu.set_clock(501);
        restored.set_clock(501);
        cpu.count_context_switch();
        restored.count_context_switch();
        let a: Vec<_> = cpu.trace_probe().events().copied().collect();
        let b: Vec<_> = restored.trace_probe().events().copied().collect();
        assert_eq!(a, b);
        assert_eq!(a.last().unwrap().kind, EventKind::ContextSwitch);
    }
}
