//! Hardware task frames.
//!
//! A task frame is one register set together with a PC chain and a PSR
//! (paper, Figure 2). APRIL holds four task frames; the frame pointer
//! (FP) designates the active one, and a context switch is "achieved by
//! changing the frame pointer and emptying the pipeline". The set of
//! task frames "acts like a cache on the virtual threads".

use crate::psr::Psr;
use crate::word::Word;

/// Number of frame-local registers per task frame.
pub const REGS_PER_FRAME: usize = 32;

/// Floating-point registers per task frame: the SPARC FPU's single
/// 32-word register file is "divided into four sets of eight
/// registers" so FP state context-switches with the frame pointer
/// (paper, Section 5).
pub const FREGS_PER_FRAME: usize = 8;

/// Scheduling state of a hardware task frame, maintained jointly by
/// the cache controller (which wakes frames when remote transactions
/// complete) and the run-time system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrameState {
    /// No thread loaded.
    #[default]
    Empty,
    /// Thread loaded and runnable.
    Ready,
    /// Thread loaded but waiting for the controller to satisfy a remote
    /// memory transaction; made `Ready` when the reply arrives.
    WaitingRemote,
}

/// One hardware task frame: 32 registers, the PC chain, and a PSR.
///
/// # Examples
///
/// ```
/// use april_core::frame::{FrameState, TaskFrame};
/// use april_core::word::Word;
///
/// let mut f = TaskFrame::default();
/// f.regs[1] = Word::fixnum(9);
/// f.state = FrameState::Ready;
/// assert_eq!(f.regs[1].as_fixnum(), Some(9));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFrame {
    /// Frame-local registers `r0`–`r31`.
    pub regs: [Word; REGS_PER_FRAME],
    /// Frame-local floating-point registers `f0`–`f7` (raw IEEE-754
    /// single-precision bit patterns).
    pub fregs: [u32; FREGS_PER_FRAME],
    /// Program counter (word index into the text segment).
    pub pc: u32,
    /// Next program counter (branch delay slot support).
    pub npc: u32,
    /// Processor state register.
    pub psr: Psr,
    /// Scheduling state.
    pub state: FrameState,
}

impl Default for TaskFrame {
    fn default() -> TaskFrame {
        TaskFrame {
            regs: [Word::ZERO; REGS_PER_FRAME],
            fregs: [0; FREGS_PER_FRAME],
            pc: 0,
            npc: 1,
            psr: Psr::user(),
            state: FrameState::Empty,
        }
    }
}

impl TaskFrame {
    /// Resets the frame to boot state with execution starting at `pc`.
    pub fn reset_at(&mut self, pc: u32) {
        *self = TaskFrame {
            pc,
            npc: pc + 1,
            state: FrameState::Ready,
            ..TaskFrame::default()
        };
    }

    /// True if the frame holds a thread (loaded, in any wait state).
    pub fn is_loaded(&self) -> bool {
        self.state != FrameState::Empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_frame_is_empty() {
        let f = TaskFrame::default();
        assert_eq!(f.state, FrameState::Empty);
        assert!(!f.is_loaded());
        assert_eq!(f.npc, f.pc + 1);
    }

    #[test]
    fn reset_at_sets_pc_chain() {
        let mut f = TaskFrame::default();
        f.regs[5] = Word::fixnum(1);
        f.reset_at(100);
        assert_eq!(f.pc, 100);
        assert_eq!(f.npc, 101);
        assert_eq!(f.state, FrameState::Ready);
        assert_eq!(f.regs[5], Word::ZERO);
        assert!(f.is_loaded());
    }
}
