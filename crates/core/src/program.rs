//! Program images and a label-resolving builder.
//!
//! A [`Program`] is the output of the assembler or the Mul-T compiler:
//! a text segment of [`Instr`]s (addressed by word index), an entry
//! point, and an optional static data image placed at a fixed base
//! address in the machine's data memory.

use crate::isa::{Cond, Instr, Operand, Reg};
use crate::word::Word;
use std::collections::BTreeMap;
use std::fmt;

/// A fully linked APRIL program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Text segment; instruction addresses are indices into this.
    pub instrs: Vec<Instr>,
    /// Entry point (index into `instrs`).
    pub entry: u32,
    /// Byte address where `static_data` is loaded.
    pub static_base: u32,
    /// Static data image: `(word, full_bit)` pairs, one per word
    /// starting at `static_base`.
    pub static_data: Vec<(Word, bool)>,
    /// Label table for diagnostics and test harnesses.
    pub labels: BTreeMap<String, u32>,
}

impl Program {
    /// Fetches the instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: u32) -> Option<Instr> {
        self.instrs.get(pc as usize).copied()
    }

    /// Borrowing fetch for hot paths: the instruction at `pc` without
    /// copying the enum out of the text segment.
    #[inline]
    pub fn fetch_ref(&self, pc: u32) -> Option<&Instr> {
        self.instrs.get(pc as usize)
    }

    /// Looks up a label's address.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Number of instructions in the text segment.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the text segment is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Errors from program construction or assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is out of the encodable offset range.
    BranchOutOfRange {
        /// The branch instruction's address.
        at: u32,
        /// The target label.
        label: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::BranchOutOfRange { at, label } => {
                write!(f, "branch at {at} to `{label}` out of range")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// What a fixup patches once the label is known.
#[derive(Debug, Clone)]
enum FixupKind {
    /// PC-relative branch offset.
    Branch,
    /// Absolute code address into a `MovI` immediate.
    MovI,
    /// Absolute code address into a static data word.
    DataWord(usize),
}

/// Incremental builder used by the assembler and the compiler.
///
/// # Examples
///
/// ```
/// use april_core::program::ProgramBuilder;
/// use april_core::isa::{Cond, Instr, Reg, Operand, AluOp};
///
/// let mut b = ProgramBuilder::new();
/// b.label("start");
/// b.emit(Instr::Nop);
/// b.branch_to(Cond::Always, "start");
/// b.emit(Instr::Nop); // delay slot
/// let prog = b.finish()?;
/// assert_eq!(prog.label("start"), Some(0));
/// # Ok::<(), april_core::program::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, u32>,
    fixups: Vec<(u32, String, FixupKind)>,
    entry: u32,
    static_base: u32,
    static_data: Vec<(Word, bool)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Current emission address.
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Appends an instruction, returning its address.
    pub fn emit(&mut self, i: Instr) -> u32 {
        let at = self.here();
        self.instrs.push(i);
        at
    }

    /// Defines `name` at the current address.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition (a compiler bug, not user input).
    pub fn label(&mut self, name: &str) {
        let at = self.here();
        if self.labels.insert(name.to_string(), at).is_some() {
            panic!("duplicate label `{name}`");
        }
    }

    /// True if `name` has been defined.
    pub fn has_label(&self, name: &str) -> bool {
        self.labels.contains_key(name)
    }

    /// Emits a conditional branch to a label (resolved at `finish`).
    /// The caller must emit the delay-slot instruction next.
    pub fn branch_to(&mut self, cond: Cond, target: &str) -> u32 {
        let at = self.emit(Instr::Branch { cond, offset: 0 });
        self.fixups
            .push((at, target.to_string(), FixupKind::Branch));
        at
    }

    /// Emits a `MovI` whose immediate is the address of a label.
    pub fn movi_label(&mut self, target: &str, d: Reg) -> u32 {
        let at = self.emit(Instr::MovI { imm: 0, d });
        self.fixups.push((at, target.to_string(), FixupKind::MovI));
        at
    }

    /// Emits a call: `MovI target` + `Jmpl` + delay-slot `Nop`, linking
    /// in `link`. Uses `scratch` for the target address.
    pub fn call(&mut self, target: &str, link: Reg, scratch: Reg) {
        self.movi_label(target, scratch);
        self.emit(Instr::Jmpl {
            s1: scratch,
            s2: Operand::Imm(0),
            d: link,
        });
        self.emit(Instr::Nop);
    }

    /// Sets the entry point to a label (resolved at `finish`).
    pub fn entry(&mut self, label: &str) {
        // Stored as a pseudo-fixup by name; resolved in finish().
        self.fixups
            .push((u32::MAX, label.to_string(), FixupKind::MovI));
        self.entry = u32::MAX;
    }

    /// Sets the static data segment.
    pub fn static_segment(&mut self, base: u32, data: Vec<(Word, bool)>) {
        assert_eq!(base % 8, 0, "static base must be 8-byte aligned");
        self.static_base = base;
        self.static_data = data;
    }

    /// Appends one word to the static segment, returning its byte
    /// address. The segment base must already be set.
    pub fn push_static(&mut self, w: Word, full: bool) -> u32 {
        let addr = self.static_base + 4 * self.static_data.len() as u32;
        self.static_data.push((w, full));
        addr
    }

    /// Stores the address of `label` into static data slot `index`
    /// (for code pointers in closure templates).
    pub fn static_code_ref(&mut self, index: usize, label: &str) {
        self.fixups
            .push((0, label.to_string(), FixupKind::DataWord(index)));
    }

    /// Resolves all fixups and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UndefinedLabel`] if a referenced label was
    /// never defined.
    pub fn finish(mut self) -> Result<Program, BuildError> {
        let mut entry = if self.entry == u32::MAX {
            None
        } else {
            Some(self.entry)
        };
        for (at, name, kind) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(&name)
                .ok_or_else(|| BuildError::UndefinedLabel(name.clone()))?;
            if at == u32::MAX {
                entry = Some(target);
                continue;
            }
            match kind {
                FixupKind::Branch => {
                    let offset = target as i64 - at as i64;
                    if offset.unsigned_abs() > i32::MAX as u64 {
                        return Err(BuildError::BranchOutOfRange { at, label: name });
                    }
                    match &mut self.instrs[at as usize] {
                        Instr::Branch { offset: o, .. } => *o = offset as i32,
                        other => unreachable!("branch fixup on {other:?}"),
                    }
                }
                FixupKind::MovI => match &mut self.instrs[at as usize] {
                    Instr::MovI { imm, .. } => *imm = target,
                    other => unreachable!("movi fixup on {other:?}"),
                },
                FixupKind::DataWord(idx) => {
                    self.static_data[idx].0 = Word(target);
                }
            }
        }
        Ok(Program {
            instrs: self.instrs,
            entry: entry.unwrap_or(0),
            static_base: self.static_base,
            static_data: self.static_data,
            labels: self.labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::AluOp;

    #[test]
    fn branch_fixup_resolves_backward_and_forward() {
        let mut b = ProgramBuilder::new();
        b.label("top");
        b.emit(Instr::Nop);
        b.branch_to(Cond::Always, "bottom"); // at 1
        b.emit(Instr::Nop);
        b.branch_to(Cond::Eq, "top"); // at 3
        b.emit(Instr::Nop);
        b.label("bottom");
        b.emit(Instr::Halt);
        let p = b.finish().unwrap();
        assert_eq!(
            p.instrs[1],
            Instr::Branch {
                cond: Cond::Always,
                offset: 4
            }
        );
        assert_eq!(
            p.instrs[3],
            Instr::Branch {
                cond: Cond::Eq,
                offset: -3
            }
        );
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.branch_to(Cond::Always, "nowhere");
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::UndefinedLabel("nowhere".to_string())
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.label("x");
    }

    #[test]
    fn entry_resolves_to_label() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::Nop);
        b.label("main");
        b.emit(Instr::Alu {
            op: AluOp::Add,
            s1: Reg::ZERO,
            s2: Operand::Imm(1),
            d: Reg::L(1),
            tagged: false,
        });
        b.entry("main");
        let p = b.finish().unwrap();
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn movi_label_patches_code_address() {
        let mut b = ProgramBuilder::new();
        b.movi_label("f", Reg::L(2));
        b.emit(Instr::Halt);
        b.label("f");
        b.emit(Instr::Nop);
        let p = b.finish().unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::MovI {
                imm: 2,
                d: Reg::L(2)
            }
        );
    }

    #[test]
    fn static_segment_and_code_ref() {
        let mut b = ProgramBuilder::new();
        b.static_segment(0x100, vec![(Word::fixnum(1), true)]);
        let a = b.push_static(Word::ZERO, false);
        assert_eq!(a, 0x104);
        b.static_code_ref(1, "fun");
        b.label("fun");
        b.emit(Instr::Nop);
        let p = b.finish().unwrap();
        assert_eq!(p.static_data[1].0, Word(0));
        assert_eq!(p.static_base, 0x100);
    }

    #[test]
    fn fetch_past_end_is_none() {
        let p = Program::default();
        assert_eq!(p.fetch(0), None);
        assert!(p.is_empty());
    }
}
