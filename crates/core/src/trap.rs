//! Trap conditions.
//!
//! "When a trap is signalled in APRIL, the trap mechanism lets the
//! pipeline empty and passes control to the trap handler. The trap
//! handler executes in the same task frame as the thread that trapped
//! so that it can access all of the thread's registers" (paper,
//! Section 3). Entering a trap costs [`TRAP_ENTRY_CYCLES`] — the
//! SPARC's minimum five cycles for squashing the pipeline and computing
//! the trap vector (Section 5).
//!
//! In this reproduction the handlers themselves live in the
//! `april-runtime` crate; the processor merely reports the trap and
//! charges the entry cost, exactly as the hardware would vector to a
//! software handler.

use crate::isa::Reg;
use std::fmt;

/// Minimum trap overhead: pipeline squash plus trap-vector computation
/// (paper, Sections 5 and 6.1).
pub const TRAP_ENTRY_CYCLES: u64 = 5;

/// A synchronous or controller-initiated trap condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Cache miss requiring a network (remote) transaction; the
    /// controller traps the processor so it can switch contexts while
    /// the transaction proceeds (Section 6.1).
    RemoteMiss {
        /// Faulting byte address.
        addr: u32,
        /// True for a store miss.
        is_store: bool,
    },
    /// Full/empty synchronization exception: a trapping load found the
    /// location empty, or a trapping store found it full.
    FullEmpty {
        /// Faulting byte address.
        addr: u32,
        /// True for a store.
        is_store: bool,
    },
    /// A strict compute instruction found a future pointer in an
    /// operand register (the modified non-fixnum trap of Section 5).
    FutureTouch {
        /// The register holding the future.
        reg: Reg,
    },
    /// A memory instruction's address operand had its least significant
    /// bit set — a future used as a pointer (the word-alignment trap of
    /// Section 5, providing implicit touches for `car`-like operators).
    FutureAddr {
        /// The register holding the future.
        reg: Reg,
    },
    /// Misaligned (non-word) effective address that is not a future.
    Alignment {
        /// Faulting byte address.
        addr: u32,
    },
    /// Integer divide by zero.
    DivZero,
    /// Software trap: a run-time system call.
    RtCall {
        /// Service number.
        n: u16,
    },
    /// Asynchronous interprocessor interrupt (Section 3.4), delivered
    /// via the SPARC asynchronous trap lines.
    Interrupt {
        /// Originating node.
        from: usize,
    },
}

impl Trap {
    /// The trap vector number, as the hardware would compute it.
    pub fn vector(self) -> u8 {
        match self {
            Trap::RemoteMiss { .. } => 0x01,
            Trap::FullEmpty { .. } => 0x02,
            Trap::FutureTouch { .. } => 0x03,
            Trap::FutureAddr { .. } => 0x04,
            Trap::Alignment { .. } => 0x05,
            Trap::DivZero => 0x06,
            Trap::RtCall { .. } => 0x10,
            Trap::Interrupt { .. } => 0x20,
        }
    }

    /// True for traps caused by touching a future.
    pub fn is_future_trap(self) -> bool {
        matches!(self, Trap::FutureTouch { .. } | Trap::FutureAddr { .. })
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::RemoteMiss { addr, is_store } => {
                write!(
                    f,
                    "remote-miss({}, {:#x})",
                    if *is_store { "st" } else { "ld" },
                    addr
                )
            }
            Trap::FullEmpty { addr, is_store } => {
                write!(
                    f,
                    "full/empty({}, {:#x})",
                    if *is_store { "st" } else { "ld" },
                    addr
                )
            }
            Trap::FutureTouch { reg } => write!(f, "future-touch({reg})"),
            Trap::FutureAddr { reg } => write!(f, "future-addr({reg})"),
            Trap::Alignment { addr } => write!(f, "alignment({addr:#x})"),
            Trap::DivZero => write!(f, "divide-by-zero"),
            Trap::RtCall { n } => write!(f, "rtcall({n})"),
            Trap::Interrupt { from } => write!(f, "ipi(from {from})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_distinct() {
        let traps = [
            Trap::RemoteMiss {
                addr: 0,
                is_store: false,
            },
            Trap::FullEmpty {
                addr: 0,
                is_store: false,
            },
            Trap::FutureTouch { reg: Reg::L(0) },
            Trap::FutureAddr { reg: Reg::L(0) },
            Trap::Alignment { addr: 0 },
            Trap::DivZero,
            Trap::RtCall { n: 0 },
            Trap::Interrupt { from: 0 },
        ];
        for (i, a) in traps.iter().enumerate() {
            for b in &traps[i + 1..] {
                assert_ne!(a.vector(), b.vector());
            }
        }
    }

    #[test]
    fn future_trap_classification() {
        assert!(Trap::FutureTouch { reg: Reg::L(1) }.is_future_trap());
        assert!(Trap::FutureAddr { reg: Reg::L(1) }.is_future_trap());
        assert!(!Trap::DivZero.is_future_trap());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Trap::DivZero.to_string().is_empty());
        assert!(Trap::RemoteMiss {
            addr: 64,
            is_store: true
        }
        .to_string()
        .contains("st"));
    }
}
