//! Cycle accounting.
//!
//! The scalability analysis of Section 8 decomposes processor time into
//! useful work, context-switch overhead, and memory/network waiting;
//! the simulator keeps the same ledger so measured utilization can be
//! compared directly against the analytical model (Figure 5).

use std::fmt;

/// Per-processor cycle ledger. Every simulated cycle lands in exactly
/// one bucket, so `total()` equals elapsed processor time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Cycles spent executing user instructions (useful work).
    pub useful_cycles: u64,
    /// Cycles spent in trap entry (pipeline squash + vectoring).
    pub trap_cycles: u64,
    /// Cycles spent in run-time handlers, including the 6-cycle
    /// context-switch handler body and future-touch resolution.
    pub handler_cycles: u64,
    /// Cycles stalled waiting on memory (local misses, MHOLD).
    pub stall_cycles: u64,
    /// Cycles with no runnable task frame (all loaded threads waiting).
    pub idle_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Traps taken, by any cause.
    pub traps: u64,
    /// Loads + stores issued.
    pub mem_ops: u64,
    /// Remote-miss traps (context-switch opportunities).
    pub remote_misses: u64,
    /// Full/empty synchronization traps.
    pub fe_traps: u64,
    /// Future-touch traps (strict op or address operand).
    pub future_traps: u64,
}

impl CpuStats {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.useful_cycles
            + self.trap_cycles
            + self.handler_cycles
            + self.stall_cycles
            + self.idle_cycles
    }

    /// Processor utilization: fraction of cycles doing useful work —
    /// the metric of Section 8.
    pub fn utilization(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.useful_cycles as f64 / t as f64
        }
    }

    /// Merges another ledger into this one (for machine-wide totals).
    pub fn merge(&mut self, other: &CpuStats) {
        self.useful_cycles += other.useful_cycles;
        self.trap_cycles += other.trap_cycles;
        self.handler_cycles += other.handler_cycles;
        self.stall_cycles += other.stall_cycles;
        self.idle_cycles += other.idle_cycles;
        self.instructions += other.instructions;
        self.context_switches += other.context_switches;
        self.traps += other.traps;
        self.mem_ops += other.mem_ops;
        self.remote_misses += other.remote_misses;
        self.fe_traps += other.fe_traps;
        self.future_traps += other.future_traps;
    }
}

impl fmt::Display for CpuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} (useful={} trap={} handler={} stall={} idle={}) instrs={} cs={} util={:.3}",
            self.total(),
            self.useful_cycles,
            self.trap_cycles,
            self.handler_cycles,
            self.stall_cycles,
            self.idle_cycles,
            self.instructions,
            self.context_switches,
            self.utilization(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_buckets() {
        let s = CpuStats {
            useful_cycles: 10,
            trap_cycles: 5,
            handler_cycles: 6,
            stall_cycles: 3,
            idle_cycles: 1,
            ..CpuStats::default()
        };
        assert_eq!(s.total(), 25);
        assert!((s.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_utilization_is_zero() {
        assert_eq!(CpuStats::default().utilization(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CpuStats {
            useful_cycles: 1,
            instructions: 2,
            ..CpuStats::default()
        };
        let b = CpuStats {
            useful_cycles: 3,
            instructions: 4,
            ..CpuStats::default()
        };
        a.merge(&b);
        assert_eq!(a.useful_cycles, 4);
        assert_eq!(a.instructions, 6);
    }
}
