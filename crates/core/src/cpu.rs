//! The APRIL processor execution engine.
//!
//! The processor "executes instructions from a given thread until it
//! performs a remote memory request or fails in a synchronization
//! attempt" (paper, Section 1) — coarse-grain multithreading. This
//! module implements the user-visible processor state of Figure 2
//! (four task frames, eight global registers, a frame pointer) and a
//! deterministic, cycle-accounted interpreter for the instruction set
//! of Section 4.
//!
//! The engine reports traps to its caller rather than running handlers
//! itself: in the real machine the handlers are run-time software
//! (Section 6), which this reproduction keeps in the `april-runtime`
//! crate. Trap *entry* (5 cycles of pipeline squash and vectoring) is
//! charged here; handler bodies charge their own cycles through
//! [`Cpu::charge_handler`].

use crate::frame::{FrameState, TaskFrame};
use crate::isa::{AluOp, Cond, FpOp, Instr, Operand, Reg};
use crate::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
use crate::program::Program;
use crate::psr::{CondCodes, FpCond};
use crate::stats::CpuStats;
use crate::trap::{Trap, TRAP_ENTRY_CYCLES};
use crate::word::Word;
use april_obs::{EventKind, Probe};
use std::collections::VecDeque;

/// Default number of hardware task frames (the SPARC implementation's
/// eight register windows give four frames; Section 5).
pub const DEFAULT_NFRAMES: usize = 4;

/// Processor timing and sizing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Number of hardware task frames.
    pub nframes: usize,
    /// Cycles for integer multiply.
    pub mul_cycles: u64,
    /// Cycles for integer divide/remainder.
    pub div_cycles: u64,
    /// Trap entry overhead (pipeline squash + vectoring).
    pub trap_entry_cycles: u64,
    /// Cycles for LDIO/STIO out-of-band accesses.
    pub io_cycles: u64,
    /// Cycles for floating add/subtract.
    pub fadd_cycles: u64,
    /// Cycles for floating multiply.
    pub fmul_cycles: u64,
    /// Cycles for floating divide.
    pub fdiv_cycles: u64,
    /// Cycles to issue a FLUSH.
    pub flush_cycles: u64,
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        CpuConfig {
            nframes: DEFAULT_NFRAMES,
            mul_cycles: 3,
            div_cycles: 12,
            trap_entry_cycles: TRAP_ENTRY_CYCLES,
            io_cycles: 2,
            fadd_cycles: 2,
            fmul_cycles: 4,
            fdiv_cycles: 16,
            flush_cycles: 2,
        }
    }
}

/// The result of advancing the processor by one instruction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An instruction retired from the active frame.
    Executed,
    /// The controller held the processor (`MHOLD`); the instruction did
    /// not retire and will be reissued. The stall has been charged.
    Stalled {
        /// Cycles spent held.
        cycles: u64,
    },
    /// A trap was signalled; entry cost has been charged, the PC chain
    /// still addresses the trapping instruction, and the run-time
    /// handler must now run.
    Trapped(Trap),
    /// A run-time system call retired; the service routine must run.
    RtCall {
        /// Service number.
        n: u16,
    },
    /// The active frame is not runnable; the scheduler must intervene
    /// (or the processor idles while the controller works).
    NoReadyFrame,
    /// The processor has halted.
    Halted,
}

/// One APRIL processor.
///
/// # Examples
///
/// Running a two-instruction program against a trivial memory:
///
/// ```
/// use april_core::cpu::{Cpu, CpuConfig, StepEvent};
/// use april_core::isa::{AluOp, Instr, Operand, Reg};
/// use april_core::program::ProgramBuilder;
/// use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
/// use april_core::word::Word;
///
/// struct NoMem;
/// impl MemoryPort for NoMem {
///     fn load(&mut self, _: u32, _: april_core::isa::LoadFlavor, _: AccessCtx) -> LoadReply {
///         LoadReply::Data { word: Word::ZERO, fe: true }
///     }
///     fn store(&mut self, _: u32, _: Word, _: april_core::isa::StoreFlavor, _: AccessCtx)
///         -> StoreReply {
///         StoreReply::Done { fe: false }
///     }
/// }
///
/// let mut b = ProgramBuilder::new();
/// b.emit(Instr::Alu { op: AluOp::Add, s1: Reg::ZERO, s2: Operand::Imm(5), d: Reg::L(1),
///                     tagged: false });
/// b.emit(Instr::Halt);
/// let prog = b.finish()?;
///
/// let mut cpu = Cpu::new(CpuConfig::default());
/// cpu.boot(0);
/// assert_eq!(cpu.step(&prog, &mut NoMem), StepEvent::Executed);
/// assert_eq!(cpu.get_reg(Reg::L(1)), Word(5));
/// assert_eq!(cpu.step(&prog, &mut NoMem), StepEvent::Halted);
/// # Ok::<(), april_core::program::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    pub(crate) frames: Vec<TaskFrame>,
    pub(crate) globals: [Word; 8],
    pub(crate) fp: usize,
    pub(crate) halted: bool,
    pub(crate) irqs: VecDeque<usize>,
    /// Cycle ledger.
    pub stats: CpuStats,
    pub(crate) cfg: CpuConfig,
    /// Machine clock mirror, kept current by the scheduler (the ledger
    /// in `stats` lags the clock, so trace events cannot use it).
    pub(crate) clock: u64,
    /// Trace recorder for this processor's lane (inert by default).
    pub(crate) probe: Probe,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new(CpuConfig::default())
    }
}

impl Cpu {
    /// Creates a processor with all frames empty.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nframes` is zero.
    pub fn new(cfg: CpuConfig) -> Cpu {
        assert!(cfg.nframes > 0, "need at least one task frame");
        Cpu {
            frames: vec![TaskFrame::default(); cfg.nframes],
            globals: [Word::ZERO; 8],
            fp: 0,
            halted: false,
            irqs: VecDeque::new(),
            stats: CpuStats::default(),
            cfg,
            clock: 0,
            probe: Probe::default(),
        }
    }

    /// Mirrors the machine clock so trace events carry the true cycle.
    /// Schedulers call this alongside the controller/directory clocks.
    pub fn set_clock(&mut self, now: u64) {
        self.clock = now;
    }

    /// Installs a trace recorder for this processor's lane.
    pub fn attach_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The processor's trace recorder.
    pub fn trace_probe(&self) -> &Probe {
        &self.probe
    }

    /// Resets frame 0 to start executing at `entry` and selects it.
    pub fn boot(&mut self, entry: u32) {
        self.fp = 0;
        self.halted = false;
        self.frames[0].reset_at(entry);
    }

    /// The processor configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Number of task frames.
    pub fn nframes(&self) -> usize {
        self.frames.len()
    }

    /// Current frame pointer.
    pub fn fp(&self) -> usize {
        self.fp
    }

    /// Sets the frame pointer (modulo the frame count), as the
    /// `STFP`/`INCFP`/`DECFP` instructions and the context-switch trap
    /// handler do.
    pub fn set_fp(&mut self, fp: usize) {
        self.fp = fp % self.frames.len();
    }

    /// True once the processor has executed `HALT` or run off the end
    /// of the text segment.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Halts the processor (used by the run-time on machine shutdown).
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Shared view of frame `i`.
    pub fn frame(&self, i: usize) -> &TaskFrame {
        &self.frames[i]
    }

    /// Mutable view of frame `i` (used by the run-time to load and
    /// unload threads).
    pub fn frame_mut(&mut self, i: usize) -> &mut TaskFrame {
        &mut self.frames[i]
    }

    /// The active task frame.
    pub fn active_frame(&self) -> &TaskFrame {
        &self.frames[self.fp]
    }

    /// Mutable active task frame.
    pub fn active_frame_mut(&mut self) -> &mut TaskFrame {
        &mut self.frames[self.fp]
    }

    /// Reads a register in the active frame (or a global).
    pub fn get_reg(&self, r: Reg) -> Word {
        match r {
            Reg::G(i) => self.globals[i as usize],
            Reg::L(i) => self.frames[self.fp].regs[i as usize],
        }
    }

    /// Writes a register in the active frame. Writes to `g0` are
    /// discarded (it is hardwired to zero).
    pub fn set_reg(&mut self, r: Reg, w: Word) {
        match r {
            Reg::G(0) => {}
            Reg::G(i) => self.globals[i as usize] = w,
            Reg::L(i) => self.frames[self.fp].regs[i as usize] = w,
        }
    }

    /// Reads FP register `f` of the active frame as raw bits.
    pub fn get_freg(&self, f: u8) -> u32 {
        self.frames[self.fp].fregs[f as usize & 7]
    }

    /// Writes FP register `f` of the active frame.
    pub fn set_freg(&mut self, f: u8, bits: u32) {
        self.frames[self.fp].fregs[f as usize & 7] = bits;
    }

    /// Index of the next frame after the active one that is `Ready`,
    /// searching in `INCFP` order. Returns `None` if no other frame is
    /// runnable.
    pub fn next_ready_frame(&self) -> Option<usize> {
        let n = self.frames.len();
        (1..=n)
            .map(|k| (self.fp + k) % n)
            .find(|&i| self.frames[i].state == FrameState::Ready)
    }

    /// True if any frame is `Ready`.
    pub fn any_ready_frame(&self) -> bool {
        self.frames.iter().any(|f| f.state == FrameState::Ready)
    }

    /// Posts an asynchronous interprocessor interrupt (Section 3.4).
    pub fn post_interrupt(&mut self, from: usize) {
        self.irqs.push_back(from);
    }

    /// Charges `cycles` of run-time handler time (the software part of
    /// trap handling, e.g. the 6-cycle context-switch body).
    pub fn charge_handler(&mut self, cycles: u64) {
        self.stats.handler_cycles += cycles;
    }

    /// Charges `cycles` of idle time (no runnable frame).
    pub fn charge_idle(&mut self, cycles: u64) {
        self.stats.idle_cycles += cycles;
    }

    /// Records a context switch in the ledger.
    pub fn count_context_switch(&mut self) {
        self.stats.context_switches += 1;
        self.probe
            .emit(self.clock, EventKind::ContextSwitch, self.fp as u64, 0);
    }

    fn raise(&mut self, t: Trap) -> StepEvent {
        self.stats.traps += 1;
        self.stats.trap_cycles += self.cfg.trap_entry_cycles;
        match t {
            Trap::RemoteMiss { .. } => self.stats.remote_misses += 1,
            Trap::FullEmpty { .. } => self.stats.fe_traps += 1,
            Trap::FutureTouch { .. } | Trap::FutureAddr { .. } => self.stats.future_traps += 1,
            _ => {}
        }
        match t {
            Trap::FullEmpty { addr, is_store } => {
                self.probe.emit(
                    self.clock,
                    EventKind::FullEmptyWait,
                    addr as u64,
                    is_store as u64,
                );
            }
            Trap::FutureTouch { reg } | Trap::FutureAddr { reg } => {
                self.probe
                    .emit(self.clock, EventKind::FutureTouch, encode_reg(reg), 0);
            }
            _ => {
                let b = match t {
                    Trap::RemoteMiss { addr, .. } | Trap::Alignment { addr } => addr as u64,
                    Trap::RtCall { n } => n as u64,
                    Trap::Interrupt { from } => from as u64,
                    _ => 0,
                };
                self.probe
                    .emit(self.clock, EventKind::TrapTaken, t.vector() as u64, b);
            }
        }
        self.frames[self.fp].psr.in_trap = true;
        StepEvent::Trapped(t)
    }

    /// Executes (or attempts) one instruction from the active frame.
    ///
    /// On [`StepEvent::Executed`] the instruction retired and its cost
    /// was charged to `useful_cycles`. On a trap, the PC chain still
    /// addresses the trapping instruction so the handler can retry it
    /// (the hardware `RETT` path). On a stall, the memory system's hold
    /// time was charged and the instruction will be reissued.
    pub fn step(&mut self, prog: &Program, mut mem: impl MemoryPort) -> StepEvent {
        if self.halted {
            return StepEvent::Halted;
        }
        // Asynchronous interrupts are taken between instructions when
        // traps are enabled and we are not already in a handler.
        if !self.irqs.is_empty() {
            let f = &self.frames[self.fp];
            if f.psr.traps_enabled && !f.psr.in_trap {
                let from = self.irqs.pop_front().expect("checked nonempty");
                return self.raise(Trap::Interrupt { from });
            }
        }
        if self.frames[self.fp].state != FrameState::Ready {
            return StepEvent::NoReadyFrame;
        }

        let pc = self.frames[self.fp].pc;
        let npc = self.frames[self.fp].npc;
        // Borrowing fetch: the hot loop re-reads the text segment every
        // visited cycle, so skip the by-value copy of the fat enum.
        let Some(&instr) = prog.fetch_ref(pc) else {
            self.halted = true;
            return StepEvent::Halted;
        };

        // Default PC-chain advance; control transfers override new_npc.
        let new_pc = npc;
        let mut new_npc = npc.wrapping_add(1);
        let mut cost: u64 = 1;
        let mut rtcall: Option<u16> = None;

        match instr {
            Instr::Nop => {}
            Instr::Falu { op, fs1, fs2, fd } => {
                let a = f32::from_bits(self.get_freg(fs1));
                let b = f32::from_bits(self.get_freg(fs2));
                let (r, c) = match op {
                    FpOp::FAdd => (a + b, self.cfg.fadd_cycles),
                    FpOp::FSub => (a - b, self.cfg.fadd_cycles),
                    FpOp::FMul => (a * b, self.cfg.fmul_cycles),
                    FpOp::FDiv => (a / b, self.cfg.fdiv_cycles),
                };
                cost = c;
                self.set_freg(fd, r.to_bits());
            }
            Instr::Fcmp { fs1, fs2 } => {
                let a = f32::from_bits(self.get_freg(fs1));
                let b = f32::from_bits(self.get_freg(fs2));
                cost = self.cfg.fadd_cycles;
                self.frames[self.fp].psr.fcc = match a.partial_cmp(&b) {
                    Some(std::cmp::Ordering::Equal) => FpCond::Eq,
                    Some(std::cmp::Ordering::Less) => FpCond::Lt,
                    Some(std::cmp::Ordering::Greater) => FpCond::Gt,
                    None => FpCond::Unordered,
                };
            }
            Instr::FMovI { bits, fd } => {
                self.set_freg(fd, bits);
            }
            Instr::FixToF { s, fd } => {
                let v = self.get_reg(s);
                if v.is_future() {
                    return self.raise(Trap::FutureTouch { reg: s });
                }
                let n = (v.0 as i32) >> 2;
                cost = self.cfg.fadd_cycles;
                self.set_freg(fd, (n as f32).to_bits());
            }
            Instr::FToFix { fs, d } => {
                let x = f32::from_bits(self.get_freg(fs));
                cost = self.cfg.fadd_cycles;
                self.set_reg(d, Word::fixnum(x as i32));
            }
            Instr::LdF { a, offset, fd } => {
                let base = self.get_reg(a);
                if base.is_future() {
                    return self.raise(Trap::FutureAddr { reg: a });
                }
                let addr = base.0.wrapping_add(offset as u32);
                if addr & 3 != 0 {
                    return self.raise(Trap::Alignment { addr });
                }
                match mem.load(
                    addr,
                    crate::isa::LoadFlavor::NORMAL,
                    AccessCtx { frame: self.fp },
                ) {
                    LoadReply::Data { word, .. } => {
                        // Counted on retire only: a stalled or trapped
                        // attempt reissues and must not inflate the
                        // ledger transiently.
                        self.stats.mem_ops += 1;
                        self.set_freg(fd, word.0);
                    }
                    LoadReply::Stall { cycles } => {
                        self.stats.stall_cycles += cycles;
                        return StepEvent::Stalled { cycles };
                    }
                    LoadReply::RemoteMiss => {
                        return self.raise(Trap::RemoteMiss {
                            addr,
                            is_store: false,
                        });
                    }
                    LoadReply::FeViolation => {
                        return self.raise(Trap::FullEmpty {
                            addr,
                            is_store: false,
                        });
                    }
                }
            }
            Instr::StF { fs, a, offset } => {
                let base = self.get_reg(a);
                if base.is_future() {
                    return self.raise(Trap::FutureAddr { reg: a });
                }
                let addr = base.0.wrapping_add(offset as u32);
                if addr & 3 != 0 {
                    return self.raise(Trap::Alignment { addr });
                }
                let value = Word(self.get_freg(fs));
                match mem.store(
                    addr,
                    value,
                    crate::isa::StoreFlavor::NORMAL,
                    AccessCtx { frame: self.fp },
                ) {
                    StoreReply::Done { .. } => {
                        self.stats.mem_ops += 1;
                    }
                    StoreReply::Stall { cycles } => {
                        self.stats.stall_cycles += cycles;
                        return StepEvent::Stalled { cycles };
                    }
                    StoreReply::RemoteMiss => {
                        return self.raise(Trap::RemoteMiss {
                            addr,
                            is_store: true,
                        });
                    }
                    StoreReply::FeViolation => {
                        return self.raise(Trap::FullEmpty {
                            addr,
                            is_store: true,
                        });
                    }
                }
            }
            Instr::Halt => {
                self.halted = true;
                self.stats.instructions += 1;
                self.stats.useful_cycles += 1;
                return StepEvent::Halted;
            }
            Instr::Alu {
                op,
                s1,
                s2,
                d,
                tagged,
            } => {
                let a = self.get_reg(s1);
                let b = match s2 {
                    Operand::Reg(r) => self.get_reg(r),
                    Operand::Imm(i) => Word(i as u32),
                };
                if tagged {
                    // Strict operation: hardware future detection via
                    // the non-zero least significant bit (Section 5).
                    if a.is_future() {
                        return self.raise(Trap::FutureTouch { reg: s1 });
                    }
                    if let Operand::Reg(r) = s2 {
                        if b.is_future() {
                            return self.raise(Trap::FutureTouch { reg: r });
                        }
                    }
                }
                let (result, cc) = match op {
                    AluOp::Add => alu_add(a.0, b.0),
                    AluOp::Sub => alu_sub(a.0, b.0),
                    AluOp::And => logic_cc(a.0 & b.0),
                    AluOp::Or => logic_cc(a.0 | b.0),
                    AluOp::Xor => logic_cc(a.0 ^ b.0),
                    AluOp::Sll => logic_cc(a.0.wrapping_shl(b.0 & 31)),
                    AluOp::Srl => logic_cc(a.0.wrapping_shr(b.0 & 31)),
                    AluOp::Sra => logic_cc(((a.0 as i32).wrapping_shr(b.0 & 31)) as u32),
                    AluOp::Mul => {
                        cost = self.cfg.mul_cycles;
                        if tagged {
                            let v = ((a.0 as i32) >> 2).wrapping_mul((b.0 as i32) >> 2);
                            logic_cc((v as u32) << 2)
                        } else {
                            logic_cc(a.0.wrapping_mul(b.0))
                        }
                    }
                    AluOp::Div | AluOp::Rem => {
                        cost = self.cfg.div_cycles;
                        let (x, y) = if tagged {
                            ((a.0 as i32) >> 2, (b.0 as i32) >> 2)
                        } else {
                            (a.0 as i32, b.0 as i32)
                        };
                        if y == 0 {
                            return self.raise(Trap::DivZero);
                        }
                        let v = if op == AluOp::Div {
                            x.wrapping_div(y)
                        } else {
                            x.wrapping_rem(y)
                        };
                        logic_cc(if tagged { (v as u32) << 2 } else { v as u32 })
                    }
                };
                self.set_reg(d, Word(result));
                self.frames[self.fp].psr.cc = cc;
            }
            Instr::MovI { imm, d } => {
                self.set_reg(d, Word(imm));
            }
            Instr::Branch { cond, offset } => {
                if self.eval_cond(cond) {
                    new_npc = (pc as i64 + offset as i64) as u32;
                }
            }
            Instr::Jmpl { s1, s2, d } => {
                let base = self.get_reg(s1).0;
                let off = match s2 {
                    Operand::Reg(r) => self.get_reg(r).0,
                    Operand::Imm(i) => i as u32,
                };
                new_npc = base.wrapping_add(off);
                // Link value: address of the instruction after the
                // delay slot, stored raw.
                self.set_reg(d, Word(pc + 2));
            }
            Instr::Load {
                flavor,
                a,
                offset,
                d,
            } => {
                let base = self.get_reg(a);
                if base.is_future() {
                    // Implicit touch: dereferencing a future pointer.
                    return self.raise(Trap::FutureAddr { reg: a });
                }
                let addr = base.0.wrapping_add(offset as u32);
                if addr & 3 != 0 {
                    return self.raise(Trap::Alignment { addr });
                }
                match mem.load(addr, flavor, AccessCtx { frame: self.fp }) {
                    LoadReply::Data { word, fe } => {
                        self.stats.mem_ops += 1; // retired
                        self.set_reg(d, word);
                        if !flavor.fe_trap {
                            self.frames[self.fp].psr.fe_cond = fe;
                        }
                    }
                    LoadReply::Stall { cycles } => {
                        self.stats.stall_cycles += cycles;
                        return StepEvent::Stalled { cycles };
                    }
                    LoadReply::RemoteMiss => {
                        return self.raise(Trap::RemoteMiss {
                            addr,
                            is_store: false,
                        });
                    }
                    LoadReply::FeViolation => {
                        return self.raise(Trap::FullEmpty {
                            addr,
                            is_store: false,
                        });
                    }
                }
            }
            Instr::Store {
                flavor,
                a,
                offset,
                s,
            } => {
                let base = self.get_reg(a);
                if base.is_future() {
                    return self.raise(Trap::FutureAddr { reg: a });
                }
                let addr = base.0.wrapping_add(offset as u32);
                if addr & 3 != 0 {
                    return self.raise(Trap::Alignment { addr });
                }
                let value = self.get_reg(s);
                match mem.store(addr, value, flavor, AccessCtx { frame: self.fp }) {
                    StoreReply::Done { fe } => {
                        self.stats.mem_ops += 1; // retired
                        if !flavor.fe_trap {
                            self.frames[self.fp].psr.fe_cond = fe;
                        }
                    }
                    StoreReply::Stall { cycles } => {
                        self.stats.stall_cycles += cycles;
                        return StepEvent::Stalled { cycles };
                    }
                    StoreReply::RemoteMiss => {
                        return self.raise(Trap::RemoteMiss {
                            addr,
                            is_store: true,
                        });
                    }
                    StoreReply::FeViolation => {
                        return self.raise(Trap::FullEmpty {
                            addr,
                            is_store: true,
                        });
                    }
                }
            }
            Instr::IncFp => {
                let n = self.frames.len();
                // Commit this frame's PC advance before switching.
                self.frames[self.fp].pc = new_pc;
                self.frames[self.fp].npc = new_npc;
                self.fp = (self.fp + 1) % n;
                self.stats.instructions += 1;
                self.stats.useful_cycles += cost;
                return StepEvent::Executed;
            }
            Instr::DecFp => {
                let n = self.frames.len();
                self.frames[self.fp].pc = new_pc;
                self.frames[self.fp].npc = new_npc;
                self.fp = (self.fp + n - 1) % n;
                self.stats.instructions += 1;
                self.stats.useful_cycles += cost;
                return StepEvent::Executed;
            }
            Instr::RdFp { d } => {
                let fp = self.fp;
                self.set_reg(d, Word::fixnum(fp as i32));
            }
            Instr::StFp { s } => {
                let v = self.get_reg(s).as_fixnum().unwrap_or(0).unsigned_abs() as usize;
                let n = self.frames.len();
                self.frames[self.fp].pc = new_pc;
                self.frames[self.fp].npc = new_npc;
                self.fp = v % n;
                self.stats.instructions += 1;
                self.stats.useful_cycles += cost;
                return StepEvent::Executed;
            }
            Instr::RdPsr { d } => {
                let w = self.frames[self.fp].psr.to_word();
                self.set_reg(d, w);
            }
            Instr::WrPsr { s } => {
                let w = self.get_reg(s);
                self.frames[self.fp].psr = crate::psr::Psr::from_word(w);
            }
            Instr::RtCall { n } => {
                rtcall = Some(n);
            }
            Instr::Flush { a, offset } => {
                let base = self.get_reg(a);
                if base.is_future() {
                    return self.raise(Trap::FutureAddr { reg: a });
                }
                let addr = base.0.wrapping_add(offset as u32) & !3;
                mem.flush(addr);
                cost = self.cfg.flush_cycles;
            }
            Instr::Fence => {
                if mem.fence_count() > 0 {
                    self.stats.stall_cycles += 1;
                    return StepEvent::Stalled { cycles: 1 };
                }
            }
            Instr::Ldio { reg, d } => {
                let w = mem.ldio(reg);
                self.set_reg(d, w);
                cost = self.cfg.io_cycles;
            }
            Instr::Stio { reg, s } => {
                let w = self.get_reg(s);
                mem.stio(reg, w);
                cost = self.cfg.io_cycles;
            }
        }

        // Commit.
        let f = &mut self.frames[self.fp];
        f.pc = new_pc;
        f.npc = new_npc;
        self.stats.instructions += 1;
        self.stats.useful_cycles += cost;
        match rtcall {
            Some(n) => StepEvent::RtCall { n },
            None => StepEvent::Executed,
        }
    }

    fn eval_cond(&self, cond: Cond) -> bool {
        let psr = &self.frames[self.fp].psr;
        let cc = psr.cc;
        match cond {
            Cond::Always => true,
            Cond::Never => false,
            Cond::Eq => cc.z,
            Cond::Ne => !cc.z,
            Cond::Lt => cc.n != cc.v,
            Cond::Le => cc.z || (cc.n != cc.v),
            Cond::Gt => !(cc.z || (cc.n != cc.v)),
            Cond::Ge => cc.n == cc.v,
            Cond::Ltu => cc.c,
            Cond::Geu => !cc.c,
            Cond::Full => psr.fe_cond,
            Cond::Empty => !psr.fe_cond,
            Cond::FpEq => psr.fcc == FpCond::Eq,
            Cond::FpLt => psr.fcc == FpCond::Lt,
            Cond::FpGt => psr.fcc == FpCond::Gt,
        }
    }
}

/// Trace payload encoding of a register name: globals map to their
/// index, locals to `0x100 | index`.
fn encode_reg(r: Reg) -> u64 {
    match r {
        Reg::G(i) => i as u64,
        Reg::L(i) => 0x100 | i as u64,
    }
}

pub(crate) fn alu_add(a: u32, b: u32) -> (u32, CondCodes) {
    let (r, c) = a.overflowing_add(b);
    let v = ((a ^ r) & (b ^ r)) >> 31 != 0;
    (
        r,
        CondCodes {
            n: r >> 31 != 0,
            z: r == 0,
            v,
            c,
        },
    )
}

pub(crate) fn alu_sub(a: u32, b: u32) -> (u32, CondCodes) {
    let (r, borrow) = a.overflowing_sub(b);
    let v = ((a ^ b) & (a ^ r)) >> 31 != 0;
    (
        r,
        CondCodes {
            n: r >> 31 != 0,
            z: r == 0,
            v,
            c: borrow,
        },
    )
}

pub(crate) fn logic_cc(r: u32) -> (u32, CondCodes) {
    (
        r,
        CondCodes {
            n: r >> 31 != 0,
            z: r == 0,
            v: false,
            c: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{LoadFlavor, StoreFlavor};
    use crate::program::ProgramBuilder;

    /// A flat, always-full test memory.
    struct FlatMem {
        words: Vec<Word>,
        fe: Vec<bool>,
    }

    impl FlatMem {
        fn new(nwords: usize) -> FlatMem {
            FlatMem {
                words: vec![Word::ZERO; nwords],
                fe: vec![true; nwords],
            }
        }
    }

    impl MemoryPort for FlatMem {
        fn load(&mut self, addr: u32, flavor: LoadFlavor, _: AccessCtx) -> LoadReply {
            let i = (addr / 4) as usize;
            let fe = self.fe[i];
            if flavor.fe_trap && !fe {
                return LoadReply::FeViolation;
            }
            if flavor.reset_fe {
                self.fe[i] = false;
            }
            LoadReply::Data {
                word: self.words[i],
                fe,
            }
        }
        fn store(
            &mut self,
            addr: u32,
            value: Word,
            flavor: StoreFlavor,
            _: AccessCtx,
        ) -> StoreReply {
            let i = (addr / 4) as usize;
            let fe = self.fe[i];
            if flavor.fe_trap && fe {
                return StoreReply::FeViolation;
            }
            self.words[i] = value;
            if flavor.set_fe {
                self.fe[i] = true;
            }
            StoreReply::Done { fe }
        }
    }

    fn run_until_halt(cpu: &mut Cpu, prog: &Program, mem: &mut FlatMem) {
        for _ in 0..10_000 {
            match cpu.step(prog, &mut *mem) {
                StepEvent::Halted => return,
                StepEvent::Trapped(t) => panic!("unexpected trap {t}"),
                _ => {}
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn arithmetic_and_branching() {
        // Sum 1..=5 with a loop.
        let mut b = ProgramBuilder::new();
        let (acc, i) = (Reg::L(1), Reg::L(2));
        b.emit(Instr::MovI { imm: 0, d: acc });
        b.emit(Instr::MovI { imm: 5, d: i });
        b.label("loop");
        b.emit(Instr::Alu {
            op: AluOp::Add,
            s1: acc,
            s2: Operand::Reg(i),
            d: acc,
            tagged: false,
        });
        b.emit(Instr::Alu {
            op: AluOp::Sub,
            s1: i,
            s2: Operand::Imm(1),
            d: i,
            tagged: false,
        });
        b.branch_to(Cond::Ne, "loop");
        b.emit(Instr::Nop); // delay slot
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(16);
        run_until_halt(&mut cpu, &prog, &mut mem);
        assert_eq!(cpu.get_reg(Reg::L(1)), Word(15));
    }

    #[test]
    fn delay_slot_executes_before_branch_target() {
        let mut b = ProgramBuilder::new();
        b.branch_to(Cond::Always, "out");
        b.emit(Instr::MovI {
            imm: 7,
            d: Reg::L(1),
        }); // delay slot: must run
        b.emit(Instr::MovI {
            imm: 9,
            d: Reg::L(1),
        }); // skipped
        b.label("out");
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        run_until_halt(&mut cpu, &prog, &mut mem);
        assert_eq!(cpu.get_reg(Reg::L(1)), Word(7));
    }

    #[test]
    fn jmpl_links_past_delay_slot() {
        let mut b = ProgramBuilder::new();
        b.movi_label("sub", Reg::L(5));
        b.emit(Instr::Jmpl {
            s1: Reg::L(5),
            s2: Operand::Imm(0),
            d: Reg::L(7),
        });
        b.emit(Instr::Nop); // delay slot
        b.emit(Instr::MovI {
            imm: 1,
            d: Reg::L(2),
        }); // return lands here
        b.emit(Instr::Halt);
        b.label("sub");
        b.emit(Instr::MovI {
            imm: 2,
            d: Reg::L(3),
        });
        b.emit(Instr::Jmpl {
            s1: Reg::L(7),
            s2: Operand::Imm(0),
            d: Reg::ZERO,
        });
        b.emit(Instr::Nop);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        run_until_halt(&mut cpu, &prog, &mut mem);
        assert_eq!(cpu.get_reg(Reg::L(2)), Word(1));
        assert_eq!(cpu.get_reg(Reg::L(3)), Word(2));
    }

    #[test]
    fn tagged_op_traps_on_future_operand() {
        let mut b = ProgramBuilder::new();
        // r1 holds a future pointer; tagged add must trap.
        b.emit(Instr::MovI {
            imm: Word::future_ptr(0x100).0,
            d: Reg::L(1),
        });
        b.emit(Instr::Alu {
            op: AluOp::Add,
            s1: Reg::L(1),
            s2: Operand::Imm(4),
            d: Reg::L(2),
            tagged: true,
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        assert_eq!(cpu.step(&prog, &mut mem), StepEvent::Executed);
        let ev = cpu.step(&prog, &mut mem);
        assert_eq!(ev, StepEvent::Trapped(Trap::FutureTouch { reg: Reg::L(1) }));
        // PC still addresses the trapping instruction (retry semantics).
        assert_eq!(cpu.active_frame().pc, 1);
        assert_eq!(cpu.stats.future_traps, 1);
        assert_eq!(cpu.stats.trap_cycles, TRAP_ENTRY_CYCLES);
    }

    #[test]
    fn untagged_op_ignores_future_tag() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::MovI {
            imm: Word::future_ptr(0x100).0,
            d: Reg::L(1),
        });
        // Untagged ops are how the runtime manipulates tags.
        b.emit(Instr::Alu {
            op: AluOp::And,
            s1: Reg::L(1),
            s2: Operand::Imm(!0b11),
            d: Reg::L(2),
            tagged: false,
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        run_until_halt(&mut cpu, &prog, &mut mem);
        assert_eq!(cpu.get_reg(Reg::L(2)), Word(0x100));
    }

    #[test]
    fn load_through_future_pointer_traps() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::MovI {
            imm: Word::future_ptr(0x20).0,
            d: Reg::L(1),
        });
        b.emit(Instr::Load {
            flavor: LoadFlavor::NORMAL,
            a: Reg::L(1),
            offset: 0,
            d: Reg::L(2),
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(64);
        cpu.step(&prog, &mut mem);
        assert_eq!(
            cpu.step(&prog, &mut mem),
            StepEvent::Trapped(Trap::FutureAddr { reg: Reg::L(1) })
        );
    }

    #[test]
    fn fe_trap_load_on_empty_location() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::MovI {
            imm: 0x10,
            d: Reg::L(1),
        });
        b.emit(Instr::Load {
            flavor: LoadFlavor::from_mnemonic("ldtw").unwrap(),
            a: Reg::L(1),
            offset: 0,
            d: Reg::L(2),
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(64);
        mem.fe[4] = false; // 0x10 / 4
        cpu.step(&prog, &mut mem);
        assert_eq!(
            cpu.step(&prog, &mut mem),
            StepEvent::Trapped(Trap::FullEmpty {
                addr: 0x10,
                is_store: false
            })
        );
        assert_eq!(cpu.stats.fe_traps, 1);
    }

    #[test]
    fn nontrapping_load_sets_fe_condition_for_jempty() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::MovI {
            imm: 0x10,
            d: Reg::L(1),
        });
        b.emit(Instr::Load {
            flavor: LoadFlavor::from_mnemonic("ldnw").unwrap(),
            a: Reg::L(1),
            offset: 0,
            d: Reg::L(2),
        });
        b.branch_to(Cond::Empty, "was_empty");
        b.emit(Instr::Nop);
        b.emit(Instr::MovI {
            imm: 111,
            d: Reg::L(3),
        });
        b.emit(Instr::Halt);
        b.label("was_empty");
        b.emit(Instr::MovI {
            imm: 222,
            d: Reg::L(3),
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();

        // Empty location: branch taken.
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(64);
        mem.fe[4] = false;
        run_until_halt(&mut cpu, &prog, &mut mem);
        assert_eq!(cpu.get_reg(Reg::L(3)), Word(222));

        // Full location: fall through.
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(64);
        run_until_halt(&mut cpu, &prog, &mut mem);
        assert_eq!(cpu.get_reg(Reg::L(3)), Word(111));
    }

    #[test]
    fn misaligned_access_traps() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::MovI {
            imm: 0x12,
            d: Reg::L(1),
        });
        b.emit(Instr::Load {
            flavor: LoadFlavor::NORMAL,
            a: Reg::L(1),
            offset: 0,
            d: Reg::L(2),
        });
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(64);
        cpu.step(&prog, &mut mem);
        assert_eq!(
            cpu.step(&prog, &mut mem),
            StepEvent::Trapped(Trap::Alignment { addr: 0x12 })
        );
    }

    #[test]
    fn incfp_rotates_frames_modulo() {
        let mut cpu = Cpu::default();
        let mut b = ProgramBuilder::new();
        for _ in 0..8 {
            b.emit(Instr::IncFp);
        }
        let prog = b.finish().unwrap();
        let mut mem = FlatMem::new(4);
        // Make all frames runnable at the same PC chain.
        for i in 0..cpu.nframes() {
            cpu.frame_mut(i).reset_at(0);
        }
        // Each IncFp advances the old frame's PC and rotates.
        for k in 1..=5 {
            assert_eq!(cpu.step(&prog, &mut mem), StepEvent::Executed);
            assert_eq!(cpu.fp(), k % 4);
        }
    }

    #[test]
    fn rdfp_reads_frame_pointer_as_fixnum() {
        let mut cpu = Cpu::default();
        cpu.boot(0);
        cpu.set_fp(2);
        cpu.frame_mut(2).reset_at(0);
        let mut b = ProgramBuilder::new();
        b.emit(Instr::RdFp { d: Reg::L(1) });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut mem = FlatMem::new(4);
        cpu.step(&prog, &mut mem);
        assert_eq!(cpu.get_reg(Reg::L(1)).as_fixnum(), Some(2));
    }

    #[test]
    fn psr_roundtrip_through_registers() {
        let mut b = ProgramBuilder::new();
        // Set Z by computing 0, read PSR, write it back.
        b.emit(Instr::Alu {
            op: AluOp::Sub,
            s1: Reg::ZERO,
            s2: Operand::Imm(0),
            d: Reg::L(1),
            tagged: false,
        });
        b.emit(Instr::RdPsr { d: Reg::L(2) });
        b.emit(Instr::WrPsr { s: Reg::L(2) });
        b.branch_to(Cond::Eq, "z");
        b.emit(Instr::Nop);
        b.emit(Instr::Halt);
        b.label("z");
        b.emit(Instr::MovI {
            imm: 42,
            d: Reg::L(3),
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        run_until_halt(&mut cpu, &prog, &mut mem);
        assert_eq!(cpu.get_reg(Reg::L(3)), Word(42));
    }

    #[test]
    fn g0_is_hardwired_zero() {
        let mut cpu = Cpu::default();
        cpu.set_reg(Reg::G(0), Word(99));
        assert_eq!(cpu.get_reg(Reg::G(0)), Word::ZERO);
        cpu.set_reg(Reg::G(1), Word(99));
        assert_eq!(cpu.get_reg(Reg::G(1)), Word(99));
    }

    #[test]
    fn globals_shared_across_frames() {
        let mut cpu = Cpu::default();
        cpu.set_reg(Reg::G(3), Word(17));
        cpu.set_fp(2);
        assert_eq!(cpu.get_reg(Reg::G(3)), Word(17));
        cpu.set_reg(Reg::L(1), Word(5));
        cpu.set_fp(0);
        assert_eq!(cpu.get_reg(Reg::L(1)), Word::ZERO, "locals are per-frame");
    }

    #[test]
    fn rtcall_retires_and_reports() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::RtCall { n: 7 });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        assert_eq!(cpu.step(&prog, &mut mem), StepEvent::RtCall { n: 7 });
        // PC advanced past the rtcall.
        assert_eq!(cpu.active_frame().pc, 1);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::Alu {
            op: AluOp::Div,
            s1: Reg::ZERO,
            s2: Operand::Imm(0),
            d: Reg::L(1),
            tagged: false,
        });
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        assert_eq!(cpu.step(&prog, &mut mem), StepEvent::Trapped(Trap::DivZero));
    }

    #[test]
    fn tagged_mul_is_fixnum_mul() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::MovI {
            imm: Word::fixnum(6).0,
            d: Reg::L(1),
        });
        b.emit(Instr::MovI {
            imm: Word::fixnum(7).0,
            d: Reg::L(2),
        });
        b.emit(Instr::Alu {
            op: AluOp::Mul,
            s1: Reg::L(1),
            s2: Operand::Reg(Reg::L(2)),
            d: Reg::L(3),
            tagged: true,
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        run_until_halt(&mut cpu, &prog, &mut mem);
        assert_eq!(cpu.get_reg(Reg::L(3)).as_fixnum(), Some(42));
    }

    #[test]
    fn interrupt_taken_between_instructions() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::Nop);
        b.emit(Instr::Nop);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        cpu.post_interrupt(3);
        assert_eq!(
            cpu.step(&prog, &mut mem),
            StepEvent::Trapped(Trap::Interrupt { from: 3 })
        );
        // Handler context: in_trap masks further IRQs.
        cpu.post_interrupt(4);
        assert_eq!(cpu.step(&prog, &mut mem), StepEvent::Executed);
    }

    #[test]
    fn stats_account_useful_cycles() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::Nop);
        b.emit(Instr::Alu {
            op: AluOp::Mul,
            s1: Reg::ZERO,
            s2: Operand::Imm(0),
            d: Reg::L(1),
            tagged: false,
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlatMem::new(4);
        run_until_halt(&mut cpu, &prog, &mut mem);
        // nop (1) + mul (3) + halt (1)
        assert_eq!(cpu.stats.useful_cycles, 5);
        assert_eq!(cpu.stats.instructions, 3);
    }

    /// Stalls every first attempt at an address, succeeds on reissue.
    struct FlakyMem {
        attempts: u32,
    }

    impl MemoryPort for FlakyMem {
        fn load(&mut self, _: u32, _: LoadFlavor, _: AccessCtx) -> LoadReply {
            self.attempts += 1;
            if self.attempts % 2 == 1 {
                LoadReply::Stall { cycles: 3 }
            } else {
                LoadReply::Data {
                    word: Word(0x10),
                    fe: true,
                }
            }
        }
        fn store(&mut self, _: u32, _: Word, _: StoreFlavor, _: AccessCtx) -> StoreReply {
            self.attempts += 1;
            if self.attempts % 2 == 1 {
                StoreReply::Stall { cycles: 3 }
            } else {
                StoreReply::Done { fe: false }
            }
        }
    }

    #[test]
    fn mem_ops_count_only_on_retire() {
        // Every flavor of memory op — Load, Store, LdF, StF — stalls
        // once before retiring; the ledger must count each op exactly
        // once, never transiently inflating during the stalled attempt.
        let mut b = ProgramBuilder::new();
        b.emit(Instr::MovI {
            imm: 0x10,
            d: Reg::L(1),
        });
        b.emit(Instr::Load {
            flavor: LoadFlavor::NORMAL,
            a: Reg::L(1),
            offset: 0,
            d: Reg::L(2),
        });
        b.emit(Instr::Store {
            flavor: StoreFlavor::NORMAL,
            a: Reg::L(1),
            offset: 4,
            s: Reg::L(2),
        });
        b.emit(Instr::LdF {
            a: Reg::L(1),
            offset: 0,
            fd: 1,
        });
        b.emit(Instr::StF {
            fs: 1,
            a: Reg::L(1),
            offset: 4,
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = FlakyMem { attempts: 0 };
        assert_eq!(cpu.step(&prog, &mut mem), StepEvent::Executed); // movi
        for op in ["load", "store", "ldf", "stf"] {
            let before = cpu.stats.mem_ops;
            assert_eq!(
                cpu.step(&prog, &mut mem),
                StepEvent::Stalled { cycles: 3 },
                "{op} first attempt stalls"
            );
            assert_eq!(cpu.stats.mem_ops, before, "{op} stall must not count");
            assert_eq!(cpu.step(&prog, &mut mem), StepEvent::Executed);
            assert_eq!(cpu.stats.mem_ops, before + 1, "{op} retire counts once");
        }
        assert_eq!(cpu.stats.mem_ops, 4);
    }

    #[test]
    fn mem_ops_not_counted_on_remote_miss_trap() {
        struct MissOnce {
            attempts: u32,
        }
        impl MemoryPort for MissOnce {
            fn load(&mut self, _: u32, _: LoadFlavor, _: AccessCtx) -> LoadReply {
                self.attempts += 1;
                if self.attempts == 1 {
                    LoadReply::RemoteMiss
                } else {
                    LoadReply::Data {
                        word: Word(7),
                        fe: true,
                    }
                }
            }
            fn store(&mut self, _: u32, _: Word, _: StoreFlavor, _: AccessCtx) -> StoreReply {
                StoreReply::Done { fe: false }
            }
        }
        let mut b = ProgramBuilder::new();
        b.emit(Instr::MovI {
            imm: 0x10,
            d: Reg::L(1),
        });
        b.emit(Instr::Load {
            flavor: LoadFlavor::NORMAL,
            a: Reg::L(1),
            offset: 0,
            d: Reg::L(2),
        });
        b.emit(Instr::Halt);
        let prog = b.finish().unwrap();
        let mut cpu = Cpu::default();
        cpu.boot(0);
        let mut mem = MissOnce { attempts: 0 };
        cpu.step(&prog, &mut mem);
        assert!(matches!(
            cpu.step(&prog, &mut mem),
            StepEvent::Trapped(Trap::RemoteMiss { .. })
        ));
        assert_eq!(cpu.stats.mem_ops, 0, "trapped attempt did not retire");
        // The handler returns and the instruction reissues.
        cpu.active_frame_mut().psr.in_trap = false;
        assert_eq!(cpu.step(&prog, &mut mem), StepEvent::Executed);
        assert_eq!(cpu.stats.mem_ops, 1, "the retry retires exactly once");
    }

    #[test]
    fn no_ready_frame_reported() {
        let mut cpu = Cpu::default();
        // No boot: frame 0 is Empty.
        let prog = Program::default();
        let mut mem = FlatMem::new(4);
        assert_eq!(cpu.step(&prog, &mut mem), StepEvent::NoReadyFrame);
    }

    #[test]
    fn next_ready_frame_search_order() {
        let mut cpu = Cpu::default();
        cpu.frame_mut(2).reset_at(0);
        cpu.frame_mut(3).reset_at(0);
        assert_eq!(cpu.next_ready_frame(), Some(2));
        cpu.set_fp(2);
        assert_eq!(cpu.next_ready_frame(), Some(3));
        cpu.frame_mut(3).state = FrameState::WaitingRemote;
        assert_eq!(cpu.next_ready_frame(), Some(2), "wraps to itself if ready");
    }
}
