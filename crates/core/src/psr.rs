//! The Processor State Register (PSR).
//!
//! Each task frame owns one 32-bit PSR holding the condition codes set
//! by compute instructions, the full/empty condition bit delivered by
//! the cache controller for non-trapping memory instructions (used by
//! `Jfull`/`Jempty`), and a supervisor/trap-enable bit. The PSR "can be
//! read into and written from the general registers" (paper, Section 3),
//! which the `RDPSR`/`WRPSR` instructions implement.

use crate::word::Word;
use std::fmt;

/// Condition codes set as a side effect of compute instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct CondCodes {
    /// Negative: result bit 31 set.
    pub n: bool,
    /// Zero: result was zero.
    pub z: bool,
    /// Overflow (signed).
    pub v: bool,
    /// Carry (unsigned overflow / borrow).
    pub c: bool,
}

/// Floating-point comparison outcome, one per task frame — the paper
/// maintains "four different sets of condition bits" so FP compares
/// context-switch with the frame (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum FpCond {
    /// Operands compared equal.
    #[default]
    Eq,
    /// First operand less than second.
    Lt,
    /// First operand greater than second.
    Gt,
    /// At least one operand was NaN.
    Unordered,
}

impl FpCond {
    fn to_bits(self) -> u32 {
        match self {
            FpCond::Eq => 0,
            FpCond::Lt => 1,
            FpCond::Gt => 2,
            FpCond::Unordered => 3,
        }
    }

    fn from_bits(b: u32) -> FpCond {
        match b & 3 {
            0 => FpCond::Eq,
            1 => FpCond::Lt,
            2 => FpCond::Gt,
            _ => FpCond::Unordered,
        }
    }
}

/// A task frame's Processor State Register.
///
/// # Examples
///
/// ```
/// use april_core::psr::Psr;
///
/// let mut psr = Psr::default();
/// psr.fe_cond = true;
/// let w = psr.to_word();
/// assert_eq!(Psr::from_word(w), psr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Psr {
    /// Integer condition codes.
    pub cc: CondCodes,
    /// Full/empty condition bit: state of the last non-trapping memory
    /// instruction's target word, tested by `Jfull`/`Jempty`. Delivered
    /// on SPARC through the Coprocessor Condition bits (Section 5).
    pub fe_cond: bool,
    /// Set while executing in a trap handler (supervisor state).
    pub in_trap: bool,
    /// When clear, traps halt the processor instead of vectoring
    /// (used during boot and inside handlers).
    pub traps_enabled: bool,
    /// Floating-point condition code (per-context, Section 5).
    pub fcc: FpCond,
}

const N_BIT: u32 = 1 << 23;
const Z_BIT: u32 = 1 << 22;
const V_BIT: u32 = 1 << 21;
const C_BIT: u32 = 1 << 20;
const FE_BIT: u32 = 1 << 12;
const FCC_SHIFT: u32 = 14;
const TRAP_BIT: u32 = 1 << 7;
const ET_BIT: u32 = 1 << 5;

impl Psr {
    /// A PSR in the reset state with traps enabled, as the boot code
    /// leaves it before dispatching the first thread.
    pub fn user() -> Psr {
        Psr {
            traps_enabled: true,
            ..Psr::default()
        }
    }

    /// Packs the PSR into a machine word (for `RDPSR`, and for the trap
    /// window save slot used during context switches).
    pub fn to_word(self) -> Word {
        let mut v = 0;
        if self.cc.n {
            v |= N_BIT;
        }
        if self.cc.z {
            v |= Z_BIT;
        }
        if self.cc.v {
            v |= V_BIT;
        }
        if self.cc.c {
            v |= C_BIT;
        }
        if self.fe_cond {
            v |= FE_BIT;
        }
        if self.in_trap {
            v |= TRAP_BIT;
        }
        if self.traps_enabled {
            v |= ET_BIT;
        }
        v |= self.fcc.to_bits() << FCC_SHIFT;
        Word(v)
    }

    /// Unpacks a machine word written by `WRPSR`.
    pub fn from_word(w: Word) -> Psr {
        Psr {
            cc: CondCodes {
                n: w.0 & N_BIT != 0,
                z: w.0 & Z_BIT != 0,
                v: w.0 & V_BIT != 0,
                c: w.0 & C_BIT != 0,
            },
            fe_cond: w.0 & FE_BIT != 0,
            in_trap: w.0 & TRAP_BIT != 0,
            traps_enabled: w.0 & ET_BIT != 0,
            fcc: FpCond::from_bits(w.0 >> FCC_SHIFT),
        }
    }
}

impl fmt::Display for Psr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}|fe={}{}]",
            if self.cc.n { 'N' } else { '-' },
            if self.cc.z { 'Z' } else { '-' },
            if self.cc.v { 'V' } else { '-' },
            if self.cc.c { 'C' } else { '-' },
            if self.fe_cond { 'F' } else { 'E' },
            if self.in_trap { "|T" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_all_flags() {
        for bits in 0..512u32 {
            let psr = Psr {
                cc: CondCodes {
                    n: bits & 1 != 0,
                    z: bits & 2 != 0,
                    v: bits & 4 != 0,
                    c: bits & 8 != 0,
                },
                fe_cond: bits & 16 != 0,
                in_trap: bits & 32 != 0,
                traps_enabled: bits & 64 != 0,
                fcc: FpCond::from_bits(bits >> 7),
            };
            assert_eq!(Psr::from_word(psr.to_word()), psr);
        }
    }

    #[test]
    fn user_psr_has_traps_enabled() {
        assert!(Psr::user().traps_enabled);
        assert!(!Psr::user().in_trap);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Psr::default().to_string().is_empty());
    }
}
