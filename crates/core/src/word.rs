//! Tagged 32-bit machine words.
//!
//! APRIL encodes a data type in the low-order bits of every word
//! (paper, Figure 3), in the style of the Berkeley SPUR processor:
//!
//! | type   | low bits | meaning                                   |
//! |--------|----------|-------------------------------------------|
//! | fixnum | `..00`   | 30-bit signed integer, value in bits 2–31 |
//! | future | `..01`   | pointer to a future object                |
//! | other  | `.010`   | pointer to a non-cons heap object         |
//! | cons   | `.110`   | pointer to a cons cell                    |
//!
//! Future pointers are detected by their **non-zero least significant
//! bit**, which is what lets a strict compute instruction or a memory
//! dereference trap on an unresolved future without any extra cycles on
//! the common path (paper, Sections 3.2 and 4).
//!
//! `other` and `cons` pointers carry a 3-bit tag and therefore require
//! the pointed-to object to be 8-byte (2-word) aligned; future pointers
//! only require word alignment.

use std::fmt;

/// Number of bytes per machine word.
pub const WORD_BYTES: u32 = 4;

/// A 32-bit APRIL machine word with a type tag in its low bits.
///
/// The associated full/empty synchronization bit is *not* part of the
/// word; it lives beside each word in memory (see `april-mem`).
///
/// # Examples
///
/// ```
/// use april_core::word::Word;
///
/// let w = Word::fixnum(-7);
/// assert!(w.is_fixnum());
/// assert_eq!(w.as_fixnum(), Some(-7));
///
/// let f = Word::future_ptr(0x100);
/// assert!(f.is_future());
/// assert_eq!(f.ptr_addr(), Some(0x100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Word(pub u32);

/// The data type encoded in a word's low-order bits (paper, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// 30-bit signed integer (low bits `00`).
    Fixnum,
    /// Pointer to a future object (least significant bit set).
    Future,
    /// Pointer to a non-cons heap object (low bits `010`).
    Other,
    /// Pointer to a cons cell (low bits `110`).
    Cons,
}

impl Tag {
    /// The low-order tag bits used by this tag.
    pub fn bits(self) -> u32 {
        match self {
            Tag::Fixnum => 0b00,
            Tag::Future => 0b01,
            Tag::Other => 0b010,
            Tag::Cons => 0b110,
        }
    }

    /// The mask that isolates this tag's bits within a word.
    pub fn mask(self) -> u32 {
        match self {
            Tag::Fixnum | Tag::Future => 0b11,
            Tag::Other | Tag::Cons => 0b111,
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tag::Fixnum => "fixnum",
            Tag::Future => "future",
            Tag::Other => "other",
            Tag::Cons => "cons",
        };
        f.write_str(s)
    }
}

impl Word {
    /// The all-zero word: fixnum 0.
    pub const ZERO: Word = Word(0);

    /// Smallest representable fixnum (−2³⁰ … 2³⁰−1 fit in 30 bits).
    pub const FIXNUM_MIN: i32 = -(1 << 29);
    /// Largest representable fixnum.
    pub const FIXNUM_MAX: i32 = (1 << 29) - 1;

    /// Creates a fixnum word. The value is truncated to 30 bits
    /// (wrapping), matching hardware behavior on overflow.
    ///
    /// # Examples
    ///
    /// ```
    /// use april_core::word::Word;
    /// assert_eq!(Word::fixnum(5).0, 20); // 5 << 2
    /// ```
    pub fn fixnum(n: i32) -> Word {
        Word((n as u32) << 2)
    }

    /// Creates a future pointer to `addr` (must be word-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn future_ptr(addr: u32) -> Word {
        assert_eq!(addr & 0b11, 0, "future target must be word-aligned");
        Word(addr | Tag::Future.bits())
    }

    /// Creates an `other` pointer to `addr` (must be 8-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn other_ptr(addr: u32) -> Word {
        assert_eq!(addr & 0b111, 0, "`other` target must be 8-byte aligned");
        Word(addr | Tag::Other.bits())
    }

    /// Creates a cons pointer to `addr` (must be 8-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn cons_ptr(addr: u32) -> Word {
        assert_eq!(addr & 0b111, 0, "cons target must be 8-byte aligned");
        Word(addr | Tag::Cons.bits())
    }

    /// Creates a pointer with the given tag.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not satisfy the tag's alignment, or if the
    /// tag is [`Tag::Fixnum`] (fixnums are not pointers).
    pub fn tagged_ptr(tag: Tag, addr: u32) -> Word {
        match tag {
            Tag::Future => Word::future_ptr(addr),
            Tag::Other => Word::other_ptr(addr),
            Tag::Cons => Word::cons_ptr(addr),
            Tag::Fixnum => panic!("fixnum is not a pointer tag"),
        }
    }

    /// Decodes this word's type tag.
    pub fn tag(self) -> Tag {
        if self.0 & 1 != 0 {
            Tag::Future
        } else if self.0 & 0b10 == 0 {
            Tag::Fixnum
        } else if self.0 & 0b100 == 0 {
            Tag::Other
        } else {
            Tag::Cons
        }
    }

    /// True if this word is a fixnum.
    pub fn is_fixnum(self) -> bool {
        self.0 & 0b11 == 0
    }

    /// True if this word is a future pointer — i.e. its least
    /// significant bit is set, the hardware future-detection condition.
    pub fn is_future(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if this word is a cons pointer.
    pub fn is_cons(self) -> bool {
        self.tag() == Tag::Cons
    }

    /// True if this word is an `other` pointer.
    pub fn is_other(self) -> bool {
        self.tag() == Tag::Other
    }

    /// The fixnum value, if this word is a fixnum.
    pub fn as_fixnum(self) -> Option<i32> {
        if self.is_fixnum() {
            Some((self.0 as i32) >> 2)
        } else {
            None
        }
    }

    /// The byte address a pointer word refers to, with the tag bits
    /// stripped; `None` for fixnums.
    pub fn ptr_addr(self) -> Option<u32> {
        match self.tag() {
            Tag::Fixnum => None,
            Tag::Future => Some(self.0 & !0b11),
            Tag::Other | Tag::Cons => Some(self.0 & !0b111),
        }
    }

    /// Raw bit pattern.
    pub fn bits(self) -> u32 {
        self.0
    }
}

impl From<u32> for Word {
    fn from(v: u32) -> Word {
        Word(v)
    }
}

impl From<Word> for u32 {
    fn from(w: Word) -> u32 {
        w.0
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tag() {
            Tag::Fixnum => write!(f, "{}", (self.0 as i32) >> 2),
            t => write!(f, "{}@{:#x}", t, self.ptr_addr().unwrap()),
        }
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixnum_roundtrip() {
        for n in [0, 1, -1, 42, -42, Word::FIXNUM_MAX, Word::FIXNUM_MIN] {
            let w = Word::fixnum(n);
            assert_eq!(w.tag(), Tag::Fixnum);
            assert_eq!(w.as_fixnum(), Some(n), "n = {n}");
            assert!(!w.is_future());
        }
    }

    #[test]
    fn fixnum_add_is_raw_add() {
        // The tag scheme makes fixnum add/sub work on raw bits.
        let a = Word::fixnum(20);
        let b = Word::fixnum(-3);
        let sum = Word(a.0.wrapping_add(b.0));
        assert_eq!(sum.as_fixnum(), Some(17));
    }

    #[test]
    fn future_detected_by_lsb() {
        let f = Word::future_ptr(0x1000);
        assert!(f.is_future());
        assert_eq!(f.tag(), Tag::Future);
        assert_eq!(f.ptr_addr(), Some(0x1000));
        assert_eq!(f.as_fixnum(), None);
    }

    #[test]
    fn cons_and_other_tags() {
        let c = Word::cons_ptr(0x88);
        assert_eq!(c.tag(), Tag::Cons);
        assert_eq!(c.ptr_addr(), Some(0x88));
        assert!(!c.is_future());

        let o = Word::other_ptr(0x90);
        assert_eq!(o.tag(), Tag::Other);
        assert_eq!(o.ptr_addr(), Some(0x90));
        assert!(!o.is_future());
    }

    #[test]
    #[should_panic(expected = "8-byte aligned")]
    fn cons_requires_alignment() {
        let _ = Word::cons_ptr(0x4);
    }

    #[test]
    fn tag_bits_match_figure_3() {
        assert_eq!(Tag::Fixnum.bits(), 0b00);
        assert_eq!(Tag::Future.bits() & 1, 1);
        assert_eq!(Tag::Other.bits(), 0b010);
        assert_eq!(Tag::Cons.bits(), 0b110);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Word::fixnum(-3).to_string(), "-3");
        assert_eq!(Word::cons_ptr(8).to_string(), "cons@0x8");
        assert_eq!(format!("{:x}", Word::fixnum(4)), "10");
    }
}
