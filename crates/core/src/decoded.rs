//! Pre-decoded bytecode for the fast execution engine.
//!
//! [`Cpu::step`] re-fetches a fat [`Instr`] enum and re-dispatches a
//! large `match` on every visited cycle, re-checking interrupts and
//! frame state each time. For straight-line runs of simple compute
//! instructions all of that is invariant: no traps, no stalls, no
//! memory traffic, no probe events, unit cycle cost, and a PC chain
//! that just walks forward. This module lowers a [`Program`] once into
//! a dense, flat bytecode ([`DecOp`]) with register indices and
//! immediates pre-resolved, and segments it into *runs* — maximal
//! straight-line stretches of safe ops — so a scheduler can execute a
//! whole run as one tight loop ([`Cpu::run_decoded`]) instead of one
//! `step` per cycle.
//!
//! # The safety whitelist
//!
//! An instruction is *safe* (lowered to a real [`DecOp`]) only when
//! executing it can never diverge from `step`'s slow path:
//!
//! * it cannot trap (no tagged ALU ops, no loads/stores, no divides),
//! * it cannot stall (no memory or I/O access),
//! * it costs exactly **1 cycle** (so `k` ops booked at cycle `t`
//!   account exactly for cycles `t .. t + k`),
//! * it emits no trace-probe events and sends no messages,
//! * it does not touch the frame pointer, frame state, or PSR control
//!   bits (condition codes are data, not control, and are updated
//!   exactly as `step` would).
//!
//! Everything else lowers to [`DecOp::Other`], which terminates a run;
//! the scheduler falls back to [`Cpu::step`] there. The decoded image
//! is **derived state**: machines rebuild it from the program on
//! construction and on snapshot restore, and it must never be encoded
//! into an APRL snapshot (DESIGN.md §13).

use crate::cpu::{alu_add, alu_sub, logic_cc, Cpu};
use crate::frame::{FrameState, TaskFrame};
use crate::isa::{AluOp, Instr, Operand, Reg};
use crate::program::Program;
use crate::psr::CondCodes;
use crate::word::Word;

/// Upper bound on a single booked run, in instructions. Bounds how far
/// a CPU's architectural state may lag the machine clock (settling a
/// reservation is O(len)) and keeps the progress-signature plateau a
/// booked run creates far below any plausible watchdog horizon.
pub const MAX_RUN: u32 = 64;

/// Pre-resolved register index: `0..8` are the globals (`0` is the
/// hardwired-zero `g0`), `8..40` are the active frame's locals.
pub type RegIdx = u8;

/// ALU operations that can appear in a safe run: the untagged,
/// single-cycle, trap-free subset of [`AluOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeAlu {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
}

/// One pre-decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecOp {
    /// Not on the whitelist: execute through [`Cpu::step`].
    Other,
    /// No operation.
    Nop,
    /// `d = imm`.
    MovI {
        /// Destination register.
        d: RegIdx,
        /// Pre-resolved immediate.
        imm: u32,
    },
    /// FP register `fd = bits`.
    FMovI {
        /// Destination FP register (0–7).
        fd: u8,
        /// Raw IEEE-754 bits.
        bits: u32,
    },
    /// `d = s1 op s2` (register form); sets the condition codes.
    AluRR {
        /// Operation.
        op: SafeAlu,
        /// First source.
        s1: RegIdx,
        /// Second source.
        s2: RegIdx,
        /// Destination.
        d: RegIdx,
    },
    /// `d = s1 op imm` (immediate form); sets the condition codes.
    AluRI {
        /// Operation.
        op: SafeAlu,
        /// First source.
        s1: RegIdx,
        /// Pre-resolved immediate (sign-extended to 32 bits).
        imm: u32,
        /// Destination.
        d: RegIdx,
    },
    /// `d = PSR` of the active frame.
    RdPsr {
        /// Destination register.
        d: RegIdx,
    },
    /// `d = frame pointer` as a fixnum.
    RdFp {
        /// Destination register.
        d: RegIdx,
    },
}

/// A program lowered to flat bytecode, with per-address run lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProgram {
    /// `ops[pc]` is the decoded form of `prog.instrs[pc]`.
    ops: Vec<DecOp>,
    /// `run_len[pc]`: length (capped at [`MAX_RUN`]) of the maximal
    /// safe straight-line run starting at `pc`; `0` when `ops[pc]` is
    /// [`DecOp::Other`].
    run_len: Vec<u8>,
}

fn reg_idx(r: Reg) -> RegIdx {
    match r {
        Reg::G(i) => i,
        Reg::L(i) => 8 + i,
    }
}

fn lower_instr(ins: Instr) -> DecOp {
    match ins {
        Instr::Nop => DecOp::Nop,
        Instr::MovI { imm, d } => DecOp::MovI { d: reg_idx(d), imm },
        Instr::FMovI { bits, fd } => DecOp::FMovI { fd, bits },
        Instr::RdPsr { d } => DecOp::RdPsr { d: reg_idx(d) },
        Instr::RdFp { d } => DecOp::RdFp { d: reg_idx(d) },
        Instr::Alu {
            op,
            s1,
            s2,
            d,
            tagged: false,
        } => {
            let op = match op {
                AluOp::Add => SafeAlu::Add,
                AluOp::Sub => SafeAlu::Sub,
                AluOp::And => SafeAlu::And,
                AluOp::Or => SafeAlu::Or,
                AluOp::Xor => SafeAlu::Xor,
                AluOp::Sll => SafeAlu::Sll,
                AluOp::Srl => SafeAlu::Srl,
                AluOp::Sra => SafeAlu::Sra,
                // Multi-cycle (and, for div/rem, trapping) ops stay on
                // the slow path.
                AluOp::Mul | AluOp::Div | AluOp::Rem => return DecOp::Other,
            };
            match s2 {
                Operand::Reg(r) => DecOp::AluRR {
                    op,
                    s1: reg_idx(s1),
                    s2: reg_idx(r),
                    d: reg_idx(d),
                },
                Operand::Imm(i) => DecOp::AluRI {
                    op,
                    s1: reg_idx(s1),
                    imm: i as u32,
                    d: reg_idx(d),
                },
            }
        }
        _ => DecOp::Other,
    }
}

impl DecodedProgram {
    /// Lowers `prog` into flat bytecode and computes the run table.
    pub fn lower(prog: &Program) -> DecodedProgram {
        let ops: Vec<DecOp> = prog.instrs.iter().map(|&i| lower_instr(i)).collect();
        let mut run_len = vec![0u8; ops.len()];
        let mut run: u32 = 0;
        for i in (0..ops.len()).rev() {
            run = if ops[i] == DecOp::Other {
                0
            } else {
                (run + 1).min(MAX_RUN)
            };
            run_len[i] = run as u8;
        }
        DecodedProgram { ops, run_len }
    }

    /// Length of the safe straight-line run starting at `pc` (capped at
    /// [`MAX_RUN`]); `0` past the end of the text segment or at an
    /// unsafe instruction.
    #[inline]
    pub fn run_len(&self, pc: u32) -> u32 {
        self.run_len.get(pc as usize).copied().unwrap_or(0) as u32
    }

    /// The decoded op at `pc` (for diagnostics and tests).
    pub fn op(&self, pc: u32) -> Option<DecOp> {
        self.ops.get(pc as usize).copied()
    }

    /// Number of decoded ops (equals the program's text length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the program had no text.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[inline(always)]
fn rd(globals: &[Word; 8], f: &TaskFrame, r: RegIdx) -> Word {
    if r < 8 {
        globals[r as usize]
    } else {
        f.regs[(r - 8) as usize]
    }
}

#[inline(always)]
fn wr(globals: &mut [Word; 8], f: &mut TaskFrame, r: RegIdx, w: Word) {
    if r >= 8 {
        f.regs[(r - 8) as usize] = w;
    } else if r != 0 {
        // g0 is hardwired to zero; writes are discarded.
        globals[r as usize] = w;
    }
}

#[inline(always)]
fn eval_alu(op: SafeAlu, a: u32, b: u32) -> (u32, CondCodes) {
    match op {
        SafeAlu::Add => alu_add(a, b),
        SafeAlu::Sub => alu_sub(a, b),
        SafeAlu::And => logic_cc(a & b),
        SafeAlu::Or => logic_cc(a | b),
        SafeAlu::Xor => logic_cc(a ^ b),
        SafeAlu::Sll => logic_cc(a.wrapping_shl(b & 31)),
        SafeAlu::Srl => logic_cc(a.wrapping_shr(b & 31)),
        SafeAlu::Sra => logic_cc(((a as i32).wrapping_shr(b & 31)) as u32),
    }
}

impl Cpu {
    /// Length of the safe run the scheduler could book for this
    /// processor right now: non-zero only when the processor is not
    /// halted, has no pending interrupt, the active frame is `Ready`
    /// and mid-straight-line (`npc == pc + 1`, i.e. not in the delay
    /// slot of a taken control transfer), and the decoded program has a
    /// safe run at `pc`. Every condition `step` checks before executing
    /// is re-established here, so a booked run of length `k` retires
    /// exactly the instructions `step` would retire over the next `k`
    /// cycles.
    pub fn bookable_run(&self, dec: &DecodedProgram) -> u32 {
        if self.halted || !self.irqs.is_empty() {
            return 0;
        }
        let f = &self.frames[self.fp];
        if f.state != FrameState::Ready || f.npc != f.pc.wrapping_add(1) {
            return 0;
        }
        dec.run_len(f.pc)
    }

    /// Executes `n` decoded ops starting at the active frame's PC, as
    /// one tight loop: register reads/writes, condition codes, and the
    /// PC chain end up bit-identical to `n` consecutive
    /// [`Cpu::step`] calls, and the ledger is charged `n` instructions
    /// and `n` useful cycles.
    ///
    /// # Panics
    ///
    /// Debug-asserts the preconditions [`Cpu::bookable_run`]
    /// established at booking time; in release an out-of-range `n`
    /// panics on the slice bound.
    pub fn run_decoded(&mut self, dec: &DecodedProgram, n: u32) {
        let fp = self.fp;
        let Cpu {
            frames, globals, ..
        } = self;
        let f = &mut frames[fp];
        debug_assert!(f.state == FrameState::Ready);
        debug_assert_eq!(f.npc, f.pc.wrapping_add(1));
        let pc = f.pc as usize;
        for op in &dec.ops[pc..pc + n as usize] {
            match *op {
                DecOp::Nop => {}
                DecOp::MovI { d, imm } => wr(globals, f, d, Word(imm)),
                DecOp::FMovI { fd, bits } => f.fregs[(fd & 7) as usize] = bits,
                DecOp::AluRR { op, s1, s2, d } => {
                    let a = rd(globals, f, s1).0;
                    let b = rd(globals, f, s2).0;
                    let (r, cc) = eval_alu(op, a, b);
                    wr(globals, f, d, Word(r));
                    f.psr.cc = cc;
                }
                DecOp::AluRI { op, s1, imm, d } => {
                    let a = rd(globals, f, s1).0;
                    let (r, cc) = eval_alu(op, a, imm);
                    wr(globals, f, d, Word(r));
                    f.psr.cc = cc;
                }
                DecOp::RdPsr { d } => {
                    let w = f.psr.to_word();
                    wr(globals, f, d, w);
                }
                DecOp::RdFp { d } => wr(globals, f, d, Word::fixnum(fp as i32)),
                DecOp::Other => unreachable!("booked run crossed an unsafe op"),
            }
        }
        f.pc = f.pc.wrapping_add(n);
        f.npc = f.pc.wrapping_add(1);
        self.stats.instructions += n as u64;
        self.stats.useful_cycles += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::isa::asm::assemble;
    use crate::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};

    struct NullMem;
    impl MemoryPort for NullMem {
        fn load(&mut self, _: u32, _: crate::isa::LoadFlavor, _: AccessCtx) -> LoadReply {
            LoadReply::Data {
                word: Word::ZERO,
                fe: true,
            }
        }
        fn store(
            &mut self,
            _: u32,
            _: Word,
            _: crate::isa::StoreFlavor,
            _: AccessCtx,
        ) -> StoreReply {
            StoreReply::Done { fe: false }
        }
    }

    #[test]
    fn lowering_classifies_the_whitelist() {
        let prog = assemble(
            "
            movi 7, r1
            add r1, 3, r2
            xor r2, r1, r3
            nop
            ld r1+0, r4
            sub r3, 1, r3
            halt
        ",
        )
        .unwrap();
        let dec = DecodedProgram::lower(&prog);
        assert_eq!(dec.run_len(0), 4, "movi/add/xor/nop");
        assert_eq!(dec.run_len(3), 1, "nop alone before the load");
        assert_eq!(dec.run_len(4), 0, "load is unsafe");
        assert_eq!(dec.run_len(5), 1, "sub before halt");
        assert_eq!(dec.run_len(6), 0, "halt is unsafe");
        assert_eq!(dec.run_len(999), 0, "past the end");
        assert_eq!(dec.op(4), Some(DecOp::Other));
    }

    #[test]
    fn run_len_caps_at_max_run() {
        let mut src = String::new();
        for _ in 0..(MAX_RUN + 40) {
            src.push_str("nop\n");
        }
        src.push_str("halt\n");
        let prog = assemble(&src).unwrap();
        let dec = DecodedProgram::lower(&prog);
        assert_eq!(dec.run_len(0), MAX_RUN);
    }

    #[test]
    fn run_decoded_matches_step_exactly() {
        // Every whitelisted form, including a g0 write, shifts, and
        // condition-code consumers downstream.
        let prog = assemble(
            "
            movi 0x8000000a, r1
            add r1, -3, r2
            sub r2, r1, r3
            and r3, 0xff, r4
            or r4, r1, r5
            xor r5, r2, r6
            sll r6, 3, r7
            srl r7, 1, r8
            sra r1, 2, r9
            add r9, r8, g0
            movi 5, g2
            rdpsr r10
            rdfp r11
            nop
            halt
        ",
        )
        .unwrap();
        let dec = DecodedProgram::lower(&prog);

        let mut slow = Cpu::new(CpuConfig::default());
        slow.boot(0);
        let mut fast = slow.clone();

        let n = slow.bookable_run(&dec);
        assert_eq!(n, 14, "all but halt are safe");
        assert_eq!(n, fast.bookable_run(&dec));

        for _ in 0..n {
            assert_eq!(
                slow.step(&prog, &mut NullMem),
                crate::cpu::StepEvent::Executed
            );
        }
        fast.run_decoded(&dec, n);

        assert_eq!(slow.stats, fast.stats);
        for i in 0..slow.nframes() {
            assert_eq!(slow.frame(i), fast.frame(i), "frame {i}");
        }
        for g in 0..8 {
            assert_eq!(
                slow.get_reg(Reg::G(g as u8)),
                fast.get_reg(Reg::G(g as u8)),
                "g{g}"
            );
        }
        assert_eq!(slow.active_frame().psr, fast.active_frame().psr);
    }

    #[test]
    fn booking_gates_refuse_unsafe_states() {
        let prog = assemble("nop\nnop\nnop\nhalt").unwrap();
        let dec = DecodedProgram::lower(&prog);

        let mut cpu = Cpu::new(CpuConfig::default());
        assert_eq!(cpu.bookable_run(&dec), 0, "no ready frame before boot");
        cpu.boot(0);
        assert_eq!(cpu.bookable_run(&dec), 3);

        cpu.post_interrupt(1);
        assert_eq!(cpu.bookable_run(&dec), 0, "pending IRQ blocks booking");
        cpu.irqs.clear();

        cpu.active_frame_mut().npc = 7;
        assert_eq!(cpu.bookable_run(&dec), 0, "delay slot blocks booking");
        cpu.active_frame_mut().npc = 1;

        cpu.halt();
        assert_eq!(cpu.bookable_run(&dec), 0, "halted CPU never books");
    }
}
