//! The processor's memory port.
//!
//! The CPU issues loads and stores through the [`MemoryPort`] trait;
//! the reply tells it whether to complete the instruction, stall
//! (the controller "can suspend processor execution using the MHOLD
//! line", Section 5), or trap. Different machines plug in different
//! ports: the ideal shared memory used for Table 3, or the full
//! ALEWIFE cache + directory + network stack.

use crate::isa::{LoadFlavor, StoreFlavor};
use crate::word::Word;

/// Reply to a load request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadReply {
    /// The load completed. `fe` reports the full/empty state of the
    /// word *before* any reset option was applied; non-trapping loads
    /// latch it into the PSR condition bit.
    Data {
        /// Loaded word.
        word: Word,
        /// Full/empty bit state observed.
        fe: bool,
    },
    /// Processor held for `cycles` (local miss or controller busy);
    /// the instruction completes after the stall and must be reissued.
    Stall {
        /// Hold duration in cycles.
        cycles: u64,
    },
    /// Remote miss: the controller starts a network transaction and
    /// traps the processor (flavors with `miss_wait` hold instead,
    /// reported as a long `Stall`).
    RemoteMiss,
    /// Full/empty violation with a trapping flavor.
    FeViolation,
}

/// Reply to a store request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreReply {
    /// The store completed; `fe` is the prior full/empty state.
    Done {
        /// Full/empty bit state observed before the store.
        fe: bool,
    },
    /// Processor held for `cycles`, then reissue.
    Stall {
        /// Hold duration in cycles.
        cycles: u64,
    },
    /// Remote miss, processor traps.
    RemoteMiss,
    /// Full/empty violation with a trapping flavor.
    FeViolation,
}

/// Identifies the requesting hardware context, so the controller can
/// wake the right task frame when a remote transaction completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessCtx {
    /// Task frame index of the issuing thread.
    pub frame: usize,
}

/// Memory as seen by one APRIL processor.
///
/// Implementations must be deterministic: the cycle-level results of a
/// simulation are part of this crate's contract. A `&mut M` where
/// `M: MemoryPort` also implements the trait, so ports can be passed
/// by reference.
pub trait MemoryPort {
    /// Issues a load of the word at byte address `addr` (word-aligned).
    fn load(&mut self, addr: u32, flavor: LoadFlavor, ctx: AccessCtx) -> LoadReply;

    /// Issues a store of `value` to byte address `addr` (word-aligned).
    fn store(&mut self, addr: u32, value: Word, flavor: StoreFlavor, ctx: AccessCtx) -> StoreReply;

    /// Flushes the cache line containing `addr` (out-of-band FLUSH,
    /// Section 3.4). No-op on uncached ports. Returns the number of
    /// write-backs initiated (fence counter increments).
    fn flush(&mut self, _addr: u32) -> u32 {
        0
    }

    /// Current fence counter: outstanding flushed write-backs not yet
    /// acknowledged by memory. The FENCE instruction stalls until zero.
    fn fence_count(&self) -> u32 {
        0
    }

    /// Reads a memory-mapped I/O register (LDIO).
    fn ldio(&mut self, _reg: u16) -> Word {
        Word::ZERO
    }

    /// Writes a memory-mapped I/O register (STIO).
    fn stio(&mut self, _reg: u16, _value: Word) {}
}

impl<M: MemoryPort + ?Sized> MemoryPort for &mut M {
    fn load(&mut self, addr: u32, flavor: LoadFlavor, ctx: AccessCtx) -> LoadReply {
        (**self).load(addr, flavor, ctx)
    }
    fn store(&mut self, addr: u32, value: Word, flavor: StoreFlavor, ctx: AccessCtx) -> StoreReply {
        (**self).store(addr, value, flavor, ctx)
    }
    fn flush(&mut self, addr: u32) -> u32 {
        (**self).flush(addr)
    }
    fn fence_count(&self) -> u32 {
        (**self).fence_count()
    }
    fn ldio(&mut self, reg: u16) -> Word {
        (**self).ldio(reg)
    }
    fn stio(&mut self, reg: u16, value: Word) {
        (**self).stio(reg, value)
    }
}
