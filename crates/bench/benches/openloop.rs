//! Open-loop traffic benchmark (DESIGN.md §15): the machine as a
//! server under load. Sweeps offered load across the saturation knee
//! by varying the mean inter-arrival gap, measures per-request
//! birth→retire latency (p50/p99/p999), throughput, and utilization,
//! and referees each point against the Section 8 model — emitted as
//! `BENCH_openloop.json` so the latency baselines are tracked from PR
//! to PR.
//!
//! Referee methodology: the most-saturated point calibrates the model
//! inputs from the machine's own cycle ledger — per-request useful
//! work `W`, miss rate `m` (remote misses per useful cycle), and
//! effective per-miss cost `t_eff` (non-useful cycles per miss, switch
//! overhead included). The §8 knee is then `equation_1(1, m, t_eff)`
//! and every *other* point's throughput-derived utilization
//! (`X·W`) must match `open_loop_utilization(λ·W, m, t_eff, c)`
//! within `TOLERANCE` — trivially true only at the calibration point,
//! predictive everywhere else. Below the knee this asserts the server
//! keeps up with the offered load (no drops, throughput = arrivals);
//! past it, that the measured capacity matches the analytic p = 1
//! bound.
//!
//! `BENCH_SMOKE=1` shrinks the sweep for CI. `BENCH_OPENLOOP_OUT`
//! overrides the output path.

use april_core::isa::asm::assemble;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential, SwitchSpin};
use april_machine::{service_program, ArrivalPlan, Machine, TrafficConfig};
use april_model::{open_loop_knee, open_loop_utilization};
use april_net::topology::Topology;
use std::time::Instant;

/// Documented referee tolerance: absolute utilization error allowed
/// between measurement and the §8 model (also recorded in the JSON).
const TOLERANCE: f64 = 0.15;

fn cfg(mean_gap: u32, requests: u32) -> MachineConfig {
    MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 16,
        traffic: Some(TrafficConfig {
            seed: 0xA_9817_5EED,
            edge_every: 2, // nodes 0 and 2 of the 2x2 mesh
            requests_per_edge: requests,
            mean_gap,
            phase_len: 0, // pure Poisson-like arrivals: clean knee
            off_mul: 1,
            ring_offset: 0x400,
            ring_slots: 8,
            work_remote: 2,
            work_local: 16,
        }),
        ..MachineConfig::default()
    }
}

/// Everything one sweep point measures.
struct Point {
    mean_gap: u32,
    offered: u64,
    injected: u64,
    dropped: u64,
    retired: u64,
    /// Offered arrival rate per edge node (requests/cycle).
    lambda: f64,
    /// Achieved throughput per edge node (requests/cycle).
    xput: f64,
    p50: u64,
    p99: u64,
    p999: u64,
    last_retire: u64,
    /// Machine-wide cycle-ledger buckets (for calibration).
    useful: u64,
    nonuseful: u64,
    remote_misses: u64,
    wall_s: f64,
}

fn run_point(mean_gap: u32, requests: u32) -> Point {
    let c = cfg(mean_gap, requests);
    let plan = ArrivalPlan::build(&c).expect("traffic configured");
    let edges = plan.entries().len() as f64;
    let prog = assemble(&service_program(&c)).expect("service program assembles");
    let mut m = Alewife::new(c, prog);
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let t0 = Instant::now();
    let fault = drive_sequential(&mut m, &SwitchSpin::default(), 500_000_000);
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(
        fault.is_none(),
        "gap {mean_gap}: machine faulted: {fault:?}"
    );
    assert!(m.all_halted(), "gap {mean_gap}: machine did not quiesce");

    let report = m.stats_report();
    let t = report.section("traffic").expect("traffic section");
    let cpu = report.section("cpu").expect("cpu section");
    let hist = t.get_qhist("latency").expect("latency histogram");
    let retired = t.get_counter("retired").unwrap();
    let last_retire = t.get_counter("last_retire_cycle").unwrap();
    let useful = cpu.get_counter("useful_cycles").unwrap();
    let nonuseful = cpu.get_counter("trap_cycles").unwrap()
        + cpu.get_counter("handler_cycles").unwrap()
        + cpu.get_counter("stall_cycles").unwrap()
        + cpu.get_counter("idle_cycles").unwrap();
    Point {
        mean_gap,
        offered: t.get_counter("offered").unwrap(),
        injected: t.get_counter("injected").unwrap(),
        dropped: t.get_counter("dropped").unwrap(),
        retired,
        lambda: requests as f64 / plan.horizon() as f64,
        xput: retired as f64 / edges / last_retire.max(1) as f64,
        p50: hist.quantile(0.5),
        p99: hist.quantile(0.99),
        p999: hist.quantile(0.999),
        last_retire,
        useful,
        nonuseful,
        remote_misses: cpu.get_counter("remote_misses").unwrap(),
        wall_s,
    }
}

/// Model inputs calibrated from the most-saturated point's ledger.
struct Calibration {
    mean_gap: u32,
    /// Useful cycles per retired request (service demand W).
    w: f64,
    /// Remote misses per useful cycle.
    m: f64,
    /// Non-useful cycles per remote miss (trap + handler + stall +
    /// idle; the 6-cycle SwitchSpin charge is inside).
    t_eff: f64,
    /// SwitchSpin's per-switch handler charge.
    c: f64,
    knee: f64,
}

fn calibrate(p: &Point) -> Calibration {
    let w = p.useful as f64 / p.retired.max(1) as f64;
    let m = p.remote_misses as f64 / p.useful.max(1) as f64;
    let t_eff = p.nonuseful as f64 / p.remote_misses.max(1) as f64;
    let c = 6.0;
    Calibration {
        mean_gap: p.mean_gap,
        w,
        m,
        t_eff,
        c,
        knee: open_loop_knee(m, t_eff, c),
    }
}

fn emit_json(cal: &Calibration, points: &[(Point, f64, f64, bool)], requests: u32) {
    let path = std::env::var("BENCH_OPENLOOP_OUT").unwrap_or_else(|_| "BENCH_openloop.json".into());
    let mut body = format!(
        concat!(
            "{{\n  \"machine\": {{\"nodes\": 4, \"edges\": 2, \"requests_per_edge\": {}, ",
            "\"work_remote\": 2, \"work_local\": 16, \"ring_slots\": 8}},\n",
            "  \"calibration\": {{\"mean_gap\": {}, \"w_cycles\": {:.3}, ",
            "\"miss_rate\": {:.6}, \"t_eff\": {:.3}, \"switch_overhead\": {:.1}, ",
            "\"knee\": {:.4}}},\n  \"tolerance\": {:.2},\n  \"points\": [\n"
        ),
        requests, cal.mean_gap, cal.w, cal.m, cal.t_eff, cal.c, cal.knee, TOLERANCE,
    );
    for (i, (p, measured, model, within)) in points.iter().enumerate() {
        body.push_str(&format!(
            concat!(
                "    {{\"mean_gap\": {}, \"offered\": {}, \"injected\": {}, ",
                "\"dropped\": {}, \"retired\": {}, \"offered_load\": {:.4}, ",
                "\"throughput_per_kcycle\": {:.4}, \"measured_util\": {:.4}, ",
                "\"model_util\": {:.4}, \"within_tolerance\": {}, ",
                "\"p50\": {}, \"p99\": {}, \"p999\": {}, ",
                "\"last_retire_cycle\": {}, \"wall_s\": {:.6}}}{}\n"
            ),
            p.mean_gap,
            p.offered,
            p.injected,
            p.dropped,
            p.retired,
            p.lambda * cal.w,
            p.xput * 1000.0,
            measured,
            model,
            within,
            p.p50,
            p.p99,
            p.p999,
            p.last_retire,
            p.wall_s,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, &body) {
        eprintln!("failed to write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let requests: u32 = if smoke { 48 } else { 256 };
    // Gaps chosen to span the knee: with W ≈ 120–200 useful cycles per
    // request plus two remote misses of stall, per-edge saturation
    // lands around a 200–400-cycle gap.
    // The smoke grid is a subset of the full grid so check_bench.sh
    // can line fresh smoke points up against committed baselines.
    let gaps: &[u32] = if smoke {
        &[1200, 75]
    } else {
        &[1200, 600, 300, 150, 75, 40]
    };

    println!("openloop (offered-load sweep, {requests} requests/edge)");
    let points: Vec<Point> = gaps.iter().map(|&g| run_point(g, requests)).collect();
    let cal = calibrate(points.last().expect("at least one point"));
    println!(
        "  calibration @ gap {}: W = {:.1} cycles, m = {:.4}, t_eff = {:.1}, knee = {:.3}",
        cal.mean_gap, cal.w, cal.m, cal.t_eff, cal.knee,
    );

    let mut refereed = Vec::new();
    for p in points {
        let offered_work = p.lambda * cal.w;
        let measured = p.xput * cal.w;
        let model = open_loop_utilization(offered_work, cal.m, cal.t_eff, cal.c);
        let within = (measured - model).abs() <= TOLERANCE;
        println!(
            "  gap {:>5}: offered {:.3}  measured {:.3}  model {:.3}  \
             drops {:>3}  p50 {:>5}  p99 {:>5}  p999 {:>6}  {}",
            p.mean_gap,
            offered_work,
            measured,
            model,
            p.dropped,
            p.p50,
            p.p99,
            p.p999,
            if within { "ok" } else { "OUT OF TOLERANCE" },
        );
        // The CI gate (ISSUE: "measured utilization within documented
        // tolerance of the §8 model below saturation").
        if offered_work < cal.knee {
            assert!(
                within,
                "below-knee point (gap {}) out of tolerance: measured {:.4} vs model {:.4}",
                p.mean_gap, measured, model,
            );
        }
        refereed.push((p, measured, model, within));
    }
    emit_json(&cal, &refereed, requests);
}
