//! Checkpoint/restore cost benchmark: how long a full-machine
//! [`Snapshot`](april_machine::Snapshot) takes to capture and to
//! restore, and how large the encoded state is, emitted as
//! `BENCH_snapshot.json` so the cost trajectory is tracked from PR to
//! PR.
//!
//! The workload is the false-sharing increment stress from the
//! equivalence suites, cut mid-run so the checkpoint lands with live
//! protocol transactions, network packets in flight, and partially
//! filled caches — the realistic (and most expensive) case, not a
//! quiescent machine. Every restore is verified: the resumed machine
//! must re-encode to byte-identical snapshot bytes.
//!
//! `BENCH_SMOKE=1` shrinks the grid to the 16-node machine for CI.
//! `BENCH_SNAP_OUT` overrides the output path.

use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential_until, SwitchSpin};
use april_machine::Machine;
use april_net::topology::Topology;
use std::time::Instant;

/// Every node increments its own word of one shared block, forcing
/// continuous invalidation traffic so the cut is protocol-busy.
fn stress_program() -> Program {
    assemble(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi 200, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    )
    .unwrap()
}

fn bench_cfg(dim: usize, radix: usize) -> MachineConfig {
    MachineConfig {
        topology: Topology::new(dim, radix),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    }
}

/// A machine driven to a protocol-busy mid-run cut point.
fn machine_at_cut(cfg: MachineConfig) -> Alewife {
    let mut m = Alewife::new(cfg, stress_program());
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    drive_sequential_until(&mut m, &SwitchSpin::default(), 500, 10_000_000);
    assert!(!m.all_halted(), "cut must land mid-run");
    m
}

struct Point {
    nodes: usize,
    snapshot_bytes: usize,
    checkpoint_us: f64,
    restore_us: f64,
}

fn run_point(dim: usize, radix: usize, reps: u32) -> Point {
    let cfg = bench_cfg(dim, radix);
    let mut m = machine_at_cut(cfg);
    let snap = m.checkpoint().expect("checkpoint");

    // Best-of-N: the encoded state is deterministic, wall time is not.
    let mut checkpoint_us = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let s = m.checkpoint().expect("checkpoint");
        checkpoint_us = checkpoint_us.min(t0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(s.as_bytes(), snap.as_bytes(), "checkpoint is not stable");
    }

    let mut restore_us = f64::INFINITY;
    for _ in 0..reps {
        let mut fresh = Alewife::new(cfg, stress_program());
        let t0 = Instant::now();
        fresh.restore(&snap).expect("restore");
        restore_us = restore_us.min(t0.elapsed().as_secs_f64() * 1e6);
        // The restored machine must re-encode to the same bytes — a
        // cheap full-state equality check.
        assert_eq!(
            fresh.checkpoint().expect("re-checkpoint").as_bytes(),
            snap.as_bytes(),
            "restore round-trip is not a fixed point"
        );
    }

    Point {
        nodes: cfg.topology.num_nodes(),
        snapshot_bytes: snap.as_bytes().len(),
        checkpoint_us,
        restore_us,
    }
}

fn emit_json(points: &[Point]) {
    let path = std::env::var("BENCH_SNAP_OUT").unwrap_or_else(|_| "BENCH_snapshot.json".into());
    let mut body = String::from("{\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        body.push_str(&format!(
            concat!(
                "    {{\"nodes\": {}, \"snapshot_bytes\": {}, ",
                "\"checkpoint_us\": {:.1}, \"restore_us\": {:.1}, ",
                "\"encode_mb_per_sec\": {:.1}}}{}\n"
            ),
            p.nodes,
            p.snapshot_bytes,
            p.checkpoint_us,
            p.restore_us,
            p.snapshot_bytes as f64 / p.checkpoint_us,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, &body) {
        eprintln!("failed to write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let reps = if smoke { 3 } else { 10 };

    println!("snapshot (mid-run checkpoint/restore cost, best of {reps})");
    let mut points = vec![run_point(2, 4, reps)];
    if !smoke {
        points.push(run_point(2, 8, reps));
    }
    for p in &points {
        println!(
            "{:>3} nodes  {:>9} bytes  checkpoint {:>8.1} us  restore {:>8.1} us",
            p.nodes, p.snapshot_bytes, p.checkpoint_us, p.restore_us,
        );
    }
    emit_json(&points);
}
