//! Recovery cost benchmark: what periodic checkpointing costs on a
//! fault-free run (per checkpoint interval), and what a full
//! link-kill → quarantine → rollback → re-execute recovery costs in
//! wall time versus the fault-free baseline — emitted as
//! `BENCH_recovery.json` so both trajectories are tracked from PR to
//! PR.
//!
//! The overhead sweep runs the false-sharing increment stress on the
//! 16-node machine under the [`RecoveryManager`] with no fault plan:
//! every measured cycle beyond the unsupervised baseline is checkpoint
//! cost. The recovery point uses the proven 2x2 scenario from the
//! integration suite (node 0's +x link killed at cycle 200, fast
//! retries) and measures the complete supervised run including its
//! rollbacks.
//!
//! `BENCH_SMOKE=1` shrinks reps and the interval grid for CI.
//! `BENCH_REC_OUT` overrides the output path.

use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential, SwitchSpin};
use april_machine::recovery::{RecoveryConfig, RecoveryManager};
use april_machine::watchdog::WatchdogConfig;
use april_machine::Machine;
use april_mem::{CtlConfig, DirConfig, RetryConfig};
use april_net::fault::FaultPlan;
use april_net::topology::{Channel, Topology};
use std::time::Instant;

fn stress_program(iters: u32) -> Program {
    assemble(&format!(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi {iters}, r10
        loop:
            ld r9+0, r11
            add r11, 4, r11
            st r11, r9+0
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    ))
    .unwrap()
}

fn cfg(radix: usize, horizon: u64) -> MachineConfig {
    let retry = RetryConfig {
        enabled: true,
        timeout: 50,
        backoff_cap: 200,
        max_retries: 5,
    };
    MachineConfig {
        topology: Topology::new(2, radix),
        region_bytes: 1 << 20,
        ctl: CtlConfig {
            retry,
            ..CtlConfig::default()
        },
        dir: DirConfig {
            retry,
            ..DirConfig::default()
        },
        watchdog: WatchdogConfig {
            enabled: true,
            horizon,
        },
        ..MachineConfig::default()
    }
}

fn booted(cfg: MachineConfig, prog: &Program) -> Alewife {
    let mut m = Alewife::new(cfg, prog.clone());
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    m
}

/// Wall time of an unsupervised fault-free run.
fn baseline_wall(c: MachineConfig, prog: &Program, reps: u32) -> f64 {
    let mut wall = f64::INFINITY;
    for _ in 0..reps {
        let mut m = booted(c, prog);
        let t0 = Instant::now();
        let fault = drive_sequential(&mut m, &SwitchSpin::default(), 100_000_000);
        wall = wall.min(t0.elapsed().as_secs_f64());
        assert!(fault.is_none(), "baseline faulted: {fault:?}");
    }
    wall
}

struct OverheadPoint {
    interval: u64,
    wall_s: f64,
    checkpoints: u64,
}

/// Wall time of the same run supervised at a checkpoint interval.
fn supervised_wall(c: MachineConfig, prog: &Program, interval: u64, reps: u32) -> OverheadPoint {
    let mut wall = f64::INFINITY;
    let mut checkpoints = 0;
    for _ in 0..reps {
        let mut m = booted(c, prog);
        let mut mgr = RecoveryManager::new(RecoveryConfig {
            checkpoint_interval: interval,
            ring_capacity: 4,
            max_attempts: 4,
            max_cycles: 100_000_000,
        });
        let t0 = Instant::now();
        let report = mgr.run(&mut m, &SwitchSpin::default());
        wall = wall.min(t0.elapsed().as_secs_f64());
        assert!(
            report.recovered,
            "fault-free run failed: {:?}",
            report.failure
        );
        assert_eq!(report.attempts, 0, "fault-free run rolled back");
        checkpoints = report.checkpoints_taken;
    }
    OverheadPoint {
        interval,
        wall_s: wall,
        checkpoints,
    }
}

struct RecoveryPoint {
    wall_s: f64,
    attempts: u32,
    rollbacks: u64,
    quarantined_channels: usize,
    final_cycle: u64,
}

/// Wall time of a complete recovered run: the 2x2 link-kill scenario.
fn recovered_run(prog: &Program, reps: u32) -> RecoveryPoint {
    let mut wall = f64::INFINITY;
    let mut point = None;
    for _ in 0..reps {
        let mut m = booted(cfg(2, 20_000), prog);
        m.set_fault_plan(FaultPlan::new(0x5eed).with_link_kill(
            Channel {
                node: 0,
                dim: 0,
                plus: true,
            },
            200,
        ));
        let mut mgr = RecoveryManager::new(RecoveryConfig {
            checkpoint_interval: 500,
            ring_capacity: 8,
            max_attempts: 6,
            max_cycles: 100_000_000,
        });
        let t0 = Instant::now();
        let report = mgr.run(&mut m, &SwitchSpin::default());
        wall = wall.min(t0.elapsed().as_secs_f64());
        assert!(report.recovered, "recovery failed: {:?}", report.failure);
        assert!(report.attempts >= 1, "the kill never forced a rollback");
        point = Some(RecoveryPoint {
            wall_s: 0.0,
            attempts: report.attempts,
            rollbacks: report.rollbacks,
            quarantined_channels: report.quarantine.channels.len(),
            final_cycle: report.final_cycle,
        });
    }
    let mut p = point.expect("ran at least once");
    p.wall_s = wall;
    p
}

fn emit_json(baseline_s: f64, points: &[OverheadPoint], rec: &RecoveryPoint, rec_base_s: f64) {
    let path = std::env::var("BENCH_REC_OUT").unwrap_or_else(|_| "BENCH_recovery.json".into());
    let mut body =
        format!("{{\n  \"baseline_wall_s\": {baseline_s:.6},\n  \"checkpoint_overhead\": [\n");
    for (i, p) in points.iter().enumerate() {
        body.push_str(&format!(
            concat!(
                "    {{\"interval\": {}, \"wall_s\": {:.6}, \"checkpoints\": {}, ",
                "\"overhead_pct\": {:.1}}}{}\n"
            ),
            p.interval,
            p.wall_s,
            p.checkpoints,
            (p.wall_s / baseline_s - 1.0) * 100.0,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    body.push_str(&format!(
        concat!(
            "  ],\n  \"recovered_run\": {{\"wall_s\": {:.6}, ",
            "\"fault_free_wall_s\": {:.6}, \"attempts\": {}, \"rollbacks\": {}, ",
            "\"quarantined_channels\": {}, \"final_cycle\": {}}}\n}}\n"
        ),
        rec.wall_s,
        rec_base_s,
        rec.attempts,
        rec.rollbacks,
        rec.quarantined_channels,
        rec.final_cycle,
    ));
    if let Err(e) = std::fs::write(&path, &body) {
        eprintln!("failed to write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let reps = if smoke { 2 } else { 5 };
    let iters = if smoke { 50 } else { 200 };
    let intervals: &[u64] = if smoke {
        &[2_000]
    } else {
        &[500, 2_000, 8_000]
    };
    let prog = stress_program(iters);

    println!("recovery (checkpoint overhead + recovered-run cost, best of {reps})");
    // Overhead sweep: 16-node machine, no faults.
    let c16 = cfg(4, 50_000);
    let base = baseline_wall(c16, &prog, reps);
    println!("  16-node fault-free baseline: {:.3} ms", base * 1e3);
    let mut points = Vec::new();
    for &iv in intervals {
        let p = supervised_wall(c16, &prog, iv, reps);
        println!(
            "  interval {:>5}: {:.3} ms  ({} checkpoints, +{:.1}%)",
            iv,
            p.wall_s * 1e3,
            p.checkpoints,
            (p.wall_s / base - 1.0) * 100.0,
        );
        points.push(p);
    }

    // Recovered run: the 2x2 link-kill scenario vs its own baseline.
    let rec_base = baseline_wall(cfg(2, 20_000), &prog, reps);
    let rec = recovered_run(&prog, reps);
    println!(
        "  2x2 recovered run: {:.3} ms vs {:.3} ms fault-free \
         ({} attempts, {} rollbacks, {} channels quarantined)",
        rec.wall_s * 1e3,
        rec_base * 1e3,
        rec.attempts,
        rec.rollbacks,
        rec.quarantined_channels,
    );
    emit_json(base, &points, &rec, rec_base);
}
