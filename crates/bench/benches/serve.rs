//! Warm-start benchmark (EXPERIMENTS.md E16): what snapshot forking
//! buys a parameter sweep.
//!
//! For each sweep size N the bench runs the same N-point fault-seed
//! sweep twice through the shared executor — cold (every job boots and
//! re-executes the warmup) and warm (every job forks one registered
//! checkpoint) — asserts the two are **byte-identical** in stats
//! per point, and records the median per-job setup time of each mode.
//! `setup_speedup` = cold median / warm median is the headline number:
//! the full run must show ≥ 3x on the ≥ 100-point sweep (gated by
//! scripts/check_bench.sh against the committed `BENCH_serve.json`).
//!
//! A final section drives the same sweep end-to-end through an
//! in-process april-serve daemon over its Unix socket, so the wire
//! protocol, chunked streaming, and worker pool are on the measured
//! path too.
//!
//! `BENCH_SMOKE=1` shrinks the sweep for CI. `BENCH_SERVE_OUT`
//! overrides the output path.

use april_serve::{
    build_warm_image, run_job, serve, Client, DaemonConfig, FaultSpec, JobSpec, SimSpec, WarmImage,
    Workload,
};
use std::time::Instant;

/// Remote iterations per node: sized so the workload runs long enough
/// that the warmup re-execution dominates a cold job's setup.
const OUTER: u32 = 1000;

fn sim() -> SimSpec {
    SimSpec {
        radix: 2,
        dim: 2,
        workload: Workload::Contended {
            outer: OUTER,
            inner: 0,
        },
        ..SimSpec::default()
    }
}

fn job(seed: u64, warm: Option<u32>, warm_cycles: u64) -> JobSpec {
    JobSpec {
        sim: sim(),
        fault: Some(FaultSpec {
            seed,
            drop: 0.0,
            dup: 0.0,
            delay: 0.02,
            max_delay: 16,
        }),
        warm,
        warm_cycles,
        max_cycles: 50_000_000,
        want_trace: false,
    }
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

struct Sweep {
    points: usize,
    cold_setup_ms: f64,
    warm_setup_ms: f64,
    speedup: f64,
    cold_wall_s: f64,
    warm_wall_s: f64,
}

/// One sweep size, cold then warm, with the byte-identity check.
fn run_sweep(points: usize, img: &WarmImage) -> Sweep {
    let seeds: Vec<u64> = (0..points as u64).map(|i| 0x5EED + i).collect();

    let t0 = Instant::now();
    let cold: Vec<_> = seeds
        .iter()
        .map(|&s| run_job(&job(s, None, img.cycle), None).expect("cold job refused"))
        .collect();
    let cold_wall_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let warm: Vec<_> = seeds
        .iter()
        .map(|&s| run_job(&job(s, Some(1), img.cycle), Some(img)).expect("warm job refused"))
        .collect();
    let warm_wall_s = t1.elapsed().as_secs_f64();

    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert!(c.fault.is_none(), "cold job {i} faulted: {:?}", c.fault);
        assert_eq!(
            c.stats_json, w.stats_json,
            "seed {}: warm fork diverged from cold boot",
            seeds[i]
        );
        assert_eq!(c.cycles, w.cycles);
        assert_eq!(c.instrs, w.instrs);
    }

    let cold_setup = median(cold.iter().map(|o| o.setup_ns).collect());
    let warm_setup = median(warm.iter().map(|o| o.setup_ns).collect());
    Sweep {
        points,
        cold_setup_ms: cold_setup as f64 / 1e6,
        warm_setup_ms: warm_setup as f64 / 1e6,
        speedup: cold_setup as f64 / warm_setup.max(1) as f64,
        cold_wall_s,
        warm_wall_s,
    }
}

struct DaemonRun {
    threads: usize,
    points: usize,
    wall_s: f64,
    setup_ms: f64,
}

/// The same sweep through a real daemon: socket, protocol, pool.
fn run_daemon_sweep(points: usize, warm_cycles: u64) -> DaemonRun {
    let threads = std::thread::available_parallelism()
        .map_or(2, |p| p.get())
        .min(4);
    let socket =
        std::env::temp_dir().join(format!("april-serve-bench-{}.sock", std::process::id()));
    let cfg = DaemonConfig {
        socket: socket.clone(),
        threads,
    };
    let daemon = std::thread::spawn(move || serve(&cfg));
    let mut client = loop {
        match Client::connect(&socket, "bench") {
            Ok(c) => break c,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    };

    let t0 = Instant::now();
    client
        .register_warm(1, &sim(), warm_cycles)
        .expect("warm registration failed");
    for i in 0..points {
        client
            .submit(i as u32, &job(0x5EED + i as u64, Some(1), warm_cycles))
            .expect("submit failed");
    }
    let results = client.collect(points).expect("collect failed");
    let wall_s = t0.elapsed().as_secs_f64();

    let setups: Vec<u64> = results
        .iter()
        .map(|r| {
            let s = r.summary.as_ref().expect("daemon job should have run");
            assert!(s.warm_used, "daemon job ran cold");
            s.setup_ns
        })
        .collect();
    client.shutdown(false).expect("shutdown failed");
    daemon.join().unwrap().expect("daemon errored");
    DaemonRun {
        threads,
        points,
        wall_s,
        setup_ms: median(setups) as f64 / 1e6,
    }
}

fn emit_json(
    quiesce: u64,
    img: &WarmImage,
    snap_bytes: usize,
    sweeps: &[Sweep],
    daemon: &DaemonRun,
) {
    let path = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let mut body = format!(
        concat!(
            "{{\n  \"machine\": {{\"nodes\": 4, \"outer\": {}, ",
            "\"quiesce_cycles\": {}}},\n",
            "  \"warm_image\": {{\"cut_cycle\": {}, \"snap_bytes\": {}, ",
            "\"build_ms\": {:.3}}},\n  \"sweeps\": [\n"
        ),
        OUTER,
        quiesce,
        img.cycle,
        snap_bytes,
        img.build_ns as f64 / 1e6,
    );
    for (i, s) in sweeps.iter().enumerate() {
        body.push_str(&format!(
            concat!(
                "    {{\"points\": {}, \"cold_setup_ms_median\": {:.3}, ",
                "\"warm_setup_ms_median\": {:.3}, \"setup_speedup\": {:.2}, ",
                "\"cold_wall_s\": {:.3}, \"warm_wall_s\": {:.3}, ",
                "\"identical_outcomes\": true}}{}\n"
            ),
            s.points,
            s.cold_setup_ms,
            s.warm_setup_ms,
            s.speedup,
            s.cold_wall_s,
            s.warm_wall_s,
            if i + 1 < sweeps.len() { "," } else { "" },
        ));
    }
    body.push_str(&format!(
        concat!(
            "  ],\n  \"daemon\": {{\"threads\": {}, \"points\": {}, ",
            "\"wall_s\": {:.3}, \"median_setup_ms\": {:.3}, \"all_warm\": true}}\n}}\n"
        ),
        daemon.threads, daemon.points, daemon.wall_s, daemon.setup_ms,
    ));
    if let Err(e) = std::fs::write(&path, &body) {
        eprintln!("failed to write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    // The smoke grid is a subset of the full grid so check_bench.sh
    // can line fresh smoke points up against committed baselines.
    let sizes: &[usize] = if smoke { &[24] } else { &[24, 120] };

    // Probe the workload to quiescence, then cut the shared warm image
    // three quarters of the way in: most of a cold job's time is then
    // warmup re-execution, which is exactly what forking amortizes.
    let probe = run_job(
        &JobSpec {
            sim: sim(),
            max_cycles: 50_000_000,
            ..JobSpec::default()
        },
        None,
    )
    .expect("probe run refused");
    assert!(probe.fault.is_none(), "probe faulted: {:?}", probe.fault);
    let warm_cut = (probe.cycles * 3 / 4).max(1);
    let img = build_warm_image(&sim(), warm_cut).expect("warm image build failed");
    let snap_bytes = img.snap.as_bytes().len();
    println!(
        "serve (warm-start sweep, 4 nodes, outer {OUTER}): quiesce {} cycles, \
         warm cut {warm_cut}, snapshot {snap_bytes} bytes, built in {:.1} ms",
        probe.cycles,
        img.build_ns as f64 / 1e6,
    );

    let sweeps: Vec<Sweep> = sizes.iter().map(|&n| run_sweep(n, &img)).collect();
    for s in &sweeps {
        println!(
            "  {:>4} points: setup median {:.2} ms cold vs {:.2} ms warm \
             ({:.1}x), wall {:.2}s cold vs {:.2}s warm",
            s.points, s.cold_setup_ms, s.warm_setup_ms, s.speedup, s.cold_wall_s, s.warm_wall_s,
        );
    }
    if !smoke {
        let big = sweeps
            .iter()
            .find(|s| s.points >= 100)
            .expect("full grid has a >=100-point sweep");
        assert!(
            big.speedup >= 3.0,
            "warm-start setup speedup {:.2}x on the {}-point sweep is below the 3x contract",
            big.speedup,
            big.points,
        );
    }

    let daemon = run_daemon_sweep(*sizes.last().unwrap(), warm_cut);
    println!(
        "  daemon end-to-end: {} points on {} workers in {:.2}s, median setup {:.2} ms",
        daemon.points, daemon.threads, daemon.wall_s, daemon.setup_ms,
    );
    emit_json(probe.cycles, &img, snap_bytes, &sweeps, &daemon);
}
