//! Criterion wrappers around scaled-down versions of each paper
//! experiment, so `cargo bench` continuously exercises every
//! reproduction path (the full-size runs are the `table3`, `figure5`,
//! `microbench`, `validate_model` and `utilization` binaries).

use april_bench::run_ideal;
use april_model::params::SystemParams;
use april_model::utilization::figure5_sweep;
use april_mult::{programs, CompileOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table3_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    let fib = programs::fib(8);
    group.bench_function("fib8_tseq_1p", |b| {
        b.iter(|| run_ideal(&fib, &CompileOptions::t_seq(), 1))
    });
    group.bench_function("fib8_april_eager_2p", |b| {
        b.iter(|| run_ideal(&fib, &CompileOptions::april(), 2))
    });
    group.bench_function("fib8_april_lazy_2p", |b| {
        b.iter(|| run_ideal(&fib, &CompileOptions::april_lazy(), 2))
    });
    group.bench_function("fib8_encore_2p", |b| {
        b.iter(|| run_ideal(&fib, &CompileOptions::encore(), 2))
    });
    let queens = programs::queens(5);
    group.bench_function("queens5_april_4p", |b| {
        b.iter(|| run_ideal(&queens, &CompileOptions::april(), 4))
    });
    let speech = programs::speech(3, 5);
    group.bench_function("speech3x5_april_2p", |b| {
        b.iter(|| run_ideal(&speech, &CompileOptions::april(), 2))
    });
    group.finish();
}

fn bench_figure5(c: &mut Criterion) {
    c.bench_function("figure5/sweep_p8", |b| {
        let params = SystemParams::default();
        b.iter(|| figure5_sweep(criterion::black_box(&params), 8, 10.0))
    });
}

criterion_group!(benches, bench_table3_cells, bench_figure5);
criterion_main!(benches);
