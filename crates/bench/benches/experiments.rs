//! Timed wrappers around scaled-down versions of each paper
//! experiment, so `cargo bench` continuously exercises every
//! reproduction path (the full-size runs are the `table3`, `figure5`,
//! `microbench`, `validate_model` and `utilization` binaries).

use april_bench::run_ideal;
use april_model::params::SystemParams;
use april_model::utilization::figure5_sweep;
use april_mult::{programs, CompileOptions};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` once (these are whole-experiment runs, not micro-ops).
fn bench(name: &str, mut f: impl FnMut()) {
    f(); // warm up
    let t0 = Instant::now();
    f();
    println!("{name:<28} {:>10.2} ms", t0.elapsed().as_secs_f64() * 1e3);
}

fn bench_table3_cells() {
    let fib = programs::fib(8);
    bench("table3/fib8_tseq_1p", || {
        black_box(run_ideal(&fib, &CompileOptions::t_seq(), 1));
    });
    bench("table3/fib8_april_eager_2p", || {
        black_box(run_ideal(&fib, &CompileOptions::april(), 2));
    });
    bench("table3/fib8_april_lazy_2p", || {
        black_box(run_ideal(&fib, &CompileOptions::april_lazy(), 2));
    });
    bench("table3/fib8_encore_2p", || {
        black_box(run_ideal(&fib, &CompileOptions::encore(), 2));
    });
    let queens = programs::queens(5);
    bench("table3/queens5_april_4p", || {
        black_box(run_ideal(&queens, &CompileOptions::april(), 4));
    });
    let speech = programs::speech(3, 5);
    bench("table3/speech3x5_april_2p", || {
        black_box(run_ideal(&speech, &CompileOptions::april(), 2));
    });
}

fn bench_figure5() {
    let params = SystemParams::default();
    bench("figure5/sweep_p8", || {
        black_box(figure5_sweep(black_box(&params), 8, 10.0));
    });
}

fn main() {
    println!("experiments (single-run wall times)");
    bench_table3_cells();
    bench_figure5();
}
