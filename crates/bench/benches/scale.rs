//! The 1000+-node scaling benchmark: sparse directories + lazy memory
//! versus the full-map baseline at the machine size the APRIL paper
//! actually argues about (Section 8 evaluates the architecture on up
//! to 1000-processor configurations).
//!
//! One workload, deliberately directory-hostile: every node of a
//! 33×33 mesh (1089 processors) reads the same set of blocks homed at
//! node 0, so each block accumulates 1089 sharers. A full-map
//! directory spills a 1089-entry pointer list per block; the sparse
//! kinds overflow their inline pointer array once and from then on
//! pay a fixed-size representation (broadcast set or coarse region
//! vector). The benchmark records, per directory kind:
//!
//! * construction wall time (1089 nodes, lazily-chunked memory),
//! * simulated cycles, wall seconds, and cycles/second,
//! * directory state bytes per node and memory resident bytes per
//!   node — the footprint numbers the sparse representation exists for,
//! * the overflow count (zero for full-map by definition).
//!
//! Emitted as `BENCH_scale.json` (override with `BENCH_SCALE_OUT`);
//! `BENCH_SMOKE` shrinks the per-node read count, not the machine.

use april_core::cpu::StepEvent;
use april_core::frame::FrameState;
use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_core::trap::Trap;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::Machine;
use april_mem::DirectoryKind;
use april_net::topology::Topology;
use std::time::Instant;

/// The switch-spin driver the machine suites use (see sim_hotpaths).
fn drive(m: &mut Alewife, max: u64) {
    let mut evs = Vec::new();
    loop {
        assert!(m.now() < max, "scale workload timed out at {}", m.now());
        if m.fault().is_some() {
            return;
        }
        if m.all_halted() {
            return;
        }
        m.advance_into(&mut evs);
        for (i, ev) in evs.drain(..) {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let fp = m.cpu(i).fp();
                    let fr = m.cpu_mut(i).frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::Trapped(t) => panic!("node {i}: {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = m.cpu_mut(i);
                    match cpu.next_ready_frame() {
                        Some(f) => cpu.set_fp(f),
                        None => m.charge_idle(i, 1),
                    }
                }
                _ => {}
            }
        }
    }
}

/// Every node writes one private word (so the lazy memory materializes
/// the handful of chunks actually touched, out of ~68 MiB of address
/// space) and then reads `blocks` distinct cache blocks, all homed at
/// node 0 and never written: each block's sharer set grows to the full
/// machine, which is exactly the case limited-pointer schemes were
/// invented for (read-mostly data shared machine-wide).
fn read_fanin_program(blocks: usize) -> Program {
    let mut s = String::from(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            add r8, r8, r8     ; 8*id
            add r8, r8, r8     ; 16*id: one whole block per node
            movi 0x1000, r9
            add r9, r8, r9     ; my private block, nobody else's
            movi 4, r10
            st r10, r9+0
            movi 0x200, r4
        ",
    );
    for i in 0..blocks {
        s.push_str(&format!("    ld r4+{}, r11\n", 16 * i));
    }
    s.push_str("    halt\n");
    assemble(&s).unwrap()
}

struct Point {
    kind: &'static str,
    construct_s: f64,
    cycles: u64,
    wall_s: f64,
    dir_bytes_per_node: f64,
    mem_resident_bytes_per_node: f64,
    mem_capacity_bytes_per_node: f64,
    overflows: u64,
}

impl Point {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_s
    }
}

fn run_point(kind_name: &'static str, kind: DirectoryKind, blocks: usize) -> Point {
    let mut cfg = MachineConfig {
        topology: Topology::new(2, 33), // 1089 nodes
        region_bytes: 0x1_0000,
        ..MachineConfig::default()
    };
    cfg.dir.kind = kind;
    let nodes = cfg.num_nodes();
    let prog = read_fanin_program(blocks);

    let t0 = Instant::now();
    let mut m = Alewife::new(cfg, prog);
    let construct_s = t0.elapsed().as_secs_f64();
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let t0 = Instant::now();
    drive(&mut m, 1_000_000_000);
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(
        m.fault().is_none(),
        "{kind_name}: machine faulted: {:?}",
        m.fault()
    );
    assert!(m.all_halted(), "{kind_name}: not all nodes halted");

    let dir_bytes: usize = m.nodes.iter().map(|n| n.dir.state_bytes()).sum();
    let overflows: u64 = m.nodes.iter().map(|n| n.dir.stats.overflows).sum();
    Point {
        kind: kind_name,
        construct_s,
        cycles: m.now(),
        wall_s,
        dir_bytes_per_node: dir_bytes as f64 / nodes as f64,
        mem_resident_bytes_per_node: m.mem().resident_bytes() as f64 / nodes as f64,
        mem_capacity_bytes_per_node: m.mem().len_bytes() as f64 / nodes as f64,
        overflows,
    }
}

fn emit_json(nodes: usize, blocks: usize, points: &[Point]) {
    let path = std::env::var("BENCH_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".into());
    let full_map_dir = points
        .iter()
        .find(|p| p.kind == "full_map")
        .map(|p| p.dir_bytes_per_node)
        .unwrap_or(f64::NAN);
    let mut body =
        format!("{{\n  \"nodes\": {nodes},\n  \"blocks_per_node\": {blocks},\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        body.push_str(&format!(
            concat!(
                "    {{\"kind\": \"{}\", \"construct_s\": {:.4}, ",
                "\"cycles\": {}, \"wall_s\": {:.4}, ",
                "\"cycles_per_sec\": {:.0}, ",
                "\"dir_bytes_per_node\": {:.1}, ",
                "\"mem_resident_bytes_per_node\": {:.1}, ",
                "\"mem_capacity_bytes_per_node\": {:.1}, ",
                "\"overflows\": {}, ",
                "\"dir_ratio_vs_full_map\": {:.4}}}{}\n"
            ),
            p.kind,
            p.construct_s,
            p.cycles,
            p.wall_s,
            p.cycles_per_sec(),
            p.dir_bytes_per_node,
            p.mem_resident_bytes_per_node,
            p.mem_capacity_bytes_per_node,
            p.overflows,
            p.dir_bytes_per_node / full_map_dir,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, &body) {
        eprintln!("failed to write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let blocks = if smoke { 8 } else { 128 };
    let kinds: [(&'static str, DirectoryKind); 3] = [
        ("full_map", DirectoryKind::FullMap),
        ("limited_ptr_8", DirectoryKind::LimitedPtr { ptrs: 8 }),
        (
            "coarse_vector_64",
            DirectoryKind::CoarseVector { region: 64 },
        ),
    ];
    println!("scale: 1089-node read fan-in, {blocks} blocks/node");
    let mut points = Vec::new();
    for (name, kind) in kinds {
        let p = run_point(name, kind, blocks);
        println!(
            "{:<18} construct {:>6.2}s  {:>10} cycles in {:>6.2}s ({:>10.0} c/s)  dir {:>9.1} B/node  mem {:>7.1}/{:.0} B/node  overflows {}",
            p.kind,
            p.construct_s,
            p.cycles,
            p.wall_s,
            p.cycles_per_sec(),
            p.dir_bytes_per_node,
            p.mem_resident_bytes_per_node,
            p.mem_capacity_bytes_per_node,
            p.overflows,
        );
        points.push(p);
    }
    // The workload never writes a block after its sharer set
    // overflows, so the sparse kinds send the exact same protocol
    // messages as full-map and must land on the same final cycle: a
    // cheap cross-kind determinism gate at 1089 nodes.
    assert!(
        points.windows(2).all(|w| w[0].cycles == w[1].cycles),
        "directory kinds disagree on the final cycle"
    );
    let nodes = Topology::new(2, 33).num_nodes();
    emit_json(nodes, blocks, &points);
}
