//! Criterion benchmarks of the simulator's hot paths: these bound how
//! big an APRIL workload the repository can simulate per second.

use april_core::cpu::{Cpu, CpuConfig};
use april_core::isa::asm::assemble;
use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
use april_core::word::Word;
use april_mem::cache::{Cache, CacheConfig, LineState};
use april_mem::directory::Directory;
use april_mem::femem::FeMemory;
use april_net::network::{NetConfig, Network};
use april_net::topology::Topology;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

struct NullMem;
impl MemoryPort for NullMem {
    fn load(&mut self, _: u32, _: april_core::isa::LoadFlavor, _: AccessCtx) -> LoadReply {
        LoadReply::Data { word: Word::ZERO, fe: true }
    }
    fn store(&mut self, _: u32, _: Word, _: april_core::isa::StoreFlavor, _: AccessCtx) -> StoreReply {
        StoreReply::Done { fe: false }
    }
}

fn bench_cpu_step(c: &mut Criterion) {
    let prog = assemble(
        "
        top:
            add r1, 1, r1
            sub r2, 1, r2
            xor r3, r1, r3
            jmp top
            nop
        ",
    )
    .unwrap();
    let mut group = c.benchmark_group("cpu");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("step_1000_alu", |b| {
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.boot(0);
        b.iter(|| {
            for _ in 0..1000 {
                cpu.step(&prog, &mut NullMem);
            }
        });
    });
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("cache_hit_1000", |b| {
        let mut cache = Cache::new(CacheConfig::default());
        cache.fill(0x40, LineState::Modified);
        b.iter(|| {
            for i in 0..1000u32 {
                criterion::black_box(cache.access(0x40 + (i & 3) * 4, i & 1 == 0));
            }
        });
    });
    group.bench_function("cache_miss_fill_1000", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::default()),
            |mut cache| {
                for i in 0..1000u32 {
                    let a = i * 16;
                    if !cache.access(a, false) {
                        cache.fill(a, LineState::Shared);
                    }
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("femem_fe_load_1000", |b| {
        let mut mem = FeMemory::new(64 * 1024);
        let f = april_core::isa::LoadFlavor::from_mnemonic("ldett").unwrap();
        b.iter(|| {
            for i in 0..1000u32 {
                let a = (i % 1024) * 4;
                criterion::black_box(mem.apply_load(a, f));
                mem.set_fe(a, true);
            }
        });
    });
    group.finish();
}

fn bench_directory(c: &mut Criterion) {
    c.bench_function("directory/rd_wr_inval_cycle", |b| {
        b.iter_batched(
            Directory::new,
            |mut d| {
                for block in (0..64u32).map(|i| i * 16) {
                    d.handle_request(1, block, false);
                    d.handle_request(2, block, false);
                    let out = d.handle_request(3, block, true);
                    for (dst, _) in out {
                        d.handle_ack(dst, april_mem::msg::CohMsg::InvAck { block });
                    }
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    group.throughput(Throughput::Elements(256));
    group.bench_function("send_deliver_256", |b| {
        b.iter_batched(
            || Network::<u32>::new(Topology::new(3, 6), NetConfig::default()),
            |mut net| {
                let n = net.topology().num_nodes();
                for i in 0..256usize {
                    net.send(0, i % n, (i * 37 + 5) % n, 4, i as u32);
                }
                let mut t = 0;
                while !net.is_idle() {
                    t += 1;
                    criterion::black_box(net.poll(t));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_toolchain(c: &mut Criterion) {
    let mut group = c.benchmark_group("toolchain");
    group.bench_function("assemble_loop", |b| {
        let src = "
            movi 10, r1
        loop:
            sub r1, 1, r1
            jne loop
            nop
            halt
        ";
        b.iter(|| assemble(criterion::black_box(src)).unwrap());
    });
    group.bench_function("compile_fib", |b| {
        let src = april_mult::programs::fib(10);
        let opts = april_mult::CompileOptions::april();
        b.iter(|| april_mult::compile(criterion::black_box(&src), &opts).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cpu_step,
    bench_memory,
    bench_directory,
    bench_network,
    bench_toolchain
);
criterion_main!(benches);
