//! Benchmarks of the simulator's hot paths: these bound how big an
//! APRIL workload the repository can simulate per second.
//!
//! Self-contained timing harness (no external bench framework): each
//! benchmark runs its body in batches until ~0.2 s has elapsed and
//! reports the best per-iteration time. Run with `cargo bench`.

use april_core::cpu::{Cpu, CpuConfig, StepEvent};
use april_core::decoded::DecodedProgram;
use april_core::frame::FrameState;
use april_core::isa::asm::assemble;
use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
use april_core::program::Program;
use april_core::trap::Trap;
use april_core::word::Word;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::Machine;
use april_mem::cache::{Cache, CacheConfig, LineState};
use april_mem::directory::Directory;
use april_mem::femem::FeMemory;
use april_net::fault::{FaultPlan, FaultRule};
use april_net::network::{NetConfig, Network};
use april_net::topology::Topology;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` (which performs `elems` logical operations per call) and
/// prints a `name: ns/op` line.
fn bench(name: &str, elems: u64, mut f: impl FnMut()) {
    // Warm up.
    f();
    let mut best = f64::INFINITY;
    let deadline = Instant::now() + std::time::Duration::from_millis(200);
    while Instant::now() < deadline {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt / elems as f64);
    }
    println!("{name:<28} {:>10.1} ns/op", best * 1e9);
}

struct NullMem;
impl MemoryPort for NullMem {
    fn load(&mut self, _: u32, _: april_core::isa::LoadFlavor, _: AccessCtx) -> LoadReply {
        LoadReply::Data {
            word: Word::ZERO,
            fe: true,
        }
    }
    fn store(
        &mut self,
        _: u32,
        _: Word,
        _: april_core::isa::StoreFlavor,
        _: AccessCtx,
    ) -> StoreReply {
        StoreReply::Done { fe: false }
    }
}

fn bench_cpu_step() {
    let prog = assemble(
        "
        top:
            add r1, 1, r1
            sub r2, 1, r2
            xor r3, r1, r3
            jmp top
            nop
        ",
    )
    .unwrap();
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(0);
    bench("cpu/step_alu", 1000, || {
        for _ in 0..1000 {
            cpu.step(&prog, &mut NullMem);
        }
    });
}

/// Decode-engine dispatch: a 64-op safe straight-line run executed
/// through the flat bytecode (one `bookable_run` + `run_decoded` per
/// block, then one `step` for the loop-closing jump) against the same
/// block walked instruction by instruction through `Cpu::step`. The
/// gap between the two lines is what DESIGN.md §13 buys per visited
/// cycle.
fn bench_decoded_dispatch() {
    let body = "add r1, 1, r1\n".repeat(64);
    let prog = assemble(&format!("top:\n{body}jmp top\n nop\n")).unwrap();
    let dec = DecodedProgram::lower(&prog);
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(0);
    bench("decoded/run_64", 1040, || {
        for _ in 0..16 {
            let k = cpu.bookable_run(&dec);
            cpu.run_decoded(&dec, k);
            cpu.step(&prog, &mut NullMem); // the jmp back to top
        }
    });
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(0);
    bench("decoded/step_64_baseline", 1040, || {
        for _ in 0..16 * 65 {
            cpu.step(&prog, &mut NullMem);
        }
    });
}

fn bench_memory() {
    let mut cache = Cache::new(CacheConfig::default());
    cache.fill(0x40, LineState::Modified);
    bench("mem/cache_hit", 1000, || {
        for i in 0..1000u32 {
            black_box(cache.access(0x40 + (i & 3) * 4, i & 1 == 0));
        }
    });
    bench("mem/cache_miss_fill", 1000, || {
        let mut cache = Cache::new(CacheConfig::default());
        for i in 0..1000u32 {
            let a = i * 16;
            if !cache.access(a, false) {
                cache.fill(a, LineState::Shared);
            }
        }
    });
    let mut mem = FeMemory::new(64 * 1024);
    let f = april_core::isa::LoadFlavor::from_mnemonic("ldett").unwrap();
    bench("mem/femem_fe_load", 1000, || {
        for i in 0..1000u32 {
            let a = (i % 1024) * 4;
            black_box(mem.apply_load(a, f));
            mem.set_fe(a, true);
        }
    });
}

fn bench_directory() {
    bench("directory/rd_wr_inval", 64, || {
        let mut d = Directory::new();
        for block in (0..64u32).map(|i| i * 16) {
            d.handle_request(1, block, false, 1);
            d.handle_request(2, block, false, 2);
            let out = d.handle_request(3, block, true, 3);
            for (dst, msg) in out {
                let ack = april_mem::msg::CohMsg::InvAck {
                    block: msg.block().unwrap(),
                    xid: msg.xid().unwrap(),
                };
                d.handle_ack(dst, ack).unwrap();
            }
        }
    });
}

fn bench_network() {
    bench("net/send_deliver_256", 256, || {
        let mut net = Network::<u32>::new(Topology::new(3, 6), NetConfig::default());
        let n = net.topology().num_nodes();
        for i in 0..256usize {
            net.send(0, i % n, (i * 37 + 5) % n, 4, i as u32);
        }
        let mut t = 0;
        let mut delivered = Vec::new();
        while !net.is_idle() {
            t += 1;
            delivered.clear();
            net.poll_into(t, &mut delivered);
            black_box(&delivered);
        }
    });
}

fn bench_toolchain() {
    let src = "
        movi 10, r1
    loop:
        sub r1, 1, r1
        jne loop
        nop
        halt
    ";
    bench("toolchain/assemble_loop", 1, || {
        black_box(assemble(black_box(src)).unwrap());
    });
    let fib = april_mult::programs::fib(10);
    let opts = april_mult::CompileOptions::april();
    bench("toolchain/compile_fib", 1, || {
        black_box(april_mult::compile(black_box(&fib), &opts).unwrap());
    });
}

// ---------------------------------------------------------------------
// Whole-machine workloads: simulated cycles per wall-second, lockstep
// versus event-driven, emitted as BENCH_hotpaths.json so the perf
// trajectory is tracked from PR to PR.
// ---------------------------------------------------------------------

/// The switch-spin driver the machine test suites use. Returns the
/// number of `advance()` calls — the cycles actually visited, which is
/// what the event-driven skip reduces.
fn drive(m: &mut Alewife, max: u64) -> u64 {
    let mut advances = 0;
    let mut evs = Vec::new();
    loop {
        assert!(m.now() < max, "bench workload timed out at {}", m.now());
        if m.fault().is_some() {
            return advances;
        }
        if (0..m.num_procs()).all(|i| m.cpu(i).is_halted()) {
            return advances;
        }
        advances += 1;
        m.advance_into(&mut evs);
        for (i, ev) in evs.drain(..) {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let fp = m.cpu(i).fp();
                    let fr = m.cpu_mut(i).frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                }
                StepEvent::Trapped(t) => panic!("node {i}: {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = m.cpu_mut(i);
                    match cpu.next_ready_frame() {
                        Some(f) => cpu.set_fp(f),
                        None => m.charge_idle(i, 1),
                    }
                }
                _ => {}
            }
        }
    }
}

/// All nodes increment their own word of one block homed at node 0,
/// flushing the line after every store: each iteration is a remote
/// read miss plus a write-upgrade miss, both full protocol round trips
/// serialized through node 0's directory, so every processor spends
/// nearly all of its time switched out waiting — the stall-dominated
/// regime the event-driven skip targets.
fn stall_heavy_program(iters: u32) -> Program {
    assemble(&format!(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word within the shared block
            movi {iters}, r10
        loop:
            ld r9+0, r11       ; remote read miss
            add r11, 4, r11    ; increment (fixnum +1)
            st r11, r9+0       ; write-upgrade miss
            flush r9+0         ; evict: the next ld misses again
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    ))
    .unwrap()
}

/// Every node grinds a long straight-line ALU body between loop
/// branches, all frames resident, no remote traffic: the
/// compute-bound regime where the decode engine's booked runs carry
/// whole 64-op blocks per visited cycle. The counterpoint to
/// `stall_heavy_16node`, whose visited cycles are protocol-bound and
/// book nothing.
fn compute_program(iters: u32) -> Program {
    let body = "add r1, 4, r1\nxor r2, r1, r2\nsub r3, 4, r3\nadd r4, r2, r4\n".repeat(8);
    assemble(&format!(
        "
        .entry main
        main:
            movi {iters}, r10
        loop:
            {body}
            sub r10, 1, r10
            jne loop
            nop
            halt
        ",
    ))
    .unwrap()
}

/// Runs one workload in one mode; returns (simulated cycles, wall s,
/// cycles actually visited).
fn run_mode(
    mut cfg: MachineConfig,
    prog: &Program,
    plan: Option<&FaultPlan>,
    lockstep: bool,
    decode: bool,
    max: u64,
) -> (u64, f64, u64) {
    cfg.lockstep = lockstep;
    cfg.decode = decode;
    let mut m = Alewife::new(cfg, prog.clone());
    if let Some(plan) = plan {
        m.set_fault_plan(plan.clone());
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let t0 = Instant::now();
    let advances = drive(&mut m, max);
    (m.now(), t0.elapsed().as_secs_f64(), advances)
}

struct MachineBench {
    name: &'static str,
    cycles: u64,
    /// Cycles the event-driven path actually visited (advance calls).
    visited: u64,
    lockstep_wall: f64,
    event_wall: f64,
    /// Event-driven with the decode engine forced off: the legacy
    /// per-instruction interpreter on every visited cycle.
    event_nodecode_wall: f64,
}

impl MachineBench {
    fn lockstep_cps(&self) -> f64 {
        self.cycles as f64 / self.lockstep_wall
    }
    fn event_cps(&self) -> f64 {
        self.cycles as f64 / self.event_wall
    }
    fn event_nodecode_cps(&self) -> f64 {
        self.cycles as f64 / self.event_nodecode_wall
    }
    fn speedup(&self) -> f64 {
        self.lockstep_wall / self.event_wall
    }
    fn decode_speedup(&self) -> f64 {
        self.event_nodecode_wall / self.event_wall
    }
}

fn run_machine_workload(
    name: &'static str,
    cfg: MachineConfig,
    prog: Program,
    plan: Option<FaultPlan>,
    max: u64,
) -> MachineBench {
    // Best-of-3 per mode: machine time is deterministic, wall time is
    // not (shared hardware), and a quotient of two noisy walls is worse.
    let mut t_lock = f64::INFINITY;
    let mut t_evt = f64::INFINITY;
    let mut t_evt_nodec = f64::INFINITY;
    let mut c_lock = 0;
    let mut c_evt = 0;
    let mut c_evt_nodec = 0;
    let mut visited = 0;
    for _ in 0..3 {
        let (c, t, _) = run_mode(cfg, &prog, plan.as_ref(), true, true, max);
        c_lock = c;
        t_lock = t_lock.min(t);
        let (c, t, v) = run_mode(cfg, &prog, plan.as_ref(), false, true, max);
        c_evt = c;
        visited = v;
        t_evt = t_evt.min(t);
        let (c, t, _) = run_mode(cfg, &prog, plan.as_ref(), false, false, max);
        c_evt_nodec = c;
        t_evt_nodec = t_evt_nodec.min(t);
    }
    assert_eq!(
        c_lock, c_evt,
        "{name}: lockstep and event-driven disagree on the final cycle"
    );
    assert_eq!(
        c_evt, c_evt_nodec,
        "{name}: decode engine on/off disagree on the final cycle"
    );
    MachineBench {
        name,
        cycles: c_lock,
        visited,
        lockstep_wall: t_lock,
        event_wall: t_evt,
        event_nodecode_wall: t_evt_nodec,
    }
}

fn machine_workloads(smoke: bool) -> Vec<MachineBench> {
    // Smoke mode (CI) shrinks the iteration counts, not the shapes.
    let iters = if smoke { 20 } else { 200 };
    vec![
        // 16 nodes (a 4x4 mesh), remote-miss-dominated: the acceptance
        // workload. Memory and hop latencies model the long-latency regime
        // APRIL targets — a machine whose remote references cost hundreds
        // of cycles (§1 motivates context switching precisely to cover
        // such latencies): every processor spends nearly all its time
        // switched out waiting, which is when cycle-skipping pays.
        run_machine_workload(
            "stall_heavy_16node",
            MachineConfig {
                topology: Topology::new(2, 4),
                region_bytes: 1 << 20,
                mem_latency: 250,
                net: NetConfig {
                    hop_latency: 16,
                    loopback_latency: 1,
                },
                ..MachineConfig::default()
            },
            stall_heavy_program(iters),
            None,
            1_000_000_000,
        ),
        // 16 nodes, compute-bound: long safe straight-line runs, which
        // the decode engine executes as booked blocks — the workload
        // where the engine column separates from the legacy
        // interpreter.
        run_machine_workload(
            "compute_16node",
            MachineConfig {
                topology: Topology::new(2, 4),
                region_bytes: 1 << 20,
                ..MachineConfig::default()
            },
            compute_program(iters * 500),
            None,
            1_000_000_000,
        ),
        // Same contention with an unreliable network: retransmit deadlines
        // keep the event-driven path honest (and busy).
        run_machine_workload(
            "fault_soak_4node",
            MachineConfig {
                topology: Topology::new(2, 2),
                region_bytes: 1 << 20,
                ..MachineConfig::default()
            },
            stall_heavy_program(iters),
            Some(FaultPlan::new(0x50a1).with_default_rule(FaultRule {
                drop: 0.02,
                dup: 0.02,
                delay: 0.04,
                max_delay: 40,
            })),
            1_000_000_000,
        ),
    ]
}

fn emit_json(results: &[MachineBench]) {
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_hotpaths.json".into());
    let mut body = String::from("{\n  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"cycles\": {}, ",
                "\"lockstep_wall_s\": {:.6}, \"event_wall_s\": {:.6}, ",
                "\"event_nodecode_wall_s\": {:.6}, ",
                "\"lockstep_cycles_per_sec\": {:.0}, ",
                "\"event_cycles_per_sec\": {:.0}, ",
                "\"event_nodecode_cycles_per_sec\": {:.0}, ",
                "\"speedup\": {:.2}, \"decode_speedup\": {:.2}}}{}\n"
            ),
            r.name,
            r.cycles,
            r.lockstep_wall,
            r.event_wall,
            r.event_nodecode_wall,
            r.lockstep_cps(),
            r.event_cps(),
            r.event_nodecode_cps(),
            r.speedup(),
            r.decode_speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, &body) {
        eprintln!("failed to write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_machine() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let results = machine_workloads(smoke);
    println!("\nmachine workloads (simulated cycles per wall-second)");
    for r in &results {
        println!(
            "{:<24} {:>12} cycles  visited {:>5.1}%  lockstep {:>12.0} c/s  event {:>12.0} c/s  event/nodecode {:>12.0} c/s  speedup {:>5.2}x  decode {:>5.2}x",
            r.name,
            r.cycles,
            100.0 * r.visited as f64 / r.cycles as f64,
            r.lockstep_cps(),
            r.event_cps(),
            r.event_nodecode_cps(),
            r.speedup(),
            r.decode_speedup(),
        );
    }
    emit_json(&results);
}

fn main() {
    println!("sim_hotpaths (best-of per-iteration times)");
    bench_cpu_step();
    bench_decoded_dispatch();
    bench_memory();
    bench_directory();
    bench_network();
    bench_toolchain();
    bench_machine();
}
