//! Benchmarks of the simulator's hot paths: these bound how big an
//! APRIL workload the repository can simulate per second.
//!
//! Self-contained timing harness (no external bench framework): each
//! benchmark runs its body in batches until ~0.2 s has elapsed and
//! reports the best per-iteration time. Run with `cargo bench`.

use april_core::cpu::{Cpu, CpuConfig};
use april_core::isa::asm::assemble;
use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
use april_core::word::Word;
use april_mem::cache::{Cache, CacheConfig, LineState};
use april_mem::directory::Directory;
use april_mem::femem::FeMemory;
use april_net::network::{NetConfig, Network};
use april_net::topology::Topology;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` (which performs `elems` logical operations per call) and
/// prints a `name: ns/op` line.
fn bench(name: &str, elems: u64, mut f: impl FnMut()) {
    // Warm up.
    f();
    let mut best = f64::INFINITY;
    let deadline = Instant::now() + std::time::Duration::from_millis(200);
    while Instant::now() < deadline {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt / elems as f64);
    }
    println!("{name:<28} {:>10.1} ns/op", best * 1e9);
}

struct NullMem;
impl MemoryPort for NullMem {
    fn load(&mut self, _: u32, _: april_core::isa::LoadFlavor, _: AccessCtx) -> LoadReply {
        LoadReply::Data {
            word: Word::ZERO,
            fe: true,
        }
    }
    fn store(
        &mut self,
        _: u32,
        _: Word,
        _: april_core::isa::StoreFlavor,
        _: AccessCtx,
    ) -> StoreReply {
        StoreReply::Done { fe: false }
    }
}

fn bench_cpu_step() {
    let prog = assemble(
        "
        top:
            add r1, 1, r1
            sub r2, 1, r2
            xor r3, r1, r3
            jmp top
            nop
        ",
    )
    .unwrap();
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.boot(0);
    bench("cpu/step_alu", 1000, || {
        for _ in 0..1000 {
            cpu.step(&prog, &mut NullMem);
        }
    });
}

fn bench_memory() {
    let mut cache = Cache::new(CacheConfig::default());
    cache.fill(0x40, LineState::Modified);
    bench("mem/cache_hit", 1000, || {
        for i in 0..1000u32 {
            black_box(cache.access(0x40 + (i & 3) * 4, i & 1 == 0));
        }
    });
    bench("mem/cache_miss_fill", 1000, || {
        let mut cache = Cache::new(CacheConfig::default());
        for i in 0..1000u32 {
            let a = i * 16;
            if !cache.access(a, false) {
                cache.fill(a, LineState::Shared);
            }
        }
    });
    let mut mem = FeMemory::new(64 * 1024);
    let f = april_core::isa::LoadFlavor::from_mnemonic("ldett").unwrap();
    bench("mem/femem_fe_load", 1000, || {
        for i in 0..1000u32 {
            let a = (i % 1024) * 4;
            black_box(mem.apply_load(a, f));
            mem.set_fe(a, true);
        }
    });
}

fn bench_directory() {
    bench("directory/rd_wr_inval", 64, || {
        let mut d = Directory::new();
        for block in (0..64u32).map(|i| i * 16) {
            d.handle_request(1, block, false, 1);
            d.handle_request(2, block, false, 2);
            let out = d.handle_request(3, block, true, 3);
            for (dst, msg) in out {
                let ack = april_mem::msg::CohMsg::InvAck {
                    block: msg.block().unwrap(),
                    xid: msg.xid().unwrap(),
                };
                d.handle_ack(dst, ack).unwrap();
            }
        }
    });
}

fn bench_network() {
    bench("net/send_deliver_256", 256, || {
        let mut net = Network::<u32>::new(Topology::new(3, 6), NetConfig::default());
        let n = net.topology().num_nodes();
        for i in 0..256usize {
            net.send(0, i % n, (i * 37 + 5) % n, 4, i as u32);
        }
        let mut t = 0;
        while !net.is_idle() {
            t += 1;
            black_box(net.poll(t));
        }
    });
}

fn bench_toolchain() {
    let src = "
        movi 10, r1
    loop:
        sub r1, 1, r1
        jne loop
        nop
        halt
    ";
    bench("toolchain/assemble_loop", 1, || {
        black_box(assemble(black_box(src)).unwrap());
    });
    let fib = april_mult::programs::fib(10);
    let opts = april_mult::CompileOptions::april();
    bench("toolchain/compile_fib", 1, || {
        black_box(april_mult::compile(black_box(&fib), &opts).unwrap());
    });
}

fn main() {
    println!("sim_hotpaths (best-of per-iteration times)");
    bench_cpu_step();
    bench_memory();
    bench_directory();
    bench_network();
    bench_toolchain();
}
