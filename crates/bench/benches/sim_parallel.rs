//! Scaling benchmark for the conservative-window parallel scheduler:
//! simulated cycles per wall-second at 1/2/4/8 workers on 16- and
//! 64-node machines, emitted as `BENCH_parallel.json` so the perf
//! trajectory is tracked from PR to PR.
//!
//! The workload keeps every processor compute-bound (a long ALU inner
//! loop between remote accesses) because that is the regime parallel
//! sharding targets: the per-window work must dominate the barrier
//! cost. Every point is asserted bit-identical to the 1-worker run —
//! the scheduler's determinism guarantee means a scaling number from a
//! diverged simulation would be meaningless.
//!
//! `BENCH_SMOKE=1` shrinks the grid to 16 nodes at 1 and 2 workers for
//! CI. `BENCH_PAR_OUT` overrides the output path.

use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_machine::config::MachineConfig;
use april_machine::driver::SwitchSpin;
use april_machine::parallel::ParallelAlewife;
use april_net::network::NetConfig;
use april_net::topology::Topology;
use std::time::Instant;

/// Each node spins a long ALU loop, then performs one remote
/// read-modify-write on its own word of a block region homed at node 0
/// (flushed so the next round misses again). High per-cycle CPU
/// utilization with real cross-node coherence traffic.
fn compute_heavy_program(outer: u32, inner: u32) -> Program {
    assemble(&format!(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word, homed at node 0
            movi {outer}, r10
        outer:
            movi {inner}, r12
        inner:
            add r13, 4, r13
            xor r14, r13, r14
            sub r12, 1, r12
            jne inner
            nop
            ld r9+0, r11       ; remote read miss
            add r11, 4, r11
            st r11, r9+0       ; write-upgrade miss
            flush r9+0         ; evict: the next round misses again
            sub r10, 1, r10
            jne outer
            nop
            halt
        ",
    ))
    .unwrap()
}

fn bench_cfg(dim: usize, radix: usize, workers: usize) -> MachineConfig {
    MachineConfig {
        topology: Topology::new(dim, radix),
        region_bytes: 1 << 16,
        // 4-cycle loopback / 2-cycle hops buy a 2-cycle conservative
        // window, halving the number of barriers per simulated cycle.
        net: NetConfig {
            hop_latency: 2,
            loopback_latency: 4,
        },
        workers,
        ..MachineConfig::default()
    }
}

/// Runs one point; returns the finished machine and the wall time.
fn run_point(cfg: MachineConfig, prog: &Program, max: u64) -> (ParallelAlewife, f64) {
    let mut m = ParallelAlewife::new(cfg, prog.clone());
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let t0 = Instant::now();
    m.run(&SwitchSpin::default(), max);
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        m.fault().is_none(),
        "bench workload faulted: {:?}",
        m.fault()
    );
    (m, wall)
}

/// Asserts two runs of the same machine ended bit-identical.
fn assert_identical(a: &ParallelAlewife, b: &ParallelAlewife, workers: usize) {
    assert_eq!(
        a.halted_cycles(),
        b.halted_cycles(),
        "x{workers}: halt cycles diverged from the 1-worker run"
    );
    for i in 0..a.num_procs() {
        assert_eq!(
            a.node(i).cpu.stats,
            b.node(i).cpu.stats,
            "x{workers}: node {i} CpuStats diverged from the 1-worker run"
        );
    }
    assert_eq!(
        a.net_stats(),
        b.net_stats(),
        "x{workers}: net stats diverged"
    );
    for addr in (0..a.mem().len_bytes() as u32).step_by(4) {
        assert_eq!(
            a.mem().word_state(addr),
            b.mem().word_state(addr),
            "x{workers}: memory diverged at {addr:#x}"
        );
    }
}

struct Point {
    nodes: usize,
    workers: usize,
    cycles: u64,
    wall_s: f64,
}

impl Point {
    fn cps(&self) -> f64 {
        self.cycles as f64 / self.wall_s
    }
}

fn run_grid(dim: usize, radix: usize, worker_counts: &[usize], prog: &Program) -> Vec<Point> {
    let nodes = Topology::new(dim, radix).num_nodes();
    let max = 1_000_000_000;
    let mut points = Vec::new();
    let mut baseline: Option<ParallelAlewife> = None;
    for &w in worker_counts {
        // Best-of-3: simulated time is deterministic, wall time is not.
        let mut wall = f64::INFINITY;
        let mut cycles = 0;
        let mut last = None;
        for _ in 0..3 {
            let (m, t) = run_point(bench_cfg(dim, radix, w), prog, max);
            wall = wall.min(t);
            cycles = m.now();
            last = Some(m);
        }
        let m = last.expect("ran at least once");
        match &baseline {
            None => baseline = Some(m),
            Some(base) => assert_identical(base, &m, w),
        }
        points.push(Point {
            nodes,
            workers: w,
            cycles,
            wall_s: wall,
        });
    }
    points
}

fn emit_json(points: &[Point]) {
    let path = std::env::var("BENCH_PAR_OUT").unwrap_or_else(|_| "BENCH_parallel.json".into());
    // Wall-clock speedup is bounded by min(workers, host cores). A
    // point with more workers than cores measures scheduler *overhead*,
    // not parallel speedup — it is still run (the bit-exactness
    // assertion is worker-count-independent) but marked core_limited
    // and given no speedup figure, so it can never be misread as a
    // scaling regression.
    let cores = host_cpus();
    let mut body = format!("{{\n  \"host_cpus\": {cores},\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        // Speedup is relative to the 1-worker point of the same size.
        let base = points
            .iter()
            .find(|q| q.nodes == p.nodes && q.workers == 1)
            .map(|q| q.wall_s)
            .unwrap_or(p.wall_s);
        let speedup = if p.workers > cores {
            "\"core_limited\": true".to_string()
        } else {
            format!("\"speedup\": {:.2}", base / p.wall_s)
        };
        body.push_str(&format!(
            concat!(
                "    {{\"nodes\": {}, \"workers\": {}, \"cycles\": {}, ",
                "\"wall_s\": {:.6}, \"cycles_per_sec\": {:.0}, {}}}{}\n"
            ),
            p.nodes,
            p.workers,
            p.cycles,
            p.wall_s,
            p.cps(),
            speedup,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, &body) {
        eprintln!("failed to write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let (outer, inner) = if smoke { (6, 200) } else { (40, 400) };
    let prog = compute_heavy_program(outer, inner);

    println!(
        "sim_parallel (simulated cycles per wall-second, deterministic sharding; \
         host cpus: {})",
        host_cpus()
    );
    let mut points = Vec::new();
    // 2-D meshes: radix 4 is the 16-node machine, radix 8 the 64-node
    // one (the acceptance workload).
    if smoke {
        points.extend(run_grid(2, 4, &[1, 2], &prog));
    } else {
        points.extend(run_grid(2, 4, &[1, 2, 4, 8], &prog));
        points.extend(run_grid(2, 8, &[1, 2, 4, 8], &prog));
    }
    for p in &points {
        let base = points
            .iter()
            .find(|q| q.nodes == p.nodes && q.workers == 1)
            .map(|q| q.wall_s)
            .unwrap_or(p.wall_s);
        let tail = if p.workers > host_cpus() {
            "core-limited (overhead only)".to_string()
        } else {
            format!("speedup {:>5.2}x", base / p.wall_s)
        };
        println!(
            "{:>3} nodes x{:<2} workers {:>10} cycles  {:>12.0} c/s  {}",
            p.nodes,
            p.workers,
            p.cycles,
            p.cps(),
            tail,
        );
    }
    emit_json(&points);
}
