//! # april-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's
//! experiment index):
//!
//! * `table3` — Mul-T benchmark grid (Encore / APRIL / APRIL-lazy ×
//!   T-seq / Mul-T-seq / 1–16 processors).
//! * `figure5` — the utilization model sweep and Table 4 parameters.
//! * `microbench` — the 11-cycle context switch and 23-cycle future
//!   touch of Section 6.
//! * `validate_model` — the cache and network model terms against the
//!   simulators (Section 8's "validated through simulations").
//! * `utilization` — measured utilization on the full ALEWIFE machine
//!   vs. the analytical model.

#![warn(missing_docs)]

use april_machine::IdealMachine;
use april_mult::CompileOptions;
use april_runtime::{RtConfig, RunResult, Runtime};

/// Region size used by the experiment harness (per node).
pub const REGION: u32 = 16 << 20;

/// Compiles `src` for `opts` and runs it on an ideal machine of
/// `procs` processors, returning the run result.
///
/// # Panics
///
/// Panics on compile or run failure (experiment inputs are trusted).
pub fn run_ideal(src: &str, opts: &CompileOptions, procs: usize) -> RunResult {
    let prog = april_mult::compile(src, opts).expect("benchmark compiles");
    let m = IdealMachine::new(procs, procs * REGION as usize, prog);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            region_bytes: REGION,
            max_cycles: 20_000_000_000,
            ..RtConfig::default()
        },
    );
    rt.run().expect("benchmark completes")
}

/// Formats a normalized time like the paper's Table 3 (two and three
/// significant digits across the magnitude ranges the table uses).
pub fn fmt_norm(x: f64) -> String {
    if x >= 10.0 {
        format!("{x:5.1}")
    } else {
        format!("{x:5.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_matches_table_style() {
        assert_eq!(fmt_norm(28.94).trim(), "28.9");
        assert_eq!(fmt_norm(1.0).trim(), "1.00");
        assert_eq!(fmt_norm(0.097).trim(), "0.10");
    }

    #[test]
    fn harness_runs_a_tiny_program() {
        let r = run_ideal("(define (main) 7)", &CompileOptions::t_seq(), 1);
        assert_eq!(r.value.as_fixnum(), Some(7));
    }
}
