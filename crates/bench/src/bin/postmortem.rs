//! Figure 4's two simulation paths, side by side: the trace-driven
//! post-mortem scheduler vs. the execution-driven APRIL simulator, on
//! the same programs.
//!
//! "The simulator has proved to be a useful tool ... as it provides
//! more accurate results than a trace driven simulation" (paper,
//! Section 7). This binary quantifies the gap: the post-mortem
//! scheduler sees only the task graph (no task-creation contention, no
//! scheduling cost asymmetries), so its predicted speedups are
//! systematically optimistic.
//!
//! Usage: `postmortem [--quick]`

use april_bench::run_ideal;
use april_mult::postmortem::{schedule, PmConfig};
use april_mult::trace::trace_program;
use april_mult::{programs, CompileOptions};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (fib_n, queens_n) = if quick { (10, 5) } else { (12, 6) };
    let procs = [1usize, 2, 4, 8, 16];

    println!("Trace-driven (post-mortem) vs execution-driven speedups");
    println!("(speedup over each method's own 1-processor run)");
    println!();

    for (name, src) in [
        ("fib", programs::fib(fib_n)),
        ("queens", programs::queens(queens_n)),
        ("factor", programs::factor(if quick { 60 } else { 150 })),
    ] {
        let (trace, _) = trace_program(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        println!(
            "{name}: {} tasks, {} total work units in the trace",
            trace.len(),
            trace.total_work()
        );
        println!(
            "{:>6} {:>14} {:>14} {:>10}",
            "procs", "post-mortem", "exec-driven", "gap"
        );
        // Calibrate overheads to the runtime's eager-task costs in
        // work units (1 work unit ~ 10 cycles of compiled code).
        let cfg = PmConfig {
            spawn_overhead: 10,
            touch_overhead: 2,
            block_overhead: 10,
        };
        let pm1 = schedule(&trace, 1, cfg).makespan as f64;
        let ex1 = run_ideal(&src, &CompileOptions::april(), 1).cycles as f64;
        for &p in &procs {
            let pm = pm1 / schedule(&trace, p, cfg).makespan as f64;
            let ex = ex1 / run_ideal(&src, &CompileOptions::april(), p).cycles as f64;
            println!(
                "{:>6} {:>13.2}x {:>13.2}x {:>9.1}%",
                p,
                pm,
                ex,
                (pm / ex - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("The post-mortem path is cheap (no machine state) but optimistic: it");
    println!("misses scheduling contention and the serialization of task creation —");
    println!("the reason ALEWIFE's evaluation is execution-driven (Section 7).");
}
