//! Microbenchmarks pinning the paper's Section 6 cycle counts:
//!
//! * context switch = 11 cycles on SPARC-based APRIL (5-cycle trap +
//!   6-cycle handler), 4 cycles in a custom APRIL (Section 6.1);
//! * future-touch trap, future resolved = 23-cycle handler
//!   (Section 6.2);
//! * the 6-instruction context-switch handler body executed as real
//!   APRIL code.

use april_core::cpu::{Cpu, CpuConfig, StepEvent};
use april_core::isa::asm::assemble;
use april_machine::IdealMachine;
use april_runtime::{abi, RtConfig, Runtime};

fn main() {
    context_switch_cost(
        CpuConfig::default(),
        RtConfig::default(),
        "SPARC-based APRIL",
    );
    context_switch_cost(
        CpuConfig {
            trap_entry_cycles: 2,
            ..CpuConfig::default()
        },
        RtConfig::default().custom_april(),
        "custom APRIL",
    );
    touch_cost();
    handler_body_instruction_count();
}

/// Measures the full trap-to-switch path by forcing remote-miss-like
/// full/empty switch-spin traps and dividing observed overhead cycles
/// by the number of switches.
fn context_switch_cost(cpu_cfg: CpuConfig, rt_cfg: RtConfig, label: &str) {
    // Producer on proc 1 fills the mailbox after a delay; consumer
    // traps on the empty word with switch-spin policy.
    let body = format!(
        "
        .entry main
        .static 0x400
        .word 0 empty
        main:
            or g5, 0, g1
            add g5, 8, g5
            movi @producer, g2
            st g2, g1+0
            or g1, 2, r1
            rtcall {fut}
            movi 0x400, r3
        wait:
            ldtw r3+0, r4
            or r4, 0, r1
            rtcall {done}
        producer:
            movi 600, r5
        delay:
            sub r5, 1, r5
            jne delay
            nop
            movi 0x400, r3
            movi 28, r4
            stfnt r4, r3+0
            movi 28, r1
            jmpl r31+0, g0
            nop
        {stubs}
        ",
        fut = abi::RT_FUTURE,
        done = abi::RT_MAIN_DONE,
        stubs = abi::entry_stubs_asm(),
    );
    let prog = assemble(&body).expect("microbench assembles");
    let m = IdealMachine::with_cpu_config(2, 8 << 20, prog, cpu_cfg);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            region_bytes: 4 << 20,
            max_cycles: 10_000_000,
            ..rt_cfg
        },
    );
    let r = rt.run().expect("completes");
    let s = &r.per_cpu[0];
    // Isolate the full/empty switch-spin traps on the consumer: each
    // costs (trap entry + switch handler) and increments both the trap
    // and context-switch counters.
    let fe_switches = s.fe_traps;
    assert!(fe_switches > 5, "consumer must have spun ({fe_switches})");
    let per_switch = cpu_cfg.trap_entry_cycles + rt_cfg.switch_handler_cycles;
    println!(
        "{label}: context switch = {} + {} = {} cycles ({} switch-spins observed, \
         trap+handler cycles = {})",
        cpu_cfg.trap_entry_cycles,
        rt_cfg.switch_handler_cycles,
        per_switch,
        fe_switches,
        s.trap_cycles + s.handler_cycles,
    );
}

/// Measures the resolved-future touch handler (23 cycles).
fn touch_cost() {
    let body = format!(
        "
        .entry main
        main:
            or g5, 0, g1
            add g5, 8, g5
            movi @five, g2
            st g2, g1+0
            or g1, 2, r1
            rtcall {fut}
            movi 3000, r5
        spinwait:
            sub r5, 1, r5
            jne spinwait
            nop
            tadd r1, 0, r1        ; resolved touch: 5 + 23 cycles
            rtcall {done}
        five:
            movi 20, r1
            jmpl r31+0, g0
            nop
        {stubs}
        ",
        fut = abi::RT_FUTURE,
        done = abi::RT_MAIN_DONE,
        stubs = abi::entry_stubs_asm(),
    );
    let prog = assemble(&body).expect("assembles");
    let m = IdealMachine::new(2, 8 << 20, prog);
    let mut rt = Runtime::new(
        m,
        RtConfig {
            region_bytes: 4 << 20,
            max_cycles: 10_000_000,
            ..RtConfig::default()
        },
    );
    let r = rt.run().expect("completes");
    assert_eq!(r.value.as_fixnum(), Some(5));
    let s = &r.per_cpu[0];
    assert_eq!(s.future_traps, 1, "exactly one touch trap");
    println!(
        "future touch (resolved): trap entry 5 + handler {} cycles (paper: 23)",
        RtConfig::default().touch_resolved_cycles,
    );
}

/// Executes the 6-instruction switch-spin handler body of Section 6.1
/// as real APRIL instructions and counts its cycles.
fn handler_body_instruction_count() {
    // rdpsr ; save ; save  -> modeled as rdpsr ; incfp
    // wrpsr ; jmpl ; rett  -> wrpsr ; jmpl ; nop(delay)
    let prog = assemble(
        "
        rdpsr r30
        incfp
        incfp        ; two SPARC windows per task frame
        wrpsr r30
        jmpl r29+0, g0
        nop
        ",
    )
    .expect("assembles");
    let mut cpu = Cpu::default();
    // Make all frames runnable at pc 0 so the incfp rotation lands in a
    // ready frame.
    for i in 0..cpu.nframes() {
        cpu.frame_mut(i).reset_at(0);
    }
    struct NullMem;
    impl april_core::memport::MemoryPort for NullMem {
        fn load(
            &mut self,
            _: u32,
            _: april_core::isa::LoadFlavor,
            _: april_core::memport::AccessCtx,
        ) -> april_core::memport::LoadReply {
            april_core::memport::LoadReply::Data {
                word: april_core::word::Word::ZERO,
                fe: true,
            }
        }
        fn store(
            &mut self,
            _: u32,
            _: april_core::word::Word,
            _: april_core::isa::StoreFlavor,
            _: april_core::memport::AccessCtx,
        ) -> april_core::memport::StoreReply {
            april_core::memport::StoreReply::Done { fe: false }
        }
    }
    let mut cycles = 0;
    for _ in 0..6 {
        match cpu.step(&prog, &mut NullMem) {
            StepEvent::Executed => cycles += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    println!(
        "context-switch handler body executed as APRIL code: 6 instructions, {cycles} cycles \
         (+5-cycle trap entry = 11; paper Section 6.1)"
    );
}
