//! Measured utilization on the full ALEWIFE machine (caches +
//! directories + network) vs. the number of resident threads — the
//! experiment behind Section 8's claims that coarse-grain
//! multithreading with a handful of task frames hides remote-memory
//! latency, validated here against Equation 1.
//!
//! Each hardware context runs a synthetic thread that computes for a
//! run length of ~R cycles, then loads from a remote block (every
//! access a fresh block, so every access round-trips the network and
//! the processor switch-spins to the next frame).
//!
//! Usage: `utilization [--frames N] [--run-length R] [--latency-sweep]`

use april_core::cpu::{CpuConfig, StepEvent};
use april_core::frame::FrameState;
use april_core::isa::asm::assemble;
use april_core::isa::Reg;
use april_core::program::Program;
use april_core::trap::Trap;
use april_core::word::Word;
use april_machine::alewife::Alewife;
use april_machine::config::MachineConfig;
use april_machine::Machine;
use april_model::utilization::equation_1;
use april_net::topology::Topology;

const REGION: u32 = 1 << 20;

/// How much latency can `frames` resident threads hide? Inflate the
/// home memory latency and watch U(frames): the paper's claim is that
/// 4 frames switching every 50-100 cycles tolerate 150-300-cycle
/// round trips ("(p-1)*(R+C)").
fn latency_sweep(frames: usize, run_length: u32) {
    println!("Latency tolerance with {frames} task frames, run length ~{run_length}+7 cycles");
    println!("(paper, Sections 3 and 8: 4 frames tolerate 150-300 cycle latencies)");
    println!();
    println!(
        "{:>12} {:>10} {:>10} {:>11}",
        "mem latency", "avg T", "U(p=max)", "(p-1)(R+C)"
    );
    let budget = (frames as f64 - 1.0) * (run_length as f64 + 7.0 + 11.0);
    for mem in [10u64, 40, 80, 120, 180, 260, 400] {
        let (u, _m, t) = measure_lat(frames, frames, run_length, 60_000, mem);
        let mark = if t <= budget {
            "within budget"
        } else {
            "beyond budget"
        };
        println!("{mem:>12} {t:>10.0} {u:>10.3}  {budget:>10.0} {mark}");
    }
    println!();
    println!("Utilization stays near its switch-overhead bound while the round trip");
    println!("fits inside the other threads' run lengths, then degrades — the");
    println!("latency-tolerance window of coarse-grain multithreading.");
}

fn worker_program(run_length: u32) -> Program {
    // r5 = region base, r8 = offset counter, r3 = stride, r4 = wrap
    // mask. The inner loop burns ~run_length cycles of "useful work",
    // then one plain load that misses to a remote home (every access
    // touches a fresh block).
    assemble(&format!(
        "
        .entry worker
        worker:
            movi {n}, r6
        inner:
            sub r6, 1, r6
            jne inner
            nop
            add r8, r3, r8
            and r8, r4, r8
            add r5, r8, r2
            ld r2+0, r7
            jmp worker
            nop
        ",
        n = run_length / 2, // two cycles per inner iteration
    ))
    .expect("worker assembles")
}

fn measure(p: usize, frames: usize, run_length: u32, horizon: u64) -> (f64, f64, f64) {
    measure_lat(p, frames, run_length, horizon, 10)
}

fn measure_lat(
    p: usize,
    frames: usize,
    run_length: u32,
    horizon: u64,
    mem_latency: u64,
) -> (f64, f64, f64) {
    let cfg = MachineConfig {
        topology: Topology::new(2, 20),
        region_bytes: REGION,
        cpu: CpuConfig {
            nframes: frames,
            ..CpuConfig::default()
        },
        mem_latency,
        ctl: april_mem::controller::CtlConfig {
            local_mem_latency: mem_latency,
            ..april_mem::controller::CtlConfig::default()
        },
        ..MachineConfig::default()
    };
    let n = cfg.num_nodes();
    let mut m = Alewife::new(cfg, worker_program(run_length));
    // Load p synthetic threads into each node's frames: thread f on
    // node i walks blocks of a region homed roughly halfway across the
    // machine (the long latencies multithreading must tolerate).
    for i in 0..n {
        for f in 0..p {
            let target = (i + n / 2 + f * 31) % n;
            // Stagger the walks by a 17-block offset per frame so the
            // direct-mapped sets visited by co-resident threads stay
            // disjoint (the paper's Section 3.1 thrashing pathologies
            // are handled by hardware interlocks we do not model).
            let base =
                cfg.region_base(target) + (f as u32) * (0x20000 + 17 * cfg.cache.block_bytes);
            let cpu = &mut m.nodes[i].cpu;
            cpu.frame_mut(f).reset_at(0);
            cpu.set_fp(f); // set_reg targets the active frame
            cpu.set_reg(Reg::L(3), Word(cfg.cache.block_bytes));
            cpu.set_reg(Reg::L(4), Word(0x1fff0)); // wrap within 128KB
            cpu.set_reg(Reg::L(5), Word(base));
        }
        m.nodes[i].cpu.set_fp(0);
    }
    // Drive with a switch-spin-only runtime.
    while m.now() < horizon {
        for (i, ev) in m.advance() {
            match ev {
                StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                    let fp = m.nodes[i].cpu.fp();
                    let fr = m.nodes[i].cpu.frame_mut(fp);
                    fr.state = FrameState::WaitingRemote;
                    fr.psr.in_trap = false;
                    m.charge_handler(i, 6);
                    let cpu = &mut m.nodes[i].cpu;
                    cpu.count_context_switch();
                    if let Some(next) = cpu.next_ready_frame() {
                        cpu.set_fp(next);
                    }
                }
                StepEvent::Trapped(t) => panic!("unexpected trap {t}"),
                StepEvent::NoReadyFrame => {
                    let cpu = &mut m.nodes[i].cpu;
                    match cpu.next_ready_frame() {
                        Some(next) => cpu.set_fp(next),
                        None => m.charge_idle(i, 1),
                    }
                }
                _ => {}
            }
        }
    }
    let total = m.total_stats();
    let u = total.utilization();
    let miss_rate = total.remote_misses as f64 / total.useful_cycles.max(1) as f64;
    let t_avg = m.net_stats().avg_latency() * 2.0 + cfg.mem_latency as f64;
    (u, miss_rate, t_avg)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: u32| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let frames = get("--frames", 4) as usize;
    let run_length = get("--run-length", 50);

    if args.iter().any(|a| a == "--latency-sweep") {
        latency_sweep(frames, run_length);
        return;
    }

    println!("Measured utilization on the full ALEWIFE machine (400 nodes, 20-ary 2-cube)");
    println!("run length ~{run_length} cycles between remote misses; {frames} task frames");
    println!();
    println!(
        "{:>3} {:>10} {:>10} {:>10} {:>12}",
        "p", "measured U", "miss rate", "avg T", "Equation-1 U"
    );
    for p in 1..=frames {
        let (u, m, t) = measure(p, frames, run_length, 60_000);
        let pred = equation_1(p as f64, m, t, 11.0);
        println!("{p:>3} {u:>10.3} {m:>10.4} {t:>10.1} {pred:>12.3}");
    }
    println!();
    println!("shape checks (paper, Sections 3 and 8):");
    println!("  - U(1) is latency-bound; utilization climbs steeply with 2-3 threads");
    println!("  - a few threads suffice to overlap the remote round trip");
    println!("  - with context switches every ~{run_length} cycles, {frames} frames tolerate");
    println!("    latencies of roughly (p-1)*(R+C) cycles (paper: 150-300 at R=50-100)");
}
