//! Validates the analytical model's cache and network terms against
//! the simulators — the paper's "the models for the cache and network
//! terms have been validated through simulations" (Section 8).
//!
//! * Cache: p thread working sets (250 scattered blocks each)
//!   time-share a cache; the measured steady-state miss rate should be
//!   ~fixed + a small component linear in p while the working sets fit
//!   (64 Kbytes "comfortably sustain the working sets of four
//!   processes"), and grow much faster in a smaller cache.
//! * Network: open-loop uniform traffic on a k-ary n-cube; measured
//!   latency vs. the contention model at the measured channel
//!   utilization.

use april_mem::cache::{Cache, CacheConfig, LineState};
use april_model::cache_model::miss_rate;
use april_model::net_model::{hop_wait, round_trip};
use april_model::params::SystemParams;
use april_net::network::{NetConfig, Network};
use april_net::topology::Topology;
use april_util::Rng;

fn main() {
    validate_cache();
    println!();
    validate_network();
}

/// Steady-state miss rate of `p` threads time-sharing `cache_kb`, each
/// with a 250-block scattered working set and a 2% cold-churn rate.
fn measured_miss_rate(p: usize, cache_kb: u32, rng: &mut Rng) -> f64 {
    let params = SystemParams::default();
    let mut cache = Cache::new(CacheConfig {
        size_bytes: cache_kb * 1024,
        block_bytes: 16,
        assoc: 4,
    });
    let block = params.block_bytes as u32;
    // Scattered per-thread working sets (real working sets are not
    // contiguous).
    let sets: Vec<Vec<u32>> = (0..p)
        .map(|_| {
            (0..params.working_set_blocks as usize)
                .map(|_| rng.gen_below(0x40_0000) as u32 * block)
                .collect()
        })
        .collect();
    let mut cold_ptr: u32 = 0x4000_0000;
    let quantum = 100;
    let mut pass = |cache: &mut Cache, rng: &mut Rng| {
        for round in 0..2000 {
            let ws = &sets[round % p];
            for _ in 0..quantum {
                let addr = if rng.gen_bool(params.fixed_miss_rate) {
                    cold_ptr += block;
                    cold_ptr
                } else {
                    ws[rng.gen_index(ws.len())]
                };
                if !cache.access(addr, false) {
                    cache.fill(addr, LineState::Shared);
                }
            }
        }
    };
    pass(&mut cache, rng); // warm up
    cache.stats = Default::default();
    pass(&mut cache, rng); // measure
    cache.stats.miss_rate()
}

fn validate_cache() {
    println!("Cache model validation: miss rate m(p) vs resident threads");
    println!("(250-block scattered working sets, 4-way caches, 100-access quanta)");
    println!(
        "{:>3} {:>14} {:>12} | {:>14}",
        "p", "sim 64KB", "model 64KB", "sim 16KB"
    );
    let params = SystemParams::default();
    let mut rng = Rng::seed_from(42);
    let mut sim64 = Vec::new();
    for p in 1..=8 {
        let m64 = measured_miss_rate(p, 64, &mut rng);
        let m16 = measured_miss_rate(p, 16, &mut rng);
        sim64.push(m64);
        println!(
            "{:>3} {:>14.4} {:>12.4} | {:>14.4}",
            p,
            m64,
            miss_rate(&params, p as f64),
            m16
        );
    }
    let d_mid = sim64[3] - sim64[2];
    let d_end = sim64[7] - sim64[6];
    println!(
        "64KB increments: Δm(4) = {d_mid:.5}, Δm(8) = {d_end:.5} \
         (model slope = {:.5}; first order in p)",
        april_model::cache_model::interference_slope(&params)
    );
    println!("shape checks (paper, Section 8):");
    println!("  - 64KB comfortably sustains 4 working sets: m(4) barely above m(1)");
    println!("  - smaller caches suffer more interference (16KB column)");
}

/// Open-loop network: inject `lambda` packets/node/cycle of uniform
/// random traffic, measure delivered latency and channel utilization.
fn network_point(lambda: f64, cycles: u64) -> (f64, f64, f64) {
    let topo = Topology::new(3, 6); // 216 nodes: same model, tractable size
    let mut net: Network<u64> = Network::new(topo, NetConfig::default());
    let mut rng = Rng::seed_from(7);
    let n = topo.num_nodes();
    let size = 4u64;
    let mut delivered = Vec::new();
    for t in 0..cycles {
        for src in 0..n {
            if rng.gen_bool(lambda) {
                let dst = rng.gen_index(n);
                net.send(t, src, dst, size, t);
            }
        }
        net.poll_into(t, &mut delivered);
        delivered.clear();
    }
    // Drain.
    let mut t = cycles;
    while !net.is_idle() && t < cycles * 20 {
        t += 1;
        net.poll_into(t, &mut delivered);
        delivered.clear();
    }
    let avg = net.stats.avg_latency();
    let rho = net.stats.channel_utilization(topo.num_channels(), t);
    (lambda, avg, rho)
}

fn validate_network() {
    println!("Network model validation: 6-ary 3-cube, 4-flit packets, uniform traffic");
    println!(
        "{:>8} {:>8} {:>12} {:>12}",
        "lambda", "rho", "sim latency", "model latency"
    );
    // Model configured for the same small machine.
    let params = SystemParams {
        radix: 6.0,
        ..SystemParams::default()
    };
    // One-way model latency: hops + packet + per-hop contention.
    for lambda in [0.005, 0.01, 0.02, 0.04, 0.08] {
        let (_, sim, rho) = network_point(lambda, 4000);
        let one_way = params.avg_hops()
            + params.packet_size
            + params.avg_hops() * hop_wait(rho, params.packet_size);
        println!("{lambda:>8.3} {rho:>8.3} {sim:>12.2} {one_way:>12.2}");
    }
    println!("shape check: latency ~= hops + B when unloaded, rising with utilization;");
    println!(
        "round-trip form T(rho) used by the utilization model: T(0) = {:.0}",
        round_trip(&SystemParams::default(), 0.0)
    );
}
