//! Multi-run sweep harness: farms *independent* simulations across
//! host threads. Where [`ParallelAlewife`](april_machine::parallel)
//! parallelizes one run deterministically, this harness parallelizes a
//! grid of whole runs — fault-seed soaks and utilization points — each
//! of which is sequential and reproducible on its own, so the sweep is
//! trivially deterministic: jobs are indexed up front, claimed by an
//! atomic cursor, and reported in job order no matter which thread
//! finished first.
//!
//! Since the april-serve refactor the harness is a thin client of the
//! shared job executor (`april_serve::exec`): the soak grid — one
//! workload under many fault plans — is **warm-started** from a single
//! checkpoint cut just short of the workload's quiescence point
//! (calibrated by a probe run), so N soak points pay for one boot +
//! warmup instead of N. Fault plans are installed at the warm point,
//! identically for warm forks and cold re-runs, so the two setup paths
//! stay byte-identical (see `crates/machine/tests/warm_start.rs`).
//! The utilization grid varies the program itself, so each of its
//! points is a cold boot.
//!
//! `SWEEP_THREADS` overrides the worker count (default: host
//! parallelism); `SWEEP_SMOKE=1` shrinks the grid for CI.

use april_serve::{build_warm_image, run_job, FaultSpec, JobSpec, SimSpec, WarmImage, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const MAX: u64 = 50_000_000;

/// One independent simulation in the grid.
struct Job {
    name: String,
    spec: JobSpec,
    warm: Option<Arc<WarmImage>>,
}

/// What one run reports.
struct Row {
    name: String,
    warm: bool,
    cycles: u64,
    instrs: u64,
    utilization: f64,
    drops: u64,
    dups: u64,
    delays: u64,
    setup_ns: u64,
    fault: String,
}

fn base_spec(outer: u32, inner: u32) -> SimSpec {
    SimSpec {
        radix: 2,
        dim: 2,
        workload: Workload::Contended { outer, inner },
        ..SimSpec::default()
    }
}

fn execute(job: &Job) -> Row {
    let out = run_job(&job.spec, job.warm.as_deref()).expect("sweep job refused");
    Row {
        name: job.name.clone(),
        warm: out.warm_used,
        cycles: out.cycles,
        instrs: out.instrs,
        utilization: out.utilization,
        drops: out.drops,
        dups: out.dups,
        delays: out.delays,
        setup_ns: out.setup_ns,
        fault: out.fault.unwrap_or_else(|| "-".into()),
    }
}

fn build_jobs(smoke: bool) -> (Vec<Job>, u64) {
    let outer = if smoke { 10 } else { 50 };
    let soak_sim = base_spec(outer, 0);

    // Calibrate the warm cut: probe the lossless soak point to
    // quiescence, then cut the shared checkpoint a quarter of the way
    // in — early enough that every fault plan still has most of the
    // run to act on, late enough to be worth sharing.
    let probe = run_job(
        &JobSpec {
            sim: soak_sim,
            max_cycles: MAX,
            ..JobSpec::default()
        },
        None,
    )
    .expect("probe run refused");
    let warm_cut = (probe.cycles / 4).max(1);
    let img = Arc::new(build_warm_image(&soak_sim, warm_cut).expect("warm image build failed"));

    let soak = |name: String, fault: Option<FaultSpec>| Job {
        name,
        spec: JobSpec {
            sim: soak_sim,
            fault,
            warm: Some(1),
            warm_cycles: warm_cut,
            max_cycles: MAX,
            want_trace: false,
        },
        warm: Some(img.clone()),
    };

    let mut jobs = Vec::new();
    // Fault-seed soak grid: the same contended workload under
    // increasingly lossy networks, several seeds each — all forked
    // from the one warm image.
    let seeds: &[u64] = if smoke { &[1, 2] } else { &[1, 2, 3, 4] };
    let drops: &[f64] = if smoke {
        &[0.0, 0.02]
    } else {
        &[0.0, 0.01, 0.02, 0.05]
    };
    for &drop in drops {
        if drop == 0.0 {
            // The lossless point is seed-independent: one run suffices.
            jobs.push(soak("soak/lossless".into(), None));
            continue;
        }
        for &seed in seeds {
            jobs.push(soak(
                format!("soak/drop{drop:.2}/seed{seed}"),
                Some(FaultSpec {
                    seed,
                    drop,
                    dup: drop,
                    delay: 2.0 * drop,
                    max_delay: 40,
                }),
            ));
        }
    }
    // Utilization curve: compute per remote access from zero to heavy.
    // Each point is its own program, so no shared warm image applies.
    let inners: &[u32] = if smoke { &[0, 100] } else { &[0, 25, 100, 400] };
    for &inner in inners {
        jobs.push(Job {
            name: format!("util/inner{inner}"),
            spec: JobSpec {
                sim: base_spec(outer, inner),
                max_cycles: MAX,
                ..JobSpec::default()
            },
            warm: None,
        });
    }
    (jobs, warm_cut)
}

fn main() {
    let smoke = std::env::var("SWEEP_SMOKE").is_ok();
    let (jobs, warm_cut) = build_jobs(smoke);
    let threads = std::env::var("SWEEP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        .max(1);

    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Row>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { return };
                *results[i].lock().expect("result slot poisoned") = Some(execute(job));
            });
        }
    });

    println!(
        "sweep: {} independent runs on {} thread(s), soak grid warm-started at cycle {}",
        jobs.len(),
        threads.min(jobs.len()),
        warm_cut,
    );
    println!(
        "{:<24} {:>4} {:>10} {:>10} {:>6} {:>6} {:>6} {:>7} {:>9}  fault",
        "run", "warm", "cycles", "instrs", "util", "drops", "dups", "delays", "setup ms"
    );
    for slot in &results {
        let row = slot
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("job ran");
        println!(
            "{:<24} {:>4} {:>10} {:>10} {:>5.1}% {:>6} {:>6} {:>7} {:>9.2}  {}",
            row.name,
            if row.warm { "yes" } else { "no" },
            row.cycles,
            row.instrs,
            100.0 * row.utilization,
            row.drops,
            row.dups,
            row.delays,
            row.setup_ns as f64 / 1e6,
            row.fault,
        );
    }
}
