//! Multi-run sweep harness: farms *independent* simulations across
//! host threads. Where [`ParallelAlewife`](april_machine::parallel)
//! parallelizes one run deterministically, this harness parallelizes a
//! grid of whole runs — fault-seed soaks and utilization points — each
//! of which is sequential and reproducible on its own, so the sweep is
//! trivially deterministic: jobs are indexed up front, claimed by an
//! atomic cursor, and reported in job order no matter which thread
//! finished first.
//!
//! `SWEEP_THREADS` overrides the worker count (default: host
//! parallelism); `SWEEP_SMOKE=1` shrinks the grid for CI.

use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_machine::config::MachineConfig;
use april_machine::driver::{drive_sequential, SwitchSpin};
use april_machine::{Alewife, Machine};
use april_net::fault::{FaultPlan, FaultRule};
use april_net::topology::Topology;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independent simulation in the grid.
struct Job {
    name: String,
    cfg: MachineConfig,
    prog: Program,
    plan: Option<FaultPlan>,
    max: u64,
}

/// What one run reports.
struct Row {
    name: String,
    cycles: u64,
    instrs: u64,
    utilization: f64,
    drops: u64,
    dups: u64,
    delays: u64,
    fault: String,
}

/// All nodes hammer one falsely-shared block region homed at node 0,
/// with `inner` ALU cycles of local compute between remote accesses —
/// `inner = 0` is pure contention, large `inner` is compute-bound.
fn workload(outer: u32, inner: u32) -> Program {
    let compute = if inner > 0 {
        format!(
            "
            movi {inner}, r12
        inner:
            add r13, 4, r13
            sub r12, 1, r12
            jne inner
            nop"
        )
    } else {
        String::new()
    };
    assemble(&format!(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word, homed at node 0
            movi {outer}, r10
        outer:{compute}
            ld r9+0, r11       ; remote read miss
            add r11, 4, r11
            st r11, r9+0       ; write-upgrade miss
            flush r9+0
            sub r10, 1, r10
            jne outer
            nop
            halt
        ",
    ))
    .unwrap()
}

fn run_job(job: &Job) -> Row {
    let mut m = Alewife::new(job.cfg, job.prog.clone());
    if let Some(plan) = &job.plan {
        m.set_fault_plan(plan.clone());
    }
    for i in 0..m.num_procs() {
        m.cpu_mut(i).boot(0);
    }
    let fault = drive_sequential(&mut m, &SwitchSpin::default(), job.max);
    let stats = m.total_stats();
    let fs = m.fault_stats();
    Row {
        name: job.name.clone(),
        cycles: m.now(),
        instrs: stats.instructions,
        utilization: stats.instructions as f64 / (stats.total() as f64).max(1.0),
        drops: fs.dropped,
        dups: fs.duplicated,
        delays: fs.delayed,
        fault: match fault {
            None => "-".into(),
            Some(f) => format!("{f}"),
        },
    }
}

fn build_jobs(smoke: bool) -> Vec<Job> {
    let cfg = MachineConfig {
        topology: Topology::new(2, 2),
        region_bytes: 1 << 20,
        ..MachineConfig::default()
    };
    let outer = if smoke { 10 } else { 50 };
    let mut jobs = Vec::new();
    // Fault-seed soak grid: the same contended workload under
    // increasingly lossy networks, several seeds each.
    let seeds: &[u64] = if smoke { &[1, 2] } else { &[1, 2, 3, 4] };
    let drops: &[f64] = if smoke {
        &[0.0, 0.02]
    } else {
        &[0.0, 0.01, 0.02, 0.05]
    };
    for &drop in drops {
        if drop == 0.0 {
            // The lossless point is seed-independent: one run suffices.
            jobs.push(Job {
                name: "soak/lossless".into(),
                cfg,
                prog: workload(outer, 0),
                plan: None,
                max: 50_000_000,
            });
            continue;
        }
        for &seed in seeds {
            jobs.push(Job {
                name: format!("soak/drop{drop:.2}/seed{seed}"),
                cfg,
                prog: workload(outer, 0),
                plan: Some(FaultPlan::new(seed).with_default_rule(FaultRule {
                    drop,
                    dup: drop,
                    delay: 2.0 * drop,
                    max_delay: 40,
                })),
                max: 50_000_000,
            });
        }
    }
    // Utilization curve: compute per remote access from zero to heavy.
    let inners: &[u32] = if smoke { &[0, 100] } else { &[0, 25, 100, 400] };
    for &inner in inners {
        jobs.push(Job {
            name: format!("util/inner{inner}"),
            cfg,
            prog: workload(outer, inner),
            plan: None,
            max: 50_000_000,
        });
    }
    jobs
}

fn main() {
    let smoke = std::env::var("SWEEP_SMOKE").is_ok();
    let jobs = build_jobs(smoke);
    let threads = std::env::var("SWEEP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        .max(1);

    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Row>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { return };
                *results[i].lock().expect("result slot poisoned") = Some(run_job(job));
            });
        }
    });

    println!(
        "sweep: {} independent runs on {} thread(s)",
        jobs.len(),
        threads.min(jobs.len())
    );
    println!(
        "{:<24} {:>10} {:>10} {:>6} {:>6} {:>6} {:>7}  fault",
        "run", "cycles", "instrs", "util", "drops", "dups", "delays"
    );
    for slot in &results {
        let row = slot
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("job ran");
        println!(
            "{:<24} {:>10} {:>10} {:>5.1}% {:>6} {:>6} {:>7}  {}",
            row.name,
            row.cycles,
            row.instrs,
            100.0 * row.utilization,
            row.drops,
            row.dups,
            row.delays,
            row.fault,
        );
    }
}
