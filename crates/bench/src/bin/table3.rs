//! Table 3: execution time for the Mul-T benchmarks.
//!
//! "We ran each program on the Encore Multimax, on APRIL using normal
//! task creation, and on APRIL using lazy task creation. For purposes
//! of comparison, execution time has been normalized to the time taken
//! to execute a sequential version of each program" (paper, Section
//! 7). Like the paper, the multi-processor runs use the processor
//! simulator without the cache and network simulators — a shared
//! memory with no latency — so the overheads measured are those of
//! task creation, synchronization and future detection.
//!
//! Columns: `T seq` (optimizing sequential compiler, = 1.0 by
//! definition), `Mul-T seq` (sequential code under the parallel
//! compiler: the cost of future *detection*), then parallel code on
//! 1–16 processors.
//!
//! Usage: `table3 [--quick]`

use april_bench::{fmt_norm, run_ideal};
use april_mult::{programs, CompileOptions};

struct Row {
    system: &'static str,
    opts: CompileOptions,
    seq_opts: CompileOptions,
}

fn rows() -> Vec<Row> {
    vec![
        Row {
            system: "Encore",
            opts: CompileOptions::encore(),
            seq_opts: CompileOptions::encore_seq(),
        },
        Row {
            system: "APRIL",
            opts: CompileOptions::april(),
            seq_opts: CompileOptions::april_seq(),
        },
        Row {
            system: "Apr-lazy",
            opts: CompileOptions::april_lazy(),
            seq_opts: CompileOptions::april_seq(),
        },
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (fib_n, factor_hi, queens_n, sp_layers, sp_width) = if quick {
        (12, 200, 6, 6, 8)
    } else {
        (15, 1200, 8, 10, 16)
    };

    let benches: Vec<(&str, String)> = vec![
        ("fib", programs::fib(fib_n)),
        ("factor", programs::factor(factor_hi)),
        ("queens", programs::queens(queens_n)),
        ("speech", programs::speech(sp_layers, sp_width)),
    ];
    let procs = [1usize, 2, 4, 8, 16];

    println!("Table 3: Execution time for Mul-T benchmarks (normalized to T seq)");
    println!(
        "params: fib({fib_n}), factor({factor_hi}), queens({queens_n}), speech({sp_layers}x{sp_width})"
    );
    println!();
    println!(
        "{:8} {:9} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "Program", "System", "T seq", "MulTseq", "1", "2", "4", "8", "16"
    );

    let mut detection_overheads = Vec::new();
    for (name, src) in &benches {
        // The sequential baseline (same for every system label; the
        // Encore's own T-seq would differ only in absolute cycles,
        // which normalization removes).
        let tseq = run_ideal(src, &CompileOptions::t_seq(), 1);
        let base = tseq.cycles as f64;
        for row in rows() {
            let seq = run_ideal(src, &row.seq_opts, 1);
            let mut cols = vec![1.0, seq.cycles as f64 / base];
            if row.system == "Encore" {
                detection_overheads.push((name.to_string(), seq.cycles as f64 / base));
            }
            for &p in &procs {
                let r = run_ideal(src, &row.opts, p);
                assert_eq!(
                    r.value, tseq.value,
                    "{name}/{}/{p} wrong answer",
                    row.system
                );
                cols.push(r.cycles as f64 / base);
            }
            print!(
                "{:8} {:9}",
                if row.system == "Encore" { name } else { "" },
                row.system
            );
            for c in cols {
                print!(" {:>7}", fmt_norm(c));
            }
            println!();
        }
        println!();
    }

    println!("Future-detection overhead (Mul-T seq / T seq):");
    for (name, ov) in &detection_overheads {
        println!("  Encore {name:8} {ov:.2}x   APRIL {name:8} 1.00x (tag hardware)");
    }
    println!();
    println!("Paper shape checks:");
    println!("  - Encore Mul-T seq ~= 1.8-2.0x (software future detection)");
    println!("  - APRIL Mul-T seq = 1.0x (hardware tags)");
    println!("  - fib: eager futures cost >> lazy futures (paper: 14x vs 1.5x)");
    println!("  - coarser-grain programs (factor/queens/speech) have small overheads");
    println!("  - near-linear speedup 1->16 processors");
}
