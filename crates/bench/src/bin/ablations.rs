//! Ablations over the design choices the paper argues for:
//!
//! * context-switch cost (4-cycle custom APRIL vs 11-cycle SPARC vs a
//!   slow 64-cycle trap) on a real fine-grain workload;
//! * number of hardware task frames (the 4-frame choice of Section 5)
//!   on the full machine's utilization;
//! * full/empty trap policy (spin / switch-spin / block-after-k) on a
//!   producer–consumer;
//! * task grain size vs. eager/lazy future overhead (the Section 3.2
//!   motivation for lazy task creation).
//!
//! Usage: `ablations [--quick]`

use april_core::cpu::CpuConfig;
use april_machine::IdealMachine;
use april_mult::{compile, programs, CompileOptions};
use april_runtime::{abi, FePolicy, RtConfig, Runtime};

const REGION: u32 = 16 << 20;

fn run_with(
    src: &str,
    opts: &CompileOptions,
    procs: usize,
    cpu: CpuConfig,
    rt: RtConfig,
) -> april_runtime::RunResult {
    let prog = compile(src, opts).expect("compiles");
    let m = IdealMachine::with_cpu_config(procs, procs * REGION as usize, prog, cpu);
    let mut r = Runtime::new(m, rt);
    r.run().expect("completes")
}

fn rt_cfg() -> RtConfig {
    RtConfig {
        region_bytes: REGION,
        max_cycles: 20_000_000_000,
        ..RtConfig::default()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fib_n = if quick { 11 } else { 14 };

    switch_cost_ablation(fib_n);
    println!();
    fe_policy_ablation();
    println!();
    grain_size_ablation(if quick { 11 } else { 13 });
}

/// Paper, Section 8: "The relatively large ten-cycle context switch
/// overhead does not significantly impact performance ... the
/// switching frequency is expected to be small". On the ideal machine
/// the switch paths exercised are future-touch blocking and scheduling.
fn switch_cost_ablation(n: u32) {
    println!("Context-switch cost ablation: fib({n}), eager futures, 8 processors");
    println!("{:>28} {:>12} {:>8}", "configuration", "cycles", "vs 11cy");
    let configs = [
        ("custom APRIL (2+2 = 4cy)", 2u64, 2u64),
        ("SPARC APRIL (5+6 = 11cy)", 5, 6),
        ("slow trap (32+32 = 64cy)", 32, 32),
    ];
    let results: Vec<(&str, u64)> = configs
        .iter()
        .map(|&(label, entry, handler)| {
            let cpu = CpuConfig {
                trap_entry_cycles: entry,
                ..CpuConfig::default()
            };
            let rt = RtConfig {
                switch_handler_cycles: handler,
                ..rt_cfg()
            };
            (
                label,
                run_with(&programs::fib(n), &CompileOptions::april(), 8, cpu, rt).cycles,
            )
        })
        .collect();
    let base = results[1].1; // the SPARC configuration
    for (label, cycles) in results {
        println!(
            "{:>28} {:>12} {:>8}",
            label,
            cycles,
            format!("{:+.1}%", (cycles as f64 / base as f64 - 1.0) * 100.0)
        );
    }
    println!("(4-10 cycle switches are within a few percent of each other; only a");
    println!(" pathological trap cost changes the picture — the paper's argument for");
    println!(" tolerating cheap software context switches.)");
}

/// Spin vs switch-spin vs block-after-k on a consumer that waits ~2000
/// cycles for a producer on another processor.
fn fe_policy_ablation() {
    println!("Full/empty trap policy ablation (consumer waits ~2000 cycles):");
    println!(
        "{:>24} {:>10} {:>10} {:>9} {:>8}",
        "policy", "cycles", "fe traps", "switches", "blocks"
    );
    let body = format!(
        "
        .entry main
        .static 0x400
        .word 0 empty
        main:
            or g5, 0, g1
            add g5, 8, g5
            movi @producer, g2
            st g2, g1+0
            or g1, 2, r1
            rtcall {fut}
            movi 0x400, r3
        wait:
            ldtw r3+0, r4
            or r4, 0, r1
            rtcall {done}
        producer:
            movi 2000, r5
        delay:
            sub r5, 1, r5
            jne delay
            nop
            movi 0x400, r3
            movi 28, r4
            stfnt r4, r3+0
            movi 28, r1
            jmpl r31+0, g0
            nop
        {stubs}
        ",
        fut = abi::RT_FUTURE,
        done = abi::RT_MAIN_DONE,
        stubs = abi::entry_stubs_asm(),
    );
    let prog = april_core::isa::asm::assemble(&body).expect("assembles");
    for (label, policy) in [
        ("spin", FePolicy::Spin),
        ("switch-spin", FePolicy::SwitchSpin),
        ("block after 3 spins", FePolicy::BlockAfterSpins(3)),
    ] {
        let m = IdealMachine::new(2, 2 * REGION as usize, prog.clone());
        let mut rt = Runtime::new(
            m,
            RtConfig {
                fe_policy: policy,
                ..rt_cfg()
            },
        );
        let r = rt.run().expect("completes");
        println!(
            "{:>24} {:>10} {:>10} {:>9} {:>8}",
            label, r.cycles, r.total.fe_traps, r.total.context_switches, r.sched.blocks
        );
    }
    println!("(Spinning burns a trap every retry; switch-spinning interleaves other");
    println!(" work; blocking frees the frame entirely — Section 3's three responses.)");
}

/// Eager vs lazy overhead as the task grain shrinks: fib(k) has grain
/// ~2^k/2^n of the root; smaller n = finer grain = worse eager ratio.
fn grain_size_ablation(max_n: u32) {
    println!("Task grain vs future overhead (1 processor, normalized to sequential):");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>8}",
        "fib(n)", "seq cyc", "eager", "lazy", "e/l"
    );
    for n in [max_n - 4, max_n - 2, max_n] {
        let src = programs::fib(n);
        let cpu = CpuConfig::default();
        let seq = run_with(&src, &CompileOptions::t_seq(), 1, cpu, rt_cfg());
        let eager = run_with(&src, &CompileOptions::april(), 1, cpu, rt_cfg());
        let lazy = run_with(&src, &CompileOptions::april_lazy(), 1, cpu, rt_cfg());
        let e = eager.cycles as f64 / seq.cycles as f64;
        let l = lazy.cycles as f64 / seq.cycles as f64;
        println!(
            "{:>6} {:>10} {:>11.2}x {:>11.2}x {:>7.2}x",
            n,
            seq.cycles,
            e,
            l,
            e / l
        );
    }
    println!("(The overhead ratio is constant per-future, so the relative cost is");
    println!(" flat in n; lazy task creation removes most of it — Table 3's fib row.)");
}
