//! Figure 5: processor utilization vs. resident threads, with the
//! relative sizes of the cache, network and overhead components — and
//! Table 4, the default system parameters (`--params`).
//!
//! "We see that as few as three processes yield close to 80%
//! utilization for a ten-cycle context-switch overhead" (paper,
//! Section 8).

use april_model::params::SystemParams;
use april_model::utilization::figure5_sweep;

fn main() {
    let params = SystemParams::default();
    if std::env::args().any(|a| a == "--params") {
        print_table4(&params);
        return;
    }

    println!("Figure 5: processor utilization U(p) vs resident threads (C = 10 cycles)");
    println!("columns: successively adding network contention, cache interference,");
    println!("and context-switch overhead; the last column is useful work.");
    println!();
    println!(
        "{:>3} {:>8} {:>10} {:>12} {:>10}  | {:>8} {:>8} {:>8}",
        "p", "Ideal", "Network", "Cache+Net", "Useful", "netloss", "cacheloss", "csloss"
    );
    println!("{:>3} {:>8} {:>10} {:>12} {:>10}", 0, 0.0, 0.0, 0.0, 0.0);
    for pt in figure5_sweep(&params, 8, params.switch_overhead) {
        println!(
            "{:>3} {:>8.3} {:>10.3} {:>12.3} {:>10.3}  | {:>8.3} {:>9.3} {:>8.3}",
            pt.p as u32,
            pt.ideal,
            pt.with_network,
            pt.with_cache_network,
            pt.useful,
            pt.network_loss(),
            pt.cache_loss(),
            pt.switch_loss(),
        );
    }
    println!();
    let pts = figure5_sweep(&params, 8, params.switch_overhead);
    let u3 = pts[2].useful;
    println!("U(3) = {u3:.3}  (paper: \"as few as three processes yield close to 80%\")");
    let peak = pts.iter().map(|x| x.useful).fold(0.0, f64::max);
    println!("peak U = {peak:.3} (paper: \"utilization limited to a maximum of about 0.80\")");

    // The custom-APRIL comparison of Section 8's overhead discussion.
    println!();
    println!("Context-switch overhead sensitivity (U(4)):");
    for c in [0.0, 4.0, 10.0, 16.0, 64.0] {
        let u = april_model::utilization::solve(&params, 4.0, true, true, c);
        println!("  C = {c:>4.0} cycles -> U = {u:.3}");
    }
}

fn print_table4(p: &SystemParams) {
    println!("Table 4: Default system parameters");
    println!("  Memory latency          {:>8.0} cycles", p.memory_latency);
    println!("  Network dimension n     {:>8.0}", p.dim);
    println!("  Network radix k         {:>8.0}", p.radix);
    println!(
        "  Fixed miss rate         {:>8.1} %",
        p.fixed_miss_rate * 100.0
    );
    println!("  Average packet size     {:>8.0}", p.packet_size);
    println!("  Cache block size        {:>8.0} bytes", p.block_bytes);
    println!(
        "  Thread working set size {:>8.0} blocks",
        p.working_set_blocks
    );
    println!(
        "  Cache size              {:>8.0} Kbytes",
        p.cache_bytes / 1024.0
    );
    println!();
    println!("Derived:");
    println!("  processors (k^n)        {:>8.0}", p.num_processors());
    println!("  average hops (nk/3)     {:>8.0}", p.avg_hops());
    println!(
        "  unloaded round trip     {:>8.0} cycles (paper: 55)",
        p.base_round_trip()
    );
    println!(
        "  latency tolerated by 4 frames, 50-100 cycle run lengths: {:.0}-{:.0} cycles",
        p.tolerated_latency(4.0, 50.0),
        p.tolerated_latency(4.0, 100.0)
    );
}
