//! The network component of the multithreaded-processor model.
//!
//! A k-ary n-cube with single-flit-per-cycle channels: each request
//! and its reply cross `avg_hops` stages; contention adds a per-hop
//! queueing delay that grows with channel utilization ρ. Channel
//! utilization itself grows with the processors' useful issue rate —
//! the feedback the paper summarizes as "available network bandwidth
//! limits the maximum rate at which computation can proceed".

use crate::params::SystemParams;

/// Per-hop queueing wait for channel utilization `rho` and packet
/// size `b`: an M/G/1-style `ρ·B / 2(1−ρ)` term, the standard
/// first-order model for wormhole/cut-through k-ary n-cubes.
pub fn hop_wait(rho: f64, b: f64) -> f64 {
    let rho = rho.clamp(0.0, 0.98);
    rho * b / (2.0 * (1.0 - rho))
}

/// Channel utilization when each processor does useful work a fraction
/// `u` of the time and misses at rate `m`: every miss launches a
/// request and a reply of `packet_size` flits across `avg_hops`
/// channels, spread over the `2n` outgoing channels per node.
pub fn channel_utilization(params: &SystemParams, u: f64, m: f64) -> f64 {
    let pkts_per_cycle = 2.0 * u * m;
    pkts_per_cycle * params.packet_size * params.avg_hops() / (2.0 * params.dim)
}

/// Round-trip latency at channel utilization `rho`: the unloaded
/// 55-cycle base plus queueing on every hop of both trips.
pub fn round_trip(params: &SystemParams, rho: f64) -> f64 {
    params.base_round_trip() + 2.0 * params.avg_hops() * hop_wait(rho, params.packet_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_matches_table_4() {
        let p = SystemParams::default();
        let t = round_trip(&p, 0.0);
        assert!((54.0..=56.0).contains(&t), "T(0) = {t}");
    }

    #[test]
    fn latency_increases_with_load() {
        let p = SystemParams::default();
        assert!(round_trip(&p, 0.5) > round_trip(&p, 0.1));
        assert!(round_trip(&p, 0.9) > round_trip(&p, 0.5));
    }

    #[test]
    fn utilization_scales_with_miss_rate() {
        let p = SystemParams::default();
        let lo = channel_utilization(&p, 0.8, 0.01);
        let hi = channel_utilization(&p, 0.8, 0.04);
        assert!((hi / lo - 4.0).abs() < 1e-9);
    }

    #[test]
    fn hop_wait_is_zero_when_idle() {
        assert_eq!(hop_wait(0.0, 4.0), 0.0);
        assert!(hop_wait(0.97, 4.0) > 10.0, "near saturation waits explode");
    }
}
