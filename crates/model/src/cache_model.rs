//! The cache component of the multithreaded-processor model.
//!
//! "The private working sets of multiple contexts interfere in the
//! cache" (paper, Section 8). The miss rate is "the sum of two
//! components: one component independent of the number of threads p
//! and the other linearly related to p (to first order)" — a form the
//! paper validated through simulation (and which `validate_model`
//! re-validates against this repository's cache simulator).

use crate::params::SystemParams;

/// Miss rate with `p` resident threads: the fixed component (cold
/// fetches and coherence invalidations, Table 4's 2%) plus first-order
/// interference proportional to the fraction of the cache each extra
/// thread's working set displaces.
pub fn miss_rate(params: &SystemParams, p: f64) -> f64 {
    let occupancy = params.working_set_blocks / params.cache_blocks();
    let slope = params.fixed_miss_rate * params.interference_coeff * occupancy;
    params.fixed_miss_rate + slope * (p - 1.0).max(0.0)
}

/// The linear interference slope itself (per additional thread).
pub fn interference_slope(params: &SystemParams) -> f64 {
    params.fixed_miss_rate
        * params.interference_coeff
        * (params.working_set_blocks / params.cache_blocks())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_thread_sees_only_fixed_misses() {
        let p = SystemParams::default();
        assert_eq!(miss_rate(&p, 1.0), p.fixed_miss_rate);
    }

    #[test]
    fn miss_rate_grows_linearly() {
        let p = SystemParams::default();
        let s = interference_slope(&p);
        assert!(s > 0.0);
        let d1 = miss_rate(&p, 4.0) - miss_rate(&p, 3.0);
        let d2 = miss_rate(&p, 8.0) - miss_rate(&p, 7.0);
        assert!((d1 - d2).abs() < 1e-12, "first order in p");
        assert!((d1 - s).abs() < 1e-12);
    }

    #[test]
    fn bigger_caches_interfere_less() {
        let small = SystemParams::default();
        let big = SystemParams {
            cache_bytes: 256.0 * 1024.0,
            ..small
        };
        assert!(miss_rate(&big, 4.0) < miss_rate(&small, 4.0));
    }

    #[test]
    fn four_working_sets_fit_a_64k_cache_comfortably() {
        // Section 8: "caches greater than 64 Kbytes comfortably sustain
        // the working sets of four processes".
        let p = SystemParams::default();
        assert!(4.0 * p.working_set_blocks < p.cache_blocks());
        assert!(miss_rate(&p, 4.0) < 1.5 * p.fixed_miss_rate);
    }
}
