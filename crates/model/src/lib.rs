//! # april-model — scalability model for multithreaded processors
//!
//! The analytical model of the paper's Section 8 (detailed in Agarwal,
//! *Performance Tradeoffs in Multithreaded Processors*, MIT VLSI Memo
//! 89-566): processor utilization as a function of the number of
//! resident threads, folding in cache interference, network contention
//! and context-switch overhead.
//!
//! * [`params`] — Table 4's default system parameters.
//! * [`cache_model`] — m(p): fixed + first-order interference.
//! * [`net_model`] — T(p): unloaded latency + contention.
//! * [`utilization`] — Equation 1, the self-consistent solver, and the
//!   Figure 5 component decomposition.
//!
//! # Examples
//!
//! ```
//! use april_model::params::SystemParams;
//! use april_model::utilization::solve;
//!
//! // "close to 80% processor utilization with as few as three
//! // resident threads per processor" (abstract).
//! let u3 = solve(&SystemParams::default(), 3.0, true, true, 10.0);
//! assert!(u3 > 0.75);
//! ```

#![deny(missing_docs)]

pub mod cache_model;
pub mod net_model;
pub mod params;
pub mod utilization;

pub use params::SystemParams;
pub use utilization::{
    equation_1, figure5_sweep, open_loop_knee, open_loop_utilization, solve, UtilizationPoint,
};
