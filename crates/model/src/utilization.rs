//! Processor utilization — Equation 1 of the paper and the Figure 5
//! component decomposition.
//!
//! ```text
//!          ⎧  p / (1 + T(p)·m(p))        for p < (1 + T(p)m(p)) / (1 + C·m(p))
//!  U(p) =  ⎨
//!          ⎩  1 / (1 + C·m(p))           otherwise
//! ```
//!
//! With few threads, network latency cannot be fully overlapped; with
//! enough threads, utilization is limited only by the context-switch
//! overhead paid on every miss — and by the cache and network
//! interference folded into m(p) and T(p).

use crate::cache_model::miss_rate;
use crate::net_model::{channel_utilization, round_trip};
use crate::params::SystemParams;

/// Equation 1 for given miss rate `m`, round-trip latency `t`, and
/// switch overhead `c`.
///
/// ```
/// use april_model::equation_1;
///
/// // One thread, 2% misses, 55-cycle round trips: latency-bound.
/// assert!((equation_1(1.0, 0.02, 55.0, 10.0) - 1.0 / 2.1).abs() < 1e-12);
/// // Many threads: capped by the 1/(1 + C·m) switch-overhead bound.
/// assert!((equation_1(8.0, 0.02, 55.0, 10.0) - 1.0 / 1.2).abs() < 1e-12);
/// ```
pub fn equation_1(p: f64, m: f64, t: f64, c: f64) -> f64 {
    let saturation = (1.0 + t * m) / (1.0 + c * m);
    if p < saturation {
        p / (1.0 + t * m)
    } else {
        1.0 / (1.0 + c * m)
    }
}

/// Solves the self-consistent utilization at `p` resident threads:
/// utilization determines network load, network load determines
/// latency, latency determines utilization. `degrade_cache`/
/// `degrade_net` select which interference components apply (for the
/// Figure 5 decomposition); `c` is the context-switch overhead.
pub fn solve(params: &SystemParams, p: f64, degrade_cache: bool, degrade_net: bool, c: f64) -> f64 {
    let m = if degrade_cache {
        miss_rate(params, p)
    } else {
        miss_rate(params, 1.0)
    };
    let mut u = 0.5;
    for _ in 0..200 {
        let t = if degrade_net {
            round_trip(params, channel_utilization(params, u, m))
        } else {
            params.base_round_trip()
        };
        let next = equation_1(p, m, t, c);
        u = 0.5 * u + 0.5 * next;
    }
    u
}

/// One row of the Figure 5 data: utilization under successively more
/// realistic assumptions, plus the stacked components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationPoint {
    /// Resident threads p.
    pub p: f64,
    /// Ideal: single-thread miss rate and unloaded network, no switch
    /// overhead cap below the 1/(1+Cm) bound — the paper's "Ideal".
    pub ideal: f64,
    /// With network contention only.
    pub with_network: f64,
    /// With network contention and cache interference.
    pub with_cache_network: f64,
    /// Full model (Equation 1 with C): the useful-work curve.
    pub useful: f64,
}

impl UtilizationPoint {
    /// The share lost to network contention.
    pub fn network_loss(&self) -> f64 {
        (self.ideal - self.with_network).max(0.0)
    }

    /// The share lost to cache interference.
    pub fn cache_loss(&self) -> f64 {
        (self.with_network - self.with_cache_network).max(0.0)
    }

    /// The share lost to context-switch overhead.
    pub fn switch_loss(&self) -> f64 {
        (self.with_cache_network - self.useful).max(0.0)
    }
}

/// Section 8 applied to the open-loop server (DESIGN.md §15): one
/// service thread per edge node absorbs requests arriving at
/// `offered_work` useful cycles per processor cycle. Below the knee
/// the processor is busy exactly as often as work arrives, so
/// utilization tracks the offered load; past it, utilization caps at
/// the single-thread Equation 1 bound for miss rate `m`, round-trip
/// latency `t`, and context-switch overhead `c`.
///
/// ```
/// use april_model::open_loop_utilization;
///
/// // Light load: the server idles between requests.
/// assert!((open_loop_utilization(0.2, 0.02, 55.0, 10.0) - 0.2).abs() < 1e-12);
/// // Overload: capped at the p = 1 Equation 1 bound.
/// let cap = open_loop_utilization(2.0, 0.02, 55.0, 10.0);
/// assert!((cap - 1.0 / 2.1).abs() < 1e-12);
/// ```
pub fn open_loop_utilization(offered_work: f64, m: f64, t: f64, c: f64) -> f64 {
    offered_work.clamp(0.0, open_loop_knee(m, t, c))
}

/// The offered load (useful cycles per processor cycle) at which the
/// open-loop server saturates — the knee of the throughput-vs-load
/// curve, and the ceiling of [`open_loop_utilization`].
pub fn open_loop_knee(m: f64, t: f64, c: f64) -> f64 {
    equation_1(1.0, m, t, c)
}

/// Computes the Figure 5 sweep for `p = 1..=max_p` with context-switch
/// overhead `c`.
pub fn figure5_sweep(params: &SystemParams, max_p: usize, c: f64) -> Vec<UtilizationPoint> {
    (1..=max_p)
        .map(|p| {
            let p = p as f64;
            // The ideal curve excludes every interference term *and*
            // the switch overhead (it caps at the no-overhead bound).
            let ideal = solve(params, p, false, false, 0.0);
            let with_network = solve(params, p, false, true, 0.0);
            let with_cache_network = solve(params, p, true, true, 0.0);
            let useful = solve(params, p, true, true, c);
            UtilizationPoint {
                p,
                ideal,
                with_network,
                with_cache_network,
                useful,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SystemParams {
        SystemParams::default()
    }

    #[test]
    fn single_thread_utilization_matches_closed_form() {
        // U(1) = 1 / (1 + m·T) with T = 55, m = 0.02: ≈ 0.476.
        let u = solve(&params(), 1.0, false, false, 10.0);
        let expect = 1.0 / (1.0 + 0.02 * params().base_round_trip());
        assert!((u - expect).abs() < 1e-6, "u={u} expect={expect}");
        assert!((0.45..=0.50).contains(&u));
    }

    #[test]
    fn three_threads_reach_about_80_percent() {
        // The paper's headline: "as few as three processes yield close
        // to 80% utilization for a ten-cycle context-switch overhead".
        let u = solve(&params(), 3.0, true, true, 10.0);
        assert!((0.75..=0.85).contains(&u), "U(3) = {u}");
    }

    #[test]
    fn utilization_saturates_near_80_percent() {
        let pts = figure5_sweep(&params(), 8, 10.0);
        let peak = pts.iter().map(|x| x.useful).fold(0.0, f64::max);
        assert!((0.75..=0.85).contains(&peak), "peak = {peak}");
        // Marginal benefit of more threads decreases.
        let u3 = pts[2].useful;
        let u8 = pts[7].useful;
        assert!(
            u8 <= u3 + 0.05,
            "U(8)={u8} should not much exceed U(3)={u3}"
        );
    }

    #[test]
    fn equation_1_branches() {
        // Below saturation: linear in p. Above: flat.
        let (m, t, c) = (0.02, 55.0, 10.0);
        // Saturation point: (1 + 1.1) / (1 + 0.2) = 1.75 threads.
        let u1 = equation_1(0.5, m, t, c);
        let u2 = equation_1(1.0, m, t, c);
        assert!((u2 / u1 - 2.0).abs() < 1e-9, "linear below saturation");
        let u10 = equation_1(10.0, m, t, c);
        let u20 = equation_1(20.0, m, t, c);
        assert_eq!(u10, u20, "saturated region is flat");
        assert!((u10 - 1.0 / (1.0 + c * m)).abs() < 1e-12);
    }

    #[test]
    fn ten_cycle_switch_overhead_is_cheap() {
        // Section 8: "the relatively large ten-cycle context switch
        // overhead does not significantly impact performance".
        let with = solve(&params(), 4.0, true, true, 10.0);
        let without = solve(&params(), 4.0, true, true, 0.0);
        assert!(without - with < 0.2, "overhead costs {:.3}", without - with);
        assert!(with / without > 0.8);
    }

    #[test]
    fn components_are_nonnegative_and_stack() {
        for pt in figure5_sweep(&params(), 8, 10.0) {
            assert!(pt.network_loss() >= 0.0);
            assert!(pt.cache_loss() >= 0.0);
            assert!(pt.switch_loss() >= 0.0);
            let stack = pt.useful + pt.switch_loss() + pt.cache_loss() + pt.network_loss();
            assert!((stack - pt.ideal).abs() < 1e-6);
        }
    }

    #[test]
    fn open_loop_curve_is_linear_then_flat() {
        let (m, t, c) = (0.02, 55.0, 10.0);
        let knee = open_loop_knee(m, t, c);
        assert!((0.0..=1.0).contains(&knee));
        // Linear below the knee.
        let lo = open_loop_utilization(knee * 0.3, m, t, c);
        assert!((lo - knee * 0.3).abs() < 1e-12);
        // Flat above it.
        assert_eq!(open_loop_utilization(knee * 1.5, m, t, c), knee);
        assert_eq!(open_loop_utilization(10.0, m, t, c), knee);
        // A faster network raises the knee.
        assert!(open_loop_knee(m, 20.0, c) > knee);
    }

    #[test]
    fn ideal_curve_rises_monotonically_to_its_cap() {
        let pts = figure5_sweep(&params(), 8, 10.0);
        for w in pts.windows(2) {
            assert!(w[1].ideal >= w[0].ideal - 1e-9);
        }
    }
}
