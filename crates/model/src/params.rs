//! Default system parameters (paper, Table 4).

/// The system parameters of the Section 8 scalability analysis.
///
/// Defaults reproduce Table 4 exactly: an 8000-processor machine in a
/// three-dimensional array of radix 20, 10-cycle memory latency, 2%
/// fixed miss rate, 4-flit average packets, 16-byte cache blocks,
/// 250-block per-thread working sets, 64-Kbyte caches.
///
/// ```
/// use april_model::SystemParams;
///
/// let p = SystemParams::default();
/// assert_eq!(p.num_processors(), 8000.0); // 20^3
/// assert_eq!(p.avg_hops(), 20.0);         // nk/3
/// assert_eq!(p.base_round_trip(), 55.0);  // the paper's 55 cycles
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Memory latency in cycles.
    pub memory_latency: f64,
    /// Network dimension n.
    pub dim: f64,
    /// Network radix k.
    pub radix: f64,
    /// Fixed miss rate (first-time fetches + coherence invalidations).
    pub fixed_miss_rate: f64,
    /// Average packet size in flits.
    pub packet_size: f64,
    /// Cache block size in bytes.
    pub block_bytes: f64,
    /// Per-thread working set in blocks.
    pub working_set_blocks: f64,
    /// Cache size in bytes.
    pub cache_bytes: f64,
    /// Context switch overhead C in cycles (trap entry + handler).
    pub switch_overhead: f64,
    /// First-order cache-interference coefficient (dimensionless; the
    /// slope term the paper validates through simulation).
    pub interference_coeff: f64,
}

impl Default for SystemParams {
    fn default() -> SystemParams {
        SystemParams {
            memory_latency: 10.0,
            dim: 3.0,
            radix: 20.0,
            fixed_miss_rate: 0.02,
            packet_size: 4.0,
            block_bytes: 16.0,
            working_set_blocks: 250.0,
            cache_bytes: 64.0 * 1024.0,
            switch_overhead: 10.0,
            interference_coeff: 0.9,
        }
    }
}

impl SystemParams {
    /// Number of processors, kⁿ.
    pub fn num_processors(&self) -> f64 {
        self.radix.powf(self.dim)
    }

    /// Cache capacity in blocks.
    pub fn cache_blocks(&self) -> f64 {
        self.cache_bytes / self.block_bytes
    }

    /// Average hops between a random node pair: nk/3 (paper: 20).
    pub fn avg_hops(&self) -> f64 {
        self.dim * self.radix / 3.0
    }

    /// Unloaded round-trip latency: request and reply each cross
    /// `avg_hops` single-cycle stages, the home memory adds its
    /// latency, and the data packet's body adds its length — the
    /// paper's "average round trip network latency of 55 cycles for an
    /// unloaded network".
    pub fn base_round_trip(&self) -> f64 {
        2.0 * self.avg_hops() + self.memory_latency + self.packet_size + 1.0
    }

    /// Latency a processor with `p` resident threads can tolerate when
    /// each thread runs `run_interval` cycles between misses: the other
    /// p−1 threads cover the round trip. With 4 task frames and
    /// context switches every 50–100 cycles this is the paper's
    /// "latencies in the range of 150 to 300 cycles".
    pub fn tolerated_latency(&self, p: f64, run_interval: f64) -> f64 {
        (p - 1.0) * (run_interval + self.switch_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_4_defaults() {
        let p = SystemParams::default();
        assert_eq!(p.num_processors(), 8000.0);
        assert_eq!(p.avg_hops(), 20.0);
        assert_eq!(p.cache_blocks(), 4096.0);
        let rt = p.base_round_trip();
        assert!(
            (54.0..=56.0).contains(&rt),
            "base round trip {rt} should be ~55"
        );
    }

    #[test]
    fn four_frames_tolerate_150_to_300_cycles() {
        let p = SystemParams::default();
        let lo = p.tolerated_latency(4.0, 50.0);
        let hi = p.tolerated_latency(4.0, 100.0);
        assert!((150.0..=200.0).contains(&lo), "lo={lo}");
        assert!((300.0..=340.0).contains(&hi), "hi={hi}");
    }
}
