//! # april-serve — simulation as a service
//!
//! A long-running daemon that multiplexes many independent simulation
//! jobs over a bounded host-thread pool, the way the SPARC T3-class
//! throughput machines the paper's block-multithreading argument
//! anticipates multiplex many request streams over hardware threads.
//! Everything a long-lived service needs already existed in the
//! workspace — the sweep harness, byte-stable APRL checkpoints,
//! deterministic replay, JSONL/stats exports — and this crate is the
//! assembly (DESIGN.md §16, PROTOCOL.md):
//!
//! * [`proto`] — the compact length-prefixed wire protocol spoken over
//!   a local Unix socket, built on the `april-util` wire codec.
//! * [`spec`] — the job vocabulary: a [`spec::SimSpec`] names a
//!   machine + workload, a [`spec::JobSpec`] adds fault knobs, a warm
//!   image reference, and a cycle budget.
//! * [`exec`] — the shared job executor: one function runs a job
//!   either from a cold boot or by forking a registered warm
//!   checkpoint, with the guarantee that the two paths are
//!   byte-identical in stats and semantic trace.
//! * [`daemon`] — the server: accept loop, job queue, worker pool,
//!   deterministic drain/cancel shutdown.
//! * [`client`] — a blocking client that registers warm images,
//!   submits jobs, and reassembles the streamed results.
//!
//! The headline feature is the **snapshot warm start**: a client
//! registers a warmed machine once, and an N-point parameter sweep
//! forks that checkpoint N times instead of re-booting and re-warming
//! the machine N times. The fork is a restore of a byte-stable APRL
//! snapshot, so a warm-started job is bit-exact with the cold job that
//! re-executes the warmup — the equivalence suites hold the daemon to
//! that.

#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod exec;
pub mod proto;
pub mod spec;

pub use client::{Client, JobResult, ShutdownReport, WarmInfo};
pub use daemon::{serve, DaemonConfig, DaemonReport};
pub use exec::{build_warm_image, run_job, JobOutcome, WarmImage};
pub use proto::{Frame, JobSummary, CHUNK_BYTES, PROTO_VERSION};
pub use spec::{FaultSpec, JobSpec, SimSpec, Workload};

use april_machine::SnapshotError;
use april_util::wire::WireError;
use std::fmt;

/// Anything that can go wrong while speaking the protocol or running a
/// job.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O error on the socket (or binding it).
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A frame failed to decode.
    Wire(WireError),
    /// A checkpoint failed to build or restore.
    Snapshot(SnapshotError),
    /// The peer violated the protocol (bad handshake, wrong frame).
    Protocol(String),
    /// A job spec was internally inconsistent.
    BadSpec(String),
    /// A job named a warm image the daemon does not hold.
    UnknownWarm(u32),
    /// A job named a warm image built for a different machine or
    /// workload, or the wrong warm cycle.
    WarmMismatch(String),
    /// The daemon reported an error for the connection.
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket i/o: {e}"),
            ServeError::Closed => write!(f, "connection closed"),
            ServeError::Wire(e) => write!(f, "malformed frame: {e}"),
            ServeError::Snapshot(e) => write!(f, "snapshot: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServeError::BadSpec(m) => write!(f, "bad job spec: {m}"),
            ServeError::UnknownWarm(id) => write!(f, "unknown warm image {id}"),
            ServeError::WarmMismatch(m) => write!(f, "warm image mismatch: {m}"),
            ServeError::Remote(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> ServeError {
        ServeError::Snapshot(e)
    }
}
