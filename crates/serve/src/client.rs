//! A blocking april-serve client.
//!
//! [`Client`] wraps one Unix-socket connection: it performs the hello
//! handshake on connect, then exposes the protocol verbs —
//! [`Client::register_warm`], [`Client::submit`], [`Client::ping`],
//! [`Client::shutdown`] — plus [`Client::collect`], which reassembles
//! the streamed per-job chunk frames into whole [`JobResult`]s.
//!
//! The daemon may interleave frames for different jobs on one
//! connection (workers finish in host-time order, not submission
//! order), so every verb that waits for a specific response frame
//! absorbs unrelated job frames into the client's assembly state
//! instead of dropping them. Callers therefore never need to sequence
//! their calls around the daemon's scheduling.

use crate::proto::{Frame, JobSummary, PROTO_VERSION};
use crate::spec::{JobSpec, SimSpec};
use crate::ServeError;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A fully reassembled job result. Exactly one of the three terminal
/// states holds: `summary` set (ran), `error` set (refused), or
/// `canceled` true (shut down before running).
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The id the job was submitted under.
    pub job_id: u32,
    /// The result summary, when the job ran to a [`Frame::Done`].
    pub summary: Option<JobSummary>,
    /// The refusal message, when the job ended in [`Frame::JobError`].
    pub error: Option<String>,
    /// Whether the job was canceled by a cancel shutdown.
    pub canceled: bool,
    /// The reassembled stats-report JSON (empty unless the job ran).
    pub stats_json: String,
    /// The reassembled semantic trace JSONL, when one was requested
    /// and the job ran.
    pub trace_jsonl: Option<String>,
}

/// What [`Client::register_warm`] reports once the daemon's warm image
/// is built and ready to fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmInfo {
    /// Cycle the checkpoint was cut at.
    pub cycle: u64,
    /// Encoded APRL snapshot size in bytes.
    pub snap_bytes: u64,
    /// Host nanoseconds the daemon spent on boot + warmup +
    /// checkpoint.
    pub build_ns: u64,
}

/// What [`Client::shutdown`] reports once the daemon's [`Frame::Bye`]
/// arrives.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Daemon-lifetime count of jobs that reached a terminal
    /// [`Frame::Done`] / [`Frame::JobError`].
    pub completed: u64,
    /// Daemon-lifetime count of jobs canceled by a cancel shutdown.
    pub canceled: u64,
    /// Job results (including cancellations) that finished on this
    /// connection between the shutdown request and the bye, sorted by
    /// job id.
    pub results: Vec<JobResult>,
}

#[derive(Default)]
struct Assembly {
    stats: Vec<u8>,
    trace: Vec<u8>,
    traced: bool,
}

/// One connection to an april-serve daemon.
pub struct Client {
    stream: UnixStream,
    pool_threads: u32,
    assembling: HashMap<u32, Assembly>,
    finished: VecDeque<JobResult>,
}

impl Client {
    /// Connects and performs the hello handshake. `name` is free-form
    /// and only used for daemon-side identification.
    pub fn connect(socket: &Path, name: &str) -> Result<Client, ServeError> {
        let stream = UnixStream::connect(socket)?;
        let mut client = Client {
            stream,
            pool_threads: 0,
            assembling: HashMap::new(),
            finished: VecDeque::new(),
        };
        client.send(&Frame::Hello {
            version: PROTO_VERSION,
            client: name.to_string(),
        })?;
        match client.read()? {
            Frame::HelloAck {
                version,
                pool_threads,
                ..
            } => {
                if version != PROTO_VERSION {
                    return Err(ServeError::Protocol(format!(
                        "daemon speaks protocol {version}, this client {PROTO_VERSION}"
                    )));
                }
                client.pool_threads = pool_threads;
            }
            Frame::Error { message } => return Err(ServeError::Remote(message)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected hello-ack, got kind {:#x}",
                    other.kind()
                )))
            }
        }
        Ok(client)
    }

    /// Worker threads in the daemon's pool, as announced at handshake.
    pub fn pool_threads(&self) -> u32 {
        self.pool_threads
    }

    /// Asks the daemon to build a warm image: boot the `sim` machine,
    /// execute `warm_cycles` cycles, checkpoint, and hold the snapshot
    /// under `warm_id` for jobs to fork. Blocks until the image is
    /// ready.
    pub fn register_warm(
        &mut self,
        warm_id: u32,
        sim: &SimSpec,
        warm_cycles: u64,
    ) -> Result<WarmInfo, ServeError> {
        self.send(&Frame::RegisterWarm {
            warm_id,
            sim: *sim,
            warm_cycles,
        })?;
        loop {
            match self.read()? {
                Frame::WarmReady {
                    warm_id: id,
                    cycle,
                    snap_bytes,
                    build_ns,
                } if id == warm_id => {
                    return Ok(WarmInfo {
                        cycle,
                        snap_bytes,
                        build_ns,
                    })
                }
                Frame::Error { message } => return Err(ServeError::Remote(message)),
                other => self.absorb(other)?,
            }
        }
    }

    /// Submits one job and waits for its [`Frame::Accepted`] ack.
    /// Returns the daemon's queue depth at acceptance.
    pub fn submit(&mut self, job_id: u32, spec: &JobSpec) -> Result<u32, ServeError> {
        self.send(&Frame::Submit {
            job_id,
            spec: *spec,
        })?;
        loop {
            match self.read()? {
                Frame::Accepted { job_id: id, queued } if id == job_id => return Ok(queued),
                Frame::Error { message } => return Err(ServeError::Remote(message)),
                other => self.absorb(other)?,
            }
        }
    }

    /// Collects `n` finished jobs (in any completion order), returning
    /// them sorted by job id.
    pub fn collect(&mut self, n: usize) -> Result<Vec<JobResult>, ServeError> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            if let Some(r) = self.finished.pop_front() {
                out.push(r);
                continue;
            }
            let frame = self.read()?;
            if let Frame::Error { message } = frame {
                return Err(ServeError::Remote(message));
            }
            self.absorb(frame)?;
        }
        out.sort_by_key(|r| r.job_id);
        Ok(out)
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self, nonce: u64) -> Result<(), ServeError> {
        self.send(&Frame::Ping { nonce })?;
        loop {
            match self.read()? {
                Frame::Pong { nonce: n } if n == nonce => return Ok(()),
                Frame::Error { message } => return Err(ServeError::Remote(message)),
                other => self.absorb(other)?,
            }
        }
    }

    /// Requests shutdown (drain with `cancel` false, cancel queued
    /// jobs with `cancel` true) and blocks until the daemon's
    /// [`Frame::Bye`], absorbing any job results that complete in
    /// between.
    pub fn shutdown(&mut self, cancel: bool) -> Result<ShutdownReport, ServeError> {
        self.send(&Frame::Shutdown { cancel })?;
        loop {
            match self.read()? {
                Frame::Bye {
                    completed,
                    canceled,
                } => {
                    let mut results: Vec<JobResult> = self.finished.drain(..).collect();
                    results.sort_by_key(|r| r.job_id);
                    return Ok(ShutdownReport {
                        completed,
                        canceled,
                        results,
                    });
                }
                Frame::Error { message } => return Err(ServeError::Remote(message)),
                other => self.absorb(other)?,
            }
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ServeError> {
        self.stream.write_all(&frame.encode())?;
        Ok(())
    }

    fn read(&mut self) -> Result<Frame, ServeError> {
        Frame::read_from(&mut self.stream)
    }

    /// Folds a job-stream frame into the assembly state; terminal
    /// frames move the job to the finished queue.
    fn absorb(&mut self, frame: Frame) -> Result<(), ServeError> {
        match frame {
            Frame::StatsChunk { job_id, data, .. } => {
                self.assembling
                    .entry(job_id)
                    .or_default()
                    .stats
                    .extend_from_slice(&data);
            }
            Frame::TraceChunk { job_id, data, .. } => {
                let a = self.assembling.entry(job_id).or_default();
                a.traced = true;
                a.trace.extend_from_slice(&data);
            }
            Frame::Done { job_id, summary } => {
                let a = self.assembling.remove(&job_id).unwrap_or_default();
                let stats_json = String::from_utf8(a.stats)
                    .map_err(|_| ServeError::Protocol("stats chunk not utf-8".into()))?;
                let trace_jsonl = if a.traced {
                    Some(
                        String::from_utf8(a.trace)
                            .map_err(|_| ServeError::Protocol("trace chunk not utf-8".into()))?,
                    )
                } else {
                    None
                };
                self.finished.push_back(JobResult {
                    job_id,
                    summary: Some(summary),
                    error: None,
                    canceled: false,
                    stats_json,
                    trace_jsonl,
                });
            }
            Frame::JobError { job_id, message } => {
                self.assembling.remove(&job_id);
                self.finished.push_back(JobResult {
                    job_id,
                    summary: None,
                    error: Some(message),
                    canceled: false,
                    stats_json: String::new(),
                    trace_jsonl: None,
                });
            }
            Frame::Canceled { job_id } => {
                self.assembling.remove(&job_id);
                self.finished.push_back(JobResult {
                    job_id,
                    summary: None,
                    error: None,
                    canceled: true,
                    stats_json: String::new(),
                    trace_jsonl: None,
                });
            }
            Frame::Pong { .. } | Frame::WarmReady { .. } | Frame::Accepted { .. } => {}
            other => {
                return Err(ServeError::Protocol(format!(
                    "unexpected daemon frame kind {:#x}",
                    other.kind()
                )))
            }
        }
        Ok(())
    }
}
