//! The shared job executor: one code path for cold boots and snapshot
//! warm starts.
//!
//! Every job — whether run in-process by the sweep harness or farmed
//! out by the daemon — goes through [`run_job`], which phases the run
//! identically in both modes:
//!
//! 1. **Setup.** Cold: build the machine, boot every processor, and
//!    re-execute the warmup to `warm_cycles`. Warm: build the machine
//!    and restore the registered checkpoint (cut at exactly
//!    `warm_cycles`). Because APRL restores are bit-exact and
//!    scheduler-agnostic (DESIGN.md §11), the two setups land on the
//!    same machine state; what differs is only host time, which is the
//!    whole point of warm starts.
//! 2. **Knobs.** The sweep-varied fault plan is installed *at the warm
//!    point* in both modes, so warm and cold jobs see identical fault
//!    schedules.
//! 3. **Run.** Drive to quiescence or the cycle budget, then collect
//!    the stats report and (optionally) the semantic trace.
//!
//! The determinism contract — a warm-started job is byte-identical in
//! stats and semantic trace to its cold twin, on any scheduler — is
//! enforced by `crates/machine/tests/warm_start.rs` and the serve
//! integration suite.

use crate::spec::{JobSpec, SimSpec};
use crate::ServeError;
use april_machine::driver::{drive_sequential_until, SwitchSpin};
use april_machine::{Alewife, Machine, ParallelAlewife, Snapshot};
use april_obs::TraceConfig;
use std::time::Instant;

/// A registered warm image: a checkpoint of a booted, warmed machine,
/// plus the spec it was built from so forks can be validated.
#[derive(Debug, Clone)]
pub struct WarmImage {
    /// The machine + workload the image was built from.
    pub sim: SimSpec,
    /// The cycle the checkpoint was cut at.
    pub cycle: u64,
    /// The checkpoint itself.
    pub snap: Snapshot,
    /// Host nanoseconds the boot + warmup + checkpoint took.
    pub build_ns: u64,
}

/// Everything a finished job reports. The stats JSON and trace JSONL
/// are deterministic functions of the spec (plus warm image); the two
/// `*_ns` timings are host wall-clock and are excluded from the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Whether the job forked a warm image.
    pub warm_used: bool,
    /// Final simulated cycle.
    pub cycles: u64,
    /// Instructions retired across all processors.
    pub instrs: u64,
    /// Instructions / total processor cycles.
    pub utilization: f64,
    /// Network fault injections: drops.
    pub drops: u64,
    /// Network fault injections: duplications.
    pub dups: u64,
    /// Network fault injections: delays.
    pub delays: u64,
    /// Host nanoseconds of setup (build + boot + warmup, or build +
    /// restore).
    pub setup_ns: u64,
    /// Host nanoseconds of the post-warm run phase.
    pub run_ns: u64,
    /// Fatal fault or budget exhaustion, `None` for a clean quiesced
    /// run.
    pub fault: Option<String>,
    /// The machine's stats report as JSON.
    pub stats_json: String,
    /// The semantic event trace as JSONL, when the spec asked for it.
    pub trace_jsonl: Option<String>,
}

/// Either scheduler behind one surface; which one a job gets is chosen
/// by its spec's scheduler knobs, and all choices are bit-exact.
enum Sim {
    Seq(Box<Alewife>),
    Par(Box<ParallelAlewife>),
}

impl Sim {
    /// Builds the machine a spec describes: cold (`snap` absent, ready
    /// to boot) or directly from a checkpoint (`snap` present —
    /// [`Alewife::from_snapshot`] construction, the warm-start fork).
    fn build(spec: &SimSpec, snap: Option<&Snapshot>) -> Result<Sim, ServeError> {
        let cfg = spec.machine_config();
        let prog = spec.program()?;
        let tracer = Some(TraceConfig::default());
        Ok(if spec.workers >= 2 {
            Sim::Par(Box::new(match snap {
                Some(s) => ParallelAlewife::from_snapshot(cfg, prog, tracer, s)?,
                None => {
                    let mut m = ParallelAlewife::new(cfg, prog);
                    m.attach_tracer(TraceConfig::default());
                    m
                }
            }))
        } else {
            Sim::Seq(Box::new(match snap {
                Some(s) => Alewife::from_snapshot(cfg, prog, tracer, s)?,
                None => {
                    let mut m = Alewife::new(cfg, prog);
                    m.attach_tracer(TraceConfig::default());
                    m
                }
            }))
        })
    }

    fn boot_all(&mut self) {
        match self {
            Sim::Seq(m) => m.boot_all(),
            Sim::Par(m) => m.boot_all(),
        }
    }

    /// Runs to quiescence or `stop_at`, whichever comes first.
    fn run_until(&mut self, stop_at: u64) {
        let driver = SwitchSpin::default();
        match self {
            Sim::Seq(m) => {
                drive_sequential_until(m, &driver, stop_at, stop_at.saturating_add(2));
            }
            Sim::Par(m) => {
                m.run_until(&driver, stop_at, stop_at.saturating_add(2));
            }
        }
    }

    fn set_fault_plan(&mut self, plan: april_net::fault::FaultPlan) {
        match self {
            Sim::Seq(m) => m.set_fault_plan(plan),
            Sim::Par(m) => m.set_fault_plan(plan),
        }
    }

    fn now(&self) -> u64 {
        match self {
            Sim::Seq(m) => m.now(),
            Sim::Par(m) => m.now(),
        }
    }

    fn quiesced(&self) -> bool {
        match self {
            Sim::Seq(m) => m.all_halted() && !m.pending_work(),
            Sim::Par(m) => m.halted_cycles().iter().all(|h| h.is_some()),
        }
    }

    fn fault_text(&self) -> Option<String> {
        match self {
            Sim::Seq(m) => m.fault().map(|f| f.to_string()),
            Sim::Par(m) => m.fault().map(|f| f.to_string()),
        }
    }

    fn checkpoint(&mut self) -> Result<Snapshot, ServeError> {
        match self {
            Sim::Seq(m) => Ok(m.checkpoint()?),
            Sim::Par(m) => Ok(m.checkpoint()?),
        }
    }

    fn outcome(&self, spec: &JobSpec, warm_used: bool, setup_ns: u64, run_ns: u64) -> JobOutcome {
        let (stats, fstats, report, trace) = match self {
            Sim::Seq(m) => (
                m.total_stats(),
                m.fault_stats(),
                m.stats_report(),
                m.collect_trace(),
            ),
            Sim::Par(m) => (
                m.total_stats(),
                m.fault_stats(),
                m.stats_report(),
                m.collect_trace(),
            ),
        };
        let fault = self
            .fault_text()
            .or_else(|| (!self.quiesced()).then(|| "budget exhausted".to_string()));
        let trace_jsonl = spec.want_trace.then(|| {
            let mut t = trace;
            t.retain_semantic();
            t.to_jsonl()
        });
        JobOutcome {
            warm_used,
            cycles: self.now(),
            instrs: stats.instructions,
            utilization: stats.instructions as f64 / (stats.total() as f64).max(1.0),
            drops: fstats.dropped,
            dups: fstats.duplicated,
            delays: fstats.delayed,
            setup_ns,
            run_ns,
            fault,
            stats_json: report.to_json(),
            trace_jsonl,
        }
    }
}

/// Boots the machine described by `sim`, executes `warm_cycles` cycles
/// under the event-driven sequential scheduler, and checkpoints. The
/// resulting image forks into any scheduler (the snapshot layer
/// normalizes scheduler knobs away). Refuses a warm point the workload
/// never reaches — a checkpoint of a quiesced machine would make every
/// fork a no-op and the "warm equals cold" contract vacuous.
pub fn build_warm_image(sim: &SimSpec, warm_cycles: u64) -> Result<WarmImage, ServeError> {
    if warm_cycles == 0 {
        return Err(ServeError::BadSpec(
            "warm image needs warm_cycles > 0".into(),
        ));
    }
    // Warm images are always cut on the sequential event-driven
    // scheduler; restores are scheduler-agnostic so this is purely an
    // implementation choice.
    let base = SimSpec {
        lockstep: false,
        workers: 1,
        ..*sim
    };
    let t0 = Instant::now();
    let mut m = Sim::build(&base, None)?;
    m.boot_all();
    m.run_until(warm_cycles);
    if let Some(f) = m.fault_text() {
        return Err(ServeError::BadSpec(format!(
            "machine faulted during warmup: {f}"
        )));
    }
    if m.quiesced() {
        return Err(ServeError::BadSpec(format!(
            "workload quiesced at cycle {} before the warm point {warm_cycles}",
            m.now()
        )));
    }
    let snap = m.checkpoint()?;
    Ok(WarmImage {
        sim: *sim,
        cycle: warm_cycles,
        snap,
        build_ns: t0.elapsed().as_nanos() as u64,
    })
}

/// Runs one job to completion. With `warm` present (and the spec
/// naming a warm image), setup is a snapshot restore; otherwise the
/// warmup is re-executed from a cold boot. Both paths continue
/// identically: fault plan at the warm point, then run to quiescence
/// or budget.
pub fn run_job(spec: &JobSpec, warm: Option<&WarmImage>) -> Result<JobOutcome, ServeError> {
    if spec.warm.is_some() != warm.is_some() {
        return Err(ServeError::BadSpec(
            "spec and executor disagree about warm start".into(),
        ));
    }
    if let Some(img) = warm {
        if !spec.sim.warm_compatible(&img.sim) {
            return Err(ServeError::WarmMismatch(format!(
                "job sim {:?} is not warm-compatible with image sim {:?}",
                spec.sim, img.sim
            )));
        }
        if spec.warm_cycles != img.cycle {
            return Err(ServeError::WarmMismatch(format!(
                "job warm_cycles {} but image was cut at cycle {}",
                spec.warm_cycles, img.cycle
            )));
        }
    }

    let t0 = Instant::now();
    let (mut m, warm_used) = if let Some(img) = warm {
        (Sim::build(&spec.sim, Some(&img.snap))?, true)
    } else {
        let mut m = Sim::build(&spec.sim, None)?;
        m.boot_all();
        if spec.warm_cycles > 0 {
            m.run_until(spec.warm_cycles.min(spec.max_cycles));
        }
        (m, false)
    };
    let setup_ns = t0.elapsed().as_nanos() as u64;

    // Sweep-varied knobs apply at the warm point, identically for both
    // setup paths.
    if let Some(f) = &spec.fault {
        m.set_fault_plan(f.plan());
    }

    let t1 = Instant::now();
    m.run_until(spec.max_cycles);
    let run_ns = t1.elapsed().as_nanos() as u64;
    Ok(m.outcome(spec, warm_used, setup_ns, run_ns))
}
