//! The april-serve command-line front end.
//!
//! ```text
//! april-serve daemon   --socket PATH [--threads N]
//! april-serve sweep    --socket PATH [--points N] [--warm-cycles C] [--cold] ...
//! april-serve ping     --socket PATH
//! april-serve shutdown --socket PATH [--cancel]
//! ```
//!
//! `daemon` runs in the foreground until a client sends shutdown.
//! `sweep` is the reference client: it registers one warm image (or
//! skips that with `--cold`), submits a fault-seed sweep of
//! `--points` jobs, and prints a per-job table plus setup-time
//! medians — the over-the-socket equivalent of the in-process
//! `sweep` harness. See README "Running april-serve".

use april_serve::{serve, Client, DaemonConfig, FaultSpec, JobResult, JobSpec, SimSpec, Workload};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    argv: Vec<String>,
}

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.argv.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.argv.get(i + 1))
            .map(|s| s.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{name} wants a number, got {v:?}")),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: april-serve <daemon|sweep|ping|shutdown> --socket PATH [options]
  daemon    --socket PATH [--threads N]
  sweep     --socket PATH [--points N] [--warm-cycles C] [--cold] [--trace]
            [--radix R] [--dim D] [--outer O] [--inner I] [--mem-latency L]
            [--workers W] [--seed S] [--drop P] [--dup P] [--delay P]
            [--max-delay D] [--max-cycles M]
  ping      --socket PATH
  shutdown  --socket PATH [--cancel]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        return usage();
    };
    let args = Args {
        argv: argv[1..].to_vec(),
    };
    let Some(socket) = args.value("--socket").map(PathBuf::from) else {
        eprintln!("april-serve {cmd}: --socket PATH is required");
        return usage();
    };
    let run = match cmd.as_str() {
        "daemon" => cmd_daemon(&args, socket),
        "sweep" => cmd_sweep(&args, &socket),
        "ping" => cmd_ping(&socket),
        "shutdown" => cmd_shutdown(&args, &socket),
        _ => return usage(),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("april-serve {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_daemon(args: &Args, socket: PathBuf) -> Result<(), String> {
    let threads = args.num("--threads", 4usize)?;
    let cfg = DaemonConfig { socket, threads };
    println!(
        "april-serve: listening on {} with {} worker threads",
        cfg.socket.display(),
        cfg.threads.max(1)
    );
    let report = serve(&cfg).map_err(|e| e.to_string())?;
    println!(
        "april-serve: shut down after {} connections, {} jobs completed, {} canceled",
        report.connections, report.completed, report.canceled
    );
    Ok(())
}

fn cmd_ping(socket: &Path) -> Result<(), String> {
    let mut client = Client::connect(socket, "april-serve-ping").map_err(|e| e.to_string())?;
    client.ping(0x1234).map_err(|e| e.to_string())?;
    println!(
        "pong from {} ({} worker threads)",
        socket.display(),
        client.pool_threads()
    );
    Ok(())
}

fn cmd_shutdown(args: &Args, socket: &Path) -> Result<(), String> {
    let cancel = args.flag("--cancel");
    let mut client = Client::connect(socket, "april-serve-shutdown").map_err(|e| e.to_string())?;
    let report = client.shutdown(cancel).map_err(|e| e.to_string())?;
    println!(
        "daemon exited: {} jobs completed, {} canceled",
        report.completed, report.canceled
    );
    Ok(())
}

fn cmd_sweep(args: &Args, socket: &Path) -> Result<(), String> {
    let points: u32 = args.num("--points", 8)?;
    let warm_cycles: u64 = args.num("--warm-cycles", 3000)?;
    let cold = args.flag("--cold");
    let want_trace = args.flag("--trace");
    let sim = SimSpec {
        radix: args.num("--radix", 4)?,
        dim: args.num("--dim", 2)?,
        mem_latency: args.num("--mem-latency", 10)?,
        workers: args.num("--workers", 1)?,
        workload: Workload::Contended {
            outer: args.num("--outer", 300)?,
            inner: args.num("--inner", 0)?,
        },
        ..SimSpec::default()
    };
    let seed: u64 = args.num("--seed", 0xA981_1990)?;
    let fault = FaultSpec {
        seed,
        drop: args.num("--drop", 0.0)?,
        dup: args.num("--dup", 0.0)?,
        delay: args.num("--delay", 0.02)?,
        max_delay: args.num("--max-delay", 16)?,
    };
    let max_cycles: u64 = args.num("--max-cycles", 50_000_000)?;

    let mut client = Client::connect(socket, "april-serve-sweep").map_err(|e| e.to_string())?;
    let warm = if cold {
        None
    } else {
        let info = client
            .register_warm(1, &sim, warm_cycles)
            .map_err(|e| e.to_string())?;
        println!(
            "warm image ready: cut at cycle {}, {} snapshot bytes, built in {:.1} ms",
            info.cycle,
            info.snap_bytes,
            info.build_ns as f64 / 1e6
        );
        Some(1u32)
    };

    for i in 0..points {
        let spec = JobSpec {
            sim,
            fault: Some(FaultSpec {
                seed: fault.seed.wrapping_add(i as u64),
                ..fault
            }),
            warm,
            warm_cycles,
            max_cycles,
            want_trace,
        };
        client.submit(i, &spec).map_err(|e| e.to_string())?;
    }
    let results = client.collect(points as usize).map_err(|e| e.to_string())?;

    println!(
        "{:>4} {:>5} {:>10} {:>10} {:>6} {:>6} {:>9} {:>9}  outcome",
        "job", "warm", "cycles", "instrs", "util", "delays", "setup ms", "run ms"
    );
    let mut setups = Vec::new();
    let mut failed = 0usize;
    for r in &results {
        match (&r.summary, &r.error, r.canceled) {
            (Some(s), _, _) => {
                setups.push(s.setup_ns);
                println!(
                    "{:>4} {:>5} {:>10} {:>10} {:>6.3} {:>6} {:>9.2} {:>9.2}  {}",
                    r.job_id,
                    s.warm_used,
                    s.cycles,
                    s.instrs,
                    s.utilization,
                    s.delays,
                    s.setup_ns as f64 / 1e6,
                    s.run_ns as f64 / 1e6,
                    if s.fault.is_empty() { "ok" } else { &s.fault }
                );
            }
            (None, Some(e), _) => {
                failed += 1;
                println!("{:>4} job error: {e}", r.job_id);
            }
            _ => {
                failed += 1;
                println!("{:>4} canceled", r.job_id);
            }
        }
    }
    if !setups.is_empty() {
        setups.sort_unstable();
        println!(
            "sweep done: {} jobs, median setup {:.2} ms ({})",
            results.len(),
            setups[setups.len() / 2] as f64 / 1e6,
            if cold { "cold boots" } else { "warm forks" }
        );
    }
    if failed > 0 {
        return Err(format!("{failed} of {} jobs did not run", results.len()));
    }
    check_outcomes(&results)
}

/// The sweep's sanity gate: every job ran, and jobs are mutually
/// consistent (same machine, different fault seeds ⇒ same warm mode).
fn check_outcomes(results: &[JobResult]) -> Result<(), String> {
    let modes: Vec<bool> = results
        .iter()
        .filter_map(|r| r.summary.as_ref().map(|s| s.warm_used))
        .collect();
    if modes.windows(2).any(|w| w[0] != w[1]) {
        return Err("jobs disagree about warm mode".into());
    }
    Ok(())
}
