//! The april-serve wire protocol: compact length-prefixed frames over
//! a local Unix socket.
//!
//! Every frame is `len: u32 | kind: u8 | body`, all integers
//! little-endian, all variable-length fields length-prefixed — the
//! same dense conventions as the APRL snapshot format, built on the
//! same `april-util` codec. PROTOCOL.md is the normative byte-level
//! specification (layout tables, sequencing rules, versioning); this
//! module is its executable form, and the two are kept in lockstep.
//!
//! Versioning rule: the first frame on a connection must be
//! [`Frame::Hello`] carrying [`PROTO_VERSION`]; the daemon answers
//! [`Frame::HelloAck`] with its own version and refuses mismatches
//! with a connection-level [`Frame::Error`]. Adding a frame kind or
//! appending fields to a body bumps the version; nothing is ever
//! reinterpreted in place.

use crate::spec::{JobSpec, SimSpec};
use crate::ServeError;
use april_util::wire::{ByteReader, ByteWriter, WireError};
use std::io::{Read, Write};

/// The protocol version this build speaks (and the only one it
/// accepts).
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on one frame's `kind + body` length; a peer announcing
/// more is treated as corrupt and the connection is dropped.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Payload bytes per stats/trace stream chunk. Reports larger than
/// this arrive as multiple ordered chunks per job.
pub const CHUNK_BYTES: usize = 32 * 1024;

/// The deterministic per-job result summary carried by
/// [`Frame::Done`]. Every field except the two wall-clock timings is a
/// pure function of the job spec (and warm image); the timings exist
/// for capacity planning and are excluded from the determinism
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Whether the job forked a warm image instead of re-executing the
    /// warmup.
    pub warm_used: bool,
    /// Final simulated cycle.
    pub cycles: u64,
    /// Instructions retired across all processors.
    pub instrs: u64,
    /// Instructions / total processor cycles.
    pub utilization: f64,
    /// Faults injected by the network: drops.
    pub drops: u64,
    /// Faults injected by the network: duplications.
    pub dups: u64,
    /// Faults injected by the network: delays.
    pub delays: u64,
    /// Host nanoseconds spent constructing the machine (cold: build +
    /// boot + warmup re-execution; warm: build + snapshot restore).
    /// Wall-clock: *not* part of the determinism contract.
    pub setup_ns: u64,
    /// Host nanoseconds spent in the post-warm measurement phase.
    /// Wall-clock: *not* part of the determinism contract.
    pub run_ns: u64,
    /// Human-readable fatal fault description, or empty for a clean
    /// run. A job that exhausts its cycle budget reports
    /// `"budget exhausted"` here rather than failing.
    pub fault: String,
}

impl JobSummary {
    fn encode(&self, w: &mut ByteWriter) {
        w.bool(self.warm_used);
        w.u64(self.cycles);
        w.u64(self.instrs);
        w.f64(self.utilization);
        w.u64(self.drops);
        w.u64(self.dups);
        w.u64(self.delays);
        w.u64(self.setup_ns);
        w.u64(self.run_ns);
        w.str(&self.fault);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<JobSummary, WireError> {
        Ok(JobSummary {
            warm_used: r.bool()?,
            cycles: r.u64()?,
            instrs: r.u64()?,
            utilization: r.f64()?,
            drops: r.u64()?,
            dups: r.u64()?,
            delays: r.u64()?,
            setup_ns: r.u64()?,
            run_ns: r.u64()?,
            fault: r.str()?.to_string(),
        })
    }
}

/// One protocol frame. Kinds `0x01`–`0x0f` originate at the client,
/// `0x81`–`0x8f` at the daemon (see PROTOCOL.md for the tables).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client hello: must be the first frame on every connection.
    Hello {
        /// The client's [`PROTO_VERSION`].
        version: u8,
        /// Free-form client name, for daemon logs.
        client: String,
    },
    /// Register a warm image: the daemon boots the machine described
    /// by `sim`, executes `warm_cycles` cycles, checkpoints, and
    /// stores the snapshot under `warm_id`.
    RegisterWarm {
        /// Client-chosen image id; registering a taken id is a
        /// connection-level error.
        warm_id: u32,
        /// Machine + workload to warm up.
        sim: SimSpec,
        /// Cycle at which to cut the checkpoint.
        warm_cycles: u64,
    },
    /// Submit one job.
    Submit {
        /// Client-chosen job id; response frames echo it.
        job_id: u32,
        /// What to run.
        spec: JobSpec,
    },
    /// Ask the daemon to exit. With `cancel` false the queue drains
    /// (every accepted job still runs); with `cancel` true queued jobs
    /// are canceled in submission order and only in-flight jobs
    /// finish.
    Shutdown {
        /// Cancel queued jobs instead of draining them.
        cancel: bool,
    },
    /// Liveness probe.
    Ping {
        /// Echoed back in [`Frame::Pong`].
        nonce: u64,
    },

    /// Daemon hello response.
    HelloAck {
        /// The daemon's [`PROTO_VERSION`].
        version: u8,
        /// Free-form server name.
        server: String,
        /// Worker threads in the daemon's pool.
        pool_threads: u32,
    },
    /// A warm image finished building and is ready to fork.
    WarmReady {
        /// The id from [`Frame::RegisterWarm`].
        warm_id: u32,
        /// Cycle the checkpoint was cut at (equals the requested
        /// `warm_cycles`).
        cycle: u64,
        /// Encoded APRL snapshot size in bytes.
        snap_bytes: u64,
        /// Host nanoseconds the warmup + checkpoint took.
        build_ns: u64,
    },
    /// A submitted job entered the queue.
    Accepted {
        /// The id from [`Frame::Submit`].
        job_id: u32,
        /// Queue depth after this job was enqueued.
        queued: u32,
    },
    /// One ordered chunk of the job's stats-report JSON.
    StatsChunk {
        /// Owning job.
        job_id: u32,
        /// Chunk index, starting at 0.
        seq: u32,
        /// Whether this is the final stats chunk for the job.
        last: bool,
        /// UTF-8 JSON bytes.
        data: Vec<u8>,
    },
    /// One ordered chunk of the job's semantic trace JSONL (only when
    /// the spec asked for a trace).
    TraceChunk {
        /// Owning job.
        job_id: u32,
        /// Chunk index, starting at 0.
        seq: u32,
        /// Whether this is the final trace chunk for the job.
        last: bool,
        /// UTF-8 JSONL bytes.
        data: Vec<u8>,
    },
    /// Terminal job frame: the job ran (possibly into a fault or its
    /// budget) and its streams are complete.
    Done {
        /// Owning job.
        job_id: u32,
        /// The result summary.
        summary: JobSummary,
    },
    /// Terminal job frame: the job could not run (bad spec, unknown or
    /// incompatible warm image). The connection stays open.
    JobError {
        /// Owning job.
        job_id: u32,
        /// What was wrong.
        message: String,
    },
    /// Terminal job frame: the job was queued when a cancel shutdown
    /// arrived.
    Canceled {
        /// Owning job.
        job_id: u32,
    },
    /// Shutdown is complete; sent to the requesting connection after
    /// every worker has exited.
    Bye {
        /// Jobs that ran to a terminal [`Frame::Done`]/[`Frame::JobError`].
        completed: u64,
        /// Jobs canceled by a cancel shutdown.
        canceled: u64,
    },
    /// Liveness probe response.
    Pong {
        /// The nonce from [`Frame::Ping`].
        nonce: u64,
    },
    /// Connection-level failure (handshake violation, malformed frame,
    /// duplicate warm id, warm build failure). The daemon closes the
    /// connection after sending it.
    Error {
        /// What was wrong.
        message: String,
    },
}

const K_HELLO: u8 = 0x01;
const K_REGISTER_WARM: u8 = 0x02;
const K_SUBMIT: u8 = 0x03;
const K_SHUTDOWN: u8 = 0x04;
const K_PING: u8 = 0x05;
const K_HELLO_ACK: u8 = 0x81;
const K_WARM_READY: u8 = 0x82;
const K_ACCEPTED: u8 = 0x83;
const K_STATS_CHUNK: u8 = 0x84;
const K_TRACE_CHUNK: u8 = 0x85;
const K_DONE: u8 = 0x86;
const K_JOB_ERROR: u8 = 0x87;
const K_CANCELED: u8 = 0x88;
const K_BYE: u8 = 0x89;
const K_PONG: u8 = 0x8a;
const K_ERROR: u8 = 0x8b;

impl Frame {
    /// The frame's kind byte (PROTOCOL.md tables).
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => K_HELLO,
            Frame::RegisterWarm { .. } => K_REGISTER_WARM,
            Frame::Submit { .. } => K_SUBMIT,
            Frame::Shutdown { .. } => K_SHUTDOWN,
            Frame::Ping { .. } => K_PING,
            Frame::HelloAck { .. } => K_HELLO_ACK,
            Frame::WarmReady { .. } => K_WARM_READY,
            Frame::Accepted { .. } => K_ACCEPTED,
            Frame::StatsChunk { .. } => K_STATS_CHUNK,
            Frame::TraceChunk { .. } => K_TRACE_CHUNK,
            Frame::Done { .. } => K_DONE,
            Frame::JobError { .. } => K_JOB_ERROR,
            Frame::Canceled { .. } => K_CANCELED,
            Frame::Bye { .. } => K_BYE,
            Frame::Pong { .. } => K_PONG,
            Frame::Error { .. } => K_ERROR,
        }
    }

    /// Encodes the frame, including the leading length prefix.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = ByteWriter::new();
        body.u8(self.kind());
        match self {
            Frame::Hello { version, client } => {
                body.u8(*version);
                body.str(client);
            }
            Frame::RegisterWarm {
                warm_id,
                sim,
                warm_cycles,
            } => {
                body.u32(*warm_id);
                sim.encode(&mut body);
                body.u64(*warm_cycles);
            }
            Frame::Submit { job_id, spec } => {
                body.u32(*job_id);
                spec.encode(&mut body);
            }
            Frame::Shutdown { cancel } => body.bool(*cancel),
            Frame::Ping { nonce } => body.u64(*nonce),
            Frame::HelloAck {
                version,
                server,
                pool_threads,
            } => {
                body.u8(*version);
                body.str(server);
                body.u32(*pool_threads);
            }
            Frame::WarmReady {
                warm_id,
                cycle,
                snap_bytes,
                build_ns,
            } => {
                body.u32(*warm_id);
                body.u64(*cycle);
                body.u64(*snap_bytes);
                body.u64(*build_ns);
            }
            Frame::Accepted { job_id, queued } => {
                body.u32(*job_id);
                body.u32(*queued);
            }
            Frame::StatsChunk {
                job_id,
                seq,
                last,
                data,
            }
            | Frame::TraceChunk {
                job_id,
                seq,
                last,
                data,
            } => {
                body.u32(*job_id);
                body.u32(*seq);
                body.bool(*last);
                body.bytes(data);
            }
            Frame::Done { job_id, summary } => {
                body.u32(*job_id);
                summary.encode(&mut body);
            }
            Frame::JobError { job_id, message } => {
                body.u32(*job_id);
                body.str(message);
            }
            Frame::Canceled { job_id } => body.u32(*job_id),
            Frame::Bye {
                completed,
                canceled,
            } => {
                body.u64(*completed);
                body.u64(*canceled);
            }
            Frame::Pong { nonce } => body.u64(*nonce),
            Frame::Error { message } => body.str(message),
        }
        let body = body.finish();
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame body (`kind + payload`, the bytes after the
    /// length prefix).
    pub fn decode(bytes: &[u8]) -> Result<Frame, ServeError> {
        let mut r = ByteReader::new(bytes);
        let kind = r.u8()?;
        let frame = match kind {
            K_HELLO => Frame::Hello {
                version: r.u8()?,
                client: r.str()?.to_string(),
            },
            K_REGISTER_WARM => Frame::RegisterWarm {
                warm_id: r.u32()?,
                sim: SimSpec::decode(&mut r)?,
                warm_cycles: r.u64()?,
            },
            K_SUBMIT => Frame::Submit {
                job_id: r.u32()?,
                spec: JobSpec::decode(&mut r)?,
            },
            K_SHUTDOWN => Frame::Shutdown { cancel: r.bool()? },
            K_PING => Frame::Ping { nonce: r.u64()? },
            K_HELLO_ACK => Frame::HelloAck {
                version: r.u8()?,
                server: r.str()?.to_string(),
                pool_threads: r.u32()?,
            },
            K_WARM_READY => Frame::WarmReady {
                warm_id: r.u32()?,
                cycle: r.u64()?,
                snap_bytes: r.u64()?,
                build_ns: r.u64()?,
            },
            K_ACCEPTED => Frame::Accepted {
                job_id: r.u32()?,
                queued: r.u32()?,
            },
            K_STATS_CHUNK => Frame::StatsChunk {
                job_id: r.u32()?,
                seq: r.u32()?,
                last: r.bool()?,
                data: r.bytes()?.to_vec(),
            },
            K_TRACE_CHUNK => Frame::TraceChunk {
                job_id: r.u32()?,
                seq: r.u32()?,
                last: r.bool()?,
                data: r.bytes()?.to_vec(),
            },
            K_DONE => Frame::Done {
                job_id: r.u32()?,
                summary: JobSummary::decode(&mut r)?,
            },
            K_JOB_ERROR => Frame::JobError {
                job_id: r.u32()?,
                message: r.str()?.to_string(),
            },
            K_CANCELED => Frame::Canceled { job_id: r.u32()? },
            K_BYE => Frame::Bye {
                completed: r.u64()?,
                canceled: r.u64()?,
            },
            K_PONG => Frame::Pong { nonce: r.u64()? },
            K_ERROR => Frame::Error {
                message: r.str()?.to_string(),
            },
            tag => return Err(ServeError::Wire(WireError::BadTag { at: 0, tag })),
        };
        if !r.is_empty() {
            return Err(ServeError::Protocol(format!(
                "frame kind {kind:#x} has {} trailing bytes",
                bytes.len() - r.pos()
            )));
        }
        Ok(frame)
    }

    /// Writes the frame to `w` (one atomic `write_all`).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), ServeError> {
        w.write_all(&self.encode())?;
        Ok(())
    }

    /// Reads one frame from `r`, blocking. A clean EOF at a frame
    /// boundary reports [`ServeError::Closed`]; EOF mid-frame is a
    /// protocol error.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, ServeError> {
        let mut len = [0u8; 4];
        let mut got = 0;
        while got < 4 {
            let n = r.read(&mut len[got..])?;
            if n == 0 {
                if got == 0 {
                    return Err(ServeError::Closed);
                }
                return Err(ServeError::Protocol("eof inside frame length".into()));
            }
            got += n;
        }
        let len = u32::from_le_bytes(len) as usize;
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(ServeError::Protocol(format!(
                "implausible frame length {len}"
            )));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                ServeError::Protocol("eof inside frame body".into())
            }
            _ => ServeError::Io(e),
        })?;
        Frame::decode(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        let mut cursor = std::io::Cursor::new(bytes);
        let back = Frame::read_from(&mut cursor).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(Frame::Hello {
            version: PROTO_VERSION,
            client: "test".into(),
        });
        roundtrip(Frame::RegisterWarm {
            warm_id: 1,
            sim: SimSpec::default(),
            warm_cycles: 5000,
        });
        roundtrip(Frame::Submit {
            job_id: 2,
            spec: JobSpec::default(),
        });
        roundtrip(Frame::Shutdown { cancel: true });
        roundtrip(Frame::Ping { nonce: 7 });
        roundtrip(Frame::HelloAck {
            version: PROTO_VERSION,
            server: "april-serve".into(),
            pool_threads: 8,
        });
        roundtrip(Frame::WarmReady {
            warm_id: 1,
            cycle: 5000,
            snap_bytes: 4096,
            build_ns: 123456,
        });
        roundtrip(Frame::Accepted {
            job_id: 2,
            queued: 3,
        });
        roundtrip(Frame::StatsChunk {
            job_id: 2,
            seq: 0,
            last: false,
            data: vec![1, 2, 3],
        });
        roundtrip(Frame::TraceChunk {
            job_id: 2,
            seq: 1,
            last: true,
            data: Vec::new(),
        });
        roundtrip(Frame::Done {
            job_id: 2,
            summary: JobSummary {
                warm_used: true,
                cycles: 100,
                instrs: 50,
                utilization: 0.5,
                drops: 1,
                dups: 2,
                delays: 3,
                setup_ns: 10,
                run_ns: 20,
                fault: String::new(),
            },
        });
        roundtrip(Frame::JobError {
            job_id: 2,
            message: "nope".into(),
        });
        roundtrip(Frame::Canceled { job_id: 9 });
        roundtrip(Frame::Bye {
            completed: 5,
            canceled: 2,
        });
        roundtrip(Frame::Pong { nonce: 7 });
        roundtrip(Frame::Error {
            message: "bad".into(),
        });
    }

    #[test]
    fn clean_eof_is_closed_and_truncation_is_protocol_error() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            Frame::read_from(&mut empty),
            Err(ServeError::Closed)
        ));
        let bytes = Frame::Ping { nonce: 1 }.encode();
        let mut cut = std::io::Cursor::new(bytes[..6].to_vec());
        assert!(matches!(
            Frame::read_from(&mut cut),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut out = Vec::new();
        out.extend_from_slice(&1u32.to_le_bytes());
        out.push(0x7f);
        let mut cursor = std::io::Cursor::new(out);
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(ServeError::Wire(WireError::BadTag { .. }))
        ));
    }
}
