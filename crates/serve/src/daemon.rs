//! The april-serve daemon: accept loop, job queue, worker pool, and a
//! deterministic shutdown.
//!
//! Threading model (DESIGN.md §16):
//!
//! * The calling thread runs the Unix-socket accept loop.
//! * Each accepted connection gets a **reader thread** that performs
//!   the hello handshake and then demultiplexes client frames:
//!   registrations build warm images inline, submissions are
//!   acknowledged and enqueued, pings are answered in place.
//! * A bounded pool of **worker threads** pops jobs off a shared
//!   FIFO queue, runs each through [`crate::exec::run_job`], and
//!   streams the result frames back to the submitting connection.
//!
//! Shutdown is deterministic: a [`Frame::Shutdown`] marks the queue
//! stopping (cancel mode additionally drains queued jobs, sending each
//! a [`Frame::Canceled`] in submission order), workers finish their
//! in-flight jobs and exit, the requester receives [`Frame::Bye`] with
//! final counters, every connection is closed, and *every* spawned
//! thread is joined before [`serve`] returns — no orphaned workers, no
//! leaked socket file.

use crate::exec::{build_warm_image, run_job, JobOutcome, WarmImage};
use crate::proto::{Frame, JobSummary, CHUNK_BYTES, PROTO_VERSION};
use crate::spec::JobSpec;
use crate::ServeError;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// How to run the daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path to bind the Unix socket at. An existing file at the path
    /// is removed first (stale sockets from a killed daemon would
    /// otherwise wedge restarts).
    pub socket: PathBuf,
    /// Worker threads in the pool; clamped to at least 1.
    pub threads: usize,
}

/// What the daemon did over its lifetime, returned by [`serve`] after
/// a clean shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonReport {
    /// Jobs that reached a terminal [`Frame::Done`] or
    /// [`Frame::JobError`].
    pub completed: u64,
    /// Jobs canceled by a cancel shutdown.
    pub canceled: u64,
    /// Connections accepted (excluding the internal shutdown wakeup).
    pub connections: u64,
    /// Warm images registered and held at shutdown.
    pub warm_images: usize,
}

/// One connection's write half. Reads happen only on the connection's
/// reader thread; writes come from both the reader (acks, pongs) and
/// any worker (job streams), serialized by the lock so frames never
/// interleave mid-frame.
struct Conn {
    stream: UnixStream,
    wlock: Mutex<()>,
}

impl Conn {
    fn new(stream: UnixStream) -> Conn {
        Conn {
            stream,
            wlock: Mutex::new(()),
        }
    }

    fn send(&self, frame: &Frame) -> Result<(), ServeError> {
        let _guard = self.wlock.lock().unwrap();
        let mut w = &self.stream;
        w.write_all(&frame.encode())?;
        Ok(())
    }

    fn close(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

struct QueuedJob {
    job_id: u32,
    spec: JobSpec,
    conn: Arc<Conn>,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    stopping: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    warm: Mutex<HashMap<u32, Arc<WarmImage>>>,
    completed: AtomicU64,
    canceled: AtomicU64,
    stopping: AtomicBool,
    requester: Mutex<Option<Arc<Conn>>>,
    socket: PathBuf,
    pool_threads: u32,
}

/// Runs the daemon until a client sends [`Frame::Shutdown`], then
/// drains (or cancels) the queue, joins every worker and reader
/// thread, removes the socket file, and reports lifetime counters.
pub fn serve(cfg: &DaemonConfig) -> Result<DaemonReport, ServeError> {
    let threads = cfg.threads.max(1);
    // A stale socket file from a killed daemon would make bind fail.
    let _ = std::fs::remove_file(&cfg.socket);
    let listener = UnixListener::bind(&cfg.socket)?;

    let shared = Arc::new(Shared {
        queue: Mutex::new(QueueState {
            jobs: VecDeque::new(),
            stopping: false,
        }),
        cv: Condvar::new(),
        warm: Mutex::new(HashMap::new()),
        completed: AtomicU64::new(0),
        canceled: AtomicU64::new(0),
        stopping: AtomicBool::new(false),
        requester: Mutex::new(None),
        socket: cfg.socket.clone(),
        pool_threads: threads as u32,
    });

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let shared = shared.clone();
            thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    let mut readers = Vec::new();
    let mut conns: Vec<Arc<Conn>> = Vec::new();
    let mut connections = 0u64;
    loop {
        let (stream, _) = listener.accept()?;
        if shared.stopping.load(Ordering::SeqCst) {
            // The wakeup connection a shutdown handler made to unblock
            // this accept; drop it and stop accepting.
            drop(stream);
            break;
        }
        connections += 1;
        let conn = Arc::new(Conn::new(stream));
        conns.push(conn.clone());
        let shared = shared.clone();
        let reader_conn = conn.clone();
        readers.push(thread::spawn(move || reader_loop(&reader_conn, &shared)));
    }

    // Workers exit once the queue is empty (drain) or drained (cancel).
    for w in workers {
        let _ = w.join();
    }
    let report = DaemonReport {
        completed: shared.completed.load(Ordering::SeqCst),
        canceled: shared.canceled.load(Ordering::SeqCst),
        connections,
        warm_images: shared.warm.lock().unwrap().len(),
    };
    // Bye goes out after every worker has exited, so its counters are
    // final and the requester can treat it as "all quiet".
    if let Some(req) = shared.requester.lock().unwrap().as_ref() {
        let _ = req.send(&Frame::Bye {
            completed: report.completed,
            canceled: report.canceled,
        });
    }
    for c in &conns {
        c.close();
    }
    for r in readers {
        let _ = r.join();
    }
    let _ = std::fs::remove_file(&cfg.socket);
    Ok(report)
}

/// One worker: pop, run, stream, repeat; exit when the queue is empty
/// and stopping.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.stopping {
                    return;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        run_one(shared, &job);
        shared.completed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Runs one queued job and streams its result frames; every terminal
/// path sends exactly one of [`Frame::Done`] / [`Frame::JobError`].
/// Send failures are ignored — a client that hung up forfeits its
/// results, nothing else.
fn run_one(shared: &Shared, job: &QueuedJob) {
    let warm: Option<Arc<WarmImage>> = match job.spec.warm {
        Some(id) => match shared.warm.lock().unwrap().get(&id) {
            Some(img) => Some(img.clone()),
            None => {
                let _ = job.conn.send(&Frame::JobError {
                    job_id: job.job_id,
                    message: ServeError::UnknownWarm(id).to_string(),
                });
                return;
            }
        },
        None => None,
    };
    match run_job(&job.spec, warm.as_deref()) {
        Ok(out) => {
            stream_text(&job.conn, job.job_id, out.stats_json.as_bytes(), false);
            if let Some(trace) = &out.trace_jsonl {
                stream_text(&job.conn, job.job_id, trace.as_bytes(), true);
            }
            let _ = job.conn.send(&Frame::Done {
                job_id: job.job_id,
                summary: summarize(&out),
            });
        }
        Err(e) => {
            let _ = job.conn.send(&Frame::JobError {
                job_id: job.job_id,
                message: e.to_string(),
            });
        }
    }
}

fn summarize(out: &JobOutcome) -> JobSummary {
    JobSummary {
        warm_used: out.warm_used,
        cycles: out.cycles,
        instrs: out.instrs,
        utilization: out.utilization,
        drops: out.drops,
        dups: out.dups,
        delays: out.delays,
        setup_ns: out.setup_ns,
        run_ns: out.run_ns,
        fault: out.fault.clone().unwrap_or_default(),
    }
}

/// Streams `data` as ordered [`CHUNK_BYTES`]-sized chunks; always at
/// least one chunk so the receiver's "seen a last chunk" state machine
/// has no empty-stream special case.
fn stream_text(conn: &Conn, job_id: u32, data: &[u8], trace: bool) {
    let total = data.len().div_ceil(CHUNK_BYTES);
    let total = total.max(1);
    for seq in 0..total {
        let start = seq * CHUNK_BYTES;
        let end = (start + CHUNK_BYTES).min(data.len());
        let chunk = data[start..end].to_vec();
        let last = seq + 1 == total;
        let frame = if trace {
            Frame::TraceChunk {
                job_id,
                seq: seq as u32,
                last,
                data: chunk,
            }
        } else {
            Frame::StatsChunk {
                job_id,
                seq: seq as u32,
                last,
                data: chunk,
            }
        };
        if conn.send(&frame).is_err() {
            return;
        }
    }
}

/// One connection's reader: handshake, then serve client frames until
/// the peer hangs up or the daemon shuts the stream down.
fn reader_loop(conn: &Arc<Conn>, shared: &Shared) {
    let mut r = &conn.stream;
    // Handshake: the first frame must be a version-matched Hello.
    match Frame::read_from(&mut r) {
        Ok(Frame::Hello { version, .. }) if version == PROTO_VERSION => {
            let _ = conn.send(&Frame::HelloAck {
                version: PROTO_VERSION,
                server: "april-serve".into(),
                pool_threads: shared.pool_threads,
            });
        }
        Ok(Frame::Hello { version, .. }) => {
            let _ = conn.send(&Frame::Error {
                message: format!(
                    "protocol version mismatch: client {version}, daemon {PROTO_VERSION}"
                ),
            });
            conn.close();
            return;
        }
        Ok(other) => {
            let _ = conn.send(&Frame::Error {
                message: format!("first frame must be hello, got kind {:#x}", other.kind()),
            });
            conn.close();
            return;
        }
        Err(_) => {
            conn.close();
            return;
        }
    }

    loop {
        let frame = match Frame::read_from(&mut r) {
            Ok(f) => f,
            Err(ServeError::Closed) => return,
            Err(ServeError::Io(_)) => return,
            Err(e) => {
                let _ = conn.send(&Frame::Error {
                    message: e.to_string(),
                });
                conn.close();
                return;
            }
        };
        match frame {
            Frame::RegisterWarm {
                warm_id,
                sim,
                warm_cycles,
            } => {
                if shared.warm.lock().unwrap().contains_key(&warm_id) {
                    let _ = conn.send(&Frame::Error {
                        message: format!("warm id {warm_id} already registered"),
                    });
                    conn.close();
                    return;
                }
                // Built inline on the reader thread: registration is a
                // handful of one-time boots per sweep, not worth
                // queueing behind jobs.
                match build_warm_image(&sim, warm_cycles) {
                    Ok(img) => {
                        let (cycle, snap_bytes, build_ns) =
                            (img.cycle, img.snap.as_bytes().len() as u64, img.build_ns);
                        shared.warm.lock().unwrap().insert(warm_id, Arc::new(img));
                        let _ = conn.send(&Frame::WarmReady {
                            warm_id,
                            cycle,
                            snap_bytes,
                            build_ns,
                        });
                    }
                    Err(e) => {
                        let _ = conn.send(&Frame::Error {
                            message: format!("warm image {warm_id} failed to build: {e}"),
                        });
                        conn.close();
                        return;
                    }
                }
            }
            Frame::Submit { job_id, spec } => {
                // Accepted goes out before the job can possibly
                // produce frames, so the client always sees
                // Accepted → chunks → terminal, in that order.
                let queued = {
                    let q = shared.queue.lock().unwrap();
                    if q.stopping {
                        None
                    } else {
                        Some(q.jobs.len() as u32 + 1)
                    }
                };
                match queued {
                    None => {
                        let _ = conn.send(&Frame::JobError {
                            job_id,
                            message: "daemon is shutting down".into(),
                        });
                    }
                    Some(depth) => {
                        let _ = conn.send(&Frame::Accepted {
                            job_id,
                            queued: depth,
                        });
                        let mut q = shared.queue.lock().unwrap();
                        q.jobs.push_back(QueuedJob {
                            job_id,
                            spec,
                            conn: conn.clone(),
                        });
                        drop(q);
                        shared.cv.notify_one();
                    }
                }
            }
            Frame::Ping { nonce } => {
                let _ = conn.send(&Frame::Pong { nonce });
            }
            Frame::Shutdown { cancel } => {
                let drained: Vec<QueuedJob> = {
                    let mut q = shared.queue.lock().unwrap();
                    q.stopping = true;
                    if cancel {
                        q.jobs.drain(..).collect()
                    } else {
                        Vec::new()
                    }
                };
                shared.cv.notify_all();
                // Canceled frames go out in submission order — the
                // drain preserved the queue's FIFO order.
                for j in &drained {
                    shared.canceled.fetch_add(1, Ordering::SeqCst);
                    let _ = j.conn.send(&Frame::Canceled { job_id: j.job_id });
                }
                let mut req = shared.requester.lock().unwrap();
                if req.is_none() {
                    *req = Some(conn.clone());
                }
                drop(req);
                shared.stopping.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = UnixStream::connect(&shared.socket);
                // Keep reading: the client is now waiting for Bye,
                // which serve() sends after the workers join; the
                // stream shutdown that follows ends this loop.
            }
            other => {
                let _ = conn.send(&Frame::Error {
                    message: format!("unexpected client frame kind {:#x}", other.kind()),
                });
                conn.close();
                return;
            }
        }
    }
}
