//! The job vocabulary: what a client may ask the daemon to simulate.
//!
//! A [`SimSpec`] fully determines a machine and a workload; a
//! [`JobSpec`] wraps one with the per-job knobs a parameter sweep
//! varies — fault plan, warm image, cycle budget. Both encode to the
//! wire through the `april-util` codec (PROTOCOL.md gives the byte
//! layout), and both are plain data: equality of specs is equality of
//! runs, which is what the daemon's determinism contract rests on.

use crate::ServeError;
use april_core::isa::asm::assemble;
use april_core::program::Program;
use april_machine::{service_program, MachineConfig, TrafficConfig};
use april_net::fault::{FaultPlan, FaultRule};
use april_net::topology::Topology;
use april_util::wire::{ByteReader, ByteWriter, WireError};

/// The workload a job runs. The daemon regenerates the program from
/// this description, so warm images and jobs agree on the program
/// image by construction (snapshot restores validate the digest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// The contended-sharing sweep workload: all nodes hammer one
    /// falsely-shared block region homed at node 0, with `inner` ALU
    /// cycles of local compute between remote accesses. `inner = 0` is
    /// pure contention; large `inner` is compute-bound.
    Contended {
        /// Remote read/write iterations per node.
        outer: u32,
        /// Local delay-loop iterations between remote accesses.
        inner: u32,
    },
    /// The open-loop request-serving workload (DESIGN.md §15): edge
    /// nodes absorb a seeded arrival stream and every node runs the
    /// generated service loop.
    OpenLoop(TrafficConfig),
}

impl Workload {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Workload::Contended { outer, inner } => {
                w.u8(0);
                w.u32(*outer);
                w.u32(*inner);
            }
            Workload::OpenLoop(t) => {
                w.u8(1);
                w.u64(t.seed);
                w.u32(t.edge_every);
                w.u32(t.requests_per_edge);
                w.u32(t.mean_gap);
                w.u32(t.phase_len);
                w.u32(t.off_mul);
                w.u32(t.ring_offset);
                w.u32(t.ring_slots);
                w.u32(t.work_remote);
                w.u32(t.work_local);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Workload, WireError> {
        let at = r.pos();
        match r.u8()? {
            0 => Ok(Workload::Contended {
                outer: r.u32()?,
                inner: r.u32()?,
            }),
            1 => Ok(Workload::OpenLoop(TrafficConfig {
                seed: r.u64()?,
                edge_every: r.u32()?,
                requests_per_edge: r.u32()?,
                mean_gap: r.u32()?,
                phase_len: r.u32()?,
                off_mul: r.u32()?,
                ring_offset: r.u32()?,
                ring_slots: r.u32()?,
                work_remote: r.u32()?,
                work_local: r.u32()?,
            })),
            tag => Err(WireError::BadTag { at, tag }),
        }
    }
}

/// A complete machine + workload description: everything needed to
/// build a [`MachineConfig`] and assemble the program. Scheduler knobs
/// (`lockstep`, `workers`, `window_override`, `decode`,
/// `watchdog_horizon`) select *how* the job is executed, not *what* it
/// computes — they are free to differ between a warm image and the
/// jobs forked from it, exactly as the snapshot layer's semantic
/// config normalization allows (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSpec {
    /// Mesh radix (nodes per dimension).
    pub radix: u32,
    /// Mesh dimensionality; `radix^dim` nodes total.
    pub dim: u32,
    /// Bytes of globally shared memory owned by each node.
    pub region_bytes: u32,
    /// Memory access latency at the home node, in cycles.
    pub mem_latency: u64,
    /// Force the strict cycle-by-cycle reference scheduler.
    pub lockstep: bool,
    /// Worker threads: 0 or 1 runs the sequential machine; ≥ 2 runs
    /// the deterministic parallel machine with that many workers.
    pub workers: u32,
    /// Conservative-window override for the parallel machine (0 =
    /// automatic).
    pub window_override: u64,
    /// Use the pre-decoded bytecode engine (DESIGN.md §13).
    pub decode: bool,
    /// Forward-progress watchdog horizon in cycles (0 = the machine
    /// default).
    pub watchdog_horizon: u64,
    /// What the machine runs.
    pub workload: Workload,
}

impl Default for SimSpec {
    fn default() -> SimSpec {
        SimSpec {
            radix: 2,
            dim: 2,
            region_bytes: 1 << 20,
            mem_latency: 10,
            lockstep: false,
            workers: 1,
            window_override: 0,
            decode: true,
            watchdog_horizon: 0,
            workload: Workload::Contended {
                outer: 50,
                inner: 0,
            },
        }
    }
}

impl SimSpec {
    /// The [`MachineConfig`] this spec describes.
    pub fn machine_config(&self) -> MachineConfig {
        let mut cfg = MachineConfig {
            topology: Topology::new(self.dim as usize, self.radix as usize),
            region_bytes: self.region_bytes,
            mem_latency: self.mem_latency,
            lockstep: self.lockstep,
            workers: self.workers.max(1) as usize,
            window_override: self.window_override,
            decode: self.decode,
            ..MachineConfig::default()
        };
        if self.watchdog_horizon != 0 {
            cfg.watchdog.horizon = self.watchdog_horizon;
        }
        if let Workload::OpenLoop(t) = self.workload {
            cfg.traffic = Some(t);
        }
        cfg
    }

    /// Assembles the program image for this spec's workload.
    pub fn program(&self) -> Result<Program, ServeError> {
        let src = match self.workload {
            Workload::Contended { outer, inner } => contended_source(outer, inner),
            Workload::OpenLoop(_) => service_program(&self.machine_config()),
        };
        assemble(&src).map_err(|e| ServeError::BadSpec(format!("workload does not assemble: {e}")))
    }

    /// Whether a warm image built from `base` can seed a job running
    /// this spec: everything that shapes the simulated computation
    /// must match; scheduler-selection knobs are free.
    pub fn warm_compatible(&self, base: &SimSpec) -> bool {
        let norm = |s: &SimSpec| SimSpec {
            lockstep: false,
            workers: 1,
            window_override: 0,
            decode: true,
            watchdog_horizon: 0,
            ..*s
        };
        norm(self) == norm(base)
    }

    /// Encodes the spec (PROTOCOL.md "SimSpec").
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u32(self.radix);
        w.u32(self.dim);
        w.u32(self.region_bytes);
        w.u64(self.mem_latency);
        w.bool(self.lockstep);
        w.u32(self.workers);
        w.u64(self.window_override);
        w.bool(self.decode);
        w.u64(self.watchdog_horizon);
        self.workload.encode(w);
    }

    /// Decodes a spec encoded by [`SimSpec::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<SimSpec, WireError> {
        Ok(SimSpec {
            radix: r.u32()?,
            dim: r.u32()?,
            region_bytes: r.u32()?,
            mem_latency: r.u64()?,
            lockstep: r.bool()?,
            workers: r.u32()?,
            window_override: r.u64()?,
            decode: r.bool()?,
            watchdog_horizon: r.u64()?,
            workload: Workload::decode(r)?,
        })
    }
}

/// The contended-sharing workload source (shared with the sweep
/// harness, which predates the daemon).
fn contended_source(outer: u32, inner: u32) -> String {
    let compute = if inner > 0 {
        format!(
            "
            movi {inner}, r12
        inner:
            add r13, 4, r13
            sub r12, 1, r12
            jne inner
            nop"
        )
    } else {
        String::new()
    };
    format!(
        "
        .entry main
        main:
            ldio 1, r8         ; node id (fixnum == 4*id: byte offset!)
            movi 0x200, r9
            add r9, r8, r9     ; my word, homed at node 0
            movi {outer}, r10
        outer:{compute}
            ld r9+0, r11       ; remote read miss
            add r11, 4, r11
            st r11, r9+0       ; write-upgrade miss
            flush r9+0
            sub r10, 1, r10
            jne outer
            nop
            halt
        ",
    )
}

/// A seeded fault-injection description: the per-job knob a fault
/// sweep varies. In a warm-started job the plan is installed at the
/// warm point; the cold twin of such a job installs it at the same
/// cycle after re-executing the warmup, so the two runs see identical
/// fault schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Injection-PRNG seed.
    pub seed: u64,
    /// Per-hop drop probability.
    pub drop: f64,
    /// Per-hop duplication probability.
    pub dup: f64,
    /// Per-hop delay probability.
    pub delay: f64,
    /// Maximum injected delay in cycles.
    pub max_delay: u64,
}

impl FaultSpec {
    /// The [`FaultPlan`] this spec describes.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed).with_default_rule(FaultRule {
            drop: self.drop,
            dup: self.dup,
            delay: self.delay,
            max_delay: self.max_delay,
        })
    }

    /// Encodes the spec (PROTOCOL.md "FaultSpec").
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.seed);
        w.f64(self.drop);
        w.f64(self.dup);
        w.f64(self.delay);
        w.u64(self.max_delay);
    }

    /// Decodes a spec encoded by [`FaultSpec::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<FaultSpec, WireError> {
        Ok(FaultSpec {
            seed: r.u64()?,
            drop: r.f64()?,
            dup: r.f64()?,
            delay: r.f64()?,
            max_delay: r.u64()?,
        })
    }
}

/// One simulation job: a machine + workload, the sweep-varied knobs,
/// and a cycle budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// The machine and workload.
    pub sim: SimSpec,
    /// Fault plan installed at the warm point (cycle `warm_cycles`).
    pub fault: Option<FaultSpec>,
    /// Warm image to fork instead of re-executing the warmup. The
    /// image must have been registered with the daemon, be
    /// [`SimSpec::warm_compatible`] with `sim`, and have been cut at
    /// exactly `warm_cycles`.
    pub warm: Option<u32>,
    /// The warmup length in cycles. A cold run boots and executes the
    /// warmup; a warm run restores a checkpoint cut at this cycle.
    /// 0 means no warmup phase (plain cold boot from cycle 0).
    pub warm_cycles: u64,
    /// Hard cycle budget; a job that has not quiesced by then reports
    /// a budget-exhausted outcome rather than running forever.
    pub max_cycles: u64,
    /// Stream the semantic event trace (JSONL) back alongside stats.
    pub want_trace: bool,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            sim: SimSpec::default(),
            fault: None,
            warm: None,
            warm_cycles: 0,
            max_cycles: 50_000_000,
            want_trace: false,
        }
    }
}

impl JobSpec {
    /// Encodes the spec (PROTOCOL.md "JobSpec").
    pub fn encode(&self, w: &mut ByteWriter) {
        self.sim.encode(w);
        w.bool(self.fault.is_some());
        if let Some(f) = &self.fault {
            f.encode(w);
        }
        w.bool(self.warm.is_some());
        w.u32(self.warm.unwrap_or(0));
        w.u64(self.warm_cycles);
        w.u64(self.max_cycles);
        w.bool(self.want_trace);
    }

    /// Decodes a spec encoded by [`JobSpec::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<JobSpec, WireError> {
        let sim = SimSpec::decode(r)?;
        let fault = if r.bool()? {
            Some(FaultSpec::decode(r)?)
        } else {
            None
        };
        let has_warm = r.bool()?;
        let warm_id = r.u32()?;
        Ok(JobSpec {
            sim,
            fault,
            warm: has_warm.then_some(warm_id),
            warm_cycles: r.u64()?,
            max_cycles: r.u64()?,
            want_trace: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_exactly() {
        let spec = JobSpec {
            sim: SimSpec {
                radix: 3,
                dim: 2,
                workers: 4,
                lockstep: true,
                watchdog_horizon: 9999,
                workload: Workload::Contended {
                    outer: 17,
                    inner: 3,
                },
                ..SimSpec::default()
            },
            fault: Some(FaultSpec {
                seed: 42,
                drop: 0.01,
                dup: 0.02,
                delay: 0.03,
                max_delay: 40,
            }),
            warm: Some(7),
            warm_cycles: 12345,
            max_cycles: 1 << 30,
            want_trace: true,
        };
        let mut w = ByteWriter::new();
        spec.encode(&mut w);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(JobSpec::decode(&mut r).unwrap(), spec);
        assert!(r.is_empty());
    }

    #[test]
    fn openloop_workload_roundtrips() {
        let spec = SimSpec {
            workload: Workload::OpenLoop(TrafficConfig::default()),
            ..SimSpec::default()
        };
        let mut w = ByteWriter::new();
        spec.encode(&mut w);
        let bytes = w.finish();
        assert_eq!(SimSpec::decode(&mut ByteReader::new(&bytes)).unwrap(), spec);
    }

    #[test]
    fn warm_compatibility_ignores_scheduler_knobs() {
        let base = SimSpec::default();
        let par = SimSpec {
            workers: 4,
            lockstep: false,
            decode: false,
            watchdog_horizon: 1 << 20,
            ..base
        };
        assert!(par.warm_compatible(&base));
        let other = SimSpec {
            mem_latency: 11,
            ..base
        };
        assert!(!other.warm_compatible(&base));
        let other_load = SimSpec {
            workload: Workload::Contended {
                outer: 51,
                inner: 0,
            },
            ..base
        };
        assert!(!other_load.warm_compatible(&base));
    }
}
