//! End-to-end daemon tests: determinism under concurrency, warm-start
//! equivalence over the wire, shutdown semantics, and protocol
//! policing.
//!
//! The determinism contract under test: a job's stats JSON and
//! semantic trace JSONL are a pure function of its spec (plus warm
//! image) — independent of the daemon's worker-pool size, of what
//! other jobs run concurrently, of completion order, and of whether
//! setup was a cold boot or a warm fork.

use april_serve::{
    run_job, serve, Client, DaemonConfig, DaemonReport, FaultSpec, Frame, JobSpec, ServeError,
    SimSpec, Workload, PROTO_VERSION,
};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

const WARM: u64 = 300;

fn sock(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "april-serve-test-{}-{name}.sock",
        std::process::id()
    ))
}

fn sim() -> SimSpec {
    SimSpec {
        radix: 2,
        dim: 2,
        workload: Workload::Contended {
            outer: 40,
            inner: 0,
        },
        ..SimSpec::default()
    }
}

fn job(seed: u64, warm: Option<u32>) -> JobSpec {
    JobSpec {
        sim: sim(),
        fault: Some(FaultSpec {
            seed,
            drop: 0.01,
            dup: 0.01,
            delay: 0.04,
            max_delay: 40,
        }),
        warm,
        warm_cycles: WARM,
        max_cycles: 3_000_000,
        want_trace: true,
    }
}

fn start_daemon(
    socket: &Path,
    threads: usize,
) -> thread::JoinHandle<Result<DaemonReport, ServeError>> {
    let cfg = DaemonConfig {
        socket: socket.to_path_buf(),
        threads,
    };
    thread::spawn(move || serve(&cfg))
}

fn connect(socket: &Path) -> Client {
    for _ in 0..200 {
        if let Ok(c) = Client::connect(socket, "test") {
            return c;
        }
        thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon on {} never came up", socket.display());
}

#[test]
fn warm_jobs_over_the_wire_match_in_process_cold_runs() {
    let socket = sock("warm-eq");
    let daemon = start_daemon(&socket, 3);
    let mut client = connect(&socket);
    client.register_warm(1, &sim(), WARM).unwrap();

    let seeds = [11u64, 22, 33, 44, 55, 66];
    for (i, seed) in seeds.iter().enumerate() {
        client.submit(i as u32, &job(*seed, Some(1))).unwrap();
    }
    let results = client.collect(seeds.len()).unwrap();
    assert_eq!(results.len(), seeds.len());

    for (i, seed) in seeds.iter().enumerate() {
        let r = &results[i];
        assert_eq!(r.job_id, i as u32);
        let s = r.summary.as_ref().expect("job should have run");
        assert!(s.warm_used);
        assert!(s.fault.is_empty(), "job faulted: {}", s.fault);
        // The cold in-process reference re-executes the warmup instead
        // of forking the image; byte-identical outputs required.
        let cold = run_job(&job(*seed, None), None).unwrap();
        assert_eq!(r.stats_json, cold.stats_json, "seed {seed}: stats diverged");
        assert_eq!(
            r.trace_jsonl.as_deref(),
            cold.trace_jsonl.as_deref(),
            "seed {seed}: trace diverged"
        );
        assert_eq!(s.cycles, cold.cycles);
        assert_eq!(s.instrs, cold.instrs);
    }

    let report = client.shutdown(false).unwrap();
    assert_eq!(report.completed, seeds.len() as u64);
    assert_eq!(report.canceled, 0);
    let dr = daemon.join().unwrap().unwrap();
    assert_eq!(dr.completed, seeds.len() as u64);
    assert_eq!(dr.warm_images, 1);
}

#[test]
fn pool_size_does_not_affect_results() {
    // Same job set against a 3-worker daemon and a 1-worker daemon;
    // completion order differs, per-job bytes must not.
    let run_with = |threads: usize, tag: &str| {
        let socket = sock(&format!("pool-{tag}"));
        let daemon = start_daemon(&socket, threads);
        let mut client = connect(&socket);
        client.register_warm(1, &sim(), WARM).unwrap();
        // A mixed batch: warm and cold jobs interleaved.
        for i in 0..8u32 {
            let warm = (i % 2 == 0).then_some(1);
            client.submit(i, &job(100 + i as u64 / 2, warm)).unwrap();
        }
        let results = client.collect(8).unwrap();
        client.shutdown(false).unwrap();
        daemon.join().unwrap().unwrap();
        results
            .into_iter()
            .map(|r| (r.job_id, r.stats_json, r.trace_jsonl))
            .collect::<Vec<_>>()
    };
    let wide = run_with(3, "wide");
    let narrow = run_with(1, "narrow");
    assert_eq!(wide, narrow);
    // Warm/cold pairs with the same seed: byte-identical too.
    for pair in wide.chunks(2) {
        assert_eq!(pair[0].1, pair[1].1, "warm/cold pair diverged");
        assert_eq!(pair[0].2, pair[1].2, "warm/cold pair trace diverged");
    }
}

#[test]
fn drain_shutdown_finishes_every_accepted_job() {
    let socket = sock("drain");
    let daemon = start_daemon(&socket, 2);
    let mut client = connect(&socket);
    for i in 0..5u32 {
        client.submit(i, &job(7 + i as u64, None)).unwrap();
    }
    // Shutdown immediately: drain mode still runs all five.
    let report = client.shutdown(false).unwrap();
    assert_eq!(report.completed, 5);
    assert_eq!(report.canceled, 0);
    let done: Vec<u32> = report
        .results
        .iter()
        .filter(|r| r.summary.is_some())
        .map(|r| r.job_id)
        .collect();
    assert_eq!(done, vec![0, 1, 2, 3, 4]);
    daemon.join().unwrap().unwrap();
}

#[test]
fn cancel_shutdown_accounts_for_every_job() {
    let socket = sock("cancel");
    let daemon = start_daemon(&socket, 1);
    let mut client = connect(&socket);
    let total = 6u32;
    for i in 0..total {
        client.submit(i, &job(900 + i as u64, None)).unwrap();
    }
    let report = client.shutdown(true).unwrap();
    // Every accepted job is accounted for: ran or canceled, none lost.
    assert_eq!(report.completed + report.canceled, total as u64);
    assert!(
        report.canceled > 0,
        "single worker cannot have run all six before the cancel"
    );
    let mut seen: Vec<u32> = report.results.iter().map(|r| r.job_id).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..total).collect::<Vec<_>>());
    // Canceled jobs are exactly the queued tail, in submission order.
    let canceled: Vec<u32> = report
        .results
        .iter()
        .filter(|r| r.canceled)
        .map(|r| r.job_id)
        .collect();
    assert_eq!(
        canceled,
        ((total - report.canceled as u32)..total).collect::<Vec<_>>()
    );
    let dr = daemon.join().unwrap().unwrap();
    assert_eq!(dr.completed + dr.canceled, total as u64);
}

#[test]
fn version_mismatch_is_refused_at_handshake() {
    let socket = sock("version");
    let daemon = start_daemon(&socket, 1);
    // Raw socket: speak a future protocol version.
    let mut stream = {
        let mut s = None;
        for _ in 0..200 {
            if let Ok(c) = UnixStream::connect(&socket) {
                s = Some(c);
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        s.expect("daemon never came up")
    };
    stream
        .write_all(
            &Frame::Hello {
                version: PROTO_VERSION + 1,
                client: "from-the-future".into(),
            }
            .encode(),
        )
        .unwrap();
    match Frame::read_from(&mut stream).unwrap() {
        Frame::Error { message } => assert!(message.contains("version"), "{message}"),
        other => panic!("expected an error frame, got {other:?}"),
    }
    // And the daemon closed the connection.
    assert!(matches!(
        Frame::read_from(&mut stream),
        Err(ServeError::Closed) | Err(ServeError::Protocol(_)) | Err(ServeError::Io(_))
    ));
    let mut client = connect(&socket);
    client.shutdown(false).unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn unknown_or_mismatched_warm_images_are_job_errors() {
    let socket = sock("badwarm");
    let daemon = start_daemon(&socket, 1);
    let mut client = connect(&socket);
    // Unknown warm id.
    client.submit(0, &job(1, Some(99))).unwrap();
    // Registered image, but the job asks for a different machine.
    client.register_warm(1, &sim(), WARM).unwrap();
    let mut wrong = job(1, Some(1));
    wrong.sim.mem_latency += 5;
    client.submit(1, &wrong).unwrap();
    // Wrong warm cycle.
    let mut off = job(1, Some(1));
    off.warm_cycles = WARM + 1;
    client.submit(2, &off).unwrap();
    // A correct job still runs on the same connection afterwards.
    client.submit(3, &job(1, Some(1))).unwrap();
    let results = client.collect(4).unwrap();
    assert!(results[0]
        .error
        .as_deref()
        .unwrap()
        .contains("unknown warm image"));
    assert!(results[1].error.as_deref().unwrap().contains("warm"));
    assert!(results[2]
        .error
        .as_deref()
        .unwrap()
        .contains("cut at cycle"));
    assert!(results[3].summary.is_some());
    client.shutdown(false).unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn ping_round_trips() {
    let socket = sock("ping");
    let daemon = start_daemon(&socket, 1);
    let mut client = connect(&socket);
    client.ping(0xfeed).unwrap();
    client.shutdown(false).unwrap();
    daemon.join().unwrap().unwrap();
    assert!(
        !socket.exists(),
        "socket file should be removed on shutdown"
    );
}
