//! Embeddable run-time drivers.
//!
//! The sequential [`crate::Machine`] loop surfaces step events
//! to its caller, who answers them through `cpu_mut`/`charge_handler`/
//! `charge_idle`. The parallel machine cannot do that — events arise on
//! worker threads mid-window, and shipping them to the coordinator and
//! back would serialize every cycle. Instead the run-time policy is
//! expressed as a [`NodeDriver`]: a `Sync` value the scheduler invokes
//! *in place*, on whichever thread owns the node, against an
//! [`EventCtx`] that scopes mutation to that node. One driver value
//! then drives the lockstep, event-skipping, and parallel schedulers
//! identically, which is what makes the three-way equivalence suite
//! (and DESIGN.md §9's determinism argument) meaningful.

use crate::alewife::Alewife;
use crate::watchdog::MachineFault;
use crate::Machine;
use april_core::cpu::{Cpu, StepEvent};
use april_core::frame::FrameState;
use april_core::trap::Trap;

/// What a driver may touch while answering one node's step event: that
/// node's processor, plus the cycle ledger. Charging delays the node;
/// the scheduler behind the context keeps `ready_at` and any
/// idle-tracking bookkeeping consistent.
pub trait EventCtx {
    /// The event's processor, for context switching and frame surgery.
    fn cpu(&mut self) -> &mut Cpu;
    /// Charges trap-handler cycles and delays the node by as many.
    fn charge_handler(&mut self, cycles: u64);
    /// Charges idle cycles and delays the node by as many.
    fn charge_idle(&mut self, cycles: u64);
}

/// A run-time policy invoked for every step event a node reports.
///
/// `Sync` because the parallel scheduler calls it concurrently from all
/// worker threads; drivers therefore hold only shared immutable policy
/// (per-run mutable state would also break bit-exactness across worker
/// counts).
pub trait NodeDriver: Sync {
    /// Answers one step event on node `node`.
    fn on_event(&self, node: usize, ev: StepEvent, ctx: &mut dyn EventCtx);
}

/// References forward, so generic `run` surfaces (which take `&D` with
/// `D: NodeDriver`) also accept `&dyn NodeDriver` — the recovery layer
/// drives machines through trait objects.
impl<T: NodeDriver + ?Sized> NodeDriver for &T {
    fn on_event(&self, node: usize, ev: StepEvent, ctx: &mut dyn EventCtx) {
        (**self).on_event(node, ev, ctx);
    }
}

/// The switch-spin run-time used throughout the equivalence and bench
/// suites: on a remote-miss trap, park the frame as `WaitingRemote` and
/// pay the context-switch handler; with no ready frame, rotate to the
/// next ready one or spin one idle cycle. Traps it cannot service are
/// programming errors and panic.
#[derive(Debug, Clone, Copy)]
pub struct SwitchSpin {
    /// Cycles charged for the remote-miss trap handler (the paper's
    /// coarse-grain context switch costs about 10 cycles; the
    /// equivalence suite historically charges 6).
    pub handler_cycles: u64,
}

impl Default for SwitchSpin {
    fn default() -> SwitchSpin {
        SwitchSpin { handler_cycles: 6 }
    }
}

impl NodeDriver for SwitchSpin {
    fn on_event(&self, node: usize, ev: StepEvent, ctx: &mut dyn EventCtx) {
        match ev {
            StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                let cpu = ctx.cpu();
                let fp = cpu.fp();
                let fr = cpu.frame_mut(fp);
                fr.state = FrameState::WaitingRemote;
                fr.psr.in_trap = false;
                ctx.charge_handler(self.handler_cycles);
            }
            StepEvent::Trapped(t) => panic!("node {node}: {t}"),
            StepEvent::NoReadyFrame => {
                let cpu = ctx.cpu();
                match cpu.next_ready_frame() {
                    Some(f) => cpu.set_fp(f),
                    None => ctx.charge_idle(1),
                }
            }
            _ => {}
        }
    }
}

/// Adapts the sequential [`Machine`] surface to an [`EventCtx`], so the
/// same driver value can serve `advance()`-style loops. Routing through
/// the trait methods (not the node directly) preserves the event-driven
/// scheduler's parked-CPU bookkeeping.
struct MachineCtx<'a, M: Machine> {
    m: &'a mut M,
    node: usize,
}

impl<M: Machine> EventCtx for MachineCtx<'_, M> {
    fn cpu(&mut self) -> &mut Cpu {
        self.m.cpu_mut(self.node)
    }

    fn charge_handler(&mut self, cycles: u64) {
        self.m.charge_handler(self.node, cycles);
    }

    fn charge_idle(&mut self, cycles: u64) {
        self.m.charge_idle(self.node, cycles);
    }
}

/// Drives a sequential machine with `driver` until it faults or goes
/// fully quiescent: every processor halted *and* no protocol work
/// pending (in-flight packets, outstanding transactions, busy
/// directory entries, waiting frames). Draining to quiescence — rather
/// than stopping at the last `halt` — is what makes final machine
/// states comparable across schedulers whose clocks stop at different
/// points. Returns the fault, if any. Panics past `max` cycles.
pub fn drive_sequential(
    m: &mut Alewife,
    driver: &dyn NodeDriver,
    max: u64,
) -> Option<MachineFault> {
    // One event buffer for the whole run: the advance loop allocates
    // nothing once the buffer has grown to the steady-state width.
    let mut evs = Vec::new();
    loop {
        assert!(m.now() < max, "timeout at cycle {}", m.now());
        if m.fault().is_some() {
            return m.fault().cloned();
        }
        if m.all_halted() && !m.pending_work() {
            return None;
        }
        m.advance_into(&mut evs);
        for (i, ev) in evs.drain(..) {
            let mut ctx = MachineCtx { m, node: i };
            driver.on_event(i, ev, &mut ctx);
        }
    }
}

/// Like [`drive_sequential`], but stops as soon as the clock reaches
/// `stop_at` (the machine lands on that cycle exactly — see
/// [`Alewife::advance_capped`]), whether or not the run is finished.
/// Used to position a machine for a checkpoint, or to replay a
/// restored machine up to a comparison cycle. Returns the fault if one
/// ended the run first. Panics past `max` cycles.
pub fn drive_sequential_until(
    m: &mut Alewife,
    driver: &dyn NodeDriver,
    stop_at: u64,
    max: u64,
) -> Option<MachineFault> {
    loop {
        assert!(m.now() < max, "timeout at cycle {}", m.now());
        if m.fault().is_some() {
            return m.fault().cloned();
        }
        if m.now() >= stop_at || (m.all_halted() && !m.pending_work()) {
            return None;
        }
        for (i, ev) in m.advance_capped(stop_at) {
            let mut ctx = MachineCtx { m, node: i };
            driver.on_event(i, ev, &mut ctx);
        }
    }
}
