//! Watchdog-triggered checkpoint rollback-recovery.
//!
//! The fault-injection layer can wedge a run fatally: a fail-stop link
//! silently swallows a protocol message, the transaction behind it
//! never completes, and the watchdog (or the retransmission budget)
//! eventually declares the machine dead. The [`RecoveryManager`] turns
//! that fatal wedge into a survivable event. It keeps a bounded
//! in-memory ring of periodic [`Snapshot`] checkpoints while the run is
//! healthy; when a [`MachineFault`] surfaces it *diagnoses* the fault,
//! derives a **quarantine** — the channel (or, escalating, the node)
//! most implicated by the post-mortem — rolls the machine back to the
//! newest good checkpoint, re-applies every quarantine accumulated so
//! far, backs off the watchdog horizon, and re-executes. Attempts are
//! hard-capped; exhausting them surfaces a structured
//! [`RecoveryReport`] instead of a panic.
//!
//! Determinism is the referee throughout. The quarantine decision is a
//! *pure function* of the fault-plan seed, the attempt number, and the
//! post-mortem ([`derive_quarantine`]) — no wall clock, no ambient
//! randomness — so the same seeded run recovers identically on the
//! lockstep, event-driven, and parallel schedulers at any worker
//! count. And because quarantines live in the network's fault plan
//! (checkpointed state) while the watchdog horizon is normalized out
//! of snapshot validation (supervision policy, not machine state), a
//! recovered run is bit-identical — trace, stats, memory — to a fresh
//! run launched from the same checkpoint with the quarantined config.
//!
//! The manager narrates itself on the `recovery` observability lane:
//! [`EventKind::CheckpointTaken`], [`EventKind::Rollback`],
//! [`EventKind::QuarantineApplied`], and [`EventKind::ReExecute`]
//! events, plus a `recovery` stats section. The lane is owned by the
//! manager, not the machine, so the recovery saga survives rollbacks
//! (which restore the machine's own probe rings to checkpoint state).

use crate::alewife::{nodes_pending_work, Alewife};
use crate::driver::{drive_sequential_until, NodeDriver};
use crate::parallel::ParallelAlewife;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::watchdog::{MachineFault, PostMortem};
use crate::Machine;
use april_net::topology::{Channel, Topology};
use april_obs::{lane, Component, EventKind, Probe, Section, Trace, TraceConfig};
use april_util::splitmix64;
use april_util::wire::digest64;
use std::fmt;

/// Recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Cycles between periodic checkpoints.
    pub checkpoint_interval: u64,
    /// Checkpoints retained in the in-memory ring; the oldest is
    /// evicted when a new one would exceed this.
    pub ring_capacity: usize,
    /// Rollback attempts before the manager gives up with
    /// [`RecoveryFailure::AttemptsExhausted`].
    pub max_attempts: u32,
    /// Simulated-cycle budget for the whole supervised run (including
    /// re-executions); exceeding it surfaces
    /// [`RecoveryFailure::CycleBudget`].
    pub max_cycles: u64,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            checkpoint_interval: 2_000,
            ring_capacity: 4,
            max_attempts: 4,
            max_cycles: 10_000_000,
        }
    }
}

/// The accumulated set of network elements the recovery layer has
/// declared dead. Applied to a machine's fault plan, the router
/// detours around every member (or dead-letters traffic with no alive
/// route).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quarantine {
    /// Quarantined directed channels.
    pub channels: Vec<Channel>,
    /// Quarantined nodes.
    pub nodes: Vec<usize>,
}

impl Quarantine {
    /// True if nothing has been quarantined.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty() && self.nodes.is_empty()
    }

    /// Applies every member to `m`'s fault plan. Idempotent; used both
    /// after each rollback (restore brings back the pre-quarantine
    /// plan) and to configure a fresh machine for the recovered-vs-
    /// fresh equivalence check.
    pub fn apply<M: RecoverableMachine>(&self, m: &mut M) {
        for &ch in &self.channels {
            m.quarantine_channel(ch);
        }
        for &n in &self.nodes {
            m.quarantine_node(n);
        }
    }
}

/// One quarantine decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineAction {
    /// Kill a directed channel; routing detours around it.
    Channel(Channel),
    /// Kill a whole node; traffic to or through it dead-letters.
    Node(usize),
}

/// Why the manager gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryFailure {
    /// Every allowed rollback was spent and the run still faulted;
    /// carries the final fault.
    AttemptsExhausted(MachineFault),
    /// The fault implicates no network path the manager could
    /// quarantine (e.g. a protocol logic error, or every candidate is
    /// already quarantined).
    Unquarantinable(MachineFault),
    /// The supervised run exceeded [`RecoveryConfig::max_cycles`].
    CycleBudget,
    /// A checkpoint or restore failed.
    Snapshot(SnapshotError),
}

impl fmt::Display for RecoveryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryFailure::AttemptsExhausted(fault) => {
                write!(f, "recovery attempts exhausted; final fault: {fault}")
            }
            RecoveryFailure::Unquarantinable(fault) => {
                write!(f, "fault implicates nothing quarantinable: {fault}")
            }
            RecoveryFailure::CycleBudget => write!(f, "recovery cycle budget exceeded"),
            RecoveryFailure::Snapshot(e) => write!(f, "checkpointing failed: {e}"),
        }
    }
}

/// The structured outcome of a supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// True if the run completed (possibly after rollbacks).
    pub recovered: bool,
    /// Rollback attempts performed.
    pub attempts: u32,
    /// Checkpoints taken across the whole supervised run.
    pub checkpoints_taken: u64,
    /// Rollbacks performed (equals `attempts` unless a failure cut the
    /// last one short).
    pub rollbacks: u64,
    /// Everything quarantined along the way.
    pub quarantine: Quarantine,
    /// The watchdog horizon in force at the end.
    pub final_horizon: u64,
    /// The machine's final cycle.
    pub final_cycle: u64,
    /// The checkpoint the *last* rollback restored from, with its
    /// cycle — the launch point for the recovered-vs-fresh equivalence
    /// check.
    pub last_restored: Option<(u64, Snapshot)>,
    /// Why the manager gave up, if it did.
    pub failure: Option<RecoveryFailure>,
}

/// What the manager needs from a machine: clocked checkpointable
/// execution plus quarantine and watchdog-horizon control. Implemented
/// by the sequential [`Alewife`] (covering both the lockstep and
/// event-driven schedulers) and by [`ParallelAlewife`].
pub trait RecoverableMachine {
    /// Current simulated time.
    fn now(&self) -> u64;
    /// The fatal fault that ended the run, if any.
    fn fault(&self) -> Option<&MachineFault>;
    /// True when the run is complete: every processor halted and no
    /// protocol or network work pending.
    fn finished(&self) -> bool;
    /// Captures the machine's complete state (`&mut self`: decode-
    /// engine booked runs materialize before encoding).
    fn checkpoint(&mut self) -> Result<Snapshot, SnapshotError>;
    /// Restores a checkpoint (clearing any recorded fault).
    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError>;
    /// Runs under `driver` until the clock reaches `stop_at`, the run
    /// finishes, or a fault surfaces (returned).
    fn run_to(&mut self, driver: &dyn NodeDriver, stop_at: u64) -> Option<MachineFault>;
    /// Quarantines a directed channel in the network's fault plan.
    fn quarantine_channel(&mut self, ch: Channel);
    /// Quarantines a node in the network's fault plan.
    fn quarantine_node(&mut self, node: usize);
    /// Replaces the watchdog's no-progress horizon.
    fn set_watchdog_horizon(&mut self, horizon: u64);
    /// The watchdog's current no-progress horizon.
    fn watchdog_horizon(&self) -> u64;
    /// The home node of byte address `addr`.
    fn home_of(&self, addr: u32) -> usize;
    /// The network topology.
    fn topology(&self) -> Topology;
    /// The fault plan's seed (0 if no plan is installed); one input of
    /// the deterministic quarantine decision.
    fn fault_seed(&self) -> u64;
}

impl RecoverableMachine for Alewife {
    fn now(&self) -> u64 {
        Machine::now(self)
    }

    fn fault(&self) -> Option<&MachineFault> {
        Machine::fault(self)
    }

    fn finished(&self) -> bool {
        self.all_halted() && !self.pending_work()
    }

    fn checkpoint(&mut self) -> Result<Snapshot, SnapshotError> {
        Alewife::checkpoint(self)
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        Alewife::restore(self, snap)
    }

    fn run_to(&mut self, driver: &dyn NodeDriver, stop_at: u64) -> Option<MachineFault> {
        // `stop_at + 1` keeps the timeout assertion clear of the stop
        // cycle itself; the budget proper is the manager's.
        drive_sequential_until(self, driver, stop_at, stop_at + 1)
    }

    fn quarantine_channel(&mut self, ch: Channel) {
        Alewife::quarantine_channel(self, ch);
    }

    fn quarantine_node(&mut self, node: usize) {
        Alewife::quarantine_node(self, node);
    }

    fn set_watchdog_horizon(&mut self, horizon: u64) {
        Alewife::set_watchdog_horizon(self, horizon);
    }

    fn watchdog_horizon(&self) -> u64 {
        Alewife::watchdog_horizon(self)
    }

    fn home_of(&self, addr: u32) -> usize {
        self.config().home_of(addr)
    }

    fn topology(&self) -> Topology {
        self.config().topology
    }

    fn fault_seed(&self) -> u64 {
        self.fault_plan().map_or(0, |p| p.seed())
    }
}

impl RecoverableMachine for ParallelAlewife {
    fn now(&self) -> u64 {
        ParallelAlewife::now(self)
    }

    fn fault(&self) -> Option<&MachineFault> {
        ParallelAlewife::fault(self)
    }

    fn finished(&self) -> bool {
        self.nodes.iter().all(|n| n.cpu.is_halted())
            && !nodes_pending_work(&self.nodes)
            && self.net.is_idle()
    }

    fn checkpoint(&mut self) -> Result<Snapshot, SnapshotError> {
        ParallelAlewife::checkpoint(self)
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        ParallelAlewife::restore(self, snap)
    }

    fn run_to(&mut self, driver: &dyn NodeDriver, stop_at: u64) -> Option<MachineFault> {
        ParallelAlewife::run_until(self, &driver, stop_at, stop_at + 1)
    }

    fn quarantine_channel(&mut self, ch: Channel) {
        ParallelAlewife::quarantine_channel(self, ch);
    }

    fn quarantine_node(&mut self, node: usize) {
        ParallelAlewife::quarantine_node(self, node);
    }

    fn set_watchdog_horizon(&mut self, horizon: u64) {
        ParallelAlewife::set_watchdog_horizon(self, horizon);
    }

    fn watchdog_horizon(&self) -> u64 {
        ParallelAlewife::watchdog_horizon(self)
    }

    fn home_of(&self, addr: u32) -> usize {
        self.config().home_of(addr)
    }

    fn topology(&self) -> Topology {
        self.config().topology
    }

    fn fault_seed(&self) -> u64 {
        self.fault_plan().map_or(0, |p| p.seed())
    }
}

/// The `(suspect, peer)` node pairs a fault implicates, most specific
/// first, deduplicated, loopback pairs dropped (no channel to blame).
fn implicated_pairs(fault: &MachineFault, home_of: &dyn Fn(u32) -> usize) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut push = |a: usize, b: usize| {
        if a != b && !pairs.contains(&(a, b)) {
            pairs.push((a, b));
        }
    };
    match fault {
        MachineFault::Protocol { error, .. } => {
            if let Some((node, block)) = error.implicates() {
                push(node, home_of(block));
            }
        }
        MachineFault::NoForwardProgress(pm) => {
            let pm: &PostMortem = pm;
            for t in &pm.outstanding {
                push(t.node, home_of(t.block));
            }
            for b in &pm.busy_blocks {
                push(b.home, b.requester);
                for &w in &b.awaiting {
                    push(b.home, w);
                }
            }
            for m in &pm.in_flight {
                push(m.src, m.dst);
            }
        }
    }
    pairs
}

/// Appends the dimension-order route channels from `a` to `b`.
fn route_channels(topo: &Topology, mut a: usize, b: usize, out: &mut Vec<Channel>) {
    while a != b {
        let Some((ch, next)) = topo.next_hop(a, b) else {
            return;
        };
        out.push(ch);
        a = next;
    }
}

/// Derives the quarantine for a fault: a **pure function** of the
/// fault-plan seed, the attempt number, and the fault's post-mortem
/// content. Candidate channels are the dimension-order route channels
/// of every implicated `(suspect, peer)` pair — request and reply
/// direction — in post-mortem order, deduplicated, minus anything
/// already quarantined; the pick is `splitmix64(seed ^ attempt)`
/// indexed into the candidates. When every channel candidate is
/// exhausted the decision escalates to quarantining an implicated
/// node. `None` means the fault implicates nothing quarantinable.
pub fn derive_quarantine(
    topo: &Topology,
    home_of: &dyn Fn(u32) -> usize,
    fault: &MachineFault,
    already: &Quarantine,
    seed: u64,
    attempt: u32,
) -> Option<QuarantineAction> {
    let pairs = implicated_pairs(fault, home_of);
    let mut channels: Vec<Channel> = Vec::new();
    for &(a, b) in &pairs {
        route_channels(topo, a, b, &mut channels);
        route_channels(topo, b, a, &mut channels);
    }
    let mut seen: Vec<Channel> = Vec::new();
    let candidates: Vec<Channel> = channels
        .into_iter()
        .filter(|ch| {
            if already.channels.contains(ch) || seen.contains(ch) {
                false
            } else {
                seen.push(*ch);
                true
            }
        })
        .collect();
    let r = splitmix64(seed ^ attempt as u64);
    if !candidates.is_empty() {
        return Some(QuarantineAction::Channel(
            candidates[(r % candidates.len() as u64) as usize],
        ));
    }
    // Escalation: every suspect channel is already dead and the run
    // still wedges on this pair — take out a node. Suspects are the
    // pair endpoints in post-mortem order.
    let mut nodes: Vec<usize> = Vec::new();
    for &(a, b) in &pairs {
        for n in [a, b] {
            if !already.nodes.contains(&n) && !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    if nodes.is_empty() {
        return None;
    }
    Some(QuarantineAction::Node(
        nodes[(r % nodes.len() as u64) as usize],
    ))
}

/// A digest of a fault's *semantic* content — which transactions,
/// directory entries, frames, and messages are wedged — excluding the
/// cycle, horizon, and fault counters, which legitimately shift across
/// re-executions. Two rollbacks hitting the same key mean the newest
/// checkpoint already contains the wedge (e.g. retries are disabled and
/// the lost message predates it), so the manager rolls back deeper.
fn fault_key(fault: &MachineFault) -> u64 {
    match fault {
        MachineFault::Protocol { node, error } => {
            digest64(format!("protocol:{node}:{error:?}").as_bytes())
        }
        MachineFault::NoForwardProgress(pm) => digest64(
            format!(
                "wedge:{:?}:{:?}:{:?}:{:?}:{:?}:{:?}",
                pm.in_flight,
                pm.undeliverable,
                pm.busy_blocks,
                pm.outstanding,
                pm.stalled_frames,
                pm.fences
            )
            .as_bytes(),
        ),
    }
}

/// Encodes a quarantine action into an event payload: channels pack
/// `node << 8 | dim << 1 | plus` with `b = 0`, nodes carry the index
/// with `b = 1`.
fn action_payload(action: QuarantineAction) -> (u64, u64) {
    match action {
        QuarantineAction::Channel(ch) => (
            (ch.node as u64) << 8 | (ch.dim as u64) << 1 | ch.plus as u64,
            0,
        ),
        QuarantineAction::Node(n) => (n as u64, 1),
    }
}

/// Supervises a machine through faults: periodic checkpoints, fault
/// diagnosis, quarantine, rollback, re-execution. See the module docs
/// for the full protocol.
#[derive(Debug)]
pub struct RecoveryManager {
    cfg: RecoveryConfig,
    probe: Probe,
    ring: Vec<(u64, Snapshot)>,
    quarantine: Quarantine,
    attempts: u32,
    checkpoints_taken: u64,
    rollbacks: u64,
    last_fault_key: Option<u64>,
    last_restored: Option<(u64, Snapshot)>,
    final_horizon: u64,
}

impl RecoveryManager {
    /// Creates a manager with the given policy.
    pub fn new(cfg: RecoveryConfig) -> RecoveryManager {
        assert!(cfg.checkpoint_interval > 0, "zero checkpoint interval");
        assert!(cfg.ring_capacity > 0, "zero checkpoint ring");
        RecoveryManager {
            cfg,
            probe: Probe::default(),
            ring: Vec::new(),
            quarantine: Quarantine::default(),
            attempts: 0,
            checkpoints_taken: 0,
            rollbacks: 0,
            last_fault_key: None,
            last_restored: None,
            final_horizon: 0,
        }
    }

    /// Installs a live probe on the `recovery` lane. Call before
    /// [`RecoveryManager::run`].
    pub fn attach_tracer(&mut self, cfg: TraceConfig) {
        self.probe = Probe::new(lane(Component::Recovery, 0), cfg);
    }

    /// The recovery lane's probe, for merging into a [`Trace`].
    pub fn trace_probe(&self) -> &Probe {
        &self.probe
    }

    /// The recovery saga as its own trace.
    pub fn collect_trace(&self) -> Trace {
        let mut t = Trace::new();
        t.push_probe(&self.probe);
        t.sort();
        t
    }

    /// The recovery counters as a stats section. Kept outside the
    /// machine's own [`april_obs::StatsReport`] so machine-level stats
    /// stay byte-comparable between a recovered run and a fresh run
    /// from the same checkpoint.
    pub fn stats_section(&self) -> Section {
        let mut s = Section::new("recovery");
        s.counter("checkpoints_taken", self.checkpoints_taken)
            .counter("rollbacks", self.rollbacks)
            .counter("attempts", self.attempts as u64)
            .counter(
                "quarantined_channels",
                self.quarantine.channels.len() as u64,
            )
            .counter("quarantined_nodes", self.quarantine.nodes.len() as u64)
            .counter("final_horizon", self.final_horizon);
        s
    }

    fn push_checkpoint(&mut self, cycle: u64, snap: Snapshot) {
        self.ring.push((cycle, snap));
        while self.ring.len() > self.cfg.ring_capacity {
            self.ring.remove(0);
        }
        self.checkpoints_taken += 1;
        self.probe
            .emit(cycle, EventKind::CheckpointTaken, self.ring.len() as u64, 0);
    }

    fn report<M: RecoverableMachine>(
        &self,
        m: &M,
        recovered: bool,
        failure: Option<RecoveryFailure>,
    ) -> RecoveryReport {
        RecoveryReport {
            recovered,
            attempts: self.attempts,
            checkpoints_taken: self.checkpoints_taken,
            rollbacks: self.rollbacks,
            quarantine: self.quarantine.clone(),
            final_horizon: m.watchdog_horizon(),
            final_cycle: m.now(),
            last_restored: self.last_restored.clone(),
            failure,
        }
    }

    /// Supervises `m` under `driver` to completion or structured
    /// failure. The machine should be booted and un-faulted; its
    /// current watchdog horizon is the base the backoff doubles from.
    pub fn run<M: RecoverableMachine>(
        &mut self,
        m: &mut M,
        driver: &dyn NodeDriver,
    ) -> RecoveryReport {
        let base_horizon = m.watchdog_horizon();
        self.final_horizon = base_horizon;
        match m.checkpoint() {
            Ok(snap) => self.push_checkpoint(m.now(), snap),
            Err(e) => return self.report(m, false, Some(RecoveryFailure::Snapshot(e))),
        }
        loop {
            if m.finished() {
                return self.report(m, true, None);
            }
            if m.now() >= self.cfg.max_cycles {
                return self.report(m, false, Some(RecoveryFailure::CycleBudget));
            }
            let interval = self.cfg.checkpoint_interval;
            let stop = ((m.now() / interval) + 1)
                .saturating_mul(interval)
                .min(self.cfg.max_cycles);
            let fault = m.run_to(driver, stop);
            let Some(fault) = fault else {
                if m.finished() {
                    return self.report(m, true, None);
                }
                match m.checkpoint() {
                    Ok(snap) => self.push_checkpoint(m.now(), snap),
                    Err(e) => return self.report(m, false, Some(RecoveryFailure::Snapshot(e))),
                }
                continue;
            };
            // Diagnose, quarantine, roll back, re-execute.
            if self.attempts >= self.cfg.max_attempts {
                return self.report(m, false, Some(RecoveryFailure::AttemptsExhausted(fault)));
            }
            self.attempts += 1;
            let topo = m.topology();
            let seed = m.fault_seed();
            let action = {
                let home_of = |a: u32| m.home_of(a);
                derive_quarantine(
                    &topo,
                    &home_of,
                    &fault,
                    &self.quarantine,
                    seed,
                    self.attempts - 1,
                )
            };
            let Some(action) = action else {
                return self.report(m, false, Some(RecoveryFailure::Unquarantinable(fault)));
            };
            let fault_cycle = m.now();
            let key = fault_key(&fault);
            if self.last_fault_key == Some(key) {
                // The same wedge re-surfaced after a quarantine: the
                // wedge predates the last restore point (with retries
                // disabled a lost message is never resent), so every
                // checkpoint taken at or after it — including the ones
                // the re-execution just pushed — contains the wedge
                // too. Discard them and roll back strictly deeper.
                if let Some((last_cycle, _)) = self.last_restored {
                    while self.ring.len() > 1
                        && self.ring.last().is_some_and(|(c, _)| *c >= last_cycle)
                    {
                        self.ring.pop();
                    }
                }
            }
            self.last_fault_key = Some(key);
            let (ckpt_cycle, snap) = self.ring.last().cloned().expect("ring never empties");
            if let Err(e) = m.restore(&snap) {
                return self.report(m, false, Some(RecoveryFailure::Snapshot(e)));
            }
            match action {
                QuarantineAction::Channel(ch) => {
                    if !self.quarantine.channels.contains(&ch) {
                        self.quarantine.channels.push(ch);
                    }
                }
                QuarantineAction::Node(n) => {
                    if !self.quarantine.nodes.contains(&n) {
                        self.quarantine.nodes.push(n);
                    }
                }
            }
            // Restore brought back the checkpoint-time fault plan;
            // re-apply *everything* accumulated so far.
            self.quarantine.apply(m);
            let horizon = base_horizon.saturating_mul(1u64 << self.attempts.min(16));
            m.set_watchdog_horizon(horizon);
            self.final_horizon = horizon;
            self.rollbacks += 1;
            self.last_restored = Some((ckpt_cycle, snap));
            let (a, b) = action_payload(action);
            self.probe
                .emit(fault_cycle, EventKind::QuarantineApplied, a, b);
            self.probe.emit(
                fault_cycle,
                EventKind::Rollback,
                ckpt_cycle,
                self.attempts as u64,
            );
            self.probe.emit(
                ckpt_cycle,
                EventKind::ReExecute,
                horizon,
                self.attempts as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::{InFlightMsg, OutstandingTxn};
    use april_mem::msg::CohMsg;
    use april_mem::ProtocolError;

    fn homes(a: u32) -> usize {
        (a as usize) >> 16 // 64 KiB regions
    }

    #[test]
    fn quarantine_is_a_pure_function_of_seed_and_post_mortem() {
        let topo = Topology::new(2, 2);
        let fault = MachineFault::Protocol {
            node: 0,
            error: ProtocolError::RetriesExhausted {
                node: 0,
                block: 0x10000, // home 1
                xid: 3,
                retries: 16,
            },
        };
        let q = Quarantine::default();
        let first = derive_quarantine(&topo, &homes, &fault, &q, 42, 0).unwrap();
        for _ in 0..5 {
            assert_eq!(
                derive_quarantine(&topo, &homes, &fault, &q, 42, 0).unwrap(),
                first,
                "same inputs, same decision"
            );
        }
        // The candidates are the 0->1 and 1->0 route channels.
        let QuarantineAction::Channel(ch) = first else {
            panic!("expected a channel quarantine, got {first:?}");
        };
        assert!(ch.node == 0 || ch.node == 1);
        // A different attempt number may pick differently, but still
        // deterministically.
        let second = derive_quarantine(&topo, &homes, &fault, &q, 42, 1).unwrap();
        assert_eq!(
            derive_quarantine(&topo, &homes, &fault, &q, 42, 1).unwrap(),
            second
        );
    }

    #[test]
    fn exhausted_channels_escalate_to_nodes_then_nothing() {
        let topo = Topology::new(2, 2);
        let fault = MachineFault::Protocol {
            node: 0,
            error: ProtocolError::RetriesExhausted {
                node: 0,
                block: 0x10000,
                xid: 1,
                retries: 16,
            },
        };
        // Quarantine every channel on the 0<->1 routes.
        let mut q = Quarantine::default();
        loop {
            match derive_quarantine(&topo, &homes, &fault, &q, 7, 0) {
                Some(QuarantineAction::Channel(ch)) => q.channels.push(ch),
                Some(QuarantineAction::Node(_)) => break,
                None => panic!("escalation must offer a node first"),
            }
        }
        // Node escalation exhausts too.
        q.nodes.extend([0, 1]);
        assert_eq!(derive_quarantine(&topo, &homes, &fault, &q, 7, 0), None);
    }

    #[test]
    fn logic_errors_are_unquarantinable() {
        let topo = Topology::new(2, 2);
        let fault = MachineFault::Protocol {
            node: 1,
            error: ProtocolError::UnexpectedMessage {
                node: 1,
                from: 2,
                msg: CohMsg::RdReq { block: 0, xid: 0 },
            },
        };
        assert_eq!(
            derive_quarantine(&topo, &homes, &fault, &Quarantine::default(), 1, 0),
            None
        );
    }

    #[test]
    fn post_mortem_pairs_cover_outstanding_busy_and_in_flight() {
        let pm = PostMortem {
            outstanding: vec![OutstandingTxn {
                node: 0,
                block: 0x10000,
                xid: 1,
                write_issued: false,
                frames: vec![0],
            }],
            in_flight: vec![InFlightMsg {
                id: 3,
                src: 2,
                dst: 3,
                sent_at: 10,
                msg: CohMsg::RdReq {
                    block: 0x30000,
                    xid: 9,
                },
            }],
            ..PostMortem::default()
        };
        let fault = MachineFault::NoForwardProgress(Box::new(pm));
        let pairs = implicated_pairs(&fault, &homes);
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn fault_key_ignores_cycle_and_horizon() {
        let mk = |cycle, horizon| {
            MachineFault::NoForwardProgress(Box::new(PostMortem {
                cycle,
                horizon,
                outstanding: vec![OutstandingTxn {
                    node: 0,
                    block: 0x40,
                    xid: 1,
                    write_issued: false,
                    frames: vec![],
                }],
                ..PostMortem::default()
            }))
        };
        assert_eq!(fault_key(&mk(100, 50)), fault_key(&mk(999, 800)));
        let other = MachineFault::NoForwardProgress(Box::<PostMortem>::default());
        assert_ne!(fault_key(&mk(100, 50)), fault_key(&other));
    }
}
