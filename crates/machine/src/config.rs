//! Machine configuration.

use crate::traffic::TrafficConfig;
use crate::watchdog::WatchdogConfig;
use april_core::cpu::CpuConfig;
use april_mem::cache::CacheConfig;
use april_mem::controller::CtlConfig;
use april_mem::directory::DirConfig;
use april_net::network::NetConfig;
use april_net::topology::Topology;

/// Configuration of a full ALEWIFE machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Network topology (number of nodes = `topology.num_nodes()`).
    pub topology: Topology,
    /// Per-node processor configuration.
    pub cpu: CpuConfig,
    /// Per-node cache geometry.
    pub cache: CacheConfig,
    /// Controller timing and retransmission policy.
    pub ctl: CtlConfig,
    /// Directory policy (waiter queue bound, retransmission).
    pub dir: DirConfig,
    /// Network timing.
    pub net: NetConfig,
    /// Forward-progress watchdog policy.
    pub watchdog: WatchdogConfig,
    /// Bytes of globally shared memory owned by each node; global
    /// addresses are region-partitioned, so address `a`'s home is
    /// `a / region_bytes`.
    pub region_bytes: u32,
    /// Memory access latency charged at the home node before a
    /// data-bearing protocol reply is injected (Table 4: 10 cycles).
    pub mem_latency: u64,
    /// Force the strict cycle-by-cycle advance loop instead of the
    /// event-driven skip. The two are cycle-exact equivalents (see
    /// DESIGN.md §8); this flag exists so the equivalence is testable
    /// and so anomalies can be bisected against the reference path.
    pub lockstep: bool,
    /// Worker threads for the parallel machine
    /// ([`crate::parallel::ParallelAlewife`]); clamped to the node
    /// count, and ignored by the sequential [`crate::Alewife`]. All
    /// worker counts produce bit-identical runs (DESIGN.md §9).
    pub workers: usize,
    /// Conservative-window width override for the parallel machine:
    /// 0 picks the network's lookahead bound automatically; a nonzero
    /// value may only *narrow* the window (it is clamped to the
    /// lookahead, never widened past it — wider would be unsound).
    pub window_override: u64,
    /// Use the pre-decoded bytecode fast path (DESIGN.md §13): the
    /// loaded program is lowered once into flat [`april_core::DecodedProgram`]
    /// ops and straight-line safe runs are executed in batches without
    /// per-instruction IRQ/frame/trap re-checks. Cycle-exact with the
    /// interpreter (`decode: false`); defaults on, overridable with the
    /// `APRIL_DECODE=0` environment variable. The decoded image is
    /// derived state — rebuilt on load/restore, never snapshotted.
    pub decode: bool,
    /// Open-loop traffic description (DESIGN.md §15): when set, edge
    /// I/O-handler nodes receive a seeded, deterministic open-arrival
    /// request stream injected by the machine itself. `None` (the
    /// default) leaves the machine purely program-driven.
    pub traffic: Option<TrafficConfig>,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            topology: Topology::new(2, 4),
            cpu: CpuConfig::default(),
            cache: CacheConfig::default(),
            ctl: CtlConfig::default(),
            dir: DirConfig::default(),
            net: NetConfig::default(),
            watchdog: WatchdogConfig::default(),
            region_bytes: 1 << 20,
            mem_latency: 10,
            lockstep: false,
            workers: 1,
            window_override: 0,
            decode: decode_default(),
            traffic: None,
        }
    }
}

/// Default for [`MachineConfig::decode`]: on, unless `APRIL_DECODE=0`
/// is set in the environment (the CI equivalence suite uses this to
/// keep the legacy interpreter path honest).
fn decode_default() -> bool {
    std::env::var("APRIL_DECODE").map_or(true, |v| v != "0")
}

impl MachineConfig {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    /// Total globally shared memory in bytes.
    pub fn total_mem_bytes(&self) -> usize {
        self.num_nodes() * self.region_bytes as usize
    }

    /// The home node of byte address `addr`.
    pub fn home_of(&self, addr: u32) -> usize {
        ((addr / self.region_bytes) as usize).min(self.num_nodes() - 1)
    }

    /// The base address of `node`'s memory region.
    pub fn region_base(&self, node: usize) -> u32 {
        node as u32 * self.region_bytes
    }

    /// Cache block size in words (for message sizing).
    pub fn block_words(&self) -> u32 {
        self.cache.block_bytes / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_partitioning() {
        let cfg = MachineConfig {
            region_bytes: 0x1000,
            ..MachineConfig::default()
        };
        assert_eq!(cfg.home_of(0), 0);
        assert_eq!(cfg.home_of(0xfff), 0);
        assert_eq!(cfg.home_of(0x1000), 1);
        assert_eq!(cfg.region_base(3), 0x3000);
    }

    #[test]
    fn home_clamps_to_last_node() {
        let cfg = MachineConfig {
            region_bytes: 0x1000,
            ..MachineConfig::default()
        };
        assert_eq!(cfg.home_of(u32::MAX), cfg.num_nodes() - 1);
    }
}
