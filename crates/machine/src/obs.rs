//! Machine-level observability plumbing shared by the sequential and
//! parallel ALEWIFE machines: probe attachment, trace assembly, and
//! the [`StatsReport`] builder.
//!
//! Reports are derived exclusively from deterministic component state
//! (cycle ledgers, protocol counters, network statistics) — never from
//! the scheduler's final clock — so the same workload yields a
//! byte-equal report under the lockstep, event-driven, and parallel
//! schedulers at any worker count. Traces likewise merge per-component
//! probe rings whose contents are bit-identical across schedulers (see
//! DESIGN.md §10).

use crate::alewife::{Env, Node};
use april_core::stats::CpuStats;
use april_mem::controller::CtlStats;
use april_mem::directory::DirStats;
use april_net::network::Network;
use april_obs::{lane, Component, Probe, QHist, Section, StatsReport, Trace, TraceConfig};

/// Installs live probes on every node's processor, cache controller,
/// and directory, one lane per component per node.
pub(crate) fn attach_node_probes(nodes: &mut [Node], cfg: TraceConfig) {
    for (i, n) in nodes.iter_mut().enumerate() {
        let i = i as u32;
        n.cpu.attach_probe(Probe::new(lane(Component::Cpu, i), cfg));
        n.ctl.attach_probe(Probe::new(lane(Component::Ctl, i), cfg));
        n.dir.attach_probe(Probe::new(lane(Component::Dir, i), cfg));
        if let Some(tr) = n.traffic.as_deref_mut() {
            tr.probe = Probe::new(lane(Component::Request, i), cfg);
        }
    }
}

/// Appends every node-component probe to `trace` (the network and meta
/// probes are pushed by the caller, which owns them).
pub(crate) fn collect_node_traces(trace: &mut Trace, nodes: &[Node]) {
    for n in nodes {
        trace.push_probe(n.cpu.trace_probe());
        trace.push_probe(n.ctl.trace_probe());
        trace.push_probe(n.dir.trace_probe());
        if let Some(tr) = n.traffic.as_deref() {
            trace.push_probe(&tr.probe);
        }
    }
}

/// Builds the full metrics snapshot: machine-wide aggregates (the
/// paper's Table 4–7 style breakdowns — utilization, misses per 1k
/// cycles, context-switch frequency) followed by one section per node.
pub(crate) fn build_report(nodes: &[Node], net: &Network<Env>) -> StatsReport {
    let mut report = StatsReport::new();

    let mut cpu = CpuStats::default();
    let mut ctl = CtlStats::default();
    let mut dir = DirStats::default();
    for n in nodes {
        cpu.merge(&n.cpu.stats);
        ctl.merge(&n.ctl.stats);
        dir.merge(&n.dir.stats);
    }
    let total = cpu.total();
    let per_1k = |count: u64| {
        if total == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / total as f64
        }
    };

    let mut s = Section::new("machine");
    s.counter("nodes", nodes.len() as u64)
        .counter("total_cycles", total);
    report.push(s);

    let mut s = Section::new("cpu");
    s.counter("useful_cycles", cpu.useful_cycles)
        .counter("trap_cycles", cpu.trap_cycles)
        .counter("handler_cycles", cpu.handler_cycles)
        .counter("stall_cycles", cpu.stall_cycles)
        .counter("idle_cycles", cpu.idle_cycles)
        .counter("instructions", cpu.instructions)
        .counter("context_switches", cpu.context_switches)
        .counter("traps", cpu.traps)
        .counter("mem_ops", cpu.mem_ops)
        .counter("remote_misses", cpu.remote_misses)
        .counter("fe_traps", cpu.fe_traps)
        .counter("future_traps", cpu.future_traps)
        .gauge("utilization", cpu.utilization())
        .gauge("misses_per_1k_cycles", per_1k(cpu.remote_misses))
        .gauge("switches_per_1k_cycles", per_1k(cpu.context_switches));
    report.push(s);

    let mut s = Section::new("cache");
    let accesses = ctl.hits + ctl.local_fills + ctl.remote_txns;
    s.counter("hits", ctl.hits)
        .counter("local_fills", ctl.local_fills)
        .counter("remote_txns", ctl.remote_txns)
        .counter("invals", ctl.invals)
        .counter("downgrades", ctl.downgrades)
        .counter("writebacks", ctl.writebacks)
        .counter("retransmits", ctl.retransmits)
        .counter("nacks", ctl.nacks)
        .counter("stale_replies", ctl.stale_replies)
        .gauge(
            "miss_ratio",
            if accesses == 0 {
                0.0
            } else {
                (ctl.local_fills + ctl.remote_txns) as f64 / accesses as f64
            },
        );
    report.push(s);

    let mut s = Section::new("dir");
    s.counter("read_reqs", dir.read_reqs)
        .counter("write_reqs", dir.write_reqs)
        .counter("invals_sent", dir.invals_sent)
        .counter("wb_reqs_sent", dir.wb_reqs_sent)
        .counter("deferred", dir.deferred)
        .counter("nacks", dir.nacks)
        .counter("retransmits", dir.retransmits)
        .counter("stale_acks", dir.stale_acks)
        .counter("overflows", dir.overflows);
    report.push(s);

    let mut s = Section::new("net");
    s.counter("delivered", net.stats.delivered)
        .counter("total_latency", net.stats.total_latency)
        .counter("total_hops", net.stats.total_hops)
        .counter("busy_flit_cycles", net.stats.busy_flit_cycles)
        .gauge("avg_latency", net.stats.avg_latency())
        .gauge("avg_hops", net.stats.avg_hops())
        .hist("latency", *net.latency_hist())
        .hist("hops", *net.hops_hist());
    report.push(s);

    let mut s = Section::new("faults");
    s.counter("dropped", net.fault_stats.dropped)
        .counter("duplicated", net.fault_stats.duplicated)
        .counter("delayed", net.fault_stats.delayed)
        .counter("outage_stalls", net.fault_stats.outage_stalls)
        .counter("failstop_drops", net.fault_stats.failstop_drops)
        .counter("dead_letters", net.fault_stats.dead_letters);
    report.push(s);

    // Open-loop traffic (DESIGN.md §15): one machine-wide section
    // merging every edge node's counters and latency histogram.
    // Derived purely from per-node traffic state (`last_retire` is the
    // latest retirement's own cycle, not the scheduler clock), so the
    // section is part of the cross-scheduler determinism contract.
    if nodes.iter().any(|n| n.traffic.is_some()) {
        let mut offered = 0u64;
        let mut injected = 0u64;
        let mut dropped = 0u64;
        let mut retired = 0u64;
        let mut last_retire = 0u64;
        let mut latency = QHist::default();
        for n in nodes.iter().filter_map(|n| n.traffic.as_deref()) {
            offered += n.injected + n.dropped;
            injected += n.injected;
            dropped += n.dropped;
            retired += n.retired;
            last_retire = last_retire.max(n.last_retire);
            latency.merge(&n.latency);
        }
        let mut s = Section::new("traffic");
        s.counter("offered", offered)
            .counter("injected", injected)
            .counter("dropped", dropped)
            .counter("retired", retired)
            .counter("last_retire_cycle", last_retire)
            .gauge(
                "throughput_per_kcycle",
                if last_retire == 0 {
                    0.0
                } else {
                    retired as f64 * 1000.0 / last_retire as f64
                },
            )
            .qhist("latency", latency);
        report.push(s);
    }

    for (i, n) in nodes.iter().enumerate() {
        let mut s = Section::new(format!("node{i}"));
        s.counter("instructions", n.cpu.stats.instructions)
            .counter("useful_cycles", n.cpu.stats.useful_cycles)
            .counter("idle_cycles", n.cpu.stats.idle_cycles)
            .counter("context_switches", n.cpu.stats.context_switches)
            .counter("remote_misses", n.cpu.stats.remote_misses)
            .counter("cache_hits", n.ctl.stats.hits)
            .counter("local_fills", n.ctl.stats.local_fills)
            .counter("remote_txns", n.ctl.stats.remote_txns)
            .counter("dir_read_reqs", n.dir.stats.read_reqs)
            .counter("dir_write_reqs", n.dir.stats.write_reqs)
            .gauge("utilization", n.cpu.stats.utilization());
        report.push(s);
    }
    report
}
