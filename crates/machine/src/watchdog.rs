//! Forward-progress watchdog and structured machine post-mortems.
//!
//! Under fault injection the machine can wedge in ways the run-time
//! system cannot see: a dropped reply strands a task frame in
//! [`FrameState::WaitingRemote`], a lost invalidation leaves a
//! directory entry busy forever. The watchdog observes a cheap
//! *progress signature* every cycle — instructions retired, packets
//! delivered, directory and controller protocol events — and when the
//! signature has not changed for a configurable horizon **and** the
//! machine still has pending work, it declares the run dead and
//! captures a [`PostMortem`]: every in-flight message, every busy
//! directory entry, every outstanding requester transaction, and every
//! stalled task frame.
//!
//! A machine with *no* pending work (no packets in flight, no
//! outstanding transactions, no busy directory entries, no raised
//! fences, no waiting frames) is merely quiescent — idle processors
//! waiting for the run-time to schedule work are not a deadlock — so
//! the watchdog stays silent no matter how long the signature holds.

use april_core::frame::FrameState;
use april_mem::msg::CohMsg;
use april_mem::ProtocolError;
use april_net::fault::FaultStats;
use std::fmt;

/// Watchdog policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Master switch.
    pub enabled: bool,
    /// Cycles without any progress (while work is pending) before the
    /// machine is declared dead.
    pub horizon: u64,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            enabled: true,
            horizon: 50_000,
        }
    }
}

impl WatchdogConfig {
    /// A watchdog that never fires.
    pub fn disabled() -> WatchdogConfig {
        WatchdogConfig {
            enabled: false,
            ..WatchdogConfig::default()
        }
    }
}

/// A protocol message still in the network when the machine hung.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlightMsg {
    /// Network packet id.
    pub id: u64,
    /// Sending node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Cycle the packet entered the network.
    pub sent_at: u64,
    /// The protocol message.
    pub msg: CohMsg,
}

/// A directory entry stuck mid-transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusyEntry {
    /// The home node whose directory holds the entry.
    pub home: usize,
    /// The block being transacted.
    pub block: u32,
    /// The requester being served.
    pub requester: usize,
    /// Whether the requester wants an exclusive copy.
    pub write: bool,
    /// The busy epoch stamped on outstanding demands.
    pub epoch: u32,
    /// Nodes whose acknowledgment is still awaited.
    pub awaiting: Vec<usize>,
}

/// A requester-side transaction still awaiting its reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutstandingTxn {
    /// The requesting node.
    pub node: usize,
    /// The block requested.
    pub block: u32,
    /// The transaction sequence number.
    pub xid: u32,
    /// Whether a write-grade request has been issued.
    pub write_issued: bool,
    /// Task frames parked on the transaction.
    pub frames: Vec<usize>,
}

/// A protocol message the network gave up on: under the quarantine in
/// force there was no alive route to its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndeliverableMsg {
    /// Network packet id.
    pub id: u64,
    /// The unreachable destination.
    pub dst: usize,
    /// Cycle the router gave up.
    pub at: u64,
    /// The protocol message.
    pub msg: CohMsg,
}

/// A task frame that is loaded but cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameStall {
    /// The node.
    pub node: usize,
    /// The frame index.
    pub frame: usize,
    /// Why it is stalled.
    pub state: FrameState,
    /// Its program counter.
    pub pc: u32,
}

/// Everything the watchdog could see when it declared the run dead.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PostMortem {
    /// Cycle at which the hang was declared.
    pub cycle: u64,
    /// The no-progress horizon that elapsed.
    pub horizon: u64,
    /// Messages still in the network.
    pub in_flight: Vec<InFlightMsg>,
    /// Messages the router dead-lettered (no alive route under the
    /// quarantine in force).
    pub undeliverable: Vec<UndeliverableMsg>,
    /// Directory entries stuck mid-transaction.
    pub busy_blocks: Vec<BusyEntry>,
    /// Requester transactions awaiting replies.
    pub outstanding: Vec<OutstandingTxn>,
    /// Task frames waiting on remote memory.
    pub stalled_frames: Vec<FrameStall>,
    /// Nodes with a raised fence counter: `(node, count)`.
    pub fences: Vec<(usize, u32)>,
    /// Faults the network injected up to the hang.
    pub fault_stats: FaultStats,
}

impl fmt::Display for PostMortem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "no forward progress for {} cycles (declared dead at cycle {})",
            self.horizon, self.cycle
        )?;
        writeln!(
            f,
            "  injected faults: {} dropped, {} duplicated, {} delayed, {} outage stalls",
            self.fault_stats.dropped,
            self.fault_stats.duplicated,
            self.fault_stats.delayed,
            self.fault_stats.outage_stalls
        )?;
        writeln!(f, "  in-flight messages: {}", self.in_flight.len())?;
        for m in &self.in_flight {
            writeln!(
                f,
                "    #{} {} -> {} sent@{}: {:?}",
                m.id, m.src, m.dst, m.sent_at, m.msg
            )?;
        }
        if !self.undeliverable.is_empty() {
            writeln!(
                f,
                "  undeliverable messages (dead letters): {}",
                self.undeliverable.len()
            )?;
            for m in &self.undeliverable {
                writeln!(
                    f,
                    "    #{} -> {} gave up@{}: {:?}",
                    m.id, m.dst, m.at, m.msg
                )?;
            }
        }
        writeln!(f, "  busy directory entries: {}", self.busy_blocks.len())?;
        for b in &self.busy_blocks {
            writeln!(
                f,
                "    home {} block {:#x}: serving node {} ({}) epoch {} awaiting {:?}",
                b.home,
                b.block,
                b.requester,
                if b.write { "write" } else { "read" },
                b.epoch,
                b.awaiting
            )?;
        }
        writeln!(f, "  outstanding transactions: {}", self.outstanding.len())?;
        for t in &self.outstanding {
            writeln!(
                f,
                "    node {} block {:#x} xid {} ({}) frames {:?}",
                t.node,
                t.block,
                t.xid,
                if t.write_issued { "write" } else { "read" },
                t.frames
            )?;
        }
        writeln!(f, "  stalled frames: {}", self.stalled_frames.len())?;
        for s in &self.stalled_frames {
            writeln!(
                f,
                "    node {} frame {} pc {:#x}: {:?}",
                s.node, s.frame, s.pc, s.state
            )?;
        }
        if !self.fences.is_empty() {
            writeln!(f, "  raised fences: {:?}", self.fences)?;
        }
        Ok(())
    }
}

/// A fatal machine-level condition detected while advancing the clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineFault {
    /// The forward-progress watchdog fired with work still pending.
    NoForwardProgress(Box<PostMortem>),
    /// A protocol engine reported a fatal error.
    Protocol {
        /// The node whose engine failed.
        node: usize,
        /// The underlying error.
        error: ProtocolError,
    },
}

impl fmt::Display for MachineFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineFault::NoForwardProgress(pm) => write!(f, "{pm}"),
            MachineFault::Protocol { node, error } => {
                write!(f, "protocol failure on node {node}: {error}")
            }
        }
    }
}

impl std::error::Error for MachineFault {}

/// The progress tracker: remembers the last signature and when it
/// last changed.
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    pub(crate) sig: (u64, u64, u64, u64),
    pub(crate) last_change: u64,
}

impl Watchdog {
    /// Feeds the cycle's progress signature. Returns `true` when the
    /// signature has been unchanged for at least `horizon` cycles —
    /// the caller must still decide whether pending work makes that a
    /// deadlock rather than quiescence.
    pub fn observe(&mut self, now: u64, sig: (u64, u64, u64, u64), horizon: u64) -> bool {
        if sig != self.sig {
            self.sig = sig;
            self.last_change = now;
            return false;
        }
        now.saturating_sub(self.last_change) >= horizon
    }

    /// The cycle at which [`Watchdog::observe`] would first fire if the
    /// signature never changes again. An event-driven machine must not
    /// skip past this: with pending work and no other events, the
    /// watchdog firing *is* the next event.
    pub fn deadline(&self, horizon: u64) -> u64 {
        self.last_change.saturating_add(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_fires_only_after_horizon_without_change() {
        let mut w = Watchdog::default();
        assert!(!w.observe(0, (1, 0, 0, 0), 10));
        for t in 1..10 {
            assert!(
                !w.observe(t, (1, 0, 0, 0), 10),
                "cycle {t} under the horizon"
            );
        }
        assert!(w.observe(10, (1, 0, 0, 0), 10));
    }

    #[test]
    fn any_signature_change_rearms() {
        let mut w = Watchdog::default();
        assert!(!w.observe(0, (1, 0, 0, 0), 5));
        assert!(!w.observe(4, (1, 0, 0, 0), 5));
        // A delivered packet at cycle 5 resets the horizon.
        assert!(!w.observe(5, (1, 1, 0, 0), 5));
        assert!(!w.observe(9, (1, 1, 0, 0), 5));
        assert!(w.observe(10, (1, 1, 0, 0), 5));
    }

    #[test]
    fn post_mortem_renders_every_section() {
        let pm = PostMortem {
            cycle: 99_000,
            horizon: 50_000,
            in_flight: vec![InFlightMsg {
                id: 7,
                src: 0,
                dst: 1,
                sent_at: 40_000,
                msg: CohMsg::RdReq {
                    block: 0x40,
                    xid: 3,
                },
            }],
            undeliverable: vec![UndeliverableMsg {
                id: 9,
                dst: 3,
                at: 41_000,
                msg: CohMsg::RdReq {
                    block: 0x80,
                    xid: 4,
                },
            }],
            busy_blocks: vec![BusyEntry {
                home: 1,
                block: 0x40,
                requester: 0,
                write: true,
                epoch: 2,
                awaiting: vec![3],
            }],
            outstanding: vec![OutstandingTxn {
                node: 0,
                block: 0x40,
                xid: 3,
                write_issued: false,
                frames: vec![1],
            }],
            stalled_frames: vec![FrameStall {
                node: 0,
                frame: 1,
                state: FrameState::WaitingRemote,
                pc: 0x20,
            }],
            fences: vec![(2, 1)],
            fault_stats: FaultStats {
                dropped: 4,
                ..FaultStats::default()
            },
        };
        let s = pm.to_string();
        assert!(s.contains("no forward progress for 50000 cycles"));
        assert!(s.contains("4 dropped"));
        assert!(s.contains("RdReq"));
        assert!(s.contains("undeliverable messages (dead letters): 1"));
        assert!(s.contains("home 1 block 0x40"));
        assert!(s.contains("node 0 block 0x40 xid 3"));
        assert!(s.contains("WaitingRemote"));
        assert!(s.contains("raised fences"));
    }

    #[test]
    fn machine_fault_displays() {
        let e = MachineFault::Protocol {
            node: 2,
            error: ProtocolError::RetriesExhausted {
                node: 2,
                block: 0x80,
                xid: 5,
                retries: 16,
            },
        };
        let s = e.to_string();
        assert!(s.contains("protocol failure on node 2"));
        assert!(s.contains("16 retries"));
    }
}
