//! The full ALEWIFE machine: APRIL processors, coherent caches,
//! distributed directories, and the direct network (paper, Figure 1).
//!
//! Each node couples a processor, a cache controller with its cache, a
//! directory for the memory it is home to, and a network interface.
//! Remote cache misses trap the processor (so the run-time can switch
//! task frames) while the controller conducts the protocol transaction;
//! when the reply arrives the waiting frame is made runnable again.
//!
//! Data words are functionally backed by a single global [`FeMemory`]
//! (a standard timing-simulator shortcut): caches and directories carry
//! tags and protocol state, messages carry realistic sizes, and all
//! timing — local fills, remote round trips, invalidations,
//! write-backs, contention — is simulated faithfully.

use crate::config::MachineConfig;
use crate::traffic::{ArrivalPlan, NodeTraffic, IO_RETIRE};
use crate::watchdog::{
    BusyEntry, FrameStall, InFlightMsg, MachineFault, OutstandingTxn, PostMortem, UndeliverableMsg,
    Watchdog,
};
use crate::Machine;
use april_core::cpu::{Cpu, StepEvent};
use april_core::decoded::DecodedProgram;
use april_core::frame::FrameState;
use april_core::isa::{LoadFlavor, StoreFlavor};
use april_core::memport::{AccessCtx, LoadReply, MemoryPort, StoreReply};
use april_core::program::Program;
use april_core::stats::CpuStats;
use april_core::word::Word;
use april_mem::controller::{CacheController, Outcome};
use april_mem::directory::Directory;
use april_mem::femem::FeMemory;
use april_mem::msg::CohMsg;
use april_net::fault::{FaultPlan, FaultStats};
use april_net::network::Network;
use april_net::topology::Channel;
use april_obs::{lane, Component, EventKind, Probe, StatsReport, Trace, TraceConfig};
use std::sync::Arc;

/// I/O register: reading returns this node's id (fixnum).
pub const IO_NODE_ID: u16 = 1;
/// I/O register: reading returns the fence counter (fixnum).
pub const IO_FENCE: u16 = 2;
/// I/O register: writing node id `n` sends an IPI to node `n`.
pub const IO_IPI: u16 = 3;
/// I/O register: block-transfer destination node.
pub const IO_BXFER_NODE: u16 = 4;
/// I/O register: block-transfer address; writing triggers the transfer.
pub const IO_BXFER_ADDR: u16 = 5;
/// I/O register: block-transfer length in words (set before address).
pub const IO_BXFER_LEN: u16 = 6;

/// One ALEWIFE node.
#[derive(Debug)]
pub struct Node {
    /// The APRIL processor.
    pub cpu: Cpu,
    /// Requester-side cache controller.
    pub ctl: CacheController,
    /// Home-side directory for this node's memory region.
    pub dir: Directory,
    pub(crate) io_regs: [u32; 8],
    /// An outstanding *booked run* on the decode engine (DESIGN.md
    /// §13): at cycle `start` the CPU was known to execute `len`
    /// straight-line safe instructions over cycles `start ..
    /// start+len`, so the scheduler charged the whole span up front
    /// (`ready_at = start + len`) and deferred executing the ops. The
    /// run *materializes* — executes for real, in one tight loop — at
    /// the next visit, or is cut short the moment anything could
    /// observe or perturb the CPU (a delivery addressed to it, a
    /// driver mutation, a checkpoint). Scheduler bookkeeping, never
    /// snapshotted: restores clear it.
    pub(crate) resv: Option<Resv>,
    /// Open-loop traffic state (DESIGN.md §15): `Some` on edge
    /// I/O-handler nodes of a machine with [`MachineConfig::traffic`]
    /// set, `None` everywhere else. Lives inside the node so the
    /// parallel machine's shards carry it with their nodes.
    pub(crate) traffic: Option<Box<NodeTraffic>>,
}

/// A booked decode-engine run: `len` safe instructions promised over
/// cycles `start .. start + len`. See [`Node::resv`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Resv {
    pub(crate) start: u64,
    pub(crate) len: u32,
}

/// The smallest run worth booking: a 1-instruction "run" costs the
/// same bookkeeping as stepping, so book only from 2 up.
pub(crate) const MIN_RUN: u32 = 2;

/// Whether a delivered message can observe or perturb the destination
/// CPU. An IPI posts an interrupt the next step must take; every
/// controller-bound message can wake task frames. Directory-bound
/// messages only touch home-directory state, which a booked run of
/// safe (register-only) instructions can neither read nor write, so
/// they leave a reservation standing.
pub(crate) fn msg_touches_cpu(msg: &CohMsg) -> bool {
    !matches!(
        msg,
        CohMsg::RdReq { .. }
            | CohMsg::WrReq { .. }
            | CohMsg::InvAck { .. }
            | CohMsg::DownAck { .. }
            | CohMsg::WbInvalAck { .. }
            | CohMsg::FlushData { .. }
    )
}

// The parallel machine moves whole nodes across worker threads; any
// future non-`Send` field must be caught at compile time, not at the
// first 4-worker run (DESIGN.md §9).
const _: () = april_util::assert_send::<Node>();
const _: () = april_util::assert_send::<Env>();

/// A protocol message in flight.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Env {
    pub(crate) src: usize,
    pub(crate) msg: CohMsg,
}

/// The ALEWIFE machine.
#[derive(Debug)]
pub struct Alewife {
    /// Per-node state.
    pub nodes: Vec<Node>,
    pub(crate) mem: FeMemory,
    pub(crate) net: Network<Env>,
    pub(crate) prog: Program,
    /// The program lowered to flat bytecode for the decode engine
    /// (`None` with `cfg.decode` off). Derived state: rebuilt by
    /// construction, never part of a snapshot.
    pub(crate) dec: Option<DecodedProgram>,
    pub(crate) cfg: MachineConfig,
    pub(crate) ready_at: Vec<u64>,
    pub(crate) now: u64,
    pub(crate) watchdog: Watchdog,
    pub(crate) fault: Option<MachineFault>,
    /// `halted_at[i]`: the cycle at which node `i`'s CPU executed
    /// `halt`, once it has.
    pub(crate) halted_at: Vec<Option<u64>>,
    /// `parked[i]`: stepping CPU `i` is known to yield `NoReadyFrame`,
    /// which every driver answers with exactly `charge_idle(i, 1)` and
    /// nothing else. A parked CPU is neither stepped nor allowed to
    /// hold the event-driven skip back: its idle cycles (skipped ones
    /// *and* visited ones) are charged wholesale, reproducing the
    /// lockstep ledger bit for bit. The flag is cleared by every path
    /// that could void the idle promise: a CPU-touching delivery to
    /// the node, a driver mutation of its CPU, a shared-memory write
    /// (the run queue lives there, so all nodes are cleared), or a
    /// non-idle step event. A stale `true` could skip real work; a
    /// spurious `false` only costs an extra idle step.
    pub(crate) parked: Vec<bool>,
    /// Scratch buffers reused across cycles so the hot loop allocates
    /// nothing: network deliveries, controller/directory sends, I/O
    /// sends.
    scratch_deliveries: Vec<(usize, Env)>,
    scratch_out: Vec<(usize, CohMsg)>,
    scratch_dir: Vec<(usize, CohMsg)>,
    scratch_io: Vec<(usize, CohMsg)>,
    scratch_retired: Vec<u32>,
    /// The open-loop arrival plan derived from `cfg.traffic` (`None`
    /// without traffic). Shared read-only with anyone who needs birth
    /// cycles; derived state, never snapshotted.
    pub(crate) plan: Option<Arc<ArrivalPlan>>,
    /// Scheduler-internal events (watchdog arming/firing). Lives on
    /// the meta lane, which [`Trace::retain_semantic`] excludes from
    /// the cross-scheduler determinism contract.
    pub(crate) meta_probe: Probe,
    /// Cached forward-progress signature, recomputed only on visits
    /// where something that feeds it ran (a dispatch, a step, a
    /// materialized run, a protocol tick). Derived state: never
    /// snapshotted, marked stale on restore.
    sig_cache: (u64, u64, u64, u64),
    pub(crate) sig_stale: bool,
}

impl Alewife {
    /// Builds the machine described by `cfg`, loading `prog`'s static
    /// image into global memory.
    pub fn new(cfg: MachineConfig, prog: Program) -> Alewife {
        let n = cfg.num_nodes();
        let mut mem = FeMemory::new(cfg.total_mem_bytes());
        mem.load_image(&prog);
        let plan = ArrivalPlan::build(&cfg).map(Arc::new);
        let nodes = (0..n)
            .map(|i| Node {
                cpu: Cpu::new(cfg.cpu),
                ctl: CacheController::new(i, cfg.cache, cfg.ctl),
                dir: Directory::with_config(cfg.dir, n),
                io_regs: [0; 8],
                resv: None,
                traffic: plan
                    .as_ref()
                    .filter(|p| p.is_edge(i))
                    .map(|_| Box::default()),
            })
            .collect();
        let dec = cfg.decode.then(|| DecodedProgram::lower(&prog));
        Alewife {
            nodes,
            mem,
            net: Network::new(cfg.topology, cfg.net),
            prog,
            dec,
            cfg,
            ready_at: vec![0; n],
            now: 0,
            watchdog: Watchdog::default(),
            fault: None,
            halted_at: vec![None; n],
            parked: vec![false; n],
            scratch_deliveries: Vec::new(),
            scratch_out: Vec::new(),
            scratch_dir: Vec::new(),
            scratch_io: Vec::new(),
            scratch_retired: Vec::new(),
            plan,
            meta_probe: Probe::default(),
            sig_cache: (0, 0, 0, 0),
            sig_stale: true,
        }
    }

    /// Installs a fault-injection plan on the network. The run stays
    /// exactly reproducible from the plan's seed and the machine's
    /// schedule.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.net.set_fault_plan(Some(plan));
    }

    /// Counts of faults the network has injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.net.fault_stats
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.net.fault_plan()
    }

    /// Quarantines a channel: the router detours around it from now on
    /// (installing an inert fault plan first if none was configured).
    pub fn quarantine_channel(&mut self, ch: Channel) {
        self.net.fault_plan_mut().quarantine_channel(ch);
    }

    /// Quarantines a node: the router stops routing through or to it.
    pub fn quarantine_node(&mut self, node: usize) {
        self.net.fault_plan_mut().quarantine_node(node);
    }

    /// Replaces the watchdog's no-progress horizon. The recovery layer
    /// backs this off exponentially across attempts; the horizon is
    /// scheduler policy, not machine state, so changing it never
    /// perturbs the simulated computation.
    pub fn set_watchdog_horizon(&mut self, horizon: u64) {
        self.cfg.watchdog.horizon = horizon;
    }

    /// The watchdog's current no-progress horizon.
    pub fn watchdog_horizon(&self) -> u64 {
        self.cfg.watchdog.horizon
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Network statistics so far.
    pub fn net_stats(&self) -> april_net::network::NetStats {
        self.net.stats
    }

    /// Sum of all processors' cycle ledgers.
    pub fn total_stats(&self) -> CpuStats {
        let mut s = CpuStats::default();
        for n in &self.nodes {
            s.merge(&n.cpu.stats);
        }
        s
    }

    /// Boots node 0 at the program entry (the run-time system
    /// dispatches everything else).
    pub fn boot(&mut self) {
        let entry = self.prog.entry;
        self.nodes[0].cpu.boot(entry);
    }

    /// Boots every node at the program entry — the SPMD convention the
    /// sweep/serve harnesses and the equivalence suites use, where all
    /// processors run the same program and self-select work by node
    /// id.
    pub fn boot_all(&mut self) {
        let entry = self.prog.entry;
        for node in &mut self.nodes {
            node.cpu.boot(entry);
        }
    }

    /// Records the first fatal fault; later ones are dropped (the
    /// run-time aborts on the first anyway).
    fn set_fault(&mut self, fault: MachineFault) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    /// Cuts node `i`'s booked run at the current cycle, *before* this
    /// cycle's instruction: the `now - start` instructions whose cycles
    /// have fully elapsed materialize, and the node becomes ready to
    /// step (or re-book) this cycle. Called ahead of dispatching a
    /// CPU-touching delivery, so e.g. an IPI's interrupt is taken
    /// exactly where lockstep would take it.
    fn cut_resv(&mut self, i: usize) {
        let Some(r) = self.nodes[i].resv.take() else {
            return;
        };
        let done = (self.now - r.start) as u32;
        if done > 0 {
            let dec = self.dec.as_ref().expect("booked run without decode image");
            self.nodes[i].cpu.run_decoded(dec, done);
            self.sig_stale = true;
        }
        self.ready_at[i] = self.now;
    }

    /// Settles node `i`'s booked run *after* the current cycle's work:
    /// instructions through cycle `now` inclusive materialize and the
    /// node is ready next cycle. Called before anything outside the
    /// advance loop (a driver mutation, a checkpoint) can observe the
    /// CPU.
    pub(crate) fn settle_resv(&mut self, i: usize) {
        let Some(r) = self.nodes[i].resv.take() else {
            return;
        };
        let done = (self.now - r.start + 1).min(r.len as u64) as u32;
        let dec = self.dec.as_ref().expect("booked run without decode image");
        self.nodes[i].cpu.run_decoded(dec, done);
        self.sig_stale = true;
        self.ready_at[i] = self.now + 1;
    }

    fn dispatch_msg(&mut self, dst: usize, env: Env) {
        self.sig_stale = true;
        // On-demand clock stamp (see `advance_to`): the handlers below
        // timestamp trace events and compute retry deadlines from
        // their engine's clock.
        {
            let now = self.now;
            let n = &mut self.nodes[dst];
            n.cpu.set_clock(now);
            n.ctl.set_clock(now);
            n.dir.set_clock(now);
        }
        if msg_touches_cpu(&env.msg) {
            self.cut_resv(dst);
        }
        let cfg = self.cfg;
        // Reusable scratch buffers: restored (cleared) on every path.
        let mut out = std::mem::take(&mut self.scratch_out);
        let mut dir_out = std::mem::take(&mut self.scratch_dir);
        out.clear();
        dir_out.clear();
        match dispatch_to_node(dst, &mut self.nodes[dst], env, &cfg, &mut out, &mut dir_out) {
            Ok(()) => {
                // Controller-originated messages leave immediately (the
                // cache tags are SRAM); every directory-generated
                // message pays the home memory latency — the directory
                // lives in DRAM beside the data. The delay is uniform,
                // which also keeps home→node message streams FIFO: a
                // later-generated invalidation can never overtake an
                // earlier data grant.
                for &(to, msg) in &out {
                    let size = msg.size_flits(cfg.block_words()) as u64;
                    self.net
                        .send(self.now, dst, to, size, Env { src: dst, msg });
                }
                for &(to, msg) in &dir_out {
                    let size = msg.size_flits(cfg.block_words()) as u64;
                    self.net.send(
                        self.now + cfg.mem_latency,
                        dst,
                        to,
                        size,
                        Env { src: dst, msg },
                    );
                }
            }
            Err(fault) => self.set_fault(fault),
        }
        out.clear();
        dir_out.clear();
        self.scratch_out = out;
        self.scratch_dir = dir_out;
    }

    /// The forward-progress signature: instructions retired, packets
    /// delivered, and protocol events at directories and controllers.
    /// Retransmissions count as progress — while an endpoint is still
    /// retrying, its bounded retry budget (not the watchdog) decides
    /// when to give up.
    fn progress_sig(&self) -> (u64, u64, u64, u64) {
        // One pass over the nodes, not three: this runs every visited
        // cycle when the watchdog is on.
        let mut instrs = 0u64;
        let mut dir_events = 0u64;
        let mut ctl_events = 0u64;
        for n in &self.nodes {
            instrs += n.cpu.stats.instructions;
            dir_events += n.dir.stats.total();
            ctl_events += n.ctl.stats.total();
        }
        (instrs, self.net.stats.delivered, dir_events, ctl_events)
    }

    /// Whether the machine still owes anyone an answer. With no
    /// pending work a stable signature means quiescence, not deadlock.
    fn has_pending_work(&self) -> bool {
        self.net.in_flight_count() > 0 || nodes_pending_work(&self.nodes)
    }

    /// Public probe of `has_pending_work`, used by drivers that
    /// stop at quiescence rather than at a single node's halt.
    pub fn pending_work(&self) -> bool {
        self.has_pending_work()
    }

    /// Whether every processor has executed `halt`.
    pub fn all_halted(&self) -> bool {
        self.nodes.iter().all(|n| n.cpu.is_halted())
    }

    /// Per-node halt cycles: `Some(c)` once the node's CPU executed
    /// `halt` at cycle `c`, else `None`. Part of the cross-mode
    /// equivalence contract — `now` itself can differ across schedulers
    /// once the machine is quiescent, but halt cycles cannot.
    pub fn halted_cycles(&self) -> &[Option<u64>] {
        &self.halted_at
    }

    /// The next cycle at which anything can happen: the min over
    /// runnable CPUs' `ready_at`, every node's earliest controller/
    /// directory retransmission deadline, the network's earliest
    /// delivery, and — with work pending — the watchdog's firing cycle.
    /// Never less than `now + 1`; returns `now + 1` when the machine is
    /// quiescent so a driver polling `advance()` sees time still move.
    ///
    /// Retransmit deadlines must participate: on a lossy network the
    /// only future event may be a controller deciding a request is
    /// overdue, and skipping past that moment would retransmit late (or
    /// miss a `RetriesExhausted` fault) relative to the lockstep path.
    ///
    /// The network is consulted after the CPUs and protocol deadlines,
    /// with their min as the bound: that min is the earliest cycle any
    /// non-network component can act, i.e. the earliest new traffic can
    /// enter the network, which is exactly the guarantee
    /// [`Network::earliest_delivery`] needs to route in-flight packets
    /// ahead and see past its per-hop internal events.
    fn next_event(&mut self) -> u64 {
        let floor = self.now + 1;
        let mut t = u64::MAX;
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.cpu.is_halted() && !self.parked[i] {
                let r = self.ready_at[i].max(floor);
                if r == floor {
                    // A CPU is runnable right away: nothing to skip.
                    return floor;
                }
                t = t.min(r);
            }
            t = t.min(n.ctl.next_deadline().max(floor));
            t = t.min(n.dir.next_deadline().max(floor));
        }
        // Open-loop arrivals are machine-driven events: the skip must
        // land exactly on each edge node's next birth cycle so the
        // injection happens where lockstep would perform it, and while
        // a poison word is still waiting for its ring slot the machine
        // retries every cycle — no skipping at all.
        if let Some(plan) = &self.plan {
            for (node, arrivals) in plan.entries() {
                let Some(tr) = self.nodes[*node].traffic.as_deref() else {
                    continue;
                };
                if tr.cursor < arrivals.len() {
                    t = t.min(arrivals[tr.cursor].max(floor));
                } else if !tr.poison_sent {
                    return floor;
                }
            }
        }
        // `t` is now the earliest cycle any traffic source can act, the
        // bound `earliest_delivery` needs (the watchdog, below, sends
        // nothing, so it does not constrain the bound).
        if let Some(d) = self.net.earliest_delivery(t) {
            t = t.min(d.max(floor));
        }
        if self.cfg.watchdog.enabled {
            let wd = self.watchdog.deadline(self.cfg.watchdog.horizon).max(floor);
            // `has_pending_work` walks every frame of every node; only
            // pay for it when the skip would actually jump the firing
            // cycle (idle machines must not be woken by the watchdog,
            // and busy ones are checked only on the rare advance whose
            // every other event is past the horizon).
            if wd < t && self.has_pending_work() {
                t = wd;
            }
        }
        if t == u64::MAX {
            floor
        } else {
            t
        }
    }

    /// The cycle the next `advance()` would jump to: the next event
    /// under the event-driven skip, or simply `now + 1` in lockstep
    /// mode or once a fault has been recorded.
    fn advance_target(&mut self) -> u64 {
        if self.cfg.lockstep || self.fault.is_some() {
            self.now + 1
        } else {
            self.next_event()
        }
    }

    /// Advances like [`Machine::advance`], but never past cycle `cap`.
    ///
    /// Capping is what makes cycle-exact checkpoints possible on the
    /// event-driven scheduler: the skip would otherwise jump over the
    /// requested cycle. A capped target is just a smaller skip — the
    /// parked-CPU idle bulk-charge is linear in the skipped span, so
    /// stopping early and resuming reproduces the uncapped ledger bit
    /// for bit.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not in the future (`cap <= now()`).
    pub fn advance_capped(&mut self, cap: u64) -> Vec<(usize, StepEvent)> {
        assert!(
            cap > self.now,
            "advance_capped: cap {cap} <= now {}",
            self.now
        );
        let target = self.advance_target().min(cap);
        let mut evs = Vec::new();
        self.advance_to(target, &mut evs);
        evs
    }

    /// The jump-and-execute body shared by [`Machine::advance`] and
    /// [`Alewife::advance_capped`]: moves the clock to `target` and
    /// performs the full cycle of machine work there, appending the
    /// events that need run-time attention onto `evs`.
    fn advance_to(&mut self, target: u64, evs: &mut Vec<(usize, StepEvent)>) {
        // Component clocks are stamped *on demand*, not wholesale: only
        // a component about to act (a dispatch, a step, a driver
        // mutation) needs a current clock — it marks fresh transactions
        // `clock + timeout` and timestamps trace events with it. An
        // idle node's stale clock is unobservable: `tick` stamps
        // itself, the idle charges are pure ledger adds, and
        // `checkpoint` settles every clock before encoding. Stamping
        // all 3N components here would touch every node's cache lines
        // on every visited cycle for nothing.
        self.now = target;
        // Open-loop ingress first (DESIGN.md §15): requests whose birth
        // cycle is due land in their edge node's ring before any
        // deliveries or steps this cycle, so a service loop polling the
        // slot observes them at the exact same cycle under every
        // scheduler. Injection is a functional edge-DMA write; it makes
        // no CPU runnable (parked nodes discover the data through their
        // own polling, exactly as under lockstep).
        if let Some(plan) = self.plan.clone() {
            for &(node, _) in plan.entries() {
                if let Some(tr) = self.nodes[node].traffic.as_deref_mut() {
                    crate::traffic::inject_due(&plan, node, tr, target, &mut self.mem, None);
                }
            }
        }
        // Deliver network messages due this cycle. A delivery can make
        // its destination CPU runnable — but only a CPU-touching one
        // (a reply waking a frame, an IPI posting an interrupt; the
        // same predicate that cuts a booked run). Directory-bound
        // traffic never changes processor state, and no delivery
        // touches any *other* node's processor, so exactly the
        // CPU-touching deliveries' destinations are unparked.
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        deliveries.clear();
        self.net.poll_into(self.now, &mut deliveries);
        for &(dst, env) in &deliveries {
            if msg_touches_cpu(&env.msg) && self.parked[dst] {
                // The idle span accrued since the last visit's
                // wholesale charge ends *here*: the delivery makes the
                // CPU runnable this very cycle, so the skipped span
                // `[ready_at, now)` was idle but `now` itself is not —
                // exactly the per-cycle charges lockstep would have
                // made before the delivery woke the node.
                let n = &mut self.nodes[dst];
                if !n.cpu.is_halted() && self.ready_at[dst] < target {
                    n.cpu.charge_idle(target - self.ready_at[dst]);
                    self.ready_at[dst] = target;
                }
                self.parked[dst] = false;
            }
            self.dispatch_msg(dst, env);
        }
        deliveries.clear();
        self.scratch_deliveries = deliveries;
        // Step processors.
        let cfg = self.cfg;
        let mut out = std::mem::take(&mut self.scratch_out);
        let mut io_sends = std::mem::take(&mut self.scratch_io);
        let mut retired = std::mem::take(&mut self.scratch_retired);
        for i in 0..self.nodes.len() {
            // A CPU still parked once this cycle's deliveries are in is
            // charged its idle time wholesale and not stepped at all.
            // The parked contract makes this exact: stepping it would
            // yield `NoReadyFrame`, which every driver answers with
            // exactly `charge_idle(i, 1)` — so the machine pre-charges
            // the skipped window *and* the visited cycle (lockstep
            // would charge one cycle at each of `ready_at[i ..= now`),
            // leaving the identical ledger and `ready_at` the driver
            // round trip would have left. Anything that could change
            // the driver's answer (a delivery, a handler publishing
            // work, a shared-memory write) clears the flag before this
            // loop runs.
            if self.parked[i] {
                let n = &mut self.nodes[i];
                if !n.cpu.is_halted() {
                    n.cpu.charge_idle(target - self.ready_at[i] + 1);
                    self.ready_at[i] = target + 1;
                }
                continue;
            }
            if self.ready_at[i] > self.now || self.nodes[i].cpu.is_halted() {
                continue;
            }
            // This node acts this cycle: give all three of its engines
            // the current clock (trace timestamps, retry deadlines).
            {
                let n = &mut self.nodes[i];
                n.cpu.set_clock(target);
                n.ctl.set_clock(target);
                n.dir.set_clock(target);
            }
            // Decode engine (DESIGN.md §13): a visit first materializes
            // the booked run that just elapsed, then — if the next
            // instructions are a safe straight-line run — books a new
            // one: charge the whole span now, execute at the next
            // visit. A booked cycle emits no event and sends nothing
            // (safe ops can't), which is exactly what lockstep's
            // per-cycle `Executed` steps amount to.
            if let Some(dec) = &self.dec {
                if let Some(r) = self.nodes[i].resv.take() {
                    self.nodes[i].cpu.run_decoded(dec, r.len);
                    self.sig_stale = true;
                }
                let k = self.nodes[i].cpu.bookable_run(dec);
                if k >= MIN_RUN {
                    self.nodes[i].resv = Some(Resv {
                        start: self.now,
                        len: k,
                    });
                    self.ready_at[i] = self.now + k as u64;
                    continue;
                }
            }
            out.clear();
            io_sends.clear();
            retired.clear();
            let node = &mut self.nodes[i];
            let before = node.cpu.stats.total();
            let ev = {
                let port = NodePort {
                    node: i,
                    ctl: &mut node.ctl,
                    dir: &mut node.dir,
                    io_regs: &mut node.io_regs,
                    mem: &mut self.mem,
                    cfg: &cfg,
                    out: &mut out,
                    io_sends: &mut io_sends,
                    write_log: None,
                    retired: &mut retired,
                };
                node.cpu.step(&self.prog, port)
            };
            self.sig_stale = true;
            if !retired.is_empty() {
                if let (Some(plan), Some(tr)) = (&self.plan, node.traffic.as_deref_mut()) {
                    for &w in &retired {
                        crate::traffic::record_retire(plan, i, tr, w, target);
                    }
                }
            }
            let cost = node.cpu.stats.total() - before;
            self.ready_at[i] = self.now + cost;
            if node.cpu.is_halted() && self.halted_at[i].is_none() {
                self.halted_at[i] = Some(self.now);
            }
            if !matches!(ev, StepEvent::NoReadyFrame) {
                // The CPU did something: it is no longer known-idle.
                self.parked[i] = false;
            }
            for &(to, msg) in &out {
                let size = msg.size_flits(cfg.block_words()) as u64;
                self.net.send(self.now, i, to, size, Env { src: i, msg });
            }
            for &(to, msg) in &io_sends {
                self.net.send(self.now, i, to, 2, Env { src: i, msg });
            }
            match ev {
                StepEvent::Executed | StepEvent::Stalled { .. } => {}
                other => evs.push((i, other)),
            }
        }
        // Advance the protocol clocks: retransmit overdue requests
        // (controller side) and overdue demands (directory side).
        // `tick` stamps its engine's clock itself and is a no-op until
        // its `next_deadline` — so skip the call (and its scratch
        // churn) entirely until something is actually due.
        for i in 0..self.nodes.len() {
            if self.nodes[i].ctl.tick_pending(self.now) {
                self.sig_stale = true;
                out.clear();
                match self.nodes[i]
                    .ctl
                    .tick(self.now, |a| cfg.home_of(a), &mut out)
                {
                    Ok(()) => {
                        for &(to, msg) in &out {
                            let size = msg.size_flits(cfg.block_words()) as u64;
                            self.net.send(self.now, i, to, size, Env { src: i, msg });
                        }
                    }
                    Err(e) => self.set_fault(MachineFault::Protocol { node: i, error: e }),
                }
            }
            if self.nodes[i].dir.tick_pending(self.now) {
                self.sig_stale = true;
                out.clear();
                match self.nodes[i].dir.tick(self.now, &mut out) {
                    Ok(()) => {
                        for &(to, msg) in &out {
                            let size = msg.size_flits(cfg.block_words()) as u64;
                            self.net.send(
                                self.now + cfg.mem_latency,
                                i,
                                to,
                                size,
                                Env { src: i, msg },
                            );
                        }
                    }
                    Err(e) => self.set_fault(MachineFault::Protocol { node: i, error: e }),
                }
            }
        }
        out.clear();
        io_sends.clear();
        retired.clear();
        self.scratch_out = out;
        self.scratch_io = io_sends;
        self.scratch_retired = retired;
        // Forward-progress watchdog: fire only when work is pending —
        // a stable signature on an idle machine is quiescence.
        if self.cfg.watchdog.enabled && self.fault.is_none() {
            if self.sig_stale {
                self.sig_cache = self.progress_sig();
                self.sig_stale = false;
            }
            let sig = self.sig_cache;
            let horizon = self.cfg.watchdog.horizon;
            let deadline_before = self.watchdog.deadline(horizon);
            let fired = self.watchdog.observe(self.now, sig, horizon);
            let deadline_after = self.watchdog.deadline(horizon);
            if deadline_after != deadline_before {
                self.meta_probe
                    .emit(self.now, EventKind::WatchdogArmed, deadline_after, 0);
            }
            if fired && self.has_pending_work() {
                self.meta_probe
                    .emit(self.now, EventKind::WatchdogFired, deadline_after, 0);
                let pm = self.post_mortem();
                self.set_fault(MachineFault::NoForwardProgress(Box::new(pm)));
            }
        }
    }

    /// Captures the machine's stuck state for a watchdog report.
    pub fn post_mortem(&self) -> PostMortem {
        // The network hands packets over unsorted (keeping its hot-path
        // accessor cheap); order the owned snapshot here, where a
        // post-mortem is actually being built.
        let mut in_flight: Vec<InFlightMsg> = self
            .net
            .in_flight_packets()
            .map(|(id, dst, sent_at, _, env)| InFlightMsg {
                id,
                src: env.src,
                dst,
                sent_at,
                msg: env.msg,
            })
            .collect();
        in_flight.sort_by_key(|m| m.id);
        let undeliverable = self
            .net
            .dead_letters()
            .iter()
            .map(|dl| UndeliverableMsg {
                id: dl.id,
                dst: dl.dst,
                at: dl.at,
                msg: dl.payload.msg,
            })
            .collect();
        let mut busy_blocks = Vec::new();
        let mut outstanding = Vec::new();
        let mut stalled_frames = Vec::new();
        let mut fences = Vec::new();
        node_post_mortem_fragments(
            0,
            &self.nodes,
            &mut busy_blocks,
            &mut outstanding,
            &mut stalled_frames,
            &mut fences,
        );
        PostMortem {
            cycle: self.now,
            horizon: self.cfg.watchdog.horizon,
            in_flight,
            undeliverable,
            busy_blocks,
            outstanding,
            stalled_frames,
            fences,
            fault_stats: self.net.fault_stats,
        }
    }
}

/// Hands one delivered protocol message to its destination node,
/// collecting the node's responses: controller-originated messages into
/// `out` (sent at the current cycle) and directory-originated messages
/// into `dir_out` (sent after the home memory latency). Shared by the
/// sequential machine and the parallel shard workers so both dispatch
/// with identical semantics. On a protocol error the node's response
/// messages are suppressed (the fault aborts the run before they could
/// matter) and the fault is returned for the caller to record.
pub(crate) fn dispatch_to_node(
    dst: usize,
    node: &mut Node,
    env: Env,
    cfg: &MachineConfig,
    out: &mut Vec<(usize, CohMsg)>,
    dir_out: &mut Vec<(usize, CohMsg)>,
) -> Result<(), MachineFault> {
    match env.msg {
        CohMsg::RdReq { block, xid } => {
            node.dir
                .handle_request_into(env.src, block, false, xid, dir_out);
        }
        CohMsg::WrReq { block, xid } => {
            node.dir
                .handle_request_into(env.src, block, true, xid, dir_out);
        }
        CohMsg::InvAck { .. }
        | CohMsg::DownAck { .. }
        | CohMsg::WbInvalAck { .. }
        | CohMsg::FlushData { .. } => {
            if let Err(e) = node.dir.handle_ack_into(env.src, env.msg, dir_out) {
                return Err(MachineFault::Protocol {
                    node: dst,
                    error: e,
                });
            }
        }
        CohMsg::Ipi => {
            node.cpu.post_interrupt(env.src);
        }
        CohMsg::RdReply { .. }
        | CohMsg::WrReply { .. }
        | CohMsg::Nack { .. }
        | CohMsg::Inval { .. }
        | CohMsg::DownReq { .. }
        | CohMsg::WbInvalReq { .. }
        | CohMsg::FlushAck { .. }
        | CohMsg::BlockXfer { .. } => {
            match node
                .ctl
                .handle_msg(env.src, env.msg, |a| cfg.home_of(a), out)
            {
                Ok(woken) => {
                    for f in woken {
                        if node.cpu.frame(f).state == FrameState::WaitingRemote {
                            node.cpu.frame_mut(f).state = FrameState::Ready;
                        }
                    }
                }
                Err(e) => {
                    return Err(MachineFault::Protocol {
                        node: dst,
                        error: e,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Whether any node in the slice still owes anyone an answer (the
/// node-local half of the machine-wide pending-work predicate; the
/// network's in-flight count is the other half).
pub(crate) fn nodes_pending_work(nodes: &[Node]) -> bool {
    nodes.iter().any(|n| {
        n.ctl.outstanding() > 0
            || n.ctl.fence_count() > 0
            || n.dir.busy_count() > 0
            || (0..n.cpu.nframes()).any(|f| n.cpu.frame(f).state == FrameState::WaitingRemote)
    })
}

/// Collects one node slice's contribution to a [`PostMortem`]: busy
/// directory blocks, outstanding controller transactions, remotely
/// stalled frames, and pending fences. `base` is the global id of
/// `nodes[0]`, so parallel shards report correct node numbers.
pub(crate) fn node_post_mortem_fragments(
    base: usize,
    nodes: &[Node],
    busy_blocks: &mut Vec<BusyEntry>,
    outstanding: &mut Vec<OutstandingTxn>,
    stalled_frames: &mut Vec<FrameStall>,
    fences: &mut Vec<(usize, u32)>,
) {
    for (k, n) in nodes.iter().enumerate() {
        let i = base + k;
        for (block, requester, write, epoch, awaiting) in n.dir.busy_entries() {
            busy_blocks.push(BusyEntry {
                home: i,
                block,
                requester,
                write,
                epoch,
                awaiting: awaiting.to_vec(),
            });
        }
        for (block, xid, write_issued, frames) in n.ctl.outstanding_txns() {
            outstanding.push(OutstandingTxn {
                node: i,
                block,
                xid,
                write_issued,
                frames,
            });
        }
        for f in 0..n.cpu.nframes() {
            let frame = n.cpu.frame(f);
            if frame.state == FrameState::WaitingRemote {
                stalled_frames.push(FrameStall {
                    node: i,
                    frame: f,
                    state: frame.state,
                    pc: frame.pc,
                });
            }
        }
        if n.ctl.fence_count() > 0 {
            fences.push((i, n.ctl.fence_count()));
        }
    }
}

/// The per-node memory port: routes processor accesses through the
/// cache controller and, for home-local blocks, the local directory.
pub(crate) struct NodePort<'a> {
    pub(crate) node: usize,
    pub(crate) ctl: &'a mut CacheController,
    pub(crate) dir: &'a mut Directory,
    pub(crate) io_regs: &'a mut [u32; 8],
    pub(crate) mem: &'a mut FeMemory,
    pub(crate) cfg: &'a MachineConfig,
    /// Outgoing messages (drained into the network by the machine).
    pub(crate) out: &'a mut Vec<(usize, CohMsg)>,
    /// IPIs and block transfers triggered by STIO.
    pub(crate) io_sends: &'a mut Vec<(usize, CohMsg)>,
    /// When present, every address this port's accesses mutate in
    /// memory (data word or full/empty bit) is appended here. The
    /// parallel shards run against memory replicas and replay these
    /// logs into the canonical image at window barriers; the coherence
    /// protocol guarantees one writer per word per window, so replay
    /// order across shards does not matter. The sequential machine
    /// passes `None`.
    pub(crate) write_log: Option<&'a mut Vec<u32>>,
    /// Request words stored to [`IO_RETIRE`]; the machine drains this
    /// after the step and timestamps each retirement against its
    /// arrival plan (a no-op on machines without traffic).
    pub(crate) retired: &'a mut Vec<u32>,
}

impl NodePort<'_> {
    fn access(&mut self, addr: u32, write_grade: bool, ctx: AccessCtx) -> Outcome {
        let home = self.cfg.home_of(addr);
        let cfg = self.cfg;
        let dir = if home == self.node {
            Some(&mut *self.dir)
        } else {
            None
        };
        self.ctl.cpu_access(
            addr,
            write_grade,
            ctx.frame,
            home,
            dir,
            |a| cfg.home_of(a),
            self.out,
        )
    }
}

impl MemoryPort for NodePort<'_> {
    fn load(&mut self, addr: u32, flavor: LoadFlavor, ctx: AccessCtx) -> LoadReply {
        // Loads that mutate the full/empty bit need write permission.
        let write_grade = flavor.reset_fe;
        match self.access(addr, write_grade, ctx) {
            Outcome::Hit => match self.mem.apply_load(addr, flavor) {
                Some((word, fe)) => {
                    if flavor.reset_fe {
                        if let Some(log) = self.write_log.as_deref_mut() {
                            log.push(addr);
                        }
                    }
                    LoadReply::Data { word, fe }
                }
                None => LoadReply::FeViolation,
            },
            Outcome::LocalFill { stall } => LoadReply::Stall { cycles: stall },
            Outcome::Remote => {
                if flavor.miss_wait {
                    // MHOLD: poll until the transaction completes.
                    LoadReply::Stall { cycles: 1 }
                } else {
                    LoadReply::RemoteMiss
                }
            }
        }
    }

    fn store(&mut self, addr: u32, value: Word, flavor: StoreFlavor, ctx: AccessCtx) -> StoreReply {
        match self.access(addr, true, ctx) {
            Outcome::Hit => match self.mem.apply_store(addr, value, flavor) {
                Some(fe) => {
                    if let Some(log) = self.write_log.as_deref_mut() {
                        log.push(addr);
                    }
                    StoreReply::Done { fe }
                }
                None => StoreReply::FeViolation,
            },
            Outcome::LocalFill { stall } => StoreReply::Stall { cycles: stall },
            Outcome::Remote => {
                if flavor.miss_wait {
                    StoreReply::Stall { cycles: 1 }
                } else {
                    StoreReply::RemoteMiss
                }
            }
        }
    }

    fn flush(&mut self, addr: u32) -> u32 {
        let cfg = self.cfg;
        self.ctl.flush(addr, |a| cfg.home_of(a), self.out)
    }

    fn fence_count(&self) -> u32 {
        self.ctl.fence_count()
    }

    fn ldio(&mut self, reg: u16) -> Word {
        match reg {
            IO_NODE_ID => Word::fixnum(self.node as i32),
            IO_FENCE => Word::fixnum(self.ctl.fence_count() as i32),
            r if (r as usize) < self.io_regs.len() => Word(self.io_regs[r as usize]),
            _ => Word::ZERO,
        }
    }

    fn stio(&mut self, reg: u16, value: Word) {
        match reg {
            IO_RETIRE => {
                self.retired.push(value.0);
            }
            IO_IPI => {
                let to = value.as_fixnum().unwrap_or(0).max(0) as usize;
                self.io_sends.push((to, CohMsg::Ipi));
            }
            IO_BXFER_ADDR => {
                let to = self.io_regs[IO_BXFER_NODE as usize] as usize;
                let words = self.io_regs[IO_BXFER_LEN as usize].max(1);
                self.io_sends.push((
                    to,
                    CohMsg::BlockXfer {
                        block: value.0,
                        words,
                    },
                ));
            }
            r if (r as usize) < self.io_regs.len() => {
                self.io_regs[r as usize] = value.0;
            }
            _ => {}
        }
    }
}

impl Machine for Alewife {
    fn num_procs(&self) -> usize {
        self.nodes.len()
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn advance_into(&mut self, evs: &mut Vec<(usize, StepEvent)>) {
        // Event-driven skip: jump straight to the next cycle at which
        // anything can happen. Cycle-exact with the lockstep path (see
        // DESIGN.md §8): every skipped cycle is one in which lockstep
        // would only have stepped parked CPUs into `NoReadyFrame` and
        // charged them one idle cycle each — replayed in bulk by
        // `advance_to`.
        evs.clear();
        let target = self.advance_target();
        self.advance_to(target, evs);
    }

    fn cpu(&self, i: usize) -> &Cpu {
        &self.nodes[i].cpu
    }

    fn cpu_mut(&mut self, i: usize) -> &mut Cpu {
        // The driver is about to observe or mutate this CPU: any booked
        // run must materialize first so the caller sees the state
        // lockstep would show.
        self.settle_resv(i);
        // The driver may make this CPU runnable (assign a frame, wake a
        // waiter): it can no longer be assumed idle.
        self.parked[i] = false;
        self.sig_stale = true;
        // Whatever the driver does may emit trace events; make sure
        // they carry the current cycle even if this node has been
        // asleep (clocks are stamped on demand, see `advance_to`).
        self.nodes[i].cpu.set_clock(self.now);
        &mut self.nodes[i].cpu
    }

    fn mem(&self) -> &FeMemory {
        &self.mem
    }

    fn mem_mut(&mut self) -> &mut FeMemory {
        // A memory write (e.g. setting a full/empty bit) can unblock
        // any node; clear every parked flag rather than reason about
        // which.
        self.parked.fill(false);
        &mut self.mem
    }

    fn program(&self) -> &Program {
        &self.prog
    }

    fn charge_handler(&mut self, i: usize, cycles: u64) {
        self.settle_resv(i);
        self.nodes[i].cpu.charge_handler(cycles);
        self.ready_at[i] += cycles;
        // No parked flags change here: a handler charge is a pure
        // cycle charge. Anything a handler *publishes* that another
        // node's scheduler could see travels through `mem_mut` (the
        // run-queue lives in shared memory — it unparks everyone),
        // `cpu_mut` (unparks that node), or `send_ipi` (the delivery
        // unparks its destination), so every path that could void an
        // idle promise already clears the flag itself.
    }

    fn charge_idle(&mut self, i: usize, cycles: u64) {
        self.nodes[i].cpu.charge_idle(cycles);
        self.ready_at[i] += cycles;
        // `charge_idle(i, 1)` is the universal driver response to
        // `NoReadyFrame` — the signal that node `i` will stay idle
        // until some machine-visible event, which lets the event-driven
        // advance skip its dead cycles. Any other amount is a custom
        // charge that carries no such promise.
        self.parked[i] = cycles == 1;
    }

    fn send_ipi(&mut self, from: usize, to: usize) {
        self.net.send(
            self.now,
            from,
            to,
            2,
            Env {
                src: from,
                msg: CohMsg::Ipi,
            },
        );
    }

    fn home_of(&self, addr: u32) -> usize {
        self.cfg.home_of(addr)
    }

    fn fault(&self) -> Option<&MachineFault> {
        self.fault.as_ref()
    }

    fn retire_request(&mut self, node: usize, word: u32) -> bool {
        let Some(plan) = self.plan.clone() else {
            return false;
        };
        let Some(tr) = self.nodes[node].traffic.as_deref_mut() else {
            return false;
        };
        let before = tr.retired;
        crate::traffic::record_retire(&plan, node, tr, word, self.now);
        tr.retired > before
    }

    fn attach_tracer(&mut self, cfg: TraceConfig) {
        crate::obs::attach_node_probes(&mut self.nodes, cfg);
        self.net
            .attach_probe(Probe::new(lane(Component::Net, 0), cfg));
        self.meta_probe = Probe::new(lane(Component::Meta, 0), cfg);
    }

    fn collect_trace(&self) -> Trace {
        let mut t = Trace::new();
        crate::obs::collect_node_traces(&mut t, &self.nodes);
        t.push_probe(self.net.trace_probe());
        t.push_probe(&self.meta_probe);
        t.sort();
        t
    }

    fn stats_report(&self) -> StatsReport {
        crate::obs::build_report(&self.nodes, &self.net)
    }

    fn checkpoint(&mut self) -> Result<crate::snapshot::Snapshot, crate::snapshot::SnapshotError> {
        Alewife::checkpoint(self)
    }

    fn restore(
        &mut self,
        snap: &crate::snapshot::Snapshot,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        Alewife::restore(self, snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use april_core::isa::asm::assemble;
    use april_core::isa::Reg;
    use april_core::trap::Trap;
    use april_net::topology::Topology;

    fn tiny_cfg() -> MachineConfig {
        MachineConfig {
            topology: Topology::new(2, 2),
            region_bytes: 0x10000,
            ..MachineConfig::default()
        }
    }

    /// Drives the machine with a trivial "runtime": on remote-miss
    /// traps, mark the frame waiting and (with only one thread) idle.
    fn run(m: &mut Alewife, max: u64) {
        while !m.nodes[0].cpu.is_halted() {
            assert!(m.now() < max, "timeout at cycle {}", m.now());
            for (i, ev) in m.advance() {
                match ev {
                    StepEvent::Trapped(Trap::RemoteMiss { .. }) => {
                        let fp = m.nodes[i].cpu.fp();
                        let f = m.nodes[i].cpu.frame_mut(fp);
                        f.state = FrameState::WaitingRemote;
                        f.psr.in_trap = false;
                        m.charge_handler(i, 6);
                        m.nodes[i].cpu.count_context_switch();
                    }
                    StepEvent::Trapped(t) => panic!("node {i} trapped: {t}"),
                    StepEvent::NoReadyFrame => m.charge_idle(i, 1),
                    StepEvent::RtCall { n } => panic!("rtcall {n}"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn local_access_hits_after_fill() {
        // Node 0 accesses its own region: local fill, then hits.
        let prog = assemble(
            "
            movi 0x100, r1
            st r1, r1+0
            ld r1+0, r2
            ld r1+4, r3
            halt
        ",
        )
        .unwrap();
        let mut m = Alewife::new(tiny_cfg(), prog);
        m.boot();
        run(&mut m, 10_000);
        assert_eq!(m.nodes[0].cpu.get_reg(Reg::L(2)), Word(0x100));
        assert_eq!(m.nodes[0].ctl.stats.local_fills, 1);
        assert!(
            m.nodes[0].cpu.stats.stall_cycles >= 10,
            "local fill stalls 10"
        );
        assert_eq!(m.nodes[0].cpu.stats.remote_misses, 0);
    }

    #[test]
    fn remote_access_traps_and_completes() {
        // Node 0 reads node 1's region (0x10000): remote miss, trap,
        // wait for the reply, then retry succeeds.
        let prog = assemble(
            "
            movi 0x10000, r1
            movi 77, r2
            st r2, r1+0
            ld r1+0, r3
            halt
        ",
        )
        .unwrap();
        let mut m = Alewife::new(tiny_cfg(), prog);
        m.boot();
        run(&mut m, 100_000);
        assert_eq!(m.nodes[0].cpu.get_reg(Reg::L(3)), Word(77));
        assert!(m.nodes[0].cpu.stats.remote_misses >= 1);
        assert!(m.net_stats().delivered >= 2, "request and reply traveled");
        assert_eq!(m.mem().read(0x10000), Word(77));
    }

    #[test]
    fn wait_flavor_polls_instead_of_trapping() {
        let prog = assemble(
            "
            movi 0x10000, r1
            ldnw r1+0, r2
            halt
        ",
        )
        .unwrap();
        let mut m = Alewife::new(tiny_cfg(), prog);
        m.boot();
        run(&mut m, 100_000);
        assert_eq!(m.nodes[0].cpu.stats.remote_misses, 0, "no trap");
        assert!(
            m.nodes[0].cpu.stats.stall_cycles > 10,
            "held while remote fill completed"
        );
    }

    #[test]
    fn flush_and_fence_complete() {
        let prog = assemble(
            "
            movi 0x100, r1
            st r1, r1+0     ; dirty the line (local, node 0 home)
            flush r1+0
            fence
            ldio 2, r4      ; fence counter must be 0 now
            halt
        ",
        )
        .unwrap();
        let mut m = Alewife::new(tiny_cfg(), prog);
        m.boot();
        run(&mut m, 100_000);
        assert_eq!(m.nodes[0].cpu.get_reg(Reg::L(4)), Word::fixnum(0));
        assert_eq!(m.nodes[0].ctl.stats.writebacks, 1);
    }

    #[test]
    fn node_id_io_register() {
        let prog = assemble("ldio 1, r1\nhalt").unwrap();
        let mut m = Alewife::new(tiny_cfg(), prog);
        m.boot();
        run(&mut m, 1_000);
        assert_eq!(m.nodes[0].cpu.get_reg(Reg::L(1)), Word::fixnum(0));
    }

    #[test]
    fn coherence_read_write_sequence_is_consistent() {
        // One CPU writes its own region then reads a remote region;
        // directory states must reflect the protocol.
        let prog = assemble(
            "
            movi 0x100, r1
            movi 5, r2
            st r2, r1+0
            movi 0x10000, r3
            ld r3+0, r4
            halt
        ",
        )
        .unwrap();
        let mut m = Alewife::new(tiny_cfg(), prog);
        m.boot();
        run(&mut m, 100_000);
        use april_mem::directory::{DirState, SharerSet};
        assert_eq!(m.nodes[0].dir.state(0x100), DirState::Exclusive(0));
        assert_eq!(
            m.nodes[1].dir.state(0x10000),
            DirState::Shared(SharerSet::one(0))
        );
    }
}
