//! Deterministic parallel execution of the ALEWIFE machine.
//!
//! [`ParallelAlewife`] shards nodes (CPU + cache controller + home
//! directory slice) across worker threads and advances them
//! concurrently inside *conservative time windows* (classic
//! conservative-PDES): the window width never exceeds the network's
//! [lookahead](april_net::network::Network::lookahead) — the minimum
//! cross-node message latency — so no worker can observe a message
//! another worker has not yet staged. Cross-node sends produced inside
//! a window are staged into per-worker outboxes and merged at the
//! window barrier in a fixed deterministic order (send cycle, then
//! machine phase, then source index, then sequence number) that
//! replays the sequential machine's injection order exactly. Parallel
//! runs are therefore **bit-exact** with the sequential lockstep path
//! — and, transitively, with the event-driven skip — for any worker
//! count. DESIGN.md §9 walks through the full argument.

use crate::alewife::{
    dispatch_to_node, msg_touches_cpu, node_post_mortem_fragments, nodes_pending_work, Env, Node,
    NodePort, Resv, MIN_RUN,
};
use crate::config::MachineConfig;
use crate::driver::{EventCtx, NodeDriver};
use crate::traffic::ArrivalPlan;
use crate::watchdog::{
    BusyEntry, FrameStall, InFlightMsg, MachineFault, OutstandingTxn, PostMortem, UndeliverableMsg,
    Watchdog,
};
use april_core::cpu::{Cpu, StepEvent};
use april_core::decoded::DecodedProgram;
use april_core::program::Program;
use april_core::stats::CpuStats;
use april_core::word::Word;
use april_mem::controller::CacheController;
use april_mem::directory::Directory;
use april_mem::femem::FeMemory;
use april_mem::msg::CohMsg;
use april_net::fault::{FaultPlan, FaultStats};
use april_net::network::Network;
use april_net::topology::Channel;
use april_obs::{lane, Component, EventKind, Probe, StatsReport, Trace, TraceConfig};
use std::sync::{Arc, Condvar, Mutex};

/// The smallest protocol packet in flits (header + address); the
/// lookahead bound is computed against it. `CohMsg::size_flits` never
/// reports less.
const MIN_FLITS: u64 = 2;

/// One window's staged network injection, keyed for the deterministic
/// merge. The key replicates the sequential machine's within-cycle
/// injection order: phase 0 is delivery dispatch (indexed by global
/// hand-over order), phase 1 is the CPU step loop (indexed by node),
/// phase 2 is the controller/directory tick loop (indexed by node);
/// `seq` orders the sends of one unit. Packet ids — and therefore
/// fault-injection verdicts and event tie-breaks — depend only on
/// injection order, so replaying this order makes the network
/// evolution bit-identical to the sequential run's.
#[derive(Debug, Clone, Copy)]
struct StagedSend {
    key: (u64, u8, u64, u32),
    at: u64,
    src: usize,
    dst: usize,
    size: u64,
    env: Env,
}

/// A fatal fault raised inside a shard, positioned by the same
/// (cycle, phase, index, sub-unit) order the sequential machine records
/// faults in, so the coordinator keeps the globally *first* one.
#[derive(Debug, Clone)]
struct ShardFault {
    key: (u64, u8, u64, u8),
    fault: MachineFault,
}

/// A shard's contribution to a watchdog post-mortem, captured at the
/// window's last cycle after the protocol ticks but before driver
/// events — the exact point the sequential machine captures its own.
#[derive(Debug, Default)]
struct PmFragment {
    busy_blocks: Vec<BusyEntry>,
    outstanding: Vec<OutstandingTxn>,
    stalled_frames: Vec<FrameStall>,
    fences: Vec<(usize, u32)>,
    /// `nodes_pending_work` over the shard at capture time; the
    /// watchdog only faults when some shard (or the network) still has
    /// pending work.
    pending_pre_driver: bool,
}

/// One window of work for a shard.
struct WindowCmd {
    start: u64,
    end: u64,
    /// Capture a [`PmFragment`] at the last cycle: set whenever the
    /// watchdog could fire inside this window.
    capture_pm: bool,
    /// This shard's deliveries, `(cycle, global_index, dst, env)` in
    /// global hand-over order.
    deliveries: Vec<(u64, u64, usize, Env)>,
    /// All shards' memory writes from the previous window, replayed
    /// into this shard's replica before the window starts.
    foreign_writes: Vec<(u32, Word, bool)>,
}

enum Cmd {
    Window(Box<WindowCmd>),
    Stop,
}

/// What a shard reports back at a window barrier.
#[derive(Default)]
struct WindowResult {
    sends: Vec<StagedSend>,
    /// Final `(addr, word, full/empty)` snapshots of every word this
    /// shard's processors wrote during the window. The coherence
    /// protocol admits one writer per word per window (write permission
    /// cannot transfer without a cross-node round trip, which exceeds
    /// the lookahead), so snapshots from different shards never
    /// collide and replay in any order.
    writes: Vec<(u32, Word, bool)>,
    /// Cumulative shard progress counters after each cycle of the
    /// window: (instructions, directory events, controller events).
    sigs: Vec<(u64, u64, u64)>,
    fault: Option<ShardFault>,
    halted_all: bool,
    /// `nodes_pending_work` after driver events, for the quiescence
    /// stop check.
    pending: bool,
    /// Earliest controller/directory retransmission deadline in the
    /// shard after the window; feeds the next window-shrink decision.
    next_deadline: u64,
    pm: Option<PmFragment>,
}

/// A contiguous slice of the machine owned by one worker thread.
struct Shard<'a> {
    base: usize,
    nodes: Vec<Node>,
    /// Replica of global memory. Reads are coherent because read and
    /// write permission for a word cannot coexist across shards within
    /// one window; writes are reconciled through the write logs.
    mem: FeMemory,
    ready_at: Vec<u64>,
    halted_at: Vec<Option<u64>>,
    prog: &'a Program,
    /// The coordinator's decoded image, shared read-only by every
    /// shard (`None` with the decode engine off).
    dec: Option<&'a DecodedProgram>,
    cfg: MachineConfig,
    /// The machine's open-loop arrival plan (`None` without traffic).
    /// Injection and retirement both happen on the edge node's own
    /// shard — producer and consumer share the write log, so the
    /// one-writer-per-word-per-window invariant holds untouched.
    plan: Option<Arc<ArrivalPlan>>,
    write_log: Vec<u32>,
    scratch_out: Vec<(usize, CohMsg)>,
    scratch_dir: Vec<(usize, CohMsg)>,
    scratch_io: Vec<(usize, CohMsg)>,
    scratch_evs: Vec<(usize, StepEvent)>,
    scratch_retired: Vec<u32>,
}

/// Charging context handed to the driver for a single node's event; the
/// shard owns both halves, so drivers run lock-free on worker threads.
struct ShardCtx<'a> {
    cpu: &'a mut Cpu,
    ready_at: &'a mut u64,
}

impl EventCtx for ShardCtx<'_> {
    fn cpu(&mut self) -> &mut Cpu {
        self.cpu
    }

    fn charge_handler(&mut self, cycles: u64) {
        self.cpu.charge_handler(cycles);
        *self.ready_at += cycles;
    }

    fn charge_idle(&mut self, cycles: u64) {
        self.cpu.charge_idle(cycles);
        *self.ready_at += cycles;
    }
}

impl Shard<'_> {
    fn record_fault(res: &mut WindowResult, key: (u64, u8, u64, u8), fault: MachineFault) {
        // Keys are generated in ascending order within a shard, so the
        // first recorded fault is the shard's earliest.
        if res.fault.is_none() {
            res.fault = Some(ShardFault { key, fault });
        }
    }

    fn run_window(&mut self, cmd: &WindowCmd, driver: &dyn NodeDriver) -> WindowResult {
        let mut res = WindowResult::default();
        let cfg = self.cfg;
        for &(addr, w, full) in &cmd.foreign_writes {
            self.mem.set_word_state(addr, w, full);
        }
        self.write_log.clear();
        let mut next_delivery = 0usize;
        for c in cmd.start..cmd.end {
            // Phase order per cycle mirrors `Alewife::advance`: clocks,
            // delivery dispatch, CPU steps, protocol ticks, watchdog
            // bookkeeping, then (as the sequential driver loop does
            // after `advance` returns) driver events.
            for n in &mut self.nodes {
                n.cpu.set_clock(c);
                n.ctl.set_clock(c);
                n.dir.set_clock(c);
            }
            // Open-loop ingress, before deliveries and steps — the
            // same within-cycle position as `Alewife::advance_to`.
            // Writes land in this shard's replica and its write log;
            // only the edge node itself ever touches its ring slots, so
            // the replica is always current for them.
            if let Some(plan) = &self.plan {
                for k in 0..self.nodes.len() {
                    if let Some(tr) = self.nodes[k].traffic.as_deref_mut() {
                        crate::traffic::inject_due(
                            plan,
                            self.base + k,
                            tr,
                            c,
                            &mut self.mem,
                            Some(&mut self.write_log),
                        );
                    }
                }
            }
            while next_delivery < cmd.deliveries.len() && cmd.deliveries[next_delivery].0 == c {
                let (_, gidx, dst, env) = cmd.deliveries[next_delivery];
                next_delivery += 1;
                let local = dst - self.base;
                // Cut a booked decode-engine run ahead of a delivery
                // that can observe or perturb the CPU, exactly as the
                // sequential dispatch does: the elapsed instructions
                // materialize and the node steps again this cycle.
                if msg_touches_cpu(&env.msg) {
                    if let Some(r) = self.nodes[local].resv.take() {
                        let done = (c - r.start) as u32;
                        if done > 0 {
                            let dec = self.dec.expect("booked run without decode image");
                            self.nodes[local].cpu.run_decoded(dec, done);
                        }
                        self.ready_at[local] = c;
                    }
                }
                self.scratch_out.clear();
                self.scratch_dir.clear();
                match dispatch_to_node(
                    dst,
                    &mut self.nodes[local],
                    env,
                    &cfg,
                    &mut self.scratch_out,
                    &mut self.scratch_dir,
                ) {
                    Ok(()) => {
                        let mut seq = 0u32;
                        for &(to, msg) in &self.scratch_out {
                            res.sends.push(StagedSend {
                                key: (c, 0, gidx, seq),
                                at: c,
                                src: dst,
                                dst: to,
                                size: msg.size_flits(cfg.block_words()) as u64,
                                env: Env { src: dst, msg },
                            });
                            seq += 1;
                        }
                        for &(to, msg) in &self.scratch_dir {
                            res.sends.push(StagedSend {
                                key: (c, 0, gidx, seq),
                                at: c + cfg.mem_latency,
                                src: dst,
                                dst: to,
                                size: msg.size_flits(cfg.block_words()) as u64,
                                env: Env { src: dst, msg },
                            });
                            seq += 1;
                        }
                    }
                    Err(fault) => {
                        debug_assert_eq!(c, cmd.end - 1, "fault off the window's last cycle");
                        Self::record_fault(&mut res, (c, 0, gidx, 0), fault);
                    }
                }
            }
            // Step processors in node order.
            self.scratch_evs.clear();
            for k in 0..self.nodes.len() {
                if self.ready_at[k] > c || self.nodes[k].cpu.is_halted() {
                    continue;
                }
                // Decode engine: materialize the booked run that just
                // elapsed, then book the next straight-line safe run if
                // one is available — mirroring `Alewife::advance_to`.
                if let Some(dec) = self.dec {
                    if let Some(r) = self.nodes[k].resv.take() {
                        self.nodes[k].cpu.run_decoded(dec, r.len);
                    }
                    let run = self.nodes[k].cpu.bookable_run(dec);
                    if run >= MIN_RUN {
                        self.nodes[k].resv = Some(Resv { start: c, len: run });
                        self.ready_at[k] = c + run as u64;
                        continue;
                    }
                }
                self.scratch_out.clear();
                self.scratch_io.clear();
                self.scratch_retired.clear();
                let node = &mut self.nodes[k];
                let before = node.cpu.stats.total();
                let ev = {
                    let port = NodePort {
                        node: self.base + k,
                        ctl: &mut node.ctl,
                        dir: &mut node.dir,
                        io_regs: &mut node.io_regs,
                        mem: &mut self.mem,
                        cfg: &cfg,
                        out: &mut self.scratch_out,
                        io_sends: &mut self.scratch_io,
                        write_log: Some(&mut self.write_log),
                        retired: &mut self.scratch_retired,
                    };
                    node.cpu.step(self.prog, port)
                };
                let cost = node.cpu.stats.total() - before;
                self.ready_at[k] = c + cost;
                if node.cpu.is_halted() && self.halted_at[k].is_none() {
                    self.halted_at[k] = Some(c);
                }
                let gid = (self.base + k) as u64;
                let mut seq = 0u32;
                for &(to, msg) in &self.scratch_out {
                    res.sends.push(StagedSend {
                        key: (c, 1, gid, seq),
                        at: c,
                        src: self.base + k,
                        dst: to,
                        size: msg.size_flits(cfg.block_words()) as u64,
                        env: Env {
                            src: self.base + k,
                            msg,
                        },
                    });
                    seq += 1;
                }
                for &(to, msg) in &self.scratch_io {
                    res.sends.push(StagedSend {
                        key: (c, 1, gid, seq),
                        at: c,
                        src: self.base + k,
                        dst: to,
                        size: MIN_FLITS,
                        env: Env {
                            src: self.base + k,
                            msg,
                        },
                    });
                    seq += 1;
                }
                if !self.scratch_retired.is_empty() {
                    if let (Some(plan), Some(tr)) =
                        (&self.plan, self.nodes[k].traffic.as_deref_mut())
                    {
                        for &w in &self.scratch_retired {
                            crate::traffic::record_retire(plan, self.base + k, tr, w, c);
                        }
                    }
                    self.scratch_retired.clear();
                }
                match ev {
                    StepEvent::Executed | StepEvent::Stalled { .. } => {}
                    other => self.scratch_evs.push((k, other)),
                }
            }
            // Tick the protocol clocks in node order: controller, then
            // directory, per node.
            for k in 0..self.nodes.len() {
                let gid = (self.base + k) as u64;
                let mut seq = 0u32;
                self.scratch_out.clear();
                match self.nodes[k]
                    .ctl
                    .tick(c, |a| cfg.home_of(a), &mut self.scratch_out)
                {
                    Ok(()) => {
                        for &(to, msg) in &self.scratch_out {
                            res.sends.push(StagedSend {
                                key: (c, 2, gid, seq),
                                at: c,
                                src: self.base + k,
                                dst: to,
                                size: msg.size_flits(cfg.block_words()) as u64,
                                env: Env {
                                    src: self.base + k,
                                    msg,
                                },
                            });
                            seq += 1;
                        }
                    }
                    Err(e) => {
                        debug_assert_eq!(c, cmd.end - 1, "fault off the window's last cycle");
                        Self::record_fault(
                            &mut res,
                            (c, 2, gid, 0),
                            MachineFault::Protocol {
                                node: self.base + k,
                                error: e,
                            },
                        );
                    }
                }
                self.scratch_out.clear();
                match self.nodes[k].dir.tick(c, &mut self.scratch_out) {
                    Ok(()) => {
                        for &(to, msg) in &self.scratch_out {
                            res.sends.push(StagedSend {
                                key: (c, 2, gid, seq),
                                at: c + cfg.mem_latency,
                                src: self.base + k,
                                dst: to,
                                size: msg.size_flits(cfg.block_words()) as u64,
                                env: Env {
                                    src: self.base + k,
                                    msg,
                                },
                            });
                            seq += 1;
                        }
                    }
                    Err(e) => {
                        debug_assert_eq!(c, cmd.end - 1, "fault off the window's last cycle");
                        Self::record_fault(
                            &mut res,
                            (c, 2, gid, 1),
                            MachineFault::Protocol {
                                node: self.base + k,
                                error: e,
                            },
                        );
                    }
                }
            }
            // Cumulative progress counters after this cycle; the
            // coordinator adds the network's delivered count and
            // replays the watchdog per cycle at the barrier.
            let instrs: u64 = self.nodes.iter().map(|n| n.cpu.stats.instructions).sum();
            let dir_events: u64 = self.nodes.iter().map(|n| n.dir.stats.total()).sum();
            let ctl_events: u64 = self.nodes.iter().map(|n| n.ctl.stats.total()).sum();
            res.sigs.push((instrs, dir_events, ctl_events));
            if cmd.capture_pm && c == cmd.end - 1 {
                let mut pm = PmFragment {
                    pending_pre_driver: nodes_pending_work(&self.nodes),
                    ..PmFragment::default()
                };
                node_post_mortem_fragments(
                    self.base,
                    &self.nodes,
                    &mut pm.busy_blocks,
                    &mut pm.outstanding,
                    &mut pm.stalled_frames,
                    &mut pm.fences,
                );
                res.pm = Some(pm);
            }
            // Driver events, exactly where the sequential loop services
            // them: after the cycle's machine work, before the next.
            for idx in 0..self.scratch_evs.len() {
                let (k, ev) = self.scratch_evs[idx];
                let mut ctx = ShardCtx {
                    cpu: &mut self.nodes[k].cpu,
                    ready_at: &mut self.ready_at[k],
                };
                driver.on_event(self.base + k, ev, &mut ctx);
            }
        }
        // Collapse the write log into final word snapshots.
        self.write_log.sort_unstable();
        self.write_log.dedup();
        res.writes = self
            .write_log
            .iter()
            .map(|&addr| {
                let (w, full) = self.mem.word_state(addr);
                (addr, w, full)
            })
            .collect();
        res.halted_all = self.nodes.iter().all(|n| n.cpu.is_halted());
        res.pending = nodes_pending_work(&self.nodes);
        res.next_deadline = self
            .nodes
            .iter()
            .map(|n| n.ctl.next_deadline().min(n.dir.next_deadline()))
            .min()
            .unwrap_or(u64::MAX);
        res
    }
}

/// A mailbox between the coordinator and one worker. Windows are a few
/// microseconds of work, so the receiver first spins (`spin` tries)
/// hoping the producer lands the value without a syscall, then parks on
/// the condvar. The spin budget is sized by the caller: generous when
/// the host has a core per thread, near-zero when threads outnumber
/// cores and spinning can only steal the producer's timeslice.
struct Slot {
    cmd: Mutex<Option<Cmd>>,
    cmd_cv: Condvar,
    res: Mutex<Option<WindowResult>>,
    res_cv: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            cmd: Mutex::new(None),
            cmd_cv: Condvar::new(),
            res: Mutex::new(None),
            res_cv: Condvar::new(),
        }
    }
}

/// Posts `v` into a mailbox and wakes its receiver.
fn post<T>(m: &Mutex<Option<T>>, cv: &Condvar, v: T) {
    let prev = m.lock().expect("mailbox poisoned").replace(v);
    debug_assert!(prev.is_none(), "mailbox overwritten");
    cv.notify_one();
}

/// Takes the next value from a mailbox: spin briefly, then block.
fn take<T>(m: &Mutex<Option<T>>, cv: &Condvar, spin: u32) -> T {
    for _ in 0..spin {
        if let Ok(mut g) = m.try_lock() {
            if let Some(v) = g.take() {
                return v;
            }
        }
        std::hint::spin_loop();
    }
    let mut g = m.lock().expect("mailbox poisoned");
    loop {
        if let Some(v) = g.take() {
            return v;
        }
        g = cv.wait(g).expect("mailbox poisoned");
    }
}

/// The parallel ALEWIFE machine: bit-exact with [`crate::Alewife`]
/// under the same [`NodeDriver`], for any worker count.
///
/// Construction, boot, and inspection mirror the sequential machine;
/// [`ParallelAlewife::run`] replaces the `advance()` loop — the driver
/// is embedded rather than polled, because step events are serviced on
/// worker threads inside the conservative windows.
#[derive(Debug)]
pub struct ParallelAlewife {
    pub(crate) nodes: Vec<Node>,
    pub(crate) mem: FeMemory,
    pub(crate) net: Network<Env>,
    pub(crate) prog: Program,
    /// Decoded image for the decode engine (derived state, rebuilt by
    /// construction, never snapshotted); `None` with `cfg.decode` off.
    pub(crate) dec: Option<DecodedProgram>,
    pub(crate) cfg: MachineConfig,
    pub(crate) ready_at: Vec<u64>,
    pub(crate) halted_at: Vec<Option<u64>>,
    pub(crate) now: u64,
    pub(crate) watchdog: Watchdog,
    pub(crate) fault: Option<MachineFault>,
    /// Scheduler-internal events (window barriers, watchdog arming/
    /// firing) on the meta lane, which [`Trace::retain_semantic`]
    /// excludes from the cross-scheduler determinism contract.
    pub(crate) meta_probe: Probe,
    /// The open-loop arrival plan derived from `cfg.traffic` (`None`
    /// without traffic); cloned into every shard. Derived state, never
    /// snapshotted.
    pub(crate) plan: Option<Arc<ArrivalPlan>>,
}

impl ParallelAlewife {
    /// Builds the machine described by `cfg`, loading `prog`'s static
    /// image into global memory.
    pub fn new(cfg: MachineConfig, prog: Program) -> ParallelAlewife {
        let n = cfg.num_nodes();
        let mut mem = FeMemory::new(cfg.total_mem_bytes());
        mem.load_image(&prog);
        let plan = ArrivalPlan::build(&cfg).map(Arc::new);
        let nodes = (0..n)
            .map(|i| Node {
                cpu: Cpu::new(cfg.cpu),
                ctl: CacheController::new(i, cfg.cache, cfg.ctl),
                dir: Directory::with_config(cfg.dir, cfg.num_nodes()),
                io_regs: [0; 8],
                resv: None,
                traffic: plan
                    .as_ref()
                    .filter(|p| p.is_edge(i))
                    .map(|_| Box::default()),
            })
            .collect();
        let dec = cfg.decode.then(|| DecodedProgram::lower(&prog));
        ParallelAlewife {
            nodes,
            mem,
            net: Network::new(cfg.topology, cfg.net),
            prog,
            dec,
            cfg,
            ready_at: vec![0; n],
            halted_at: vec![None; n],
            now: 0,
            watchdog: Watchdog::default(),
            fault: None,
            meta_probe: Probe::default(),
            plan,
        }
    }

    /// Installs live event probes on every node component and the
    /// network, plus a meta-lane probe for window barriers and
    /// watchdog events. Call before [`ParallelAlewife::run`].
    pub fn attach_tracer(&mut self, cfg: TraceConfig) {
        crate::obs::attach_node_probes(&mut self.nodes, cfg);
        self.net
            .attach_probe(Probe::new(lane(Component::Net, 0), cfg));
        self.meta_probe = Probe::new(lane(Component::Meta, 0), cfg);
    }

    /// Merges every component probe into one canonically ordered
    /// [`Trace`]. After [`Trace::retain_semantic`], the result is
    /// bit-identical to the sequential machine's for the same workload
    /// at any worker count.
    pub fn collect_trace(&self) -> Trace {
        let mut t = Trace::new();
        crate::obs::collect_node_traces(&mut t, &self.nodes);
        t.push_probe(self.net.trace_probe());
        t.push_probe(&self.meta_probe);
        t.sort();
        t
    }

    /// Snapshots the machine's counters and histograms; byte-equal to
    /// the sequential machine's report for the same workload.
    pub fn stats_report(&self) -> StatsReport {
        crate::obs::build_report(&self.nodes, &self.net)
    }

    /// Installs a fault-injection plan on the network; runs stay
    /// exactly reproducible from the plan's seed for every worker
    /// count.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.net.set_fault_plan(Some(plan));
    }

    /// Counts of faults the network has injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.net.fault_stats
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.net.fault_plan()
    }

    /// Quarantines a channel: the router detours around it from now on
    /// (installing an inert fault plan first if none was configured).
    /// The network is coordinator-owned, so the decision is identical
    /// for every worker count.
    pub fn quarantine_channel(&mut self, ch: Channel) {
        self.net.fault_plan_mut().quarantine_channel(ch);
    }

    /// Quarantines a node: the router stops routing through or to it.
    pub fn quarantine_node(&mut self, node: usize) {
        self.net.fault_plan_mut().quarantine_node(node);
    }

    /// Replaces the watchdog's no-progress horizon. The recovery layer
    /// backs this off exponentially across attempts; the horizon is
    /// scheduler policy, not machine state, so changing it never
    /// perturbs the simulated computation.
    pub fn set_watchdog_horizon(&mut self, horizon: u64) {
        self.cfg.watchdog.horizon = horizon;
    }

    /// The watchdog's current no-progress horizon.
    pub fn watchdog_horizon(&self) -> u64 {
        self.cfg.watchdog.horizon
    }

    /// Network statistics so far.
    pub fn net_stats(&self) -> april_net::network::NetStats {
        self.net.stats
    }

    /// Sum of all processors' cycle ledgers.
    pub fn total_stats(&self) -> CpuStats {
        let mut s = CpuStats::default();
        for n in &self.nodes {
            s.merge(&n.cpu.stats);
        }
        s
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time in cycles (the last executed cycle).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Node `i` (processor, controller, directory).
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Processor `i`.
    pub fn cpu(&self, i: usize) -> &Cpu {
        &self.nodes[i].cpu
    }

    /// Mutable processor `i` (for booting and pre-run setup).
    pub fn cpu_mut(&mut self, i: usize) -> &mut Cpu {
        self.settle_resv(i);
        &mut self.nodes[i].cpu
    }

    /// Materializes node `i`'s booked decode-engine run through the
    /// current cycle, if one is outstanding, so external observers see
    /// the state the sequential lockstep machine would show. See
    /// [`crate::Alewife`]'s settle rules; runs booked inside a window
    /// survive across windows and across `run` calls until settled.
    pub(crate) fn settle_resv(&mut self, i: usize) {
        let Some(r) = self.nodes[i].resv.take() else {
            return;
        };
        let done = (self.now - r.start + 1).min(r.len as u64) as u32;
        let dec = self.dec.as_ref().expect("booked run without decode image");
        self.nodes[i].cpu.run_decoded(dec, done);
        self.ready_at[i] = self.now + 1;
    }

    /// Global memory (canonical image; replicas are reconciled into it
    /// at every window barrier, so between runs this is exact).
    pub fn mem(&self) -> &FeMemory {
        &self.mem
    }

    /// Mutable global memory, for pre-run setup.
    pub fn mem_mut(&mut self) -> &mut FeMemory {
        &mut self.mem
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Boots node 0 at the program entry.
    pub fn boot(&mut self) {
        let entry = self.prog.entry;
        self.nodes[0].cpu.boot(entry);
    }

    /// Boots every node at the program entry (see
    /// [`crate::Alewife::boot_all`]).
    pub fn boot_all(&mut self) {
        let entry = self.prog.entry;
        for node in &mut self.nodes {
            node.cpu.boot(entry);
        }
    }

    /// The fatal fault that ended the run, if any.
    pub fn fault(&self) -> Option<&MachineFault> {
        self.fault.as_ref()
    }

    /// Per-node halt cycles (see [`crate::Alewife::halted_cycles`]).
    pub fn halted_cycles(&self) -> &[Option<u64>] {
        &self.halted_at
    }

    /// The window width the scheduler will use: the network lookahead,
    /// optionally narrowed (never widened) by
    /// [`MachineConfig::window_override`].
    pub fn window_width(&self) -> u64 {
        let la = self.net.lookahead(MIN_FLITS);
        if self.cfg.window_override == 0 {
            la
        } else {
            self.cfg.window_override.min(la)
        }
    }

    /// Runs the machine under `driver` until it faults or goes fully
    /// quiescent (every CPU halted, no protocol work pending, network
    /// idle), returning the fault if one ended the run. Identical to
    /// [`crate::driver::drive_sequential`] over the sequential machine
    /// — same final state, bit for bit — for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if simulated time reaches `max` (a hang), or if the
    /// configuration admits no conservative window (zero lookahead).
    pub fn run<D: NodeDriver>(&mut self, driver: &D, max: u64) -> Option<MachineFault> {
        self.run_inner(driver, max, None)
    }

    /// Like [`ParallelAlewife::run`], but stops as soon as the clock
    /// reaches `stop_at` (the machine lands on that cycle exactly),
    /// whether or not the run is finished. Window widths are clamped so
    /// no window crosses `stop_at`; narrower windows are always sound
    /// (see [`MachineConfig::window_override`]), so the run stays
    /// bit-exact with the sequential schedulers. Used to position a
    /// machine for a checkpoint or to replay a restored one.
    pub fn run_until<D: NodeDriver>(
        &mut self,
        driver: &D,
        stop_at: u64,
        max: u64,
    ) -> Option<MachineFault> {
        self.run_inner(driver, max, Some(stop_at))
    }

    fn run_inner<D: NodeDriver>(
        &mut self,
        driver: &D,
        max: u64,
        stop_at: Option<u64>,
    ) -> Option<MachineFault> {
        let n = self.nodes.len();
        let width_max = self.window_width();
        assert!(
            width_max >= 1,
            "network config admits no conservative window (lookahead 0)"
        );
        let workers = self.cfg.workers.clamp(1, n);
        let chunk = n.div_ceil(workers);
        let nshards = n.div_ceil(chunk);

        // Carve the machine into contiguous shards.
        let mut shards: Vec<Shard> = Vec::with_capacity(nshards);
        {
            let mut nodes = std::mem::take(&mut self.nodes);
            let mut ready_at = std::mem::take(&mut self.ready_at);
            let mut halted_at = std::mem::take(&mut self.halted_at);
            let prog = &self.prog;
            let dec = self.dec.as_ref();
            for s in (0..nshards).rev() {
                let lo = s * chunk;
                shards.push(Shard {
                    base: lo,
                    nodes: nodes.split_off(lo),
                    mem: self.mem.clone(),
                    ready_at: ready_at.split_off(lo),
                    halted_at: halted_at.split_off(lo),
                    prog,
                    dec,
                    cfg: self.cfg,
                    plan: self.plan.clone(),
                    write_log: Vec::new(),
                    scratch_out: Vec::new(),
                    scratch_dir: Vec::new(),
                    scratch_io: Vec::new(),
                    scratch_evs: Vec::new(),
                    scratch_retired: Vec::new(),
                });
            }
            shards.reverse();
        }

        let mut min_deadline = u64::MAX;
        for sh in &shards {
            min_deadline = min_deadline.min(
                sh.nodes
                    .iter()
                    .map(|nd| nd.ctl.next_deadline().min(nd.dir.next_deadline()))
                    .min()
                    .unwrap_or(u64::MAX),
            );
        }

        let slots: Vec<Slot> = (0..nshards).map(|_| Slot::new()).collect();
        // Spin only when the host has a core for every thread
        // (coordinator included); otherwise spinning can only steal the
        // producing thread's timeslice, so park almost immediately.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let spin: u32 = if cores > nshards { 1 << 14 } else { 8 };
        let mut timed_out = false;

        // The per-window coordinator, shared by the inline and threaded
        // paths: plans each window, hands one command per shard to
        // `submit`, and merges the results it returns (in shard order).
        let net = &mut self.net;
        let mem = &mut self.mem;
        let watchdog = &mut self.watchdog;
        let fault = &mut self.fault;
        let now = &mut self.now;
        let meta = &mut self.meta_probe;
        let cfg = self.cfg;
        let mut coordinate = |submit: &mut dyn FnMut(Vec<WindowCmd>) -> Vec<WindowResult>| {
            let mut quiesced = false;
            let mut deliveries: Vec<(u64, usize, Env)> = Vec::new();
            let mut shard_deliveries: Vec<Vec<(u64, u64, usize, Env)>> =
                (0..nshards).map(|_| Vec::new()).collect();
            let mut foreign: Vec<(u32, Word, bool)> = Vec::new();
            let mut staged: Vec<StagedSend> = Vec::new();

            loop {
                if fault.is_some() || quiesced {
                    break;
                }
                if stop_at.is_some_and(|s| *now >= s) {
                    break;
                }
                if *now >= max {
                    timed_out = true;
                    break;
                }
                let start = *now + 1;

                // Window-shrink rule: any event that could raise a
                // fault (a delivery faulting a protocol engine, an
                // overdue retransmission exhausting its retries, the
                // watchdog firing) must land on the window's *last*
                // cycle, so every shard completes the faulting cycle
                // exactly as the sequential machine does. Deadlines
                // and deliveries that arise mid-window always mature
                // at least one cycle later, which with a width-2
                // window is the last cycle; only those already due at
                // `start` force a width-1 window.
                let due_now = net.earliest_delivery(start) == Some(start);
                let wd_deadline = if cfg.watchdog.enabled {
                    watchdog.deadline(cfg.watchdog.horizon)
                } else {
                    u64::MAX
                };
                let width = if width_max > 1
                    && (due_now || min_deadline <= start || wd_deadline <= start)
                {
                    1
                } else {
                    width_max
                };
                // A checkpoint stop clamps the window so `end - 1`
                // never crosses it; narrower windows are always sound.
                let width = match stop_at {
                    Some(stop) => width.min(stop - *now),
                    None => width,
                };
                let end = start + width;
                meta.emit(end - 1, EventKind::WindowBarrier, start, width);
                let capture_pm = cfg.watchdog.enabled && wd_deadline < end;

                let base_delivered = net.stats.delivered;
                deliveries.clear();
                net.window_deliveries(start, end, &mut deliveries);
                for v in &mut shard_deliveries {
                    v.clear();
                }
                for (gidx, &(t, dst, env)) in deliveries.iter().enumerate() {
                    shard_deliveries[dst / chunk].push((t, gidx as u64, dst, env));
                }

                let cmds = (0..nshards)
                    .map(|s| WindowCmd {
                        start,
                        end,
                        capture_pm,
                        deliveries: std::mem::take(&mut shard_deliveries[s]),
                        foreign_writes: foreign.clone(),
                    })
                    .collect();
                let mut results = submit(cmds);

                // Merge staged sends in the deterministic order and
                // inject; packet ids now match the sequential run's.
                staged.clear();
                for r in &results {
                    staged.extend_from_slice(&r.sends);
                }
                staged.sort_unstable_by_key(|s| s.key);
                for s in &staged {
                    net.send(s.at, s.src, s.dst, s.size, s.env);
                }

                // Reconcile memory: apply every shard's write snapshots
                // to the canonical image and broadcast them to all
                // replicas next window.
                foreign.clear();
                #[cfg(debug_assertions)]
                {
                    let mut seen = std::collections::HashSet::new();
                    for r in &results {
                        for &(addr, ..) in &r.writes {
                            assert!(
                                seen.insert(addr),
                                "two shards wrote {addr:#x} in one window"
                            );
                        }
                    }
                }
                for r in &results {
                    for &(addr, w, full) in &r.writes {
                        mem.set_word_state(addr, w, full);
                    }
                    foreign.extend_from_slice(&r.writes);
                }

                // Catch the network's internal clock up to the last
                // executed cycle (resolving drops and outage stalls due
                // by then), as the sequential per-cycle poll would
                // have; injection order above guarantees identical
                // event ordering.
                net.route_to(end - 1);

                // The globally first fault wins, exactly as the
                // sequential machine records the first `set_fault`.
                let mut first: Option<&ShardFault> = None;
                for r in &results {
                    if let Some(f) = &r.fault {
                        if first.is_none_or(|b| f.key < b.key) {
                            first = Some(f);
                        }
                    }
                }
                if let Some(f) = first {
                    *fault = Some(f.fault.clone());
                } else if cfg.watchdog.enabled {
                    // Replay the watchdog cycle by cycle against the
                    // merged progress signature.
                    for (ci, c) in (start..end).enumerate() {
                        let mut instrs = 0;
                        let mut dir_events = 0;
                        let mut ctl_events = 0;
                        for r in &results {
                            let (i, d, l) = r.sigs[ci];
                            instrs += i;
                            dir_events += d;
                            ctl_events += l;
                        }
                        let delivered = base_delivered
                            + deliveries.iter().take_while(|&&(t, ..)| t <= c).count() as u64;
                        let sig = (instrs, delivered, dir_events, ctl_events);
                        let deadline_before = watchdog.deadline(cfg.watchdog.horizon);
                        let fired = watchdog.observe(c, sig, cfg.watchdog.horizon);
                        let deadline_after = watchdog.deadline(cfg.watchdog.horizon);
                        if deadline_after != deadline_before {
                            meta.emit(c, EventKind::WatchdogArmed, deadline_after, 0);
                        }
                        if fired {
                            let net_pending = net.in_flight_count() > 0;
                            let shard_pending = results
                                .iter()
                                .any(|r| r.pm.as_ref().is_some_and(|p| p.pending_pre_driver));
                            if net_pending || shard_pending {
                                debug_assert_eq!(c, end - 1, "watchdog fired mid-window");
                                meta.emit(c, EventKind::WatchdogFired, deadline_after, 0);
                                let mut in_flight: Vec<InFlightMsg> = net
                                    .in_flight_packets()
                                    .map(|(id, dst, sent_at, _, env)| InFlightMsg {
                                        id,
                                        src: env.src,
                                        dst,
                                        sent_at,
                                        msg: env.msg,
                                    })
                                    .collect();
                                in_flight.sort_by_key(|m| m.id);
                                let undeliverable = net
                                    .dead_letters()
                                    .iter()
                                    .map(|dl| UndeliverableMsg {
                                        id: dl.id,
                                        dst: dl.dst,
                                        at: dl.at,
                                        msg: dl.payload.msg,
                                    })
                                    .collect();
                                let mut pm = PostMortem {
                                    cycle: c,
                                    horizon: cfg.watchdog.horizon,
                                    in_flight,
                                    undeliverable,
                                    fault_stats: net.fault_stats,
                                    ..PostMortem::default()
                                };
                                for r in &mut results {
                                    if let Some(frag) = r.pm.take() {
                                        pm.busy_blocks.extend(frag.busy_blocks);
                                        pm.outstanding.extend(frag.outstanding);
                                        pm.stalled_frames.extend(frag.stalled_frames);
                                        pm.fences.extend(frag.fences);
                                    }
                                }
                                *fault = Some(MachineFault::NoForwardProgress(Box::new(pm)));
                                break;
                            }
                        }
                    }
                }

                min_deadline = results
                    .iter()
                    .map(|r| r.next_deadline)
                    .min()
                    .unwrap_or(u64::MAX);
                quiesced = results.iter().all(|r| r.halted_all && !r.pending) && net.is_idle();
                *now = end - 1;
            }
        };

        let mut shards = if nshards == 1 {
            // Single shard: run the windows inline on this thread. No
            // spawn, no hand-offs — this is also the 1-worker baseline
            // the scaling benchmark measures against, so it must not
            // pay for parallelism it does not use.
            let mut sh = shards.pop().expect("one shard");
            coordinate(&mut |mut cmds| {
                let cmd = cmds.pop().expect("one command");
                vec![sh.run_window(&cmd, driver)]
            });
            vec![sh]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .zip(&slots)
                    .map(|(mut sh, slot)| {
                        scope.spawn(move || loop {
                            match take(&slot.cmd, &slot.cmd_cv, spin) {
                                Cmd::Stop => return sh,
                                Cmd::Window(w) => {
                                    let res = sh.run_window(&w, driver);
                                    post(&slot.res, &slot.res_cv, res);
                                }
                            }
                        })
                    })
                    .collect();

                coordinate(&mut |cmds: Vec<WindowCmd>| {
                    for (slot, cmd) in slots.iter().zip(cmds) {
                        post(&slot.cmd, &slot.cmd_cv, Cmd::Window(Box::new(cmd)));
                    }
                    slots
                        .iter()
                        .map(|slot| take(&slot.res, &slot.res_cv, spin))
                        .collect()
                });

                // Wind the workers down and recover their shards.
                for slot in &slots {
                    post(&slot.cmd, &slot.cmd_cv, Cmd::Stop);
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        };

        // Scatter the shard state back into the machine.
        shards.sort_by_key(|sh| sh.base);
        for sh in shards {
            self.nodes.extend(sh.nodes);
            self.ready_at.extend(sh.ready_at);
            self.halted_at.extend(sh.halted_at);
        }

        assert!(!timed_out, "timeout at cycle {}", self.now);
        self.fault.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SwitchSpin;
    use april_core::isa::asm::assemble;
    use april_net::topology::Topology;

    fn small_cfg(workers: usize) -> MachineConfig {
        MachineConfig {
            topology: Topology::new(2, 2),
            region_bytes: 0x10000,
            workers,
            net: april_net::network::NetConfig {
                hop_latency: 1,
                loopback_latency: 2,
            },
            ..MachineConfig::default()
        }
    }

    #[test]
    fn remote_access_completes_in_parallel_mode() {
        let prog = assemble(
            "
            movi 0x10000, r1
            movi 77, r2
            st r2, r1+0
            ld r1+0, r3
            halt
        ",
        )
        .unwrap();
        for workers in [1, 2, 4] {
            let mut m = ParallelAlewife::new(small_cfg(workers), prog.clone());
            // Boot every node: the run drains to quiescence, which
            // requires all processors to reach `halt`.
            for i in 0..m.num_procs() {
                m.cpu_mut(i).boot(0);
            }
            assert_eq!(m.run(&SwitchSpin::default(), 100_000), None);
            assert_eq!(m.mem().read(0x10000), Word(77));
            assert!(m.cpu(0).is_halted());
            assert!(m.halted_cycles()[0].is_some());
        }
    }

    #[test]
    fn window_override_narrows_but_never_widens() {
        let mut cfg = small_cfg(2);
        let m = ParallelAlewife::new(cfg, assemble("halt").unwrap());
        assert_eq!(m.window_width(), 2);
        cfg.window_override = 1;
        let m = ParallelAlewife::new(cfg, assemble("halt").unwrap());
        assert_eq!(m.window_width(), 1);
        cfg.window_override = 100;
        let m = ParallelAlewife::new(cfg, assemble("halt").unwrap());
        assert_eq!(m.window_width(), 2, "override must not exceed lookahead");
    }

    #[test]
    #[should_panic(expected = "no conservative window")]
    fn zero_lookahead_is_rejected() {
        let cfg = MachineConfig {
            net: april_net::network::NetConfig {
                hop_latency: 1,
                loopback_latency: 0,
            },
            ..small_cfg(2)
        };
        let mut m = ParallelAlewife::new(cfg, assemble("halt").unwrap());
        m.boot();
        m.run(&SwitchSpin::default(), 1_000);
    }
}
