//! The ideal machine: P processors sharing a zero-latency memory.
//!
//! This reproduces the methodology of the paper's Table 3 scaling
//! measurements: "Measurements for multiple processor executions on
//! APRIL (2–16) used the processor simulator without the cache and
//! network simulators, in effect simulating a shared-memory machine
//! with no memory latency" (Section 7). Task-creation and
//! synchronization overheads are fully modeled; memory is uniformly
//! one-cycle.

use crate::Machine;
use april_core::cpu::{Cpu, CpuConfig, StepEvent};
use april_core::program::Program;
use april_core::stats::CpuStats;
use april_mem::femem::FeMemory;

/// P APRIL processors over an ideal shared memory.
///
/// # Examples
///
/// ```
/// use april_machine::ideal::IdealMachine;
/// use april_machine::Machine;
/// use april_core::isa::asm::assemble;
///
/// let prog = assemble("movi 7, r1\nhalt")?;
/// let mut m = IdealMachine::new(1, 4096, prog);
/// m.boot_all();
/// m.run_until_halt(1_000);
/// assert!(m.cpu(0).is_halted());
/// # Ok::<(), april_core::isa::asm::AsmError>(())
/// ```
#[derive(Debug)]
pub struct IdealMachine {
    cpus: Vec<Cpu>,
    mem: FeMemory,
    prog: Program,
    ready_at: Vec<u64>,
    now: u64,
}

impl IdealMachine {
    /// Creates a machine of `nprocs` processors with `mem_bytes` of
    /// shared memory, loading `prog`'s static image.
    pub fn new(nprocs: usize, mem_bytes: usize, prog: Program) -> IdealMachine {
        IdealMachine::with_cpu_config(nprocs, mem_bytes, prog, CpuConfig::default())
    }

    /// Creates a machine with a custom processor configuration.
    pub fn with_cpu_config(
        nprocs: usize,
        mem_bytes: usize,
        prog: Program,
        cpu: CpuConfig,
    ) -> IdealMachine {
        assert!(nprocs > 0);
        let mut mem = FeMemory::new(mem_bytes);
        mem.load_image(&prog);
        IdealMachine {
            cpus: (0..nprocs).map(|_| Cpu::new(cpu)).collect(),
            mem,
            prog,
            ready_at: vec![0; nprocs],
            now: 0,
        }
    }

    /// Boots every processor at the program entry point (for raw
    /// programs; the run-time system boots threads itself).
    pub fn boot_all(&mut self) {
        let entry = self.prog.entry;
        for c in &mut self.cpus {
            c.boot(entry);
        }
    }

    /// Runs without a run-time system until all processors halt,
    /// panicking on traps (convenience for bare-metal programs).
    ///
    /// # Panics
    ///
    /// Panics on any trap or if `max_cycles` elapses first.
    pub fn run_until_halt(&mut self, max_cycles: u64) {
        while self.cpus.iter().any(|c| !c.is_halted()) {
            assert!(self.now < max_cycles, "exceeded {max_cycles} cycles");
            for (i, ev) in self.advance() {
                match ev {
                    StepEvent::Trapped(t) => panic!("cpu {i} trapped: {t}"),
                    StepEvent::RtCall { n } => panic!("cpu {i} rtcall {n} without runtime"),
                    StepEvent::NoReadyFrame => self.charge_idle(i, 1),
                    _ => {}
                }
            }
        }
    }

    /// Sum of all processors' cycle ledgers.
    pub fn total_stats(&self) -> CpuStats {
        let mut s = CpuStats::default();
        for c in &self.cpus {
            s.merge(&c.stats);
        }
        s
    }
}

impl Machine for IdealMachine {
    fn num_procs(&self) -> usize {
        self.cpus.len()
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn advance_into(&mut self, evs: &mut Vec<(usize, StepEvent)>) {
        evs.clear();
        self.now += 1;
        for i in 0..self.cpus.len() {
            if self.ready_at[i] > self.now || self.cpus[i].is_halted() {
                continue;
            }
            let before = self.cpus[i].stats.total();
            let ev = self.cpus[i].step(&self.prog, &mut self.mem);
            let cost = self.cpus[i].stats.total() - before;
            self.ready_at[i] = self.now + cost;
            match ev {
                StepEvent::Executed | StepEvent::Stalled { .. } => {}
                other => evs.push((i, other)),
            }
        }
    }

    fn cpu(&self, i: usize) -> &Cpu {
        &self.cpus[i]
    }

    fn cpu_mut(&mut self, i: usize) -> &mut Cpu {
        &mut self.cpus[i]
    }

    fn mem(&self) -> &FeMemory {
        &self.mem
    }

    fn mem_mut(&mut self) -> &mut FeMemory {
        &mut self.mem
    }

    fn program(&self) -> &Program {
        &self.prog
    }

    fn charge_handler(&mut self, i: usize, cycles: u64) {
        self.cpus[i].charge_handler(cycles);
        self.ready_at[i] += cycles;
    }

    fn charge_idle(&mut self, i: usize, cycles: u64) {
        self.cpus[i].charge_idle(cycles);
        self.ready_at[i] += cycles;
    }

    fn send_ipi(&mut self, _from: usize, to: usize) {
        // Zero-latency machine: interrupt arrives immediately.
        let from = _from;
        self.cpus[to].post_interrupt(from);
    }

    fn home_of(&self, _addr: u32) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use april_core::isa::asm::assemble;
    use april_core::isa::Reg;
    use april_core::word::Word;

    #[test]
    fn single_cpu_program_runs() {
        let prog = assemble(
            "
            movi 5, r1
            movi 0, r2
        loop:
            add r2, r1, r2
            sub r1, 1, r1
            jne loop
            nop
            halt
        ",
        )
        .unwrap();
        let mut m = IdealMachine::new(1, 4096, prog);
        m.boot_all();
        m.run_until_halt(10_000);
        assert_eq!(m.cpu(0).get_reg(Reg::L(2)), Word(15));
    }

    #[test]
    fn cpus_share_memory() {
        // CPU semantics are per-boot identical; both store to distinct
        // addresses of the same memory.
        let prog = assemble(
            "
            ldio 1, r3        ; node id (fixnum)
            sra r3, 2, r3     ; untag
            sll r3, 2, r3     ; byte offset = 4 * id
            movi 0x100, r1
            add r1, r3, r1
            movi 99, r2
            st r2, r1+0
            halt
        ",
        )
        .unwrap();
        let mut m = IdealMachine::new(2, 4096, prog);
        m.boot_all();
        m.run_until_halt(1_000);
        // ldio on the ideal machine returns ZERO for all nodes (no
        // controller); both stored to 0x100.
        assert_eq!(m.mem().read(0x100), Word(99));
    }

    #[test]
    fn multicycle_instructions_delay_the_cpu() {
        let prog = assemble("mul g0, g0, g0\nhalt").unwrap();
        let mut m = IdealMachine::new(1, 1024, prog);
        m.boot_all();
        m.run_until_halt(100);
        // mul costs 3, halt costs 1; elapsed now >= 4.
        assert_eq!(m.cpu(0).stats.useful_cycles, 4);
        assert!(m.now() >= 4);
    }

    #[test]
    fn ipi_is_deliverable() {
        let prog = assemble("nop\nnop\nnop\nhalt").unwrap();
        let mut m = IdealMachine::new(2, 1024, prog);
        m.boot_all();
        m.send_ipi(0, 1);
        let mut trapped = false;
        for _ in 0..50 {
            for (i, ev) in m.advance() {
                if let StepEvent::Trapped(april_core::trap::Trap::Interrupt { from }) = ev {
                    assert_eq!((i, from), (1, 0));
                    trapped = true;
                    // Ack: clear trap state and continue.
                    m.cpu_mut(i).active_frame_mut().psr.in_trap = false;
                }
                if let StepEvent::NoReadyFrame = ev {
                    m.charge_idle(i, 1);
                }
            }
            if m.cpu(0).is_halted() && m.cpu(1).is_halted() {
                break;
            }
        }
        assert!(trapped);
    }

    #[test]
    fn stats_aggregate() {
        let prog = assemble("nop\nhalt").unwrap();
        let mut m = IdealMachine::new(3, 1024, prog);
        m.boot_all();
        m.run_until_halt(100);
        assert_eq!(m.total_stats().instructions, 6);
    }
}
