//! # april-machine — the ALEWIFE machine
//!
//! Assembles the APRIL processor (`april-core`), the coherent memory
//! substrate (`april-mem`) and the direct network (`april-net`) into
//! runnable machines:
//!
//! * [`ideal::IdealMachine`] — P processors over a zero-latency shared
//!   memory, the configuration the paper used for its Table 3
//!   measurements.
//! * [`alewife::Alewife`] — the full machine of Figure 1: per-node
//!   caches, full-map directories, and a k-ary n-cube network; remote
//!   misses trap the processor for coarse-grain context switching.
//!
//! Both implement the [`Machine`] trait, which the run-time system
//! (`april-runtime`) drives: `advance()` moves simulated time forward
//! one cycle and surfaces the events (traps, run-time calls, empty
//! frames) that the software system must handle, exactly as ALEWIFE
//! migrates scheduling and trap handling into software.

#![warn(missing_docs)]

pub mod alewife;
pub mod config;
pub mod driver;
pub mod ideal;
pub(crate) mod obs;
pub mod parallel;
pub mod recovery;
pub mod replay;
pub mod snapshot;
pub mod traffic;
pub mod watchdog;

use april_core::cpu::{Cpu, StepEvent};
use april_core::program::Program;
use april_mem::femem::FeMemory;
use april_obs::{StatsReport, Trace, TraceConfig};

pub use alewife::Alewife;
pub use config::MachineConfig;
pub use driver::drive_sequential_until;
pub use driver::{drive_sequential, EventCtx, NodeDriver, SwitchSpin};
pub use ideal::IdealMachine;
pub use parallel::ParallelAlewife;
pub use recovery::{
    derive_quarantine, Quarantine, QuarantineAction, RecoverableMachine, RecoveryConfig,
    RecoveryFailure, RecoveryManager, RecoveryReport,
};
pub use replay::{Divergence, Replayer};
pub use snapshot::{diff_snapshots, Snapshot, SnapshotError};
pub use traffic::{service_program, ArrivalPlan, TrafficConfig};
pub use watchdog::{MachineFault, PostMortem, UndeliverableMsg, WatchdogConfig};

pub use april_net::topology::Topology;

/// A machine the run-time system can drive.
///
/// A machine owns processors, memory, and a loaded program; the
/// run-time advances it cycle by cycle and services the events it
/// reports. All mutation of processor state outside instruction
/// execution (context switches, thread loads) goes through
/// [`Machine::cpu_mut`] with cycle costs charged via
/// [`Machine::charge_handler`], keeping the cycle ledger exact.
pub trait Machine {
    /// Number of processors.
    fn num_procs(&self) -> usize;

    /// Current simulated time in cycles.
    fn now(&self) -> u64;

    /// Advances time by one cycle, stepping every due processor, and
    /// returns the events that need run-time attention.
    fn advance(&mut self) -> Vec<(usize, StepEvent)> {
        let mut evs = Vec::new();
        self.advance_into(&mut evs);
        evs
    }

    /// Like [`Machine::advance`], but clears `evs` and appends the
    /// events into it instead of allocating a fresh vector. Drivers
    /// hand the same buffer back every cycle so the advance loop stays
    /// allocation-free.
    fn advance_into(&mut self, evs: &mut Vec<(usize, StepEvent)>);

    /// Processor `i`.
    fn cpu(&self, i: usize) -> &Cpu;

    /// Mutable processor `i` (for the run-time's context switching and
    /// thread load/unload).
    fn cpu_mut(&mut self, i: usize) -> &mut Cpu;

    /// The shared (or global) data memory.
    fn mem(&self) -> &FeMemory;

    /// Mutable shared memory (run-time data structures live here).
    fn mem_mut(&mut self) -> &mut FeMemory;

    /// The loaded program.
    fn program(&self) -> &Program;

    /// Charges `cycles` of trap-handler time to processor `i` and
    /// delays it accordingly.
    fn charge_handler(&mut self, i: usize, cycles: u64);

    /// Charges `cycles` of idle time to processor `i`.
    fn charge_idle(&mut self, i: usize, cycles: u64);

    /// Sends an interprocessor interrupt.
    fn send_ipi(&mut self, from: usize, to: usize);

    /// The home node of address `addr` (0 on centralized machines).
    fn home_of(&self, addr: u32) -> usize;

    /// A fatal machine-level fault (protocol failure or watchdog
    /// firing), if one has been detected. The run-time aborts the run
    /// when this becomes `Some`. Machines without fault detection
    /// (e.g. the ideal machine) report `None` forever.
    fn fault(&self) -> Option<&MachineFault> {
        None
    }

    /// Installs live event probes on every instrumented component.
    /// Must be called before the run starts; attaching mid-run would
    /// make the trace depend on when the caller attached. Machines
    /// without instrumentation ignore the request.
    fn attach_tracer(&mut self, _cfg: TraceConfig) {}

    /// Merges every component probe into one canonically ordered
    /// [`Trace`]. Uninstrumented machines return an empty trace.
    fn collect_trace(&self) -> Trace {
        Trace::new()
    }

    /// Snapshots the machine's counters and histograms as a
    /// [`StatsReport`]. Uninstrumented machines return an empty report.
    fn stats_report(&self) -> StatsReport {
        StatsReport::new()
    }

    /// Retires an open-loop request (DESIGN.md §15) on behalf of the
    /// run-time system: `word` is the request word a service task
    /// hands back through the run-time's retire call, and the machine
    /// timestamps it against its arrival plan ([`traffic`]). Returns
    /// `true` when the word was recorded as a retirement; machines
    /// without traffic support ignore the call.
    fn retire_request(&mut self, _node: usize, _word: u32) -> bool {
        false
    }

    /// Captures the machine's complete state as a versioned
    /// [`Snapshot`] (DESIGN.md §11). Takes `&mut self` because the
    /// decode engine's booked runs must materialize before encoding —
    /// the snapshot itself is still a pure read of the settled state.
    /// Machines without snapshot support report
    /// [`SnapshotError::Unsupported`].
    fn checkpoint(&mut self) -> Result<Snapshot, SnapshotError> {
        Err(SnapshotError::Unsupported)
    }

    /// Restores a [`Snapshot`] taken on an identically configured
    /// machine running the same program; the continuation is bit-exact
    /// with the checkpointed run. Machines without snapshot support
    /// report [`SnapshotError::Unsupported`].
    fn restore(&mut self, _snap: &Snapshot) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported)
    }
}
