//! Open-loop traffic: deterministic request arrivals at edge nodes.
//!
//! Everything the closed-loop workloads (fib, queens, factor) measure
//! is *batch* behaviour; the paper's central claim — §8's utilization
//! model — is about a machine absorbing load it does not control. This
//! module turns designated *edge I/O-handler nodes* into ingress
//! points: a seeded generator (Poisson-like inter-arrival gaps, with
//! optional on/off burst phases) produces a fixed **arrival plan** at
//! machine construction, and both schedulers inject those requests
//! into per-edge-node ingress rings at exactly the planned cycles.
//! Injection is a functional memory write (edge-DMA, like the paper's
//! I/O handler tiles feeding the mesh): the slot word becomes the
//! request, visible to the consuming service loop on its next load,
//! with no protocol traffic — all *timing* of the service work itself
//! (cache misses, remote round trips, context switches) remains fully
//! simulated.
//!
//! Determinism contract: the plan is a pure function of
//! [`TrafficConfig`] plus machine geometry, injections happen at
//! plan-exact cycles under the lockstep, event-driven, and parallel
//! schedulers alike, and every per-request observation (arrival,
//! drop, retire latency) is recorded into per-node state that merges
//! order-independently — so arrival traces and latency reports are
//! byte-identical across schedulers and worker counts (DESIGN.md §15).

use crate::config::MachineConfig;
use april_core::word::Word;
use april_mem::femem::FeMemory;
use april_obs::{EventKind, Probe, QHist};
use april_util::rng::Rng;

/// The I/O register a service loop stores a request word to in order
/// to retire it (`stio rS, 7`): the machine timestamps the store,
/// computes birth→retire latency against the arrival plan, and records
/// it into the edge node's latency histogram.
pub const IO_RETIRE: u16 = 7;

/// The poison word: injected once into each edge node's ring after its
/// last planned arrival, telling the service loop to halt.
pub const POISON_WORD: u32 = 1;

/// The request word carried by ring slot `id`: `(id + 1) << 8`, so
/// every request is distinct from both the empty slot (0) and the
/// poison word (1).
pub fn request_word(id: u64) -> Word {
    Word(((id as u32) + 1) << 8)
}

/// Open-loop workload description, embedded in
/// [`MachineConfig::traffic`](crate::MachineConfig). All-scalar so the
/// machine configuration stays `Copy` and its `Debug` rendering (the
/// snapshot compatibility check) captures the workload exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Arrival-schedule seed. Every edge node derives an independent
    /// stream from it.
    pub seed: u64,
    /// Every `edge_every`-th node (0, `edge_every`, …) hosts an
    /// ingress ring. Clamped to at least 1.
    pub edge_every: u32,
    /// Requests offered to each edge node.
    pub requests_per_edge: u32,
    /// Mean inter-arrival gap in cycles during the on phase (the
    /// offered-load knob). Clamped to at least 1.
    pub mean_gap: u32,
    /// On/off burst phase length in cycles; 0 disables the off phase
    /// (pure Poisson-like arrivals).
    pub phase_len: u32,
    /// Off-phase mean-gap multiplier (≥ 1): arrivals thin out by this
    /// factor during off phases, giving the bursty on/off envelope.
    pub off_mul: u32,
    /// Byte offset of the ingress ring within the edge node's memory
    /// region.
    pub ring_offset: u32,
    /// Ring capacity in one-word slots; an arrival to a full ring is
    /// dropped. Clamped to at least 1.
    pub ring_slots: u32,
    /// Remote loads the generated service loop issues per request
    /// (the miss/sync-ratio knob: each one is a cache miss and usually
    /// a context switch).
    pub work_remote: u32,
    /// Local ALU delay-loop iterations the service loop burns per
    /// request.
    pub work_local: u32,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            seed: 0xA_9817_5EED,
            edge_every: 4,
            requests_per_edge: 64,
            mean_gap: 400,
            phase_len: 4096,
            off_mul: 3,
            ring_offset: 0x400,
            ring_slots: 8,
            work_remote: 2,
            work_local: 16,
        }
    }
}

/// The fully materialized arrival schedule: per edge node, the exact
/// cycle of every request's birth. Built once at machine construction
/// (both schedulers derive it from the same config by the same pure
/// code) and shared read-only thereafter.
#[derive(Debug, Clone)]
pub struct ArrivalPlan {
    tcfg: TrafficConfig,
    region_bytes: u32,
    /// `(node, birth cycles)` per edge node, ascending by node; the
    /// index into the cycle vector is the request id.
    per_node: Vec<(usize, Vec<u64>)>,
}

impl ArrivalPlan {
    /// Builds the plan for `cfg`, or `None` when the config carries no
    /// traffic description.
    pub fn build(cfg: &MachineConfig) -> Option<ArrivalPlan> {
        let t = cfg.traffic?;
        let n = cfg.num_nodes();
        let every = t.edge_every.max(1) as usize;
        let mean = t.mean_gap.max(1) as f64;
        let mut per_node = Vec::new();
        for node in (0..n).step_by(every) {
            let mut rng =
                Rng::seed_from(t.seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut at = 0u64;
            let mut arrivals = Vec::with_capacity(t.requests_per_edge as usize);
            for _ in 0..t.requests_per_edge {
                let off_phase = t.phase_len > 0 && (at / t.phase_len as u64) % 2 == 1;
                let m = if off_phase {
                    mean * t.off_mul.max(1) as f64
                } else {
                    mean
                };
                // Inverse-CDF exponential gap, floored to whole cycles
                // and at least 1 so arrivals are strictly ordered.
                let u = rng.gen_f64();
                at += (-(1.0 - u).ln() * m).floor() as u64 + 1;
                arrivals.push(at);
            }
            per_node.push((node, arrivals));
        }
        Some(ArrivalPlan {
            tcfg: t,
            region_bytes: cfg.region_bytes,
            per_node,
        })
    }

    /// The traffic configuration the plan was derived from.
    pub fn traffic_config(&self) -> &TrafficConfig {
        &self.tcfg
    }

    /// The edge nodes and their birth-cycle vectors, ascending by node.
    pub fn entries(&self) -> &[(usize, Vec<u64>)] {
        &self.per_node
    }

    /// Whether `node` hosts an ingress ring.
    pub fn is_edge(&self, node: usize) -> bool {
        self.arrivals(node).is_some()
    }

    /// `node`'s birth cycles (index = request id), if it is an edge.
    pub fn arrivals(&self, node: usize) -> Option<&[u64]> {
        self.per_node
            .binary_search_by_key(&node, |(n, _)| *n)
            .ok()
            .map(|i| self.per_node[i].1.as_slice())
    }

    /// The birth cycle of request `id` at `node`.
    pub fn birth(&self, node: usize, id: usize) -> u64 {
        self.arrivals(node).map_or(0, |a| a[id])
    }

    /// The byte address of `node`'s ring slot for write-cursor
    /// position `k` (the `k`-th successful injection).
    pub fn slot_addr(&self, node: usize, k: u64) -> u32 {
        let slots = self.tcfg.ring_slots.max(1) as u64;
        node as u32 * self.region_bytes + self.tcfg.ring_offset + 4 * (k % slots) as u32
    }

    /// The first cycle at which `node`'s poison injection is attempted
    /// (retried every cycle until the head slot is free).
    pub fn poison_at(&self, node: usize) -> u64 {
        self.arrivals(node)
            .and_then(|a| a.last().copied())
            .unwrap_or(0)
            + 1
    }

    /// Total requests offered across all edge nodes.
    pub fn total_offered(&self) -> u64 {
        self.per_node.iter().map(|(_, a)| a.len() as u64).sum()
    }

    /// The last planned arrival cycle across all edge nodes (a lower
    /// bound on the run length; drain time comes on top).
    pub fn horizon(&self) -> u64 {
        self.per_node
            .iter()
            .filter_map(|(_, a)| a.last().copied())
            .max()
            .unwrap_or(0)
    }
}

/// Per-edge-node traffic state, carried inside the node itself so the
/// parallel machine's shards move it with their nodes. Counters,
/// histogram, and the poison flag are machine state (snapshotted in
/// the per-node `SEC_TRAFFIC` section); the injection cursor is
/// derived from the plan and the restored clock, so restores recompute
/// it instead of trusting the snapshot.
#[derive(Debug, Default)]
pub struct NodeTraffic {
    /// Next un-injected index into the node's arrival vector. Derived
    /// state: recomputed on restore as the partition point of birth
    /// cycles ≤ now.
    pub(crate) cursor: usize,
    /// Requests successfully written into the ring (also the ring
    /// write cursor).
    pub(crate) injected: u64,
    /// Arrivals dropped because their slot was still occupied.
    pub(crate) dropped: u64,
    /// Requests retired by the service loop.
    pub(crate) retired: u64,
    /// Cycle of the latest retire (deterministic, unlike the final
    /// scheduler cycle; the throughput denominator).
    pub(crate) last_retire: u64,
    /// Whether the poison word has been placed after the last arrival.
    pub(crate) poison_sent: bool,
    /// Birth→retire latency in cycles, quantile-accurate to 1/16.
    pub(crate) latency: QHist,
    /// The node's [`april_obs::Component::Request`] trace lane.
    pub(crate) probe: Probe,
}

impl NodeTraffic {
    /// Recomputes the injection cursor for a machine restored at
    /// `now`: every arrival with a birth cycle ≤ now was already
    /// injected (or dropped) before the checkpoint.
    pub(crate) fn reset_cursor(&mut self, arrivals: &[u64], now: u64) {
        self.cursor = arrivals.partition_point(|&c| c <= now);
    }
}

/// Injects every arrival due at `now` into `node`'s ring, plus the
/// poison word once all arrivals are in and the head slot is free.
/// Writes go straight to `mem` (the caller passes its canonical image
/// or its shard replica) and are appended to `write_log` when the
/// caller reconciles replicas at window barriers. Pure per-node
/// state-machine: given the same plan and visit cycles, every
/// scheduler performs the identical writes and emits the identical
/// probe events.
pub(crate) fn inject_due(
    plan: &ArrivalPlan,
    node: usize,
    tr: &mut NodeTraffic,
    now: u64,
    mem: &mut FeMemory,
    mut write_log: Option<&mut Vec<u32>>,
) {
    let Some(arrivals) = plan.arrivals(node) else {
        return;
    };
    while tr.cursor < arrivals.len() && arrivals[tr.cursor] <= now {
        let id = tr.cursor as u64;
        let addr = plan.slot_addr(node, tr.injected);
        if mem.read(addr) != Word::ZERO {
            // Open-loop overload: the ring is full, the request is
            // lost. The write cursor does not advance.
            tr.dropped += 1;
            tr.probe.emit(now, EventKind::RequestDrop, id, addr as u64);
        } else {
            mem.set_word_state(addr, request_word(id), true);
            if let Some(log) = write_log.as_mut() {
                log.push(addr);
            }
            tr.injected += 1;
            tr.probe
                .emit(now, EventKind::RequestArrive, id, addr as u64);
        }
        tr.cursor += 1;
    }
    if tr.cursor == arrivals.len() && !tr.poison_sent && now >= plan.poison_at(node) {
        let addr = plan.slot_addr(node, tr.injected);
        if mem.read(addr) == Word::ZERO {
            mem.set_word_state(addr, Word(POISON_WORD), true);
            if let Some(log) = write_log {
                log.push(addr);
            }
            tr.poison_sent = true;
        }
    }
}

/// Records one retired request (`word` as stored to [`IO_RETIRE`]) at
/// cycle `now`: latency against the plan's birth cycle, counters, and
/// the retire trace event. Words that are not request words (below
/// 256) are ignored.
pub(crate) fn record_retire(
    plan: &ArrivalPlan,
    node: usize,
    tr: &mut NodeTraffic,
    word: u32,
    now: u64,
) {
    if word < 0x100 {
        return;
    }
    let id = (word >> 8) as u64 - 1;
    let Some(arrivals) = plan.arrivals(node) else {
        return;
    };
    if id as usize >= arrivals.len() {
        return;
    }
    let lat = now.saturating_sub(arrivals[id as usize]);
    tr.retired += 1;
    tr.last_retire = now;
    tr.latency.record(lat);
    tr.probe.emit(now, EventKind::RequestRetire, id, lat);
}

/// Generates the machine-level service-loop program for `cfg`'s
/// traffic description: every node boots at entry 0, reads its own id
/// from the I/O space, and either halts (non-edge nodes) or serves its
/// ingress ring — poll the head slot, perform `work_remote` remote
/// loads (each a simulated cache miss against a rotating window in a
/// distant node's region) and `work_local` ALU delay iterations,
/// clear the slot, retire via `stio rS, 7`, advance — until it
/// consumes the poison word. The program is pure APRIL assembly with
/// no run-time calls, so the plain trap-handling drivers
/// ([`crate::SwitchSpin`]) can run it on all three schedulers.
///
/// # Panics
///
/// Panics if `cfg` carries no traffic description.
pub fn service_program(cfg: &MachineConfig) -> String {
    let t = cfg.traffic.expect("service_program needs cfg.traffic");
    let n = cfg.num_nodes();
    let region = cfg.region_bytes;
    let ring_bytes = 4 * t.ring_slots.max(1);
    // The remote-work window: a power-of-two span of a distant node's
    // region, past that node's own ring, walked request-by-request so
    // the service loop keeps missing instead of settling into a warm
    // cache.
    let work_off = (t.ring_offset + ring_bytes + 63) & !63;
    let mut win = 1u32;
    while win * 2 <= (region - work_off.min(region)) / 2 && win < (1 << 16) {
        win *= 2;
    }
    let win_mask = win.saturating_sub(1);
    let half = (n / 2).max(1);
    let remote_work = t.work_remote > 0 && n > 1;

    let mut p = String::new();
    p.push_str(&format!(
        "start:
    ldio 1, r10          ; fixnum node id (4*i)
    srl r10, 2, r10      ; i
    movi {every}, r11
    rem r10, r11, r11    ; edge iff i % edge_every == 0
    jne finish
    nop
    movi {region}, r12
    mul r10, r12, r13    ; own region base
    movi {ring_off}, r14
    add r13, r14, r1     ; r1 = slot pointer
    add r13, r14, r15    ; r15 = ring base
    movi {ring_bytes}, r14
    add r15, r14, r16    ; r16 = ring end
",
        every = t.edge_every.max(1),
        region = region,
        ring_off = t.ring_offset,
        ring_bytes = ring_bytes,
    ));
    if remote_work {
        p.push_str(&format!(
            "    movi {half}, r14
    add r10, r14, r14
    movi {n}, r18
    rem r14, r18, r14    ; a distant node
    mul r14, r12, r17
    movi {work_off}, r14
    add r17, r14, r17    ; r17 = remote work window base
",
        ));
    }
    p.push_str(
        "poll:
    ld r1+0, r3
    sub r3, 1, r4        ; cc: empty < 0, poison = 0, request > 0
    jlt poll
    nop
    jeq finish
    nop
",
    );
    if remote_work {
        p.push_str(&format!(
            "    srl r3, 8, r4        ; request id + 1
    movi 64, r14
    mul r4, r14, r4
    movi {win_mask}, r14
    and r4, r14, r4
    add r17, r4, r5      ; this request's remote window address
    movi {wr}, r2
rwork:
    ld r5+0, r6          ; remote load: miss, trap, context switch
    add r5, 64, r5
    sub r2, 1, r2
    jgt rwork
    nop
",
            wr = t.work_remote,
        ));
    }
    if t.work_local > 0 {
        p.push_str(&format!(
            "    movi {wl}, r2
lwork:
    sub r2, 1, r2
    jgt lwork
    nop
",
            wl = t.work_local,
        ));
    }
    p.push_str(
        "    movi 0, r4
    st r4, r1+0          ; consume the slot
    stio r3, 7           ; retire the request
    add r1, 4, r1
    sub r1, r16, r4
    jne poll
    nop
    add r15, 0, r1       ; wrap to ring base
    jmp poll
    nop
finish:
    halt
",
    );
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use april_net::topology::Topology;

    fn cfg(traffic: TrafficConfig) -> MachineConfig {
        MachineConfig {
            topology: Topology::new(2, 4),
            region_bytes: 0x10000,
            traffic: Some(traffic),
            ..MachineConfig::default()
        }
    }

    #[test]
    fn plan_is_deterministic_and_strictly_ordered() {
        let c = cfg(TrafficConfig::default());
        let a = ArrivalPlan::build(&c).unwrap();
        let b = ArrivalPlan::build(&c).unwrap();
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.entries().len(), 4, "16 nodes, every 4th is an edge");
        for (node, arrivals) in a.entries() {
            assert_eq!(arrivals.len(), 64);
            assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
            assert!(a.is_edge(*node));
        }
        assert!(!a.is_edge(1));
        assert_eq!(a.total_offered(), 4 * 64);
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        let a = ArrivalPlan::build(&cfg(TrafficConfig::default())).unwrap();
        let b = ArrivalPlan::build(&cfg(TrafficConfig {
            seed: 7,
            ..TrafficConfig::default()
        }))
        .unwrap();
        assert_ne!(a.entries(), b.entries());
    }

    #[test]
    fn offered_load_scales_with_mean_gap() {
        let fast = ArrivalPlan::build(&cfg(TrafficConfig {
            mean_gap: 50,
            phase_len: 0,
            ..TrafficConfig::default()
        }))
        .unwrap();
        let slow = ArrivalPlan::build(&cfg(TrafficConfig {
            mean_gap: 800,
            phase_len: 0,
            ..TrafficConfig::default()
        }))
        .unwrap();
        assert!(fast.horizon() * 4 < slow.horizon());
    }

    #[test]
    fn slot_addresses_wrap_within_the_ring() {
        let t = TrafficConfig::default();
        let plan = ArrivalPlan::build(&cfg(t)).unwrap();
        let base = 4 * 0x10000 + t.ring_offset;
        assert_eq!(plan.slot_addr(4, 0), base);
        assert_eq!(plan.slot_addr(4, t.ring_slots as u64), base);
        assert_eq!(plan.slot_addr(4, 3), base + 12);
    }

    #[test]
    fn service_program_assembles() {
        let c = cfg(TrafficConfig::default());
        let src = service_program(&c);
        april_core::isa::asm::assemble(&src).expect("service program assembles");
        // And with the optional work stages disabled.
        let c2 = cfg(TrafficConfig {
            work_remote: 0,
            work_local: 0,
            ..TrafficConfig::default()
        });
        april_core::isa::asm::assemble(&service_program(&c2)).unwrap();
    }
}
